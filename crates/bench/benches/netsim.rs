//! Discrete-event simulator benchmarks: schedule execution across system
//! sizes, plus the raw event-queue kernel.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_bench::workloads::heterogeneous_rates;
use dls_netsim::engine::EventQueue;
use dls_netsim::{simulate, SessionSpec};
use dls_dlt::{optimal, BusParams, SystemModel};
use std::hint::black_box;

fn bench_simulate(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim/simulate");
    for &m in &[8usize, 64, 512, 4096] {
        let w = heterogeneous_rates(m, 1.0, 8.0, 21);
        let p = BusParams::new(0.2, w).unwrap();
        let alloc = optimal::fractions(SystemModel::NcpFe, &p);
        let spec = SessionSpec::new(SystemModel::NcpFe, p, alloc);
        g.bench_with_input(BenchmarkId::from_parameter(m), &spec, |b, spec| {
            b.iter(|| black_box(simulate(spec)))
        });
    }
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("netsim/event_queue");
    for &n in &[1_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                // Interleaved schedule/pop churn.
                for i in 0..n {
                    q.schedule(((i * 7919) % n) as f64 + q.now(), i);
                    if i % 3 == 0 {
                        black_box(q.pop());
                    }
                }
                while let Some(e) = q.pop() {
                    black_box(e);
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulate, bench_event_queue);
criterion_main!(benches);
