//! Mechanism benchmarks: the DLS-BL payment computation (what every
//! processor recomputes in the Computing Payments phase) and the
//! strategyproofness sweep used by experiment E6.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_bench::workloads::heterogeneous_rates;
use dls_dlt::{optimal, BusParams, SystemModel};
use dls_mechanism::validate::sweep_strategyproof;
use dls_mechanism::{compute_payments, AgentSpec, Market};
use std::hint::black_box;

fn bench_compute_payments(c: &mut Criterion) {
    let mut g = c.benchmark_group("mechanism/compute_payments");
    for &m in &[4usize, 16, 64, 256] {
        let w = heterogeneous_rates(m, 1.0, 8.0, 31);
        let p = BusParams::new(0.2, w.clone()).unwrap();
        let alloc = optimal::fractions(SystemModel::NcpFe, &p);
        g.bench_with_input(BenchmarkId::from_parameter(m), &(p, alloc, w), |b, (p, a, w)| {
            b.iter(|| black_box(compute_payments(SystemModel::NcpFe, p, a, w)))
        });
    }
    g.finish();
}

fn bench_market_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("mechanism/market_run");
    for &m in &[4usize, 16, 64] {
        let w = heterogeneous_rates(m, 1.0, 8.0, 32);
        let market = Market::new(
            SystemModel::NcpFe,
            0.2,
            w.iter().map(|&x| AgentSpec::truthful(x)).collect(),
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(m), &market, |b, market| {
            b.iter(|| black_box(market.run()))
        });
    }
    g.finish();
}

fn bench_strategyproof_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("mechanism/strategyproof_sweep");
    g.sample_size(20);
    let w = heterogeneous_rates(8, 1.0, 8.0, 33);
    g.bench_function("m8_full_grid", |b| {
        b.iter(|| {
            black_box(
                sweep_strategyproof(
                    SystemModel::NcpFe,
                    0.2,
                    &w,
                    3,
                    &dls_mechanism::validate::default_bid_factors(),
                    &dls_mechanism::validate::default_exec_factors(),
                )
                .unwrap(),
            )
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_compute_payments,
    bench_market_run,
    bench_strategyproof_sweep
);
criterion_main!(benches);
