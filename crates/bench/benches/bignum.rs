//! Bignum substrate benchmarks: multiplication straddling the Karatsuba
//! threshold, Knuth-D division, GCD, and modular exponentiation (the RSA
//! kernel) — the generic `pow_mod` against the Montgomery fixed-window
//! kernel it was rewritten around.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_num::{gcd, modmath, BigUint, ExpWindows, MontgomeryCtx};
use std::hint::black_box;

fn value(limbs: usize, seed: u32) -> BigUint {
    let mut v = Vec::with_capacity(limbs);
    let mut x = seed | 1;
    for i in 0..limbs {
        x = x.wrapping_mul(2654435761).wrapping_add(i as u32 | 1);
        v.push(x);
    }
    v[limbs - 1] |= 0x8000_0000; // full width
    BigUint::from_limbs_le(v)
}

fn bench_mul(c: &mut Criterion) {
    let mut g = c.benchmark_group("bignum/mul");
    for &limbs in &[8usize, 24, 48, 128, 512] {
        let a = value(limbs, 1);
        let b = value(limbs, 2);
        g.bench_with_input(BenchmarkId::from_parameter(limbs * 32), &(a, b), |bch, (a, b)| {
            bch.iter(|| black_box(a * b))
        });
    }
    g.finish();
}

fn bench_divrem(c: &mut Criterion) {
    let mut g = c.benchmark_group("bignum/divrem");
    for &(n, d) in &[(32usize, 16usize), (128, 64), (512, 256)] {
        let a = value(n, 3);
        let b = value(d, 4);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{}by{}", n * 32, d * 32)),
            &(a, b),
            |bch, (a, b)| bch.iter(|| black_box(a.divrem(b))),
        );
    }
    g.finish();
}

fn bench_gcd(c: &mut Criterion) {
    let mut g = c.benchmark_group("bignum/gcd");
    for &limbs in &[8usize, 32, 128] {
        let a = value(limbs, 5);
        let b = value(limbs, 6);
        g.bench_with_input(BenchmarkId::from_parameter(limbs * 32), &(a, b), |bch, (a, b)| {
            bch.iter(|| black_box(gcd(a, b)))
        });
    }
    g.finish();
}

fn bench_pow_mod(c: &mut Criterion) {
    let mut g = c.benchmark_group("bignum/pow_mod");
    g.sample_size(20);
    for &bits in &[384usize, 512, 1024] {
        let limbs = bits / 32;
        let base = value(limbs, 7);
        let exp = value(limbs, 8);
        let mut modulus = value(limbs, 9);
        modulus.set_bit(0, true); // odd
        g.bench_with_input(
            BenchmarkId::from_parameter(bits),
            &(base, exp, modulus),
            |bch, (b, e, m)| bch.iter(|| black_box(modmath::pow_mod(b, e, m))),
        );
    }
    g.finish();
}

fn bench_mont_pow(c: &mut Criterion) {
    // Same shape as bignum/pow_mod so the two groups compare directly:
    // full-width base and exponent under an odd modulus. Two variants per
    // size — `cold` builds the context per call (one-shot cost), `warm`
    // reuses a prebuilt context and window schedule (the per-key
    // amortized cost the crypto crate pays after keygen).
    let mut g = c.benchmark_group("bignum/mont_pow");
    g.sample_size(20);
    for &bits in &[512usize, 1024, 2048] {
        let limbs = bits / 32;
        let base = value(limbs, 7);
        let exp = value(limbs, 8);
        let mut modulus = value(limbs, 9);
        modulus.set_bit(0, true); // odd
        g.bench_with_input(
            BenchmarkId::new("cold", bits),
            &(base.clone(), exp.clone(), modulus.clone()),
            |bch, (b, e, m)| {
                bch.iter(|| {
                    let ctx = MontgomeryCtx::new(m).expect("odd modulus");
                    black_box(ctx.pow(b, e))
                })
            },
        );
        let ctx = MontgomeryCtx::new(&modulus).expect("odd modulus");
        let windows = ExpWindows::new(&exp);
        g.bench_with_input(
            BenchmarkId::new("warm", bits),
            &base,
            |bch, b| bch.iter(|| black_box(ctx.pow_windows(b, &windows))),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_mul,
    bench_divrem,
    bench_gcd,
    bench_pow_mod,
    bench_mont_pow
);
criterion_main!(benches);
