//! Benchmarks for the closed-form allocation algorithms (Algorithms 2.1 and
//! 2.2) — the per-processor O(m) kernel every participant runs in the
//! Allocating phase — and the exact-rational certification solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_bench::workloads::heterogeneous_rates;
use dls_dlt::{exact, optimal, BusParams, ALL_MODELS};
use std::hint::black_box;

fn bench_fractions(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocation/fractions");
    for &m in &[8usize, 64, 512, 4096] {
        let w = heterogeneous_rates(m, 1.0, 8.0, 42);
        let p = BusParams::new(0.2, w).unwrap();
        for model in ALL_MODELS {
            g.bench_with_input(
                BenchmarkId::new(model.tag(), m),
                &p,
                |b, p| b.iter(|| black_box(optimal::fractions(model, p))),
            );
        }
    }
    g.finish();
}

fn bench_reduced_market(c: &mut Criterion) {
    // The bonus term needs one reduced-market solve per agent: O(m) solves
    // of O(m) each — the dominant cost of payment computation.
    let mut g = c.benchmark_group("allocation/makespan_without_all");
    for &m in &[8usize, 64, 256] {
        let w = heterogeneous_rates(m, 1.0, 8.0, 43);
        let p = BusParams::new(0.2, w).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(m), &p, |b, p| {
            b.iter(|| {
                for i in 0..m {
                    black_box(optimal::makespan_without(
                        dls_dlt::SystemModel::NcpFe,
                        p,
                        i,
                    ));
                }
            })
        });
    }
    g.finish();
}

fn bench_exact(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocation/exact_rational");
    g.sample_size(20);
    for &m in &[4usize, 8, 16] {
        let w = heterogeneous_rates(m, 1.0, 8.0, 44);
        let ep = exact::ExactParams::from_f64(0.25, &w);
        g.bench_with_input(BenchmarkId::from_parameter(m), &ep, |b, ep| {
            b.iter(|| black_box(exact::fractions(dls_dlt::SystemModel::NcpFe, ep)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fractions, bench_reduced_market, bench_exact);
criterion_main!(benches);
