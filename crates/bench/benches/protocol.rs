//! Whole-protocol benchmarks: a full DLS-BL-NCP session (threads, crypto,
//! all five phases) across system sizes, and the deviant-detection path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_bench::workloads::heterogeneous_rates;
use dls_dlt::SystemModel;
use dls_protocol::config::{Behavior, ProcessorConfig, SessionConfig};
use dls_protocol::runtime::run_session;
use std::hint::black_box;

fn compliant_cfg(m: usize) -> SessionConfig {
    let w = heterogeneous_rates(m, 1.0, 4.0, 51);
    SessionConfig::builder(SystemModel::NcpFe, 0.1)
        .processors(w.iter().map(|&x| ProcessorConfig::new(x, Behavior::Compliant)))
        .seed(1)
        .blocks(2 * m)
        .build()
        .unwrap()
}

fn bench_full_session(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol/full_session");
    g.sample_size(10);
    for &m in &[2usize, 4, 8, 16] {
        let cfg = compliant_cfg(m);
        // Warm the key cache so the benchmark measures the protocol, not
        // one-time key generation.
        let _ = run_session(&cfg).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(m), &cfg, |b, cfg| {
            b.iter(|| black_box(run_session(cfg).unwrap()))
        });
    }
    g.finish();
}

fn bench_deviant_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol/deviant_session");
    g.sample_size(10);
    let w = heterogeneous_rates(4, 1.0, 4.0, 52);
    let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.1)
        .processors(w.iter().enumerate().map(|(i, &x)| {
            ProcessorConfig::new(
                x,
                if i == 1 {
                    Behavior::EquivocateBids { factor: 2.0 }
                } else {
                    Behavior::Compliant
                },
            )
        }))
        .seed(1)
        .blocks(8)
        .build()
        .unwrap();
    let _ = run_session(&cfg).unwrap();
    g.bench_function("equivocation_abort_m4", |b| {
        b.iter(|| black_box(run_session(&cfg).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_full_session, bench_deviant_detection);
criterion_main!(benches);
