//! Crypto substrate benchmarks: digesting, signing, verifying — the
//! per-message costs of the protocol's signature envelope.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dls_crypto::{rsa, sha256};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto/sha256");
    for &len in &[64usize, 1024, 65536] {
        let data = vec![0xa5u8; len];
        g.throughput(Throughput::Bytes(len as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &data, |b, d| {
            b.iter(|| black_box(sha256::digest(d)))
        });
    }
    g.finish();
}

fn bench_sign_verify(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto/rsa");
    g.sample_size(30);
    for &bits in &[rsa::MIN_MODULUS_BITS, rsa::DEFAULT_MODULUS_BITS] {
        let mut rng = StdRng::seed_from_u64(bits as u64);
        let (pk, sk) = rsa::generate(bits, &mut rng).unwrap();
        let msg = b"bid: P3 reports w = 2.25 units/load";
        let sig = sk.sign(msg);
        g.bench_with_input(BenchmarkId::new("sign", bits), &sk, |b, sk| {
            b.iter(|| black_box(sk.sign(msg)))
        });
        g.bench_with_input(BenchmarkId::new("verify", bits), &pk, |b, pk| {
            b.iter(|| black_box(pk.verify(msg, &sig)))
        });
    }
    g.finish();
}

fn bench_keygen(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto/keygen");
    g.sample_size(10);
    g.bench_function("384", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            black_box(rsa::generate(384, &mut rng).unwrap())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_sha256, bench_sign_verify, bench_keygen);
criterion_main!(benches);
