//! Benchmarks for the architecture extensions: linear-chain allocation and
//! the multi-installment executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dls_bench::workloads::heterogeneous_rates;
use dls_dlt::{linear, BusParams};
use dls_netsim::multiround::simulate_multiround;
use std::hint::black_box;

fn bench_linear(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions/linear_fractions");
    for &m in &[8usize, 64, 512, 4096] {
        let w = heterogeneous_rates(m, 1.0, 8.0, 61);
        let links = heterogeneous_rates(m - 1, 0.05, 0.5, 62);
        let p = linear::LinearParams::new(links, w).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(m), &p, |b, p| {
            b.iter(|| black_box(linear::fractions(p)))
        });
    }
    g.finish();
}

fn bench_chain_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions/chain_simulate");
    for &m in &[8usize, 64, 512] {
        let w = heterogeneous_rates(m, 1.0, 8.0, 63);
        let links = heterogeneous_rates(m - 1, 0.05, 0.5, 64);
        let p = linear::LinearParams::new(links, w).unwrap();
        let a = linear::fractions(&p);
        g.bench_with_input(BenchmarkId::from_parameter(m), &(p, a), |b, (p, a)| {
            b.iter(|| black_box(dls_netsim::linear::simulate_chain(p, a)))
        });
    }
    g.finish();
}

fn bench_multiround(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions/multiround");
    let w = heterogeneous_rates(32, 1.0, 6.0, 65);
    let p = BusParams::new(0.2, w).unwrap();
    for &r in &[1usize, 4, 16, 64] {
        g.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| black_box(simulate_multiround(&p, r)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_linear, bench_chain_sim, bench_multiround);
criterion_main!(benches);
