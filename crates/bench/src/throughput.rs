//! Auction-throughput sweep: the data source for `BENCH_throughput.json`.
//!
//! Two families of cells, both on the frozen
//! [`crate::workloads::quantized_rates`] workloads (splitmix64, dyadic
//! rates — reproducible entry-for-entry from the config alone):
//!
//! * **auctions/sec** — full market clearings (makespan + DLS-BL payments)
//!   through [`BatchAuctioneer`] at batch sizes × market sizes; each batch
//!   is fanned across `std::thread::scope` workers, one reused
//!   [`dls_mechanism::AuctionEngine`] per worker.
//! * **bid-updates/sec** — single-bid re-quotes (submit + makespan read)
//!   replaying the *same* frozen update schedule down three paths:
//!   `"incremental"`, the engine's chain-splice hot path
//!   ([`dls_mechanism::AuctionEngine::submit_bid`]); `"engine-rebuild"`,
//!   the engine's in-place full-rebuild fallback
//!   ([`dls_mechanism::AuctionEngine::submit_bid_rebuild`], same retained
//!   arenas, no allocation); and `"full-recompute"`, the pre-engine
//!   one-shot pipeline a caller without the engine uses for every
//!   re-quote — fresh [`BusParams`] + [`dls_dlt::optimal::optimal_makespan`]
//!   per update, re-validating and re-allocating the whole market.
//!
//! The incremental/engine-rebuild ratio isolates the splice: update
//! positions are uniform over `0..m`, so the expected splice length is
//! `m/2` links against the rebuild's `m`, with two divisions instead of
//! `m` and no suffix sums (quote evaluation never needs them). The
//! incremental/full-recompute ratio is the serving-layer headline: what
//! the cached-state engine saves over re-entering the one-shot solver on
//! every bid.
//!
//! This module is covered by the workspace no-panic lint gate: measurement
//! never unwraps — worker and engine errors propagate as
//! [`EngineError`].

use std::time::Instant;

use dls_dlt::{optimal, BusParams, SystemModel, ALL_MODELS};
use dls_mechanism::{AuctionEngine, BatchAuctioneer, BatchWorkload, EngineError};

use crate::payments::model_slug;
use crate::workloads::{quantized_rates, splitmix64};

/// Schema identifier written into the JSON header; bump when the layout of
/// the file changes incompatibly.
pub const SCHEMA: &str = "dls-bench-throughput-v1";

/// Everything that determines a throughput sweep; the output is
/// reproducible from the config alone (wall-clock numbers aside).
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// splitmix64 seed for rates and update schedules.
    pub seed: u64,
    /// Bus communication rate `z` (dyadic).
    pub z: f64,
    /// Lower bound of the log-uniform rate range.
    pub lo: f64,
    /// Upper bound of the log-uniform rate range.
    pub hi: f64,
    /// Rates are quantized to multiples of `1/denom`.
    pub denom: u32,
    /// Market sizes for the auctions/sec cells.
    pub auction_sizes: Vec<usize>,
    /// Batch sizes for the auctions/sec cells.
    pub batch_sizes: Vec<usize>,
    /// Market sizes for the bid-updates/sec cells.
    pub update_sizes: Vec<usize>,
    /// Bid updates timed per measurement block (amortizes timer overhead).
    pub updates_per_block: usize,
    /// Worker threads for the batched path.
    pub threads: usize,
    /// Per-cell time budget in nanoseconds (min-of-reps, at least two).
    pub target_ns_per_cell: u128,
}

impl ThroughputConfig {
    /// The full sweep behind the committed `BENCH_throughput.json`.
    pub fn full() -> Self {
        ThroughputConfig {
            seed: 42,
            z: 0.0625,
            lo: 1.0,
            hi: 8.0,
            denom: 64,
            auction_sizes: vec![16, 256, 1024, 4096],
            batch_sizes: vec![1, 8, 64],
            update_sizes: vec![16, 256, 1024, 4096],
            updates_per_block: 256,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            target_ns_per_cell: 250_000_000,
        }
    }

    /// A seconds-scale subset used by the tier-1 schema/regression test
    /// (keeps `m = 1024` so the incremental-vs-rebuild comparison stays
    /// meaningful at test time).
    pub fn quick() -> Self {
        ThroughputConfig {
            auction_sizes: vec![16, 64],
            batch_sizes: vec![1, 8],
            update_sizes: vec![16, 1024],
            updates_per_block: 64,
            target_ns_per_cell: 2_000_000,
            ..ThroughputConfig::full()
        }
    }
}

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct ThroughputEntry {
    /// Model slug: `"cp"`, `"ncp-fe"`, or `"ncp-nfe"`.
    pub model: &'static str,
    /// Market size.
    pub m: usize,
    /// Cell family: `"auction"` or `"bid-update"`.
    pub kind: &'static str,
    /// Path slug: `"batched"` for auctions; `"incremental"` (chain
    /// splice), `"engine-rebuild"` (in-place fallback) or
    /// `"full-recompute"` (one-shot solve per update) for bid updates.
    pub path: &'static str,
    /// Batch size (markets per [`BatchAuctioneer::run`] call); `1` for
    /// bid-update cells.
    pub batch: usize,
    /// Best-of-reps wall-clock per operation (one auction / one update),
    /// nanoseconds. Fractional: the timed block/batch is divided by the
    /// operation count in `f64`, so sub-nanosecond resolution survives at
    /// small `m` instead of truncating.
    pub ns_per_op: f64,
    /// Derived rate, operations per second (rounded to the nearest
    /// integer).
    pub ops_per_sec: u128,
}

/// Times `op` with a min-of-reps loop: at least two repetitions, stopping
/// once `target_ns` total has elapsed or 64 reps have run.
fn time_ns<R>(target_ns: u128, mut op: impl FnMut() -> R) -> (u128, R) {
    let mut best = u128::MAX;
    let mut reps: u32 = 0;
    let mut total: u128 = 0;
    let mut last;
    loop {
        let t0 = Instant::now();
        last = op();
        let dt = t0.elapsed().as_nanos();
        best = best.min(dt);
        total += dt;
        reps += 1;
        if reps >= 2 && (total >= target_ns || reps >= 64) {
            return (best, last);
        }
    }
}

fn ops_per_sec(ops: u128, ns: u128) -> u128 {
    if ns == 0 {
        return 0;
    }
    // Round rather than truncate: derived from the full block time in f64,
    // which is exact well past our nanosecond counts (< 2^53).
    (ops as f64 * 1e9 / ns as f64).round() as u128
}

/// The observed-rate vector for a bid vector: every seventh agent slacks by
/// one quantum (same pattern as the payments sweep — keeps rates dyadic
/// while exercising the mixed-schedule shift).
fn slacked(bids: &[f64], denom: u32) -> Vec<f64> {
    bids.iter()
        .enumerate()
        .map(|(i, &w)| {
            if i % 7 == 3 {
                w + 1.0 / denom as f64
            } else {
                w
            }
        })
        .collect()
}

/// The batch of `markets` independent `m`-processor markets for one
/// auctions/sec cell; market `k` draws its rates from seed `seed + k`.
pub fn auction_workload(
    cfg: &ThroughputConfig,
    model: SystemModel,
    m: usize,
    markets: usize,
) -> Result<BatchWorkload, EngineError> {
    let mut work = BatchWorkload::new(model, cfg.z, m)?;
    for k in 0..markets {
        let seed = cfg.seed.wrapping_add(k as u64);
        let bids = quantized_rates(m, cfg.lo, cfg.hi, seed, cfg.denom);
        let observed = slacked(&bids, cfg.denom);
        work.push_market(&bids, &observed)?;
    }
    Ok(work)
}

/// The frozen `(position, new_rate)` schedule replayed by both bid-update
/// paths: positions from the splitmix64 stream, rates from the quantized
/// generator (always valid bids).
pub fn update_schedule(cfg: &ThroughputConfig, m: usize) -> Vec<(usize, f64)> {
    let rates = quantized_rates(
        cfg.updates_per_block,
        cfg.lo,
        cfg.hi,
        cfg.seed.wrapping_add(0x5eed),
        cfg.denom,
    );
    let mut state = cfg.seed.wrapping_add(0xb1d5);
    rates
        .iter()
        .map(|&r| ((splitmix64(&mut state) as usize) % m, r))
        .collect()
}

/// Runs the whole sweep, emitting progress on stderr.
pub fn run_sweep(cfg: &ThroughputConfig) -> Result<Vec<ThroughputEntry>, EngineError> {
    let mut entries = Vec::new();
    let auctioneer = BatchAuctioneer::new(cfg.threads);
    for &model in &ALL_MODELS {
        let slug = model_slug(model);

        for &m in &cfg.auction_sizes {
            for &batch in &cfg.batch_sizes {
                if batch == 0 {
                    continue;
                }
                let work = auction_workload(cfg, model, m, batch)?;
                let (ns_batch, last) =
                    time_ns(cfg.target_ns_per_cell, || auctioneer.run(&work));
                last?;
                let ns = ns_batch as f64 / batch as f64;
                let ops = ops_per_sec(batch as u128, ns_batch);
                eprintln!(
                    "{slug:8} m={m:5} auction    batch={batch:3} {ns:>14.1} ns/op  {ops:>9} ops/s"
                );
                entries.push(ThroughputEntry {
                    model: slug,
                    m,
                    kind: "auction",
                    path: "batched",
                    batch,
                    ns_per_op: ns,
                    ops_per_sec: ops,
                });
            }
        }

        for &m in &cfg.update_sizes {
            let bids = quantized_rates(m, cfg.lo, cfg.hi, cfg.seed, cfg.denom);
            let schedule = update_schedule(cfg, m);
            let block = schedule.len() as u128;
            if block == 0 {
                continue;
            }
            for path in ["incremental", "engine-rebuild", "full-recompute"] {
                let mut engine = AuctionEngine::new(model, cfg.z, bids.clone())?;
                let mut bids_now = bids.clone();
                let (ns_block, last) = time_ns(cfg.target_ns_per_cell, || {
                    let mut acc = 0.0;
                    for &(i, r) in &schedule {
                        match path {
                            "engine-rebuild" => {
                                engine.submit_bid_rebuild(i, r)?;
                                acc += engine.optimal_makespan();
                            }
                            "full-recompute" => {
                                // The pre-engine one-shot pipeline: mutate
                                // the bid vector, rebuild the market from
                                // scratch, re-solve.
                                if let Some(slot) = bids_now.get_mut(i) {
                                    *slot = r;
                                }
                                let params = BusParams::new(cfg.z, bids_now.clone())?;
                                acc += optimal::optimal_makespan(model, &params);
                            }
                            _ => {
                                engine.submit_bid(i, r)?;
                                acc += engine.optimal_makespan();
                            }
                        }
                    }
                    Ok::<f64, EngineError>(std::hint::black_box(acc))
                });
                last?;
                let ns = ns_block as f64 / block as f64;
                let ops = ops_per_sec(block, ns_block);
                eprintln!(
                    "{slug:8} m={m:5} bid-update {path:<14} {ns:>14.1} ns/op  {ops:>9} ops/s"
                );
                entries.push(ThroughputEntry {
                    model: slug,
                    m,
                    kind: "bid-update",
                    path,
                    batch: 1,
                    ns_per_op: ns,
                    ops_per_sec: ops,
                });
            }
        }
    }
    Ok(entries)
}

/// Speedup of the incremental bid-update path over the from-scratch
/// one-shot `"full-recompute"` path at size `m` for `model`; `None` when
/// either entry is missing.
pub fn update_speedup(entries: &[ThroughputEntry], model: &str, m: usize) -> Option<f64> {
    let find = |path: &str| {
        entries
            .iter()
            .find(|e| e.model == model && e.m == m && e.kind == "bid-update" && e.path == path)
            .map(|e| e.ns_per_op)
    };
    let (inc, full) = (find("incremental")?, find("full-recompute")?);
    if inc <= 0.0 {
        return None;
    }
    Some(full / inc)
}

/// Renders the sweep as the committed `BENCH_throughput.json` document.
/// Hand-rolled writer (the workspace deliberately has no JSON dependency);
/// all dynamic values are integers and short slugs, so escaping is not
/// needed.
pub fn render_json(cfg: &ThroughputConfig, entries: &[ThroughputEntry]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!(
        "  \"config\": {{\"seed\": {}, \"z\": {:?}, \"lo\": {:?}, \"hi\": {:?}, \"denom\": {}, \"updates_per_block\": {}, \"threads\": {}}},\n",
        cfg.seed, cfg.z, cfg.lo, cfg.hi, cfg.denom, cfg.updates_per_block, cfg.threads
    ));
    s.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"model\": \"{}\", \"m\": {}, \"kind\": \"{}\", \"path\": \"{}\", \"batch\": {}, \"ns_per_op\": {:?}, \"ops_per_sec\": {}}}{sep}\n",
            e.model, e.m, e.kind, e.path, e.batch, e.ns_per_op, e.ops_per_sec
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_in_range() {
        let cfg = ThroughputConfig::quick();
        let s1 = update_schedule(&cfg, 1024);
        let s2 = update_schedule(&cfg, 1024);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), cfg.updates_per_block);
        for &(i, r) in &s1 {
            assert!(i < 1024);
            assert!(r.is_finite() && r > 0.0);
        }
    }

    #[test]
    fn auction_workload_varies_per_market() {
        let cfg = ThroughputConfig::quick();
        let work = auction_workload(&cfg, SystemModel::Cp, 16, 3).unwrap();
        assert_eq!(work.markets(), 3);
        assert_ne!(work.market_bids(0), work.market_bids(1));
    }

    #[test]
    fn render_json_has_schema_and_balanced_braces() {
        let cfg = ThroughputConfig::quick();
        let entries = vec![ThroughputEntry {
            model: "cp",
            m: 16,
            kind: "auction",
            path: "batched",
            batch: 8,
            ns_per_op: 1200.5,
            ops_per_sec: 833_333,
        }];
        let json = render_json(&cfg, &entries);
        assert!(json.contains("\"schema\": \"dls-bench-throughput-v1\""));
        assert!(json.contains("\"kind\": \"auction\""));
        // Fractional per-op figures survive into the JSON (no integer
        // truncation of small per-op times).
        assert!(json.contains("\"ns_per_op\": 1200.5"));
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
        assert_eq!(opens, 3, "root + config + one entry");
    }

    #[test]
    fn update_speedup_reads_matching_entries() {
        let mk = |path: &'static str, ns: f64| ThroughputEntry {
            model: "cp",
            m: 1024,
            kind: "bid-update",
            path,
            batch: 1,
            ns_per_op: ns,
            ops_per_sec: 0,
        };
        let entries = vec![mk("incremental", 100.0), mk("full-recompute", 900.0)];
        assert_eq!(update_speedup(&entries, "cp", 1024), Some(9.0));
        assert_eq!(update_speedup(&entries, "cp", 16), None);
    }
}
