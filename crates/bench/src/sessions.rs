//! Session-throughput sweep: the data source for `BENCH_sessions.json`.
//!
//! One cell = (market size `m`) × (batch of independent sessions) × path:
//!
//! * **`"threaded"`** — the oracle runtime
//!   ([`dls_protocol::runtime::run_session`]): m+1 OS threads per session
//!   parked on condvar phase barriers, real `thread::sleep` for injected
//!   delays, run sequentially over the batch.
//! * **`"pooled"`** — the event-driven executor
//!   ([`dls_protocol::executor::run_session_pooled_with`]): state-machine
//!   processors stepped by one event loop per worker, sessions sharded by
//!   index, virtual-time barriers and delays.
//!
//! Both paths run the *same* frozen batch: a fixed market (rates from
//! [`crate::workloads::quantized_rates`] at a fixed seed) with session `k`
//! playing scenario `k mod 8` from a chaos cycle (compliant, misreport,
//! slack, crash, delay, garbage, corrupt payments, mute) — so the sweep
//! exercises verdicts, fines and degraded re-runs, not just the happy
//! path, and the executor's deterministic signature/dataset caches warm
//! exactly as they would serving steady repeat traffic. The differential
//! suite (`tests/tests/executor_differential.rs`) proves the two paths
//! produce bit-identical `SessionOutcome`s, so the cells compare equal
//! work.
//!
//! Since schema v2 each entry also carries a `verify` column — the
//! session's crypto profile:
//!
//! * **`"amortized"`** — per-key Montgomery contexts plus the round-shared
//!   verification cache: each distinct signed envelope costs one modexp,
//!   every other receiver hits the memoized verdict.
//! * **`"per-receiver"`** — the pre-Montgomery baseline: every receiver of
//!   a broadcast re-verifies via plain `pow_mod`, so the bidding phase
//!   alone costs m·(m−1) modexps. Measured on the pooled path only (the
//!   differential suite proves the profile is outcome-neutral, so the
//!   columns compare identical work).
//!
//! Honest-measurement notes, reflected in the JSON:
//!
//! * min-of-reps timing (warm steady state); big threaded cells and the
//!   per-receiver baseline run fewer reps;
//! * the threaded path times a prefix sample of the batch
//!   (`sessions_timed`, always a whole number of scenario cycles when
//!   ≥ 8) because 1024 threaded sessions at m = 64 cost tens of minutes;
//!   per-session cost is batch-independent on the sequential path;
//! * both paths benefit from the process-wide deterministic key and
//!   dataset caches; the pooled path additionally reuses signatures and
//!   shares per-round broadcast verification.
//!
//! Covered by the workspace no-panic lint gate: measurement never
//! unwraps — session errors surface as the harness error string.

use std::time::Instant;

use dls_dlt::SystemModel;
use dls_protocol::config::{Behavior, CryptoProfile, ProcessorConfig, SessionConfig};
use dls_protocol::executor::run_session_pooled_with;
use dls_protocol::referee::Phase;
use dls_protocol::runtime::run_session;
use dls_protocol::FaultPlan;

use crate::workloads::quantized_rates;

/// Schema identifier written into the JSON header; bump when the layout of
/// the file changes incompatibly.
pub const SCHEMA: &str = "dls-bench-sessions-v2";

/// Length of the frozen scenario cycle session `k` draws from
/// (`k mod SCENARIO_CYCLE`).
pub const SCENARIO_CYCLE: usize = 8;

/// Everything that determines a sessions sweep; the workload is
/// reproducible from the config alone (wall-clock numbers aside).
#[derive(Debug, Clone)]
pub struct SessionsConfig {
    /// Seed for the market rates and all session key material.
    pub seed: u64,
    /// Bus communication rate `z` (dyadic).
    pub z: f64,
    /// Lower bound of the log-uniform rate range.
    pub lo: f64,
    /// Upper bound of the log-uniform rate range.
    pub hi: f64,
    /// Rates are quantized to multiples of `1/denom`.
    pub denom: u32,
    /// Market sizes.
    pub m_sizes: Vec<usize>,
    /// Sessions per batch.
    pub batch_sizes: Vec<usize>,
    /// Worker threads for the pooled path.
    pub workers: usize,
    /// Blocks per session load.
    pub blocks: usize,
    /// RSA modulus width for all session key material. The full sweep
    /// runs 1024-bit keys so verification cost is realistic relative to
    /// session overhead; the quick subset keeps the 384-bit minimum so
    /// the debug-build tier-1 test stays fast.
    pub key_bits: usize,
    /// At most this many threaded sessions are timed per cell (prefix of
    /// the batch; the sequential path's per-session cost is
    /// batch-independent).
    pub threaded_sample_cap: usize,
    /// Per-cell time budget in nanoseconds for the min-of-reps loop.
    pub target_ns_per_cell: u128,
}

impl SessionsConfig {
    /// The full sweep behind the committed `BENCH_sessions.json`.
    pub fn full() -> Self {
        SessionsConfig {
            seed: 42,
            z: 0.0625,
            lo: 1.0,
            hi: 8.0,
            denom: 64,
            m_sizes: vec![4, 16, 64],
            batch_sizes: vec![1, 64, 1024],
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            blocks: 60,
            key_bits: 1024,
            threaded_sample_cap: 16,
            target_ns_per_cell: 1_000_000_000,
        }
    }

    /// A seconds-scale subset used by the tier-1 schema/sanity test.
    pub fn quick() -> Self {
        SessionsConfig {
            m_sizes: vec![4, 16],
            batch_sizes: vec![1, 8],
            key_bits: dls_crypto::rsa::MIN_MODULUS_BITS,
            threaded_sample_cap: 2,
            target_ns_per_cell: 50_000_000,
            ..SessionsConfig::full()
        }
    }
}

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct SessionsEntry {
    /// Model slug (the sweep runs NCP-FE, the paper's primary model).
    pub model: &'static str,
    /// Market size.
    pub m: usize,
    /// Sessions per batch.
    pub batch: usize,
    /// `"threaded"` or `"pooled"`.
    pub path: &'static str,
    /// Crypto profile the cell ran under: `"amortized"` (Montgomery
    /// contexts + round-shared verification cache) or `"per-receiver"`
    /// (plain `pow_mod`, re-verified by every receiver).
    pub verify: &'static str,
    /// Sessions actually executed in the timed block (the full batch on
    /// the pooled path; a prefix sample on the threaded path).
    pub sessions_timed: usize,
    /// Best-of-reps wall-clock per session, nanoseconds (fractional).
    pub ns_per_session: f64,
    /// Derived rate, sessions per second (rounded).
    pub sessions_per_sec: u128,
}

/// The frozen chaos cycle: which deviation (if any) session `k` injects.
/// Everything is builder-valid at the default 5 s phase budget and any
/// `m ≥ 4`; index arithmetic keeps the victim/faulty parties distinct from
/// the originator so the sweep exercises both verdict-clean rounds and
/// degraded re-runs.
fn scenario_processors(m: usize, rates: &[f64], k: usize) -> Vec<ProcessorConfig> {
    let mut ps: Vec<ProcessorConfig> = rates
        .iter()
        .map(|&w| ProcessorConfig::new(w, Behavior::Compliant))
        .collect();
    let last = m.saturating_sub(1);
    let apply = |p: &mut ProcessorConfig, b: Behavior| p.behavior = b;
    match k % SCENARIO_CYCLE {
        1 => {
            if let Some(p) = ps.get_mut(1) {
                apply(p, Behavior::Misreport { factor: 1.25 });
            }
        }
        2 => {
            if let Some(p) = ps.get_mut(2) {
                apply(p, Behavior::Slack { factor: 1.5 });
            }
        }
        3 => {
            if let Some(p) = ps.get_mut(last) {
                p.fault = FaultPlan::CrashAt(Phase::Processing);
            }
        }
        4 => {
            if let Some(p) = ps.get_mut(1) {
                p.fault = FaultPlan::DelayAt(Phase::Bidding, 2);
            }
        }
        5 => {
            if let Some(p) = ps.get_mut(2) {
                p.fault = FaultPlan::GarbageAt(Phase::Payments);
            }
        }
        6 => {
            if let Some(p) = ps.get_mut(1) {
                apply(p, Behavior::CorruptPayments { target: 0, factor: 2.0 });
            }
        }
        7 => {
            if let Some(p) = ps.get_mut(last) {
                p.fault = FaultPlan::MuteAt(Phase::Allocating);
            }
        }
        _ => {}
    }
    ps
}

/// The frozen batch for one cell: `batch` sessions over the fixed
/// `m`-market, session `k` playing scenario `k mod 8`, all verifying
/// under `profile`.
pub fn session_batch(
    cfg: &SessionsConfig,
    m: usize,
    batch: usize,
    profile: CryptoProfile,
) -> Result<Vec<SessionConfig>, String> {
    let rates = quantized_rates(m, cfg.lo, cfg.hi, cfg.seed, cfg.denom);
    (0..batch)
        .map(|k| {
            SessionConfig::builder(SystemModel::NcpFe, cfg.z)
                .processors(scenario_processors(m, &rates, k))
                .blocks(cfg.blocks)
                .seed(cfg.seed)
                .key_bits(cfg.key_bits)
                .crypto_profile(profile)
                .build()
                .map_err(|e| format!("scenario {k} for m={m} failed to build: {e}"))
        })
        .collect()
}

/// Min-of-reps timing with explicit bounds: at least `min_reps`, at most
/// `max_reps`, stopping once `target_ns` total has elapsed.
fn time_ns_bounded<R>(
    target_ns: u128,
    min_reps: u32,
    max_reps: u32,
    mut op: impl FnMut() -> R,
) -> (u128, R) {
    let mut best = u128::MAX;
    let mut reps: u32 = 0;
    let mut total: u128 = 0;
    let mut last;
    loop {
        let t0 = Instant::now();
        last = op();
        let dt = t0.elapsed().as_nanos();
        best = best.min(dt);
        total += dt;
        reps += 1;
        if reps >= min_reps && (total >= target_ns || reps >= max_reps) {
            return (best, last);
        }
    }
}

fn sessions_per_sec(sessions: u128, ns: u128) -> u128 {
    if ns == 0 {
        return 0;
    }
    (sessions as f64 * 1e9 / ns as f64).round() as u128
}

/// Runs the whole sweep, emitting progress on stderr.
pub fn run_sweep(cfg: &SessionsConfig) -> Result<Vec<SessionsEntry>, String> {
    let mut entries = Vec::new();
    // Warm the process-wide crypto caches with one session per market
    // size before timing; min-of-reps would hide the one-time keygen
    // anyway, but paying it outside the timed region keeps every rep of
    // the first cell comparable to the last.
    let mut warmups = Vec::new();
    for &m in &cfg.m_sizes {
        warmups.extend(session_batch(cfg, m, 1, CryptoProfile::Amortized)?);
    }
    crate::workloads::warm_session_caches(&warmups, 1)?;
    for &m in &cfg.m_sizes {
        for &batch in &cfg.batch_sizes {
            if batch == 0 {
                continue;
            }
            let cfgs = session_batch(cfg, m, batch, CryptoProfile::Amortized)?;

            // Pooled path, amortized verification: the whole batch
            // through the worker pool.
            let (ns_block, last) = time_ns_bounded(cfg.target_ns_per_cell, 2, 64, || {
                for r in run_session_pooled_with(&cfgs, cfg.workers) {
                    r.map_err(|e| format!("pooled session failed: {e}"))?;
                }
                Ok::<(), String>(())
            });
            last?;
            let ns = ns_block as f64 / batch as f64;
            let ops = sessions_per_sec(batch as u128, ns_block);
            eprintln!("ncp-fe   m={m:4} batch={batch:5} pooled   amortized    {ns:>14.1} ns/session  {ops:>8} sessions/s");
            entries.push(SessionsEntry {
                model: "ncp-fe",
                m,
                batch,
                path: "pooled",
                verify: "amortized",
                sessions_timed: batch,
                ns_per_session: ns,
                sessions_per_sec: ops,
            });

            // Pooled path, per-receiver naive verification: the same
            // batch with every broadcast re-verified by each receiver via
            // plain pow_mod. Roughly m× the verification work, so fewer
            // reps; outcomes are bit-identical (differential-tested), the
            // cell measures cost only.
            let naive_cfgs = session_batch(cfg, m, batch, CryptoProfile::PerReceiverNaive)?;
            let (ns_block, last) = time_ns_bounded(cfg.target_ns_per_cell, 1, 8, || {
                for r in run_session_pooled_with(&naive_cfgs, cfg.workers) {
                    r.map_err(|e| format!("pooled naive session failed: {e}"))?;
                }
                Ok::<(), String>(())
            });
            last?;
            let ns = ns_block as f64 / batch as f64;
            let ops = sessions_per_sec(batch as u128, ns_block);
            eprintln!("ncp-fe   m={m:4} batch={batch:5} pooled   per-receiver {ns:>14.1} ns/session  {ops:>8} sessions/s");
            entries.push(SessionsEntry {
                model: "ncp-fe",
                m,
                batch,
                path: "pooled",
                verify: "per-receiver",
                sessions_timed: batch,
                ns_per_session: ns,
                sessions_per_sec: ops,
            });

            // Threaded path: a prefix sample, sequentially (per-session
            // cost is batch-independent on this path). Single rep once the
            // sample is thread-pool-scale work.
            let sample = batch.min(cfg.threaded_sample_cap.max(1));
            let sampled = cfgs.get(..sample).unwrap_or(&cfgs);
            let big = m * sample >= 256;
            let max_reps = if big { 1 } else { 16 };
            let (ns_block, last) = time_ns_bounded(cfg.target_ns_per_cell, 1, max_reps, || {
                for c in sampled {
                    run_session(c).map_err(|e| format!("threaded session failed: {e}"))?;
                }
                Ok::<(), String>(())
            });
            last?;
            let ns = ns_block as f64 / sample as f64;
            let ops = sessions_per_sec(sample as u128, ns_block);
            eprintln!("ncp-fe   m={m:4} batch={batch:5} threaded amortized    {ns:>14.1} ns/session  {ops:>8} sessions/s  (sample={sample})");
            entries.push(SessionsEntry {
                model: "ncp-fe",
                m,
                batch,
                path: "threaded",
                verify: "amortized",
                sessions_timed: sample,
                ns_per_session: ns,
                sessions_per_sec: ops,
            });
        }
    }
    Ok(entries)
}

/// Speedup of the pooled path over the threaded path at `(m, batch)`,
/// both under amortized verification; `None` when either entry is
/// missing.
pub fn pooled_speedup(entries: &[SessionsEntry], m: usize, batch: usize) -> Option<f64> {
    let find = |path: &str| {
        entries
            .iter()
            .find(|e| e.m == m && e.batch == batch && e.path == path && e.verify == "amortized")
            .map(|e| e.ns_per_session)
    };
    let (pooled, threaded) = (find("pooled")?, find("threaded")?);
    if pooled <= 0.0 {
        return None;
    }
    Some(threaded / pooled)
}

/// Speedup of amortized verification over the per-receiver baseline at
/// `(m, batch)` on the pooled path — the headline number for the
/// Montgomery + verification-cache work; `None` when either entry is
/// missing.
pub fn crypto_speedup(entries: &[SessionsEntry], m: usize, batch: usize) -> Option<f64> {
    let find = |verify: &str| {
        entries
            .iter()
            .find(|e| e.m == m && e.batch == batch && e.path == "pooled" && e.verify == verify)
            .map(|e| e.ns_per_session)
    };
    let (amortized, naive) = (find("amortized")?, find("per-receiver")?);
    if amortized <= 0.0 {
        return None;
    }
    Some(naive / amortized)
}

/// Renders the sweep as the committed `BENCH_sessions.json` document.
/// Hand-rolled writer (the workspace deliberately has no JSON dependency);
/// all dynamic values are numbers and short slugs, so escaping is not
/// needed.
pub fn render_json(cfg: &SessionsConfig, entries: &[SessionsEntry]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!(
        "  \"config\": {{\"seed\": {}, \"z\": {:?}, \"lo\": {:?}, \"hi\": {:?}, \"denom\": {}, \"blocks\": {}, \"workers\": {}, \"key_bits\": {}, \"scenario_cycle\": {}, \"threaded_sample_cap\": {}}},\n",
        cfg.seed,
        cfg.z,
        cfg.lo,
        cfg.hi,
        cfg.denom,
        cfg.blocks,
        cfg.workers,
        cfg.key_bits,
        SCENARIO_CYCLE,
        cfg.threaded_sample_cap
    ));
    s.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"model\": \"{}\", \"m\": {}, \"batch\": {}, \"path\": \"{}\", \"verify\": \"{}\", \"sessions_timed\": {}, \"ns_per_session\": {:?}, \"sessions_per_sec\": {}}}{sep}\n",
            e.model, e.m, e.batch, e.path, e.verify, e.sessions_timed, e.ns_per_session, e.sessions_per_sec
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic_and_cycle_scenarios() {
        let cfg = SessionsConfig::quick();
        let a = session_batch(&cfg, 4, 10, CryptoProfile::Amortized).unwrap();
        let b = session_batch(&cfg, 4, 10, CryptoProfile::Amortized).unwrap();
        assert_eq!(a.len(), 10);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.processors, y.processors);
            assert_eq!(x.seed, y.seed);
        }
        // Session 8 replays scenario 0 (all compliant, no faults).
        assert_eq!(a[8].processors, a[0].processors);
        // Scenario 3 injects a crash; scenario 0 does not.
        assert_ne!(a[3].processors, a[0].processors);
    }

    #[test]
    fn every_scenario_builds_at_m4_and_m64() {
        let cfg = SessionsConfig::quick();
        for m in [4usize, 64] {
            for profile in [CryptoProfile::Amortized, CryptoProfile::PerReceiverNaive] {
                let batch = session_batch(&cfg, m, SCENARIO_CYCLE, profile).unwrap();
                assert_eq!(batch.len(), SCENARIO_CYCLE);
                assert!(batch.iter().all(|c| c.crypto_profile == profile));
            }
        }
    }

    #[test]
    fn render_json_has_schema_and_balanced_braces() {
        let cfg = SessionsConfig::quick();
        let entries = vec![SessionsEntry {
            model: "ncp-fe",
            m: 16,
            batch: 64,
            path: "pooled",
            verify: "amortized",
            sessions_timed: 64,
            ns_per_session: 812_500.25,
            sessions_per_sec: 1231,
        }];
        let json = render_json(&cfg, &entries);
        assert!(json.contains("\"schema\": \"dls-bench-sessions-v2\""));
        assert!(json.contains("\"path\": \"pooled\""));
        assert!(json.contains("\"verify\": \"amortized\""));
        assert!(json.contains("\"ns_per_session\": 812500.25"));
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
        assert_eq!(opens, 3, "root + config + one entry");
    }

    #[test]
    fn pooled_speedup_reads_matching_entries() {
        let mk = |path: &'static str, verify: &'static str, ns: f64| SessionsEntry {
            model: "ncp-fe",
            m: 16,
            batch: 1024,
            path,
            verify,
            sessions_timed: 16,
            ns_per_session: ns,
            sessions_per_sec: 0,
        };
        let entries = vec![
            mk("pooled", "amortized", 100.0),
            mk("pooled", "per-receiver", 700.0),
            mk("threaded", "amortized", 1500.0),
        ];
        assert_eq!(pooled_speedup(&entries, 16, 1024), Some(15.0));
        assert_eq!(pooled_speedup(&entries, 4, 1024), None);
        assert_eq!(crypto_speedup(&entries, 16, 1024), Some(7.0));
        assert_eq!(crypto_speedup(&entries, 4, 1024), None);
    }
}
