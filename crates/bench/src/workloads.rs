//! Deterministic workload generators shared by benches and the experiment
//! harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Heterogeneous processor rates: `m` rates log-uniform in `[lo, hi)`,
/// deterministic in `seed`.
pub fn heterogeneous_rates(m: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let u: f64 = rng.gen();
            lo * (hi / lo).powf(u)
        })
        .collect()
}

/// The fixed 5-processor scenario used to regenerate Figures 1-3.
pub fn figure_scenario() -> (f64, Vec<f64>) {
    (0.2, vec![1.0, 1.5, 2.0, 2.5, 3.0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_in_range_and_deterministic() {
        let a = heterogeneous_rates(32, 1.0, 8.0, 9);
        let b = heterogeneous_rates(32, 1.0, 8.0, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|&w| (1.0..8.0).contains(&w)));
    }
}
