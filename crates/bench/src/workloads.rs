//! Deterministic workload generators shared by benches and the experiment
//! harness.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Heterogeneous processor rates: `m` rates log-uniform in `[lo, hi)`,
/// deterministic in `seed`.
pub fn heterogeneous_rates(m: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..m)
        .map(|_| {
            let u: f64 = rng.gen();
            lo * (hi / lo).powf(u)
        })
        .collect()
}

/// The fixed 5-processor scenario used to regenerate Figures 1-3.
pub fn figure_scenario() -> (f64, Vec<f64>) {
    (0.2, vec![1.0, 1.5, 2.0, 2.5, 3.0])
}

/// Heterogeneous rates quantized to multiples of `1/denom`, log-uniform in
/// `[lo, hi)` like [`heterogeneous_rates`] but driven by an in-crate
/// splitmix64 generator instead of `rand`.
///
/// Two reasons for the independent generator: exact pipelines want dyadic
/// rates (`k/denom` with `denom` a power of two converts to [`Rational`]
/// without denominator blow-up), and `rand`'s `StdRng` is documented as
/// unstable across versions — a benchmark workload that silently changes
/// when a dependency bumps would invalidate every recorded baseline. The
/// splitmix64 sequence below is frozen by the unit tests.
///
/// [`Rational`]: dls_num::Rational
pub fn quantized_rates(m: usize, lo: f64, hi: f64, seed: u64, denom: u32) -> Vec<f64> {
    assert!(denom > 0, "denominator must be positive");
    let mut state = seed;
    (0..m)
        .map(|_| {
            let u = splitmix64(&mut state) as f64 / (u64::MAX as f64 + 1.0);
            let w = lo * (hi / lo).powf(u);
            ((w * denom as f64).round()).max(1.0) / denom as f64
        })
        .collect()
}

/// Warms the process-wide deterministic protocol caches (RSA keys,
/// datasets, signatures) by running every given session `reps` times on
/// the event-driven executor before anything is timed. Shared by the
/// sessions, service and multiload harnesses so each protocol-level
/// bench measures the same steady state from its first cell — for
/// single-stream cells nothing else hides the warmup, and even
/// min-of-reps cells stop paying one-time keygen in their first rep.
pub fn warm_session_caches(
    sessions: &[dls_protocol::SessionConfig],
    reps: usize,
) -> Result<(), String> {
    for cfg in sessions {
        for _ in 0..reps {
            dls_protocol::run_session_vm(cfg)
                .map_err(|e| format!("warmup session failed: {e}"))?;
        }
    }
    Ok(())
}

/// splitmix64 step (Steele, Lea & Flood 2014): the standard 64-bit mixer,
/// stable by construction — no dependency can change it. Shared with the
/// throughput sweep, which draws its bid-update positions from the same
/// frozen stream.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_in_range_and_deterministic() {
        let a = heterogeneous_rates(32, 1.0, 8.0, 9);
        let b = heterogeneous_rates(32, 1.0, 8.0, 9);
        assert_eq!(a, b);
        assert!(a.iter().all(|&w| (1.0..8.0).contains(&w)));
    }

    #[test]
    fn quantized_rates_are_dyadic_and_frozen() {
        let a = quantized_rates(256, 1.0, 8.0, 42, 64);
        assert_eq!(a, quantized_rates(256, 1.0, 8.0, 42, 64));
        for &w in &a {
            assert!(w >= 1.0 / 64.0 && w <= 8.5, "rate out of range: {w}");
            let scaled = w * 64.0;
            assert_eq!(scaled, scaled.round(), "not a multiple of 1/64: {w}");
        }
        // Freeze the generator: if splitmix64 or the mapping ever changes,
        // recorded baselines are invalidated and this fails loudly.
        let first = quantized_rates(4, 1.0, 8.0, 42, 64);
        assert_eq!(first, vec![4.671875, 1.390625, 1.78125, 2.046875]);
    }
}
