//! Payment-solver benchmark harness: `cargo run --release --bin payments`.
//!
//! Writes `BENCH_payments.json` (schema `dls-bench-payments-v1`) in the
//! current directory and prints the headline exact-path speedup. Flags:
//!
//! * `--quick` — the seconds-scale subset used by the schema test
//! * `--out <path>` — write the JSON somewhere else

use dls_bench::payments::{run_sweep, render_json, speedup, SweepConfig};

fn main() {
    let mut cfg = SweepConfig::full();
    let mut out = String::from("BENCH_payments.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = SweepConfig::quick(),
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other}; supported: --quick, --out <path>");
                std::process::exit(2);
            }
        }
    }

    let entries = run_sweep(&cfg);
    let json = render_json(&cfg, &entries);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {} entries to {out}", entries.len());

    // Headline numbers: the exact-path speedup at the largest size where
    // both solvers have entries (measured or extrapolated), per model.
    let m_headline = cfg
        .extrapolate_naive_to
        .iter()
        .chain(&cfg.exact_naive_sizes)
        .copied()
        .filter(|m| cfg.exact_sizes.contains(m))
        .max();
    if let Some(m) = m_headline {
        for model in ["cp", "ncp-fe", "ncp-nfe"] {
            if let Some(s) = speedup(&entries, model, m, "exact-fast", "exact-naive") {
                println!("{model:8} m={m:5} exact-fast is {s:.1}x faster than exact-naive");
            }
        }
    }
}
