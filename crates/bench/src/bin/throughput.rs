//! Auction-throughput benchmark harness:
//! `cargo run --release --bin throughput`.
//!
//! Writes `BENCH_throughput.json` (schema `dls-bench-throughput-v1`) in the
//! current directory and prints the headline incremental-vs-full-recompute
//! speedups. Flags:
//!
//! * `--quick` — the seconds-scale subset used by the schema test
//! * `--out <path>` — write the JSON somewhere else

use dls_bench::throughput::{render_json, run_sweep, update_speedup, ThroughputConfig};

fn main() {
    let mut cfg = ThroughputConfig::full();
    let mut out = String::from("BENCH_throughput.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = ThroughputConfig::quick(),
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other}; supported: --quick, --out <path>");
                std::process::exit(2);
            }
        }
    }

    let entries = match run_sweep(&cfg) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };
    let json = render_json(&cfg, &entries);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {} entries to {out}", entries.len());

    // Headline numbers: incremental bid-update speedup at the largest
    // measured market size, per model.
    if let Some(&m) = cfg.update_sizes.iter().max() {
        for model in ["cp", "ncp-fe", "ncp-nfe"] {
            if let Some(s) = update_speedup(&entries, model, m) {
                println!(
                    "{model:8} m={m:5} incremental bid updates are {s:.1}x faster than full recompute"
                );
            }
        }
    }
}
