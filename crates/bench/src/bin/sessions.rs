//! Session-throughput benchmark harness:
//! `cargo run --release --bin sessions`.
//!
//! Writes `BENCH_sessions.json` (schema `dls-bench-sessions-v2`) in the
//! current directory and prints the headline pooled-vs-threaded and
//! amortized-vs-per-receiver speedups.
//! Flags:
//!
//! * `--quick` — the seconds-scale subset used by the schema test
//! * `--out <path>` — write the JSON somewhere else

use dls_bench::sessions::{crypto_speedup, pooled_speedup, render_json, run_sweep, SessionsConfig};

fn main() {
    let mut cfg = SessionsConfig::full();
    let mut out = String::from("BENCH_sessions.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = SessionsConfig::quick(),
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other}; supported: --quick, --out <path>");
                std::process::exit(2);
            }
        }
    }

    let entries = match run_sweep(&cfg) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };
    let json = render_json(&cfg, &entries);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {} entries to {out}", entries.len());

    // Headline numbers at the largest batch, per m: pooled-vs-threaded
    // and amortized-vs-per-receiver verification.
    if let Some(&batch) = cfg.batch_sizes.iter().max() {
        for &m in &cfg.m_sizes {
            if let Some(s) = pooled_speedup(&entries, m, batch) {
                println!(
                    "m={m:4} batch={batch:5}: pooled executor runs {s:.1}x more sessions/sec than the threaded runtime"
                );
            }
            if let Some(s) = crypto_speedup(&entries, m, batch) {
                println!(
                    "m={m:4} batch={batch:5}: amortized verification runs {s:.1}x more sessions/sec than the per-receiver baseline"
                );
            }
        }
    }
}
