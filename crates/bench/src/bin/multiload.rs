//! Multi-load amortization benchmark harness:
//! `cargo run --release --bin multiload`.
//!
//! Writes `BENCH_multiload.json` (schema `dls-bench-multiload-v1`) in the
//! current directory and prints the headline splice-vs-resolve speedups
//! at every `(model, m, k)`. Flags:
//!
//! * `--quick` — the seconds-scale subset used by the schema test
//! * `--out <path>` — write the JSON somewhere else

use dls_bench::multiload::{render_json, run_sweep, splice_speedup, MultiloadConfig};

fn main() {
    let mut cfg = MultiloadConfig::full();
    let mut out = String::from("BENCH_multiload.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = MultiloadConfig::quick(),
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other}; supported: --quick, --out <path>");
                std::process::exit(2);
            }
        }
    }

    let entries = match run_sweep(&cfg) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };
    let json = render_json(&cfg, &entries);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("failed to write {out}: {e}");
        std::process::exit(1);
    }

    println!("wrote {out} ({} entries)", entries.len());
    for model in ["cp", "ncp-fe", "ncp-nfe"] {
        for &m in &cfg.m_sizes {
            for &k in &cfg.k_sizes {
                if let Some(s) = splice_speedup(&entries, model, m, k) {
                    println!("{model:8} m={m:5} k={k:3} splice vs k-solves: {s:.2}x");
                }
            }
        }
    }
}
