//! Service tail-latency benchmark harness:
//! `cargo run --release --bin service`.
//!
//! Writes `BENCH_service.json` (schema `dls-bench-service-v1`) in the
//! current directory and prints the headline work-stealing-vs-static p99
//! improvement and the service-vs-pooled uniform throughput ratio.
//! Flags:
//!
//! * `--quick` — the seconds-scale subset used by the schema test
//! * `--out <path>` — write the JSON somewhere else

use dls_bench::service::{
    p99_improvement, render_json, run_sweep, uniform_throughput_ratio, ServiceBenchConfig,
};

fn main() {
    let mut cfg = ServiceBenchConfig::full();
    let mut out = String::from("BENCH_service.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = ServiceBenchConfig::quick(),
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other}; supported: --quick, --out <path>");
                std::process::exit(2);
            }
        }
    }

    let entries = match run_sweep(&cfg) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };
    let json = render_json(&cfg, &entries);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {} entries to {out}", entries.len());

    if let Some(r) = p99_improvement(&entries) {
        println!(
            "skewed paced mix: work stealing cuts p99 session latency {r:.1}x vs static sharding"
        );
    }
    if let Some(r) = uniform_throughput_ratio(&entries) {
        println!(
            "uniform closed control: service throughput is {r:.2}x the static pooled baseline"
        );
    }
}
