//! Service tail-latency benchmark harness:
//! `cargo run --release --bin service`.
//!
//! Writes `BENCH_service.json` (schema `dls-bench-service-v2`) in the
//! current directory and prints the headline work-stealing-vs-static p99
//! improvement, the service-vs-pooled uniform throughput ratio, and the
//! kill-churn recovery numbers (p99 inflation under periodic worker
//! kills, worst death→respawn latency, tickets lost — always zero).
//! Flags:
//!
//! * `--quick` — the seconds-scale subset used by the schema test
//! * `--out <path>` — write the JSON somewhere else

use dls_bench::service::{
    churn_p99_ratio, p99_improvement, render_json, run_sweep, uniform_throughput_ratio,
    worst_recovery_ns, ServiceBenchConfig,
};

fn main() {
    let mut cfg = ServiceBenchConfig::full();
    let mut out = String::from("BENCH_service.json");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => cfg = ServiceBenchConfig::quick(),
            "--out" => {
                out = args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag {other}; supported: --quick, --out <path>");
                std::process::exit(2);
            }
        }
    }

    let entries = match run_sweep(&cfg) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };
    let json = render_json(&cfg, &entries);
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("wrote {} entries to {out}", entries.len());

    if let Some(r) = p99_improvement(&entries) {
        println!(
            "skewed paced mix: work stealing cuts p99 session latency {r:.1}x vs static sharding"
        );
    }
    if let Some(r) = uniform_throughput_ratio(&entries) {
        println!(
            "uniform closed control: service throughput is {r:.2}x the static pooled baseline"
        );
    }
    if let Some(r) = churn_p99_ratio(&entries) {
        let lost: u64 = entries.iter().map(|e| e.lost).sum();
        println!(
            "kill-churn: p99 is {r:.2}x the fault-free cell under periodic worker kills \
             ({lost} tickets lost)"
        );
    }
    if let Some(ns) = worst_recovery_ns(&entries) {
        println!(
            "kill-churn: worst worker death->respawn recovery latency {:.1} ms",
            ns as f64 / 1e6
        );
    }
}
