//! Experiment harness: regenerates every evaluation artifact of the paper
//! (Figures 1–3 and the measured counterparts of Lemmas 5.1–5.2 and
//! Theorems 2.1, 2.2, 5.1–5.4). See DESIGN.md §3 for the experiment index
//! and EXPERIMENTS.md for recorded results.
//!
//! ```text
//! cargo run --release -p dls-bench --bin experiments -- all
//! cargo run --release -p dls-bench --bin experiments -- fig2 strategyproof
//! ```

use dls::dlt::{diagnostics, exact, optimal, BusParams, SystemModel, ALL_MODELS};
use dls::mechanism::validate::{default_bid_factors, sweep_strategyproof};
use dls::netsim::{gantt, simulate, SessionSpec};
use dls::protocol::config::{Behavior, ProcessorConfig, SessionConfig};
use dls::protocol::runtime::run_session;
use dls::SessionStatus;
use dls_bench::workloads::{figure_scenario, heterogeneous_rates};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig1",
            "fig2",
            "fig3",
            "thm2_1",
            "thm2_2",
            "strategyproof",
            "participation",
            "compliance",
            "fines",
            "comm_complexity",
            "fine_bound",
            "decentralization_cost",
            "linear_network",
            "multiround",
            "coalitions",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for exp in wanted {
        match exp {
            "fig1" => figure(SystemModel::Cp, "E1 / Figure 1"),
            "fig2" => figure(SystemModel::NcpFe, "E2 / Figure 2"),
            "fig3" => figure(SystemModel::NcpNfe, "E3 / Figure 3"),
            "thm2_1" => thm2_1(),
            "thm2_2" => thm2_2(),
            "strategyproof" => strategyproof(),
            "participation" => participation(),
            "compliance" => compliance(),
            "fines" => fines(),
            "comm_complexity" => comm_complexity(),
            "fine_bound" => fine_bound(),
            "decentralization_cost" => decentralization_cost(),
            "linear_network" => linear_network(),
            "multiround" => multiround(),
            "coalitions" => coalitions(),
            other => eprintln!("unknown experiment {other:?}"),
        }
    }
}

fn banner(title: &str) {
    println!("\n=== {title} ===");
}

/// E1–E3: the execution timing diagrams of Figures 1–3.
fn figure(model: SystemModel, label: &str) {
    banner(&format!("{label}: {model} execution diagram"));
    let (z, w) = figure_scenario();
    let params = BusParams::new(z, w.clone()).unwrap();
    let alloc = optimal::fractions(model, &params);
    let tl = simulate(&SessionSpec::new(model, params, alloc.clone()));
    println!("z = {z}, w = {w:?}");
    println!(
        "alpha = [{}]",
        alloc
            .iter()
            .map(|a| format!("{a:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("makespan = {:.4}\n", tl.makespan);
    println!("{}", gantt::render_default(&tl));
}

/// E4: Theorem 2.1 — simultaneous finish at the optimum, f64 certified by
/// exact rationals, across m.
fn thm2_1() {
    banner("E4 / Theorem 2.1: all processors finish simultaneously");
    println!(
        "{:>6} {:>10} {:>14} {:>14} {:>12}",
        "m", "model", "max-min (f64)", "exact residual", "makespan"
    );
    for &m in &[2usize, 4, 8, 16, 32, 64, 128] {
        let w = heterogeneous_rates(m, 1.0, 8.0, m as u64);
        let p = BusParams::new(0.25, w.clone()).unwrap();
        for model in ALL_MODELS {
            let a = optimal::fractions(model, &p);
            let residual = diagnostics::equal_finish_residual(model, &p, &a);
            let ep = exact::ExactParams::from_f64(0.25, &w);
            let ea = exact::fractions(model, &ep);
            let et = exact::finish_times(model, &ep, &ea);
            let exact_equal = et.iter().all(|t| t == &et[0]);
            println!(
                "{:>6} {:>10} {:>14.3e} {:>14} {:>12.4}",
                m,
                model.tag(),
                residual,
                if exact_equal { "0 (exact)" } else { "VIOLATED" },
                optimal::optimal_makespan(model, &p)
            );
        }
    }
}

/// E5: Theorem 2.2 — optimal makespan is invariant under allocation order.
fn thm2_2() {
    banner("E5 / Theorem 2.2: allocation order does not matter");
    println!("{:>6} {:>10} {:>8} {:>16}", "m", "model", "orders", "relative spread");
    for &m in &[3usize, 5, 8, 13, 21] {
        let w = heterogeneous_rates(m, 1.0, 6.0, 100 + m as u64);
        let p = BusParams::new(0.3, w).unwrap();
        for model in ALL_MODELS {
            let perms = diagnostics::originator_fixed_perms(model, m);
            let spread = diagnostics::order_invariance_spread(model, &p, &perms);
            println!(
                "{:>6} {:>10} {:>8} {:>16.3e}",
                m,
                model.tag(),
                perms.len(),
                spread
            );
        }
    }
}

/// E6: Theorem 5.2 / 3.1 — utility versus bid deviation (the central
/// strategyproofness evidence).
fn strategyproof() {
    banner("E6 / Theorems 3.1 & 5.2: truth-telling is a dominant strategy");
    let w = [0.8, 1.3, 1.9, 2.6, 3.4];
    let z = 0.3;
    for model in ALL_MODELS {
        println!("\nmodel = {model}, m = {}, z = {z}", w.len());
        println!(
            "{:>7} | {}",
            "bid x",
            (1..=w.len())
                .map(|i| format!("{:>10}", format!("U(P{i})")))
                .collect::<Vec<_>>()
                .join(" ")
        );
        let mut rows: Vec<(f64, Vec<f64>)> = Vec::new();
        for &bf in &default_bid_factors() {
            let mut row = Vec::new();
            for agent in 0..w.len() {
                let rep = sweep_strategyproof(model, z, &w, agent, &[bf], &[1.0]).unwrap();
                row.push(rep.probes[0].utility);
            }
            rows.push((bf, row));
        }
        for (bf, row) in &rows {
            let marker = if *bf == 1.0 { "  <- truth" } else { "" };
            println!(
                "{:>7} | {}{}",
                bf,
                row.iter()
                    .map(|u| format!("{u:>10.5}"))
                    .collect::<Vec<_>>()
                    .join(" "),
                marker
            );
        }
        // Verify the maximum of each column sits at the truthful row.
        for agent in 0..w.len() {
            let truth = rows.iter().find(|(bf, _)| *bf == 1.0).unwrap().1[agent];
            let best = rows
                .iter()
                .map(|(_, r)| r[agent])
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(
                best <= truth + 1e-9,
                "{model} P{}: deviation beats truth",
                agent + 1
            );
        }
        println!("   (column maxima at the truthful bid for every agent)");
    }
}

/// E7: Theorem 5.3 / 3.2 — voluntary participation on random markets.
fn participation() {
    banner("E7 / Theorems 3.2 & 5.3: truthful workers never lose");
    println!(
        "{:>6} {:>10} {:>8} {:>14} {:>14}",
        "m", "model", "markets", "min worker U", "min orig U"
    );
    for &m in &[2usize, 4, 8, 16] {
        for model in ALL_MODELS {
            let mut min_worker = f64::INFINITY;
            let mut min_orig = f64::INFINITY;
            let trials = 50;
            for t in 0..trials {
                let w = heterogeneous_rates(m, 1.0, 6.0, (m * 1000 + t) as u64);
                let utilities =
                    dls::mechanism::validate::participation_utilities(model, 0.4, &w).unwrap();
                let orig = model.originator(m);
                for (i, &u) in utilities.iter().enumerate() {
                    if Some(i) == orig {
                        min_orig = min_orig.min(u);
                    } else {
                        min_worker = min_worker.min(u);
                    }
                }
            }
            println!(
                "{:>6} {:>10} {:>8} {:>14.6} {:>14}",
                m,
                model.tag(),
                trials,
                min_worker,
                if min_orig == f64::INFINITY {
                    "n/a".to_string()
                } else {
                    format!("{min_orig:.6}")
                }
            );
        }
    }
    println!("   (worker minima are all >= 0; the NCP originator is structural)");
}

/// E8: Lemma 5.1 + Theorem 5.1 — deviants always end up worse off.
fn compliance() {
    banner("E8 / Lemma 5.1 & Theorem 5.1: compliance maximizes utility");
    let base = [1.0, 2.0, 3.0, 4.0];
    let honest = run_cfg(&base.map(|w| (w, Behavior::Compliant)));
    println!(
        "{:<30} {:<8} {:<24} {:>12} {:>12} {:>10}",
        "behaviour", "deviant", "status", "U(deviant)", "U(honest)", "loss"
    );
    let catalogue: Vec<(usize, Behavior)> = vec![
        (1, Behavior::Misreport { factor: 1.3 }),
        (1, Behavior::Misreport { factor: 2.0 }),
        (1, Behavior::Misreport { factor: 0.6 }),
        (2, Behavior::Slack { factor: 1.5 }),
        (2, Behavior::Slack { factor: 3.0 }),
        (1, Behavior::EquivocateBids { factor: 2.0 }),
        (0, Behavior::ShortAllocate { victim: 2, shortfall: 2 }),
        (0, Behavior::OverAllocate { victim: 3, excess: 2 }),
        (3, Behavior::CorruptPayments { target: 3, factor: 2.0 }),
        (2, Behavior::FalselyAccuseAllocation),
    ];
    for (who, b) in catalogue {
        let mut procs = base.map(|w| (w, Behavior::Compliant));
        procs[who].1 = b;
        let out = run_cfg(&procs);
        let status = match &out.status {
            SessionStatus::Completed => "completed".into(),
            SessionStatus::CompletedWithFines => "completed-with-fines".into(),
            SessionStatus::Aborted { phase } => format!("aborted@{phase:?}"),
        };
        println!(
            "{:<30} {:<8} {:<24} {:>12.4} {:>12.4} {:>10.4}",
            b.to_string(),
            format!("P{}", who + 1),
            status,
            out.utility(who),
            honest.utility(who),
            honest.utility(who) - out.utility(who)
        );
        assert!(out.utility(who) <= honest.utility(who) + 1e-9);
    }
}

/// E9: Lemma 5.2 — fines hit only deviants; honest sessions are fine-free.
fn fines() {
    banner("E9 / Lemma 5.2: fines only for actual deviation");
    let base = [1.0, 1.5, 2.0, 2.5];
    // 1) honest sessions across seeds: zero fines.
    let mut honest_fines = 0usize;
    for seed in 0..10u64 {
        let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.2)
            .processors(base.iter().map(|&w| ProcessorConfig::new(w, Behavior::Compliant)))
            .seed(seed)
            .build()
            .unwrap();
        honest_fines += run_session(&cfg).unwrap().fined_processors().len();
    }
    println!("honest sessions x10: total fines = {honest_fines} (expect 0)");
    // 2) single-deviant sessions: exactly the deviant fined.
    let offences: Vec<(usize, Behavior)> = vec![
        (2, Behavior::EquivocateBids { factor: 3.0 }),
        (0, Behavior::ShortAllocate { victim: 1, shortfall: 1 }),
        (0, Behavior::OverAllocate { victim: 2, excess: 1 }),
        (3, Behavior::CorruptPayments { target: 0, factor: 0.5 }),
        (1, Behavior::FalselyAccuseAllocation),
    ];
    println!("{:<30} {:>10} {:>16}", "offence", "fined", "exactly deviant?");
    for (who, b) in offences {
        let mut procs = base.map(|w| (w, Behavior::Compliant));
        procs[who].1 = b;
        let out = run_cfg(&procs);
        let fined = out.fined_processors();
        println!(
            "{:<30} {:>10} {:>16}",
            b.to_string(),
            format!("{fined:?}"),
            if fined == vec![who] { "yes" } else { "NO" }
        );
        assert_eq!(fined, vec![who]);
    }
}

/// E10: Theorem 5.4 — communication is Θ(m²).
fn comm_complexity() {
    banner("E10 / Theorem 5.4: communication complexity Θ(m²)");
    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>14} {:>12} {:>10}",
        "m", "bid msgs", "pv msgs", "pv bytes", "total bytes", "bytes/m^2", "msgs/m^2"
    );
    for &m in &[2usize, 4, 8, 16, 32, 64] {
        let w = heterogeneous_rates(m, 1.0, 4.0, 7);
        let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.1)
            .processors(w.iter().map(|&x| ProcessorConfig::new(x, Behavior::Compliant)))
            .seed(1)
            .blocks(2 * m) // keep grant payloads proportional, not dominant
            .build()
            .unwrap();
        let out = run_session(&cfg).unwrap();
        let (bid_msgs, _) = out.messages.category("bid");
        let (pv_msgs, pv_bytes) = out.messages.category("payment-vector");
        let total = out.messages.total_bytes();
        let m2 = (m * m) as f64;
        println!(
            "{:>5} {:>10} {:>12} {:>12} {:>14} {:>12.1} {:>10.2}",
            m,
            bid_msgs,
            pv_msgs,
            pv_bytes,
            total,
            total as f64 / m2,
            out.messages.total_messages() as f64 / m2
        );
    }
    println!("   (bytes/m^2 flattens to a constant -> Θ(m²), dominated by payment vectors)");
}

/// E11: the deterrence bound `F ≥ Σ α_j·w_j` — utility of a deviant as the
/// fine sweeps across the bound.
fn fine_bound() {
    banner("E11: the fine bound F >= sum(alpha_j w_j) is the deterrence threshold");
    let base = [1.0, 2.0, 3.0];
    let probe_cfg = SessionConfig::builder(SystemModel::NcpFe, 0.2)
        .processors(base.iter().map(|&w| ProcessorConfig::new(w, Behavior::Compliant)))
        .build()
        .unwrap();
    let bound = probe_cfg.fine_bound();
    let honest = run_cfg(&base.map(|w| (w, Behavior::Compliant)));
    println!("deterrence bound = {bound:.4}; honest U(P2) = {:.4}", honest.utility(1));
    println!(
        "{:>10} {:>12} {:>14} {:>12}",
        "F/bound", "F", "U(equivocator)", "deterred?"
    );
    for factor in [1.0, 1.5, 2.0, 4.0, 8.0] {
        let f = bound * factor;
        let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.2)
            .processors([
                ProcessorConfig::new(1.0, Behavior::Compliant),
                ProcessorConfig::new(2.0, Behavior::EquivocateBids { factor: 2.0 }),
                ProcessorConfig::new(3.0, Behavior::Compliant),
            ])
            .fine(f)
            .seed(3)
            .build()
            .unwrap();
        let out = run_session(&cfg).unwrap();
        let u = out.utility(1);
        println!(
            "{:>10.1} {:>12.4} {:>14.4} {:>12}",
            factor,
            f,
            u,
            if u < honest.utility(1) { "yes" } else { "NO" }
        );
    }
    println!("   (already at F = bound the deviant loses; larger F only deepens the loss)");
}

/// E12: messages of the trusted-CP baseline (Θ(m)) versus DLS-BL-NCP
/// (Θ(m²)) — what removing the control processor costs.
fn decentralization_cost() {
    banner("E12: cost of decentralization — trusted CP (Θ(m)) vs DLS-BL-NCP (Θ(m²))");
    println!(
        "{:>5} {:>12} {:>14} {:>12} {:>14} {:>10}",
        "m", "CP msgs", "CP bytes", "NCP msgs", "NCP bytes", "msg ratio"
    );
    for &m in &[2usize, 4, 8, 16, 32] {
        let w = heterogeneous_rates(m, 1.0, 4.0, 77);
        let mk = |model| {
            SessionConfig::builder(model, 0.1)
                .processors(w.iter().map(|&x| ProcessorConfig::new(x, Behavior::Compliant)))
                .seed(5)
                .blocks(2 * m)
                .build()
                .unwrap()
        };
        let cp = dls::protocol::centralized::run_centralized(&mk(SystemModel::Cp)).unwrap();
        let ncp = run_session(&mk(SystemModel::NcpFe)).unwrap();
        println!(
            "{:>5} {:>12} {:>14} {:>12} {:>14} {:>10.1}",
            m,
            cp.messages.total_messages(),
            cp.messages.total_bytes(),
            ncp.messages.total_messages(),
            ncp.messages.total_bytes(),
            ncp.messages.total_messages() as f64 / cp.messages.total_messages() as f64
        );
    }
    println!("   (the message ratio grows linearly in m: Θ(m²)/Θ(m))");
}

/// E13: the linear daisy-chain extension (paper's future work).
fn linear_network() {
    banner("E13: linear network extension — chain vs bus");
    use dls::dlt::linear;
    use dls::netsim::linear::simulate_chain;
    let w = vec![1.0, 1.5, 2.0, 2.5, 3.0];
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>12}",
        "z", "chain T", "bus FE T", "chain resid", "sim matches"
    );
    for k in 0..=6 {
        let z = 0.05 * k as f64;
        let chain = linear::LinearParams::uniform_links(z, w.clone()).unwrap();
        let bus = BusParams::new(z, w.clone()).unwrap();
        let a = linear::fractions(&chain);
        let t_chain = linear::optimal_makespan(&chain);
        let t_bus = optimal::optimal_makespan(SystemModel::NcpFe, &bus);
        let times = linear::finish_times(&chain, &a);
        let resid = times.iter().cloned().fold(f64::MIN, f64::max)
            - times.iter().cloned().fold(f64::MAX, f64::min);
        let sim = simulate_chain(&chain, &a);
        println!(
            "{:>6.2} {:>14.4} {:>14.4} {:>14.2e} {:>12}",
            z,
            t_chain,
            t_bus,
            resid,
            if (sim.makespan - t_chain).abs() < 1e-9 {
                "yes"
            } else {
                "NO"
            }
        );
    }
    println!("   (equal-finish optimality carries over; chains pay per-hop forwarding)");
}

/// E14: multi-installment scheduling (the paper's cited \[20\] baseline).
fn multiround() {
    banner("E14: multi-installment scheduling — pipelining gains ([20] baseline)");
    use dls::netsim::multiround::simulate_multiround;
    let w = vec![1.0, 1.5, 2.0, 2.5, 3.0];
    for z in [0.2, 0.5, 1.0] {
        let p = BusParams::new(z, w.clone()).unwrap();
        print!("z = {z:<4} makespan by rounds:");
        let t1 = simulate_multiround(&p, 1).expect("rounds >= 1").makespan;
        for r in [1usize, 2, 3, 4, 6, 8, 16] {
            let t = simulate_multiround(&p, r).expect("rounds >= 1").makespan;
            print!("  R{r}={t:.4}");
        }
        let t16 = simulate_multiround(&p, 16).expect("rounds >= 1").makespan;
        println!("  (gain {:.1}%)", (1.0 - t16 / t1) * 100.0);
    }
    println!("   (gains grow with z — pipelining hides communication; diminishing in R)");
}

/// E15: coalition manipulations — beyond the paper's unilateral analysis.
fn coalitions() {
    banner("E15: coalition manipulation probes (extension)");
    use dls::mechanism::validate::probe_coalition;
    let w = [0.8, 1.3, 1.9, 2.6, 3.4];
    println!(
        "{:>14} {:>8} {:>14} {:>14} {:>12}",
        "coalition", "bid x", "joint U(dev)", "joint U(truth)", "gain"
    );
    let mut worst: f64 = f64::NEG_INFINITY;
    for members in [vec![0usize, 1], vec![1, 2], vec![2, 3, 4], vec![0, 4]] {
        for factor in [0.5, 0.75, 1.5, 2.0, 3.0] {
            let r =
                probe_coalition(SystemModel::NcpFe, 0.3, &w, &members, factor).unwrap();
            worst = worst.max(r.gain());
            println!(
                "{:>14} {:>8} {:>14.5} {:>14.5} {:>12.2e}",
                format!("{members:?}"),
                factor,
                r.coalition_utility,
                r.truthful_utility,
                r.gain()
            );
        }
    }
    if worst > 1e-9 {
        println!(
            "   FINDING: max coalition gain {worst:.2e} > 0 — DLS-BL is strategyproof \
             (unilateral) but NOT group-strategyproof; a jointly over-reporting \
             coalition of fast processors can profit."
        );
    } else {
        println!("   (max observed coalition gain: {worst:.2e} — none profitable here)");
    }
}

fn run_cfg(procs: &[(f64, Behavior)]) -> dls::SessionOutcome {
    let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.2)
        .processors(procs.iter().map(|&(w, b)| ProcessorConfig::new(w, b)))
        .seed(2)
        .build()
        .unwrap();
    run_session(&cfg).unwrap()
}
