//! Shared workload generators for the benchmark harness live in the harness binaries; this lib hosts common helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod workloads;
