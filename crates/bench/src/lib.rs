//! Shared benchmark infrastructure: [`workloads`] hosts the deterministic
//! rate generators used by the Criterion benches, the experiment harness,
//! and the payments harness (`src/bin/payments.rs`); [`payments`] hosts the
//! payment-solver sweep behind the committed `BENCH_payments.json`;
//! [`throughput`] hosts the auction-engine sweep behind the committed
//! `BENCH_throughput.json`; [`sessions`] hosts the protocol-session sweep
//! behind the committed `BENCH_sessions.json`; [`service`] hosts the
//! always-on service tail-latency sweep behind the committed
//! `BENCH_service.json`; [`multiload`] hosts the k-load amortization
//! sweep behind the committed `BENCH_multiload.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
pub mod multiload;
pub mod payments;
pub mod service;
pub mod sessions;
pub mod throughput;
pub mod workloads;
