//! Shared workload generators for the benchmark harness live in the harness binaries; this lib hosts common helpers.
pub mod workloads;
