//! Service tail-latency sweep: the data source for `BENCH_service.json`.
//!
//! Where [`crate::sessions`] asks "how fast does a *batch* go through the
//! pool", this harness asks the production question: sessions arriving
//! continuously, how long does each one *wait*? One cell =
//! (workload mix) × (drive mode) × (execution path):
//!
//! **Mixes.** `"uniform"` — every session a light, fault-free `m = 4`
//! market. `"skewed"` — the same stream with every `heavy_period`-th
//! session replaced by a heavy one: `m = heavy_m` with a `CrashAt(Bidding)`
//! fault, so the round runs verdicts, a fine, and a full survivor re-run.
//! The heavy phase is chosen so that under static `ticket mod workers`
//! placement *every* heavy lands on the same worker — the adversarial
//! stream for a static shard, and an ordinary one for work stealing.
//!
//! **Modes.** `"closed"` — windowed streaming: the driver keeps at most
//! `window` sessions in flight, submitting the next as it retires the
//! oldest. Measures saturated throughput and the memory wall (the
//! config/outcome working set is bounded by the window, so batches sweep
//! to 10⁵–10⁶ sessions). `"paced"` — open loop: arrivals follow a fixed
//! schedule at `paced_utilization` of the measured capacity, submission
//! never waits for completions, and every session's enqueue→complete
//! latency is recorded. This is the mode where placement policy shows up:
//! a static shard lets lights pile up behind the heavy worker's backlog
//! while stealing drains them through idle workers — on any core count,
//! because the effect is queue discipline, not parallelism.
//!
//! **Paths.** `"service-steal"` — [`dls_protocol::service::ServiceHandle`]
//! with shortest-queue placement and steal-half. `"service-static"` — the
//! same service with `ticket mod workers` placement and no stealing.
//! `"pooled-static"` — the batch entry point
//! [`dls_protocol::executor::run_session_pooled_with`] as the closed-mode
//! baseline (no queue, no latency; its latency columns are zero).
//!
//! The `scratch` column discloses the per-worker arena: `"reused"` keeps
//! one [`VmScratch`](dls_protocol::executor::VmScratch) per worker across
//! sessions, `"fresh"` rebuilds it per session (the pre-arena behaviour).
//!
//! Honest-measurement notes, reflected in the JSON:
//!
//! * each cell is a single timed stream, not min-of-reps — cells are
//!   10³–10⁶ sessions long and self-average; the paced arrival schedule
//!   is identical for both service paths (same rate, same bursts);
//! * paced capacity is calibrated per mix from a short closed-loop run on
//!   the stealing path, and the resulting arrival rate is recorded in the
//!   entry (`arrival_per_sec`);
//! * all cells share one process, so the deterministic key/dataset/
//!   signature caches are warm for everyone after the first few sessions
//!   — exactly the steady state an always-on service runs in;
//! * `rss_mb` is the process resident set after the cell (from
//!   `/proc/self/statm`; zero where unavailable), a coarse memory-wall
//!   indicator across the batch sweep.
//!
//! **Kill-churn cells (schema v2).** When `kill_every > 0`, the skewed
//! closed cell is re-run on both service paths under a deterministic
//! [`ServiceFaultPlan`] that kills the active worker at every
//! `kill_every`-th job start. The supervisor respawns each one and
//! requeues the orphaned session, so the stream still completes with
//! zero lost tickets (`lost` is computed from the retire loop, which
//! fails the whole sweep if any ticket vanishes); the cell discloses the
//! price: `kills`, `respawns`, worst death→respawn `recovery_max_ns`,
//! and the usual latency percentiles now including re-run sessions.
//!
//! Covered by the workspace no-panic lint gate: measurement never
//! unwraps — session errors surface as the harness error string.

use std::time::{Duration, Instant};

use dls_dlt::SystemModel;
use dls_protocol::config::{Behavior, ProcessorConfig, SessionConfig};
use dls_protocol::executor::run_session_pooled_with;
use dls_protocol::referee::Phase;
use dls_protocol::service::{Placement, ServiceConfig, ServiceHandle};
use dls_protocol::supervisor::{ServiceFaultPlan, ServiceStats};
use dls_protocol::FaultPlan;

use crate::workloads::quantized_rates;

/// Schema identifier written into the JSON header; bump when the layout of
/// the file changes incompatibly.
pub const SCHEMA: &str = "dls-bench-service-v2";

/// Everything that determines a service sweep; the workload stream is
/// reproducible from the config alone (wall-clock numbers aside).
#[derive(Debug, Clone)]
pub struct ServiceBenchConfig {
    /// Seed for market rates and all session key material.
    pub seed: u64,
    /// Bus communication rate `z` (dyadic).
    pub z: f64,
    /// Lower bound of the log-uniform rate range.
    pub lo: f64,
    /// Upper bound of the log-uniform rate range.
    pub hi: f64,
    /// Rates are quantized to multiples of `1/denom`.
    pub denom: u32,
    /// Market size of a light session.
    pub light_m: usize,
    /// Market size of a heavy session.
    pub heavy_m: usize,
    /// Blocks in a light session's load.
    pub light_blocks: usize,
    /// Blocks in a heavy session's load.
    pub heavy_blocks: usize,
    /// In the skewed mix, session `k` is heavy when
    /// `k % heavy_period == heavy_period - 1`. Chosen together with
    /// `workers` so `heavy_period - 1 ≡ workers - 1 (mod workers)` pins
    /// every heavy to one worker under static placement.
    pub heavy_period: usize,
    /// RSA modulus width. The sweep is about scheduling, not crypto, so
    /// it runs the minimum width; `BENCH_sessions.json` owns the crypto
    /// cost story.
    pub key_bits: usize,
    /// Service worker threads (also the pooled baseline's worker count).
    pub workers: usize,
    /// Closed-mode in-flight window.
    pub window: usize,
    /// Uniform-mix closed-mode batch sizes (the memory/throughput wall
    /// sweep).
    pub closed_batches: Vec<usize>,
    /// Skewed-mix closed-mode batch sizes.
    pub skewed_closed_batches: Vec<usize>,
    /// Paced-mode stream length (skewed mix).
    pub paced_batch: usize,
    /// Paced arrival rate as a fraction of measured capacity.
    pub paced_utilization: f64,
    /// Closed-loop sessions used to calibrate paced capacity per mix.
    pub calibration_sessions: usize,
    /// Largest batch the pooled baseline runs (it materializes the whole
    /// batch of configs and outcomes at once, so it does not sweep to the
    /// service's largest cells).
    pub pooled_batch_cap: usize,
    /// Kill-churn period for the faulted cells: the active worker is
    /// killed at every `kill_every`-th job start of the skewed closed
    /// stream (0 disables the faulted cells).
    pub kill_every: usize,
}

impl ServiceBenchConfig {
    /// The full sweep behind the committed `BENCH_service.json`.
    pub fn full() -> Self {
        ServiceBenchConfig {
            seed: 42,
            z: 0.0625,
            lo: 1.0,
            hi: 8.0,
            denom: 64,
            light_m: 4,
            heavy_m: 64,
            light_blocks: 12,
            heavy_blocks: 64,
            heavy_period: 200,
            key_bits: dls_crypto::rsa::MIN_MODULUS_BITS,
            workers: 5,
            window: 1024,
            closed_batches: vec![100_000, 1_000_000],
            skewed_closed_batches: vec![100_000],
            paced_batch: 20_000,
            paced_utilization: 0.8,
            calibration_sessions: 2_000,
            pooled_batch_cap: 100_000,
            kill_every: 2_000,
        }
    }

    /// A seconds-scale subset used by the tier-1 schema/sanity test.
    pub fn quick() -> Self {
        ServiceBenchConfig {
            heavy_m: 16,
            heavy_blocks: 16,
            heavy_period: 20,
            workers: 5,
            window: 64,
            closed_batches: vec![240],
            skewed_closed_batches: vec![200],
            paced_batch: 200,
            calibration_sessions: 60,
            pooled_batch_cap: 240,
            kill_every: 25,
            ..ServiceBenchConfig::full()
        }
    }
}

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct ServiceEntry {
    /// `"uniform"` or `"skewed"`.
    pub mix: &'static str,
    /// `"closed"` (windowed streaming) or `"paced"` (open-loop arrivals).
    pub mode: &'static str,
    /// `"service-steal"`, `"service-static"`, or `"pooled-static"`.
    pub path: &'static str,
    /// `"reused"` (per-worker arena) or `"fresh"` (arena rebuilt per
    /// session). The pooled baseline always reuses.
    pub scratch: &'static str,
    /// Sessions in the stream.
    pub batch: usize,
    /// Worker threads.
    pub workers: usize,
    /// Paced arrival rate, sessions/sec (zero in closed mode).
    pub arrival_per_sec: u128,
    /// Completed sessions per second over the whole stream.
    pub sessions_per_sec: u128,
    /// Median enqueue→complete latency, ns (zero on the pooled path,
    /// which has no queue to measure).
    pub p50_ns: u64,
    /// 95th-percentile latency, ns.
    pub p95_ns: u64,
    /// 99th-percentile latency, ns.
    pub p99_ns: u64,
    /// Worst observed latency, ns.
    pub max_ns: u64,
    /// Process resident set after the cell, MiB (zero if unreadable).
    pub rss_mb: u64,
    /// Kill-churn period driving this cell (0 on fault-free cells).
    pub kill_every: usize,
    /// Worker kills taken during the cell.
    pub kills: u64,
    /// Workers respawned by the supervisor during the cell.
    pub respawns: u64,
    /// Worst worker death→respawn latency observed, ns.
    pub recovery_max_ns: u64,
    /// Accepted tickets that failed to resolve. The retire loop fails
    /// the whole sweep on the first lost ticket, so a written entry
    /// always reads 0 — the column exists so the committed file states
    /// the invariant explicitly.
    pub lost: u64,
}

/// `true` when session `k` of `mix` is a heavy session.
fn is_heavy(cfg: &ServiceBenchConfig, mix: &str, k: usize) -> bool {
    mix == "skewed" && cfg.heavy_period > 0 && k % cfg.heavy_period == cfg.heavy_period - 1
}

/// Builds session `k` of the stream. Lights are fault-free compliant
/// `light_m`-markets; heavies are `heavy_m`-markets whose last processor
/// crashes in Bidding, forcing verdicts, a fine, and a survivor re-run.
pub fn stream_session(
    cfg: &ServiceBenchConfig,
    mix: &str,
    k: usize,
) -> Result<SessionConfig, String> {
    let (m, blocks) = if is_heavy(cfg, mix, k) {
        (cfg.heavy_m, cfg.heavy_blocks)
    } else {
        (cfg.light_m, cfg.light_blocks)
    };
    let rates = quantized_rates(m, cfg.lo, cfg.hi, cfg.seed, cfg.denom);
    let mut procs: Vec<ProcessorConfig> = rates
        .iter()
        .map(|&w| ProcessorConfig::new(w, Behavior::Compliant))
        .collect();
    if is_heavy(cfg, mix, k) {
        if let Some(p) = procs.last_mut() {
            p.fault = FaultPlan::CrashAt(Phase::Bidding);
        }
    }
    SessionConfig::builder(SystemModel::NcpFe, cfg.z)
        .processors(procs)
        .blocks(blocks)
        .seed(cfg.seed)
        .key_bits(cfg.key_bits)
        .build()
        .map_err(|e| format!("stream session {k} ({mix}) failed to build: {e}"))
}

/// Nearest-rank percentile of an unsorted latency sample (`q` in 0..=1).
fn percentile_ns(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    let idx = rank.saturating_sub(1).min(sorted.len() - 1);
    sorted.get(idx).copied().unwrap_or(0)
}

/// Resident set size in MiB from `/proc/self/statm`; zero when the file
/// is missing or malformed (non-Linux).
fn rss_mb() -> u64 {
    let statm = match std::fs::read_to_string("/proc/self/statm") {
        Ok(s) => s,
        Err(_) => return 0,
    };
    let pages: u64 = statm
        .split_whitespace()
        .nth(1)
        .and_then(|f| f.parse().ok())
        .unwrap_or(0);
    pages * 4096 / (1024 * 1024)
}

fn per_sec(count: u128, ns: u128) -> u128 {
    if ns == 0 {
        return 0;
    }
    (count as f64 * 1e9 / ns as f64).round() as u128
}

/// Latency digest of one finished stream.
struct Digest {
    elapsed_ns: u128,
    latencies: Vec<u64>,
}

impl Digest {
    fn entry(
        self,
        mix: &'static str,
        mode: &'static str,
        path: &'static str,
        scratch: &'static str,
        batch: usize,
        workers: usize,
        arrival_per_sec: u128,
    ) -> ServiceEntry {
        let mut lat = self.latencies;
        lat.sort_unstable();
        ServiceEntry {
            mix,
            mode,
            path,
            scratch,
            batch,
            workers,
            arrival_per_sec,
            sessions_per_sec: per_sec(batch as u128, self.elapsed_ns),
            p50_ns: percentile_ns(&lat, 0.50),
            p95_ns: percentile_ns(&lat, 0.95),
            p99_ns: percentile_ns(&lat, 0.99),
            max_ns: lat.last().copied().unwrap_or(0),
            rss_mb: rss_mb(),
            kill_every: 0,
            kills: 0,
            respawns: 0,
            recovery_max_ns: 0,
            lost: 0,
        }
    }
}

impl ServiceEntry {
    /// Fills the kill-churn disclosure columns from the service's stats.
    fn churn(mut self, kill_every: usize, stats: &ServiceStats) -> ServiceEntry {
        self.kill_every = kill_every;
        self.kills = stats.killed;
        self.respawns = stats.respawns;
        self.recovery_max_ns = stats.recovery_ns_max;
        self
    }
}

/// Takes one completed session off the service, recording its latency and
/// surfacing a failed outcome as the harness error.
fn retire(svc: &ServiceHandle, ticket: u64, latencies: &mut Vec<u64>) -> Result<(), String> {
    match svc.wait(ticket) {
        Some(done) => {
            done.outcome
                .map_err(|e| format!("service session {ticket} failed: {e}"))?;
            latencies.push(done.latency_ns);
            Ok(())
        }
        None => Err(format!("service lost ticket {ticket}")),
    }
}

/// Closed-loop windowed stream: at most `window` sessions in flight.
/// Returns the latency digest plus the service's lifetime stats (the
/// kill-churn disclosure columns for faulted cells).
fn run_closed(
    cfg: &ServiceBenchConfig,
    mix: &'static str,
    placement: Placement,
    reuse_scratch: bool,
    batch: usize,
    plan: ServiceFaultPlan,
) -> Result<(Digest, ServiceStats), String> {
    let svc = ServiceHandle::start(ServiceConfig {
        workers: cfg.workers,
        placement,
        reuse_scratch,
        fault_plan: plan,
        ..ServiceConfig::stealing(cfg.workers)
    })
    .map_err(|e| format!("service failed to start: {e}"))?;
    let window = cfg.window.max(1);
    let mut latencies = Vec::with_capacity(batch);
    let t0 = Instant::now();
    for k in 0..batch {
        let ticket = svc
            .submit(stream_session(cfg, mix, k)?)
            .map_err(|e| format!("closed-mode submit {k} refused: {e}"))?;
        if ticket >= window as u64 {
            retire(&svc, ticket - window as u64, &mut latencies)?;
        }
    }
    let issued = batch as u64;
    for ticket in issued.saturating_sub(window.min(batch) as u64)..issued {
        retire(&svc, ticket, &mut latencies)?;
    }
    let elapsed_ns = t0.elapsed().as_nanos();
    let stats = svc.stats();
    svc.shutdown();
    Ok((
        Digest {
            elapsed_ns,
            latencies,
        },
        stats,
    ))
}

/// Open-loop paced stream: arrival `k` fires at `k / rate` regardless of
/// completions; everything drains (and is latency-stamped) afterwards.
fn run_paced(
    cfg: &ServiceBenchConfig,
    mix: &'static str,
    placement: Placement,
    batch: usize,
    arrivals_per_sec: f64,
) -> Result<Digest, String> {
    if arrivals_per_sec <= 0.0 {
        return Err("paced mode needs a positive arrival rate".into());
    }
    let svc = ServiceHandle::start(ServiceConfig {
        placement,
        ..ServiceConfig::stealing(cfg.workers)
    })
    .map_err(|e| format!("service failed to start: {e}"))?;
    // Build the stream up front so construction cost never perturbs the
    // arrival schedule.
    let stream: Vec<SessionConfig> = (0..batch)
        .map(|k| stream_session(cfg, mix, k))
        .collect::<Result<_, _>>()?;
    let gap_ns = 1e9 / arrivals_per_sec;
    let mut latencies = Vec::with_capacity(batch);
    let t0 = Instant::now();
    for (k, session) in stream.into_iter().enumerate() {
        let due = Duration::from_nanos((k as f64 * gap_ns) as u64);
        let now = t0.elapsed();
        if due > now {
            std::thread::sleep(due - now);
        }
        svc.submit(session)
            .map_err(|e| format!("paced submit {k} refused: {e}"))?;
    }
    for ticket in 0..batch as u64 {
        retire(&svc, ticket, &mut latencies)?;
    }
    let elapsed_ns = t0.elapsed().as_nanos();
    svc.shutdown();
    Ok(Digest {
        elapsed_ns,
        latencies,
    })
}

/// Measures closed-loop capacity (sessions/sec) of the stealing path on
/// `mix`, used to set the paced arrival rate. Both paced paths then
/// receive the *same* schedule, so the comparison is apples to apples.
fn calibrate_capacity(cfg: &ServiceBenchConfig, mix: &'static str) -> Result<f64, String> {
    let n = cfg.calibration_sessions.max(cfg.heavy_period).max(1);
    let (d, _) = run_closed(
        cfg,
        mix,
        Placement::Stealing,
        true,
        n,
        ServiceFaultPlan::default(),
    )?;
    if d.elapsed_ns == 0 {
        return Err("calibration stream finished in zero time".into());
    }
    Ok(n as f64 * 1e9 / d.elapsed_ns as f64)
}

/// Warms the process-wide deterministic caches (RSA keys, datasets,
/// signatures) for both session shapes so the first timed cell measures
/// the same steady state as the last — cells are single timed streams, so
/// unlike a min-of-reps harness nothing else hides the warmup.
fn warm_caches(cfg: &ServiceBenchConfig) -> Result<(), String> {
    let sessions = vec![
        stream_session(cfg, "uniform", 0)?,
        stream_session(cfg, "skewed", cfg.heavy_period.saturating_sub(1))?,
    ];
    crate::workloads::warm_session_caches(&sessions, 2)
}

/// Runs the whole sweep, emitting progress on stderr.
pub fn run_sweep(cfg: &ServiceBenchConfig) -> Result<Vec<ServiceEntry>, String> {
    let mut entries = Vec::new();
    warm_caches(cfg)?;
    let report = |e: &ServiceEntry| {
        eprintln!(
            "{:7} {:6} {:14} {:6} batch={:7} {:>9} sess/s  p50={:>12} p95={:>12} p99={:>12} ns  rss={}MiB  kills={} respawns={} rec_max={}ns",
            e.mix, e.mode, e.path, e.scratch, e.batch, e.sessions_per_sec, e.p50_ns, e.p95_ns, e.p99_ns, e.rss_mb, e.kills, e.respawns, e.recovery_max_ns
        );
    };

    // --- Closed-loop throughput / memory-wall sweep -----------------------
    for (mix, batches) in [
        ("uniform", &cfg.closed_batches),
        ("skewed", &cfg.skewed_closed_batches),
    ] {
        for &batch in batches.iter() {
            if batch == 0 {
                continue;
            }
            for (path, placement) in [
                ("service-steal", Placement::Stealing),
                ("service-static", Placement::StaticShard),
            ] {
                let (d, _) = run_closed(cfg, mix, placement, true, batch, ServiceFaultPlan::default())?;
                let e = d.entry(mix, "closed", path, "reused", batch, cfg.workers, 0);
                report(&e);
                entries.push(e);
            }
        }
    }

    // --- Scratch-arena disclosure: same cell, fresh arena per session -----
    if let Some(&batch) = cfg.closed_batches.iter().min().filter(|&&b| b > 0) {
        let (d, _) = run_closed(
            cfg,
            "uniform",
            Placement::Stealing,
            false,
            batch,
            ServiceFaultPlan::default(),
        )?;
        let e = d.entry("uniform", "closed", "service-steal", "fresh", batch, cfg.workers, 0);
        report(&e);
        entries.push(e);
    }

    // --- Kill-churn disclosure: the skewed closed cell under worker kills -
    if cfg.kill_every > 0 {
        if let Some(&batch) = cfg.skewed_closed_batches.iter().min().filter(|&&b| b > 0) {
            for (path, placement) in [
                ("service-steal", Placement::Stealing),
                ("service-static", Placement::StaticShard),
            ] {
                let plan = ServiceFaultPlan::kill_every(cfg.kill_every as u64, batch as u64);
                let (d, stats) = run_closed(cfg, "skewed", placement, true, batch, plan)?;
                let e = d
                    .entry("skewed", "closed", path, "reused", batch, cfg.workers, 0)
                    .churn(cfg.kill_every, &stats);
                report(&e);
                entries.push(e);
            }
        }
    }

    // --- Pooled baseline (closed batch, no queue/latency machinery) -------
    if let Some(&batch) = cfg
        .closed_batches
        .iter()
        .filter(|&&b| b > 0 && b <= cfg.pooled_batch_cap)
        .max()
    {
        let cfgs: Vec<SessionConfig> = (0..batch)
            .map(|k| stream_session(cfg, "uniform", k))
            .collect::<Result<_, _>>()?;
        let t0 = Instant::now();
        for r in run_session_pooled_with(&cfgs, cfg.workers) {
            r.map_err(|e| format!("pooled session failed: {e}"))?;
        }
        let elapsed_ns = t0.elapsed().as_nanos();
        let e = ServiceEntry {
            mix: "uniform",
            mode: "closed",
            path: "pooled-static",
            scratch: "reused",
            batch,
            workers: cfg.workers,
            arrival_per_sec: 0,
            sessions_per_sec: per_sec(batch as u128, elapsed_ns),
            p50_ns: 0,
            p95_ns: 0,
            p99_ns: 0,
            max_ns: 0,
            rss_mb: rss_mb(),
            kill_every: 0,
            kills: 0,
            respawns: 0,
            recovery_max_ns: 0,
            lost: 0,
        };
        report(&e);
        entries.push(e);
    }

    // --- Paced tail-latency comparison (the headline) ---------------------
    if cfg.paced_batch > 0 {
        let capacity = calibrate_capacity(cfg, "skewed")?;
        let rate = capacity * cfg.paced_utilization;
        eprintln!(
            "skewed calibration: capacity {:.1} sess/s -> pacing at {:.1} sess/s",
            capacity, rate
        );
        for (path, placement) in [
            ("service-steal", Placement::Stealing),
            ("service-static", Placement::StaticShard),
        ] {
            let d = run_paced(cfg, "skewed", placement, cfg.paced_batch, rate)?;
            let e = d.entry(
                "skewed",
                "paced",
                path,
                "reused",
                cfg.paced_batch,
                cfg.workers,
                rate.round() as u128,
            );
            report(&e);
            entries.push(e);
        }
    }

    Ok(entries)
}

/// p99 ratio static/steal on the paced skewed cell — the headline number
/// for the placement work; `None` when either entry is missing or
/// degenerate.
pub fn p99_improvement(entries: &[ServiceEntry]) -> Option<f64> {
    let find = |path: &str| {
        entries
            .iter()
            .find(|e| e.mix == "skewed" && e.mode == "paced" && e.path == path)
            .map(|e| e.p99_ns)
    };
    let (steal, stat) = (find("service-steal")?, find("service-static")?);
    if steal == 0 {
        return None;
    }
    Some(stat as f64 / steal as f64)
}

/// p99 ratio kill-churn/fault-free on the skewed closed stealing cell at
/// the same batch — how much tail latency worker kill-churn costs once
/// the supervisor has respawned and requeued around every kill. `None`
/// when either cell is missing or degenerate.
pub fn churn_p99_ratio(entries: &[ServiceEntry]) -> Option<f64> {
    let churn = entries.iter().find(|e| {
        e.mix == "skewed" && e.mode == "closed" && e.path == "service-steal" && e.kill_every > 0
    })?;
    let base = entries.iter().find(|e| {
        e.mix == "skewed"
            && e.mode == "closed"
            && e.path == "service-steal"
            && e.kill_every == 0
            && e.batch == churn.batch
    })?;
    if base.p99_ns == 0 {
        return None;
    }
    Some(churn.p99_ns as f64 / base.p99_ns as f64)
}

/// Worst worker death→respawn latency across the kill-churn cells, ns.
pub fn worst_recovery_ns(entries: &[ServiceEntry]) -> Option<u64> {
    entries
        .iter()
        .filter(|e| e.kill_every > 0)
        .map(|e| e.recovery_max_ns)
        .max()
}

/// Sessions/sec ratio service-steal / pooled-static on the uniform closed
/// control at the pooled baseline's batch; `None` when either entry is
/// missing or degenerate.
pub fn uniform_throughput_ratio(entries: &[ServiceEntry]) -> Option<f64> {
    let pooled = entries
        .iter()
        .find(|e| e.mix == "uniform" && e.mode == "closed" && e.path == "pooled-static")?;
    let steal = entries.iter().find(|e| {
        e.mix == "uniform"
            && e.mode == "closed"
            && e.path == "service-steal"
            && e.scratch == "reused"
            && e.batch == pooled.batch
    })?;
    if pooled.sessions_per_sec == 0 {
        return None;
    }
    Some(steal.sessions_per_sec as f64 / pooled.sessions_per_sec as f64)
}

/// Renders the sweep as the committed `BENCH_service.json` document.
/// Hand-rolled writer (the workspace deliberately has no JSON dependency);
/// all dynamic values are numbers and short slugs, so escaping is not
/// needed.
pub fn render_json(cfg: &ServiceBenchConfig, entries: &[ServiceEntry]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!(
        "  \"config\": {{\"seed\": {}, \"z\": {:?}, \"lo\": {:?}, \"hi\": {:?}, \"denom\": {}, \"light_m\": {}, \"heavy_m\": {}, \"light_blocks\": {}, \"heavy_blocks\": {}, \"heavy_period\": {}, \"key_bits\": {}, \"workers\": {}, \"window\": {}, \"paced_utilization\": {:?}, \"pooled_batch_cap\": {}, \"kill_every\": {}}},\n",
        cfg.seed,
        cfg.z,
        cfg.lo,
        cfg.hi,
        cfg.denom,
        cfg.light_m,
        cfg.heavy_m,
        cfg.light_blocks,
        cfg.heavy_blocks,
        cfg.heavy_period,
        cfg.key_bits,
        cfg.workers,
        cfg.window,
        cfg.paced_utilization,
        cfg.pooled_batch_cap,
        cfg.kill_every
    ));
    s.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"mix\": \"{}\", \"mode\": \"{}\", \"path\": \"{}\", \"scratch\": \"{}\", \"batch\": {}, \"workers\": {}, \"arrival_per_sec\": {}, \"sessions_per_sec\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"rss_mb\": {}, \"kill_every\": {}, \"kills\": {}, \"respawns\": {}, \"recovery_max_ns\": {}, \"lost\": {}}}{sep}\n",
            e.mix,
            e.mode,
            e.path,
            e.scratch,
            e.batch,
            e.workers,
            e.arrival_per_sec,
            e.sessions_per_sec,
            e.p50_ns,
            e.p95_ns,
            e.p99_ns,
            e.max_ns,
            e.rss_mb,
            e.kill_every,
            e.kills,
            e.respawns,
            e.recovery_max_ns,
            e.lost
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_stream_pins_heavies_to_one_static_worker() {
        let cfg = ServiceBenchConfig::full();
        // heavy_period - 1 must be ≡ workers - 1 (mod workers), so static
        // `ticket mod workers` placement sends every heavy to the last
        // worker — the adversarial case the sweep is built around.
        assert_eq!(
            (cfg.heavy_period - 1) % cfg.workers,
            cfg.workers - 1,
            "full config no longer concentrates heavies on one worker"
        );
        let q = ServiceBenchConfig::quick();
        assert_eq!((q.heavy_period - 1) % q.workers, q.workers - 1);
        for k in 0..cfg.heavy_period * 2 {
            let heavy = is_heavy(&cfg, "skewed", k);
            assert_eq!(heavy, k % cfg.heavy_period == cfg.heavy_period - 1);
            assert!(!is_heavy(&cfg, "uniform", k));
        }
    }

    #[test]
    fn stream_sessions_are_deterministic_and_well_formed() {
        let cfg = ServiceBenchConfig::quick();
        let a = stream_session(&cfg, "skewed", cfg.heavy_period - 1).unwrap();
        let b = stream_session(&cfg, "skewed", cfg.heavy_period - 1).unwrap();
        assert_eq!(a.processors, b.processors);
        assert_eq!(a.processors.len(), cfg.heavy_m);
        assert!(a
            .processors
            .last()
            .is_some_and(|p| p.fault != FaultPlan::None));
        let light = stream_session(&cfg, "skewed", 0).unwrap();
        assert_eq!(light.processors.len(), cfg.light_m);
        assert!(light.processors.iter().all(|p| p.fault == FaultPlan::None));
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&sorted, 0.50), 50);
        assert_eq!(percentile_ns(&sorted, 0.95), 95);
        assert_eq!(percentile_ns(&sorted, 0.99), 99);
        assert_eq!(percentile_ns(&sorted, 1.0), 100);
        assert_eq!(percentile_ns(&[], 0.5), 0);
        assert_eq!(percentile_ns(&[7], 0.99), 7);
    }

    #[test]
    fn render_json_has_schema_and_balanced_braces() {
        let cfg = ServiceBenchConfig::quick();
        let entries = vec![ServiceEntry {
            mix: "skewed",
            mode: "paced",
            path: "service-steal",
            scratch: "reused",
            batch: 20_000,
            workers: 5,
            arrival_per_sec: 3210,
            sessions_per_sec: 3199,
            p50_ns: 400_000,
            p95_ns: 900_000,
            p99_ns: 1_500_000,
            max_ns: 9_000_000,
            rss_mb: 120,
            kill_every: 25,
            kills: 3,
            respawns: 3,
            recovery_max_ns: 7_000_000,
            lost: 0,
        }];
        let json = render_json(&cfg, &entries);
        assert!(json.contains("\"schema\": \"dls-bench-service-v2\""));
        assert!(json.contains("\"path\": \"service-steal\""));
        assert!(json.contains("\"p99_ns\": 1500000"));
        assert!(json.contains("\"scratch\": \"reused\""));
        assert!(json.contains("\"kill_every\": 25"));
        assert!(json.contains("\"respawns\": 3"));
        assert!(json.contains("\"recovery_max_ns\": 7000000"));
        assert!(json.contains("\"lost\": 0"));
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
        assert_eq!(opens, 3, "root + config + one entry");
    }

    #[test]
    fn ratio_helpers_read_matching_entries() {
        let mk = |mix: &'static str,
                  mode: &'static str,
                  path: &'static str,
                  batch: usize,
                  sessions_per_sec: u128,
                  p99_ns: u64| ServiceEntry {
            mix,
            mode,
            path,
            scratch: "reused",
            batch,
            workers: 5,
            arrival_per_sec: 0,
            sessions_per_sec,
            p50_ns: 0,
            p95_ns: 0,
            p99_ns,
            max_ns: p99_ns,
            rss_mb: 0,
            kill_every: 0,
            kills: 0,
            respawns: 0,
            recovery_max_ns: 0,
            lost: 0,
        };
        let entries = vec![
            mk("skewed", "paced", "service-steal", 100, 50, 1_000),
            mk("skewed", "paced", "service-static", 100, 50, 4_000),
            mk("uniform", "closed", "service-steal", 200, 95, 0),
            mk("uniform", "closed", "pooled-static", 200, 100, 0),
        ];
        assert_eq!(p99_improvement(&entries), Some(4.0));
        assert_eq!(uniform_throughput_ratio(&entries), Some(0.95));
        assert_eq!(p99_improvement(&entries[2..]), None);
        assert_eq!(uniform_throughput_ratio(&entries[..2]), None);
    }

    #[test]
    fn churn_helpers_pair_cells_by_batch() {
        let mk = |kill_every: usize, p99_ns: u64, recovery_max_ns: u64| ServiceEntry {
            mix: "skewed",
            mode: "closed",
            path: "service-steal",
            scratch: "reused",
            batch: 200,
            workers: 5,
            arrival_per_sec: 0,
            sessions_per_sec: 100,
            p50_ns: 0,
            p95_ns: 0,
            p99_ns,
            max_ns: p99_ns,
            rss_mb: 0,
            kill_every,
            kills: if kill_every > 0 { 7 } else { 0 },
            respawns: if kill_every > 0 { 7 } else { 0 },
            recovery_max_ns,
            lost: 0,
        };
        let entries = vec![mk(0, 2_000, 0), mk(25, 5_000, 9_000_000)];
        assert_eq!(churn_p99_ratio(&entries), Some(2.5));
        assert_eq!(worst_recovery_ns(&entries), Some(9_000_000));
        // No fault-free cell at the same batch -> no ratio.
        assert_eq!(churn_p99_ratio(&entries[1..]), None);
        assert_eq!(worst_recovery_ns(&entries[..1]), None);
    }
}
