//! Multi-load amortization sweep: the data source for
//! `BENCH_multiload.json`.
//!
//! The headline question: what does keeping `k` per-load chain states
//! warm buy over re-solving `k` independent markets on every bid
//! revision? Three auction-layer paths replay the same frozen
//! `(position, rate)` update schedule on the same `k`-load session
//! ([`dls_mechanism::MultiLoadEngine`]), re-pricing **all `k` loads**
//! after every update:
//!
//! * `"splice"` — the engine hot path
//!   ([`dls_mechanism::MultiLoadEngine::submit_bid`]): one O(m − i)
//!   chain-suffix splice per load, two divisions each, then `k` O(1)
//!   makespan quotes from the cached products.
//! * `"rebuild"` — the in-place fallback
//!   ([`dls_mechanism::MultiLoadEngine::submit_bid_rebuild`]): `k` full
//!   chain rebuilds over retained arenas (disclosed intermediate —
//!   isolates the splice from allocation effects).
//! * `"resolve"` — the **k-independent-solves baseline**: the pre-engine
//!   one-shot pipeline per load — fresh [`BusParams`] +
//!   [`dls_dlt::optimal::optimal_makespan`] for each of the `k` loads on
//!   every update, re-validating and re-allocating each market, exactly
//!   the `"full-recompute"` idiom of the throughput sweep × `k`.
//!
//! The committed regression gate (`tests/tests/scaling.rs`) pins
//! `"splice"` ≥ 3× `"resolve"` in loads/sec at `k = 64`.
//!
//! A fourth family, `"session-vm"`, prices the protocol layer: a full
//! [`dls_protocol::MultiLoadSession`] (keys, signed bids, referee,
//! ledger) through the shared `drive_session` seam, per-load latency and
//! loads/sec at small `k` — the end-to-end cost the auction-layer
//! amortization sits inside.
//!
//! Workloads are the frozen [`crate::workloads::quantized_rates`]
//! splitmix64 streams (dyadic rates and per-load intensities);
//! protocol-level cells warm the process-wide crypto caches through
//! [`crate::workloads::warm_session_caches`] first. This module is
//! covered by the workspace no-panic lint gate: measurement never
//! unwraps; errors propagate as `String` like the other protocol-level
//! harnesses.

use std::time::Instant;

use dls_dlt::multiload::LoadSpec;
use dls_dlt::{optimal, BusParams, ALL_MODELS};
use dls_mechanism::MultiLoadEngine;
use dls_protocol::config::{Behavior, ProcessorConfig};
use dls_protocol::MultiLoadSession;

use crate::payments::model_slug;
use crate::workloads::{quantized_rates, splitmix64, warm_session_caches};

/// Schema identifier written into the JSON header; bump when the layout
/// of the file changes incompatibly.
pub const SCHEMA: &str = "dls-bench-multiload-v1";

/// Everything that determines a multiload sweep; reproducible from the
/// config alone (wall-clock numbers aside).
#[derive(Debug, Clone)]
pub struct MultiloadConfig {
    /// splitmix64 seed for rates, load specs and update schedules.
    pub seed: u64,
    /// Lower bound of the log-uniform bid range.
    pub lo: f64,
    /// Upper bound of the log-uniform bid range.
    pub hi: f64,
    /// Bids, load sizes and intensities are quantized to `1/denom`.
    pub denom: u32,
    /// Market sizes for the auction-layer cells.
    pub m_sizes: Vec<usize>,
    /// Loads-per-session counts for the auction-layer cells.
    pub k_sizes: Vec<usize>,
    /// Bid updates timed per measurement block.
    pub updates_per_block: usize,
    /// Per-cell time budget in nanoseconds (min-of-reps, at least two).
    pub target_ns_per_cell: u128,
    /// Loads-per-session counts for the protocol-level cells.
    pub session_k: Vec<usize>,
    /// Processors in the protocol-level cells.
    pub session_m: usize,
    /// Blocks per load in the protocol-level cells.
    pub session_blocks: usize,
}

impl MultiloadConfig {
    /// The full sweep behind the committed `BENCH_multiload.json`.
    pub fn full() -> Self {
        MultiloadConfig {
            seed: 42,
            lo: 1.0,
            hi: 8.0,
            denom: 64,
            m_sizes: vec![64, 1024],
            k_sizes: vec![1, 8, 64],
            updates_per_block: 256,
            target_ns_per_cell: 250_000_000,
            session_k: vec![1, 8],
            session_m: 3,
            session_blocks: 30,
        }
    }

    /// A seconds-scale subset used by the tier-1 schema/regression test
    /// (keeps `k = 64` so the splice-vs-resolve comparison stays
    /// meaningful at test time).
    pub fn quick() -> Self {
        MultiloadConfig {
            m_sizes: vec![16, 256],
            k_sizes: vec![1, 8, 64],
            updates_per_block: 32,
            target_ns_per_cell: 2_000_000,
            session_k: vec![1, 2],
            session_blocks: 12,
            ..MultiloadConfig::full()
        }
    }
}

/// One measured cell of the sweep.
#[derive(Debug, Clone)]
pub struct MultiloadEntry {
    /// Model slug: `"cp"`, `"ncp-fe"`, or `"ncp-nfe"`.
    pub model: &'static str,
    /// Market size (processors).
    pub m: usize,
    /// Loads per session.
    pub k: usize,
    /// Path slug: `"splice"`, `"rebuild"`, `"resolve"`, or
    /// `"session-vm"`.
    pub path: &'static str,
    /// Operations per timed block: bid updates for the auction paths,
    /// whole-session runs for `"session-vm"`.
    pub ops: usize,
    /// Best-of-reps wall-clock per operation, nanoseconds (one update
    /// re-pricing all `k` loads, or one full k-load session).
    pub ns_per_op: f64,
    /// Per-load share of `ns_per_op` (`ns_per_op / k`) — the per-load
    /// latency figure.
    pub per_load_ns: f64,
    /// Derived rate: loads re-priced (or executed) per second,
    /// `k × ops / elapsed`, rounded to the nearest integer.
    pub loads_per_sec: u128,
}

/// The frozen `k` load specs for a session: sizes log-uniform in
/// `[1/2, 2)`, bus intensities log-uniform in `[1/16, 1/2)`, both dyadic.
pub fn load_specs(cfg: &MultiloadConfig, k: usize) -> Vec<LoadSpec> {
    let sizes = quantized_rates(k, 0.5, 2.0, cfg.seed.wrapping_add(0x10ad), cfg.denom);
    let zs = quantized_rates(k, 0.0625, 0.5, cfg.seed.wrapping_add(0xb005), cfg.denom);
    sizes
        .iter()
        .zip(&zs)
        .map(|(&size, &z)| LoadSpec::new(size, z))
        .collect()
}

/// The frozen `(position, new_rate)` update schedule replayed by all
/// three auction paths (same construction as the throughput sweep).
pub fn update_schedule(cfg: &MultiloadConfig, m: usize) -> Vec<(usize, f64)> {
    let rates = quantized_rates(
        cfg.updates_per_block,
        cfg.lo,
        cfg.hi,
        cfg.seed.wrapping_add(0x5eed),
        cfg.denom,
    );
    let mut state = cfg.seed.wrapping_add(0xb1d5);
    rates
        .iter()
        .map(|&r| ((splitmix64(&mut state) as usize) % m, r))
        .collect()
}

/// Times `op` with a min-of-reps loop: at least two repetitions,
/// stopping once `target_ns` total has elapsed or 64 reps have run.
fn time_ns<R>(target_ns: u128, mut op: impl FnMut() -> R) -> (u128, R) {
    let mut best = u128::MAX;
    let mut reps: u32 = 0;
    let mut total: u128 = 0;
    let mut last;
    loop {
        let t0 = Instant::now();
        last = op();
        let dt = t0.elapsed().as_nanos();
        best = best.min(dt);
        total += dt;
        reps += 1;
        if reps >= 2 && (total >= target_ns || reps >= 64) {
            return (best, last);
        }
    }
}

fn loads_per_sec(loads: u128, ns: u128) -> u128 {
    if ns == 0 {
        return 0;
    }
    (loads as f64 * 1e9 / ns as f64).round() as u128
}

/// The protocol-level k-load session for one `"session-vm"` cell:
/// compliant `session_m`-processor market, load `ℓ` alternating between
/// two dyadic bus intensities.
pub fn session_workload(cfg: &MultiloadConfig, k: usize) -> Result<MultiLoadSession, String> {
    let rates = quantized_rates(cfg.session_m, cfg.lo, cfg.hi, cfg.seed, cfg.denom);
    let mut b = MultiLoadSession::builder(dls_dlt::SystemModel::NcpFe)
        .processors(
            rates
                .iter()
                .map(|&w| ProcessorConfig::new(w, Behavior::Compliant)),
        )
        .seed(cfg.seed);
    for l in 0..k {
        let z = if l % 2 == 0 { 0.25 } else { 0.125 };
        b = b.load(z, cfg.session_blocks);
    }
    b.build().map_err(|e| format!("session workload: {e}"))
}

/// Runs the whole sweep, emitting progress on stderr.
pub fn run_sweep(cfg: &MultiloadConfig) -> Result<Vec<MultiloadEntry>, String> {
    let mut entries = Vec::new();

    // --- Auction layer: splice vs rebuild vs k independent solves -----
    for &model in &ALL_MODELS {
        let slug = model_slug(model);
        for &m in &cfg.m_sizes {
            let bids = quantized_rates(m, cfg.lo, cfg.hi, cfg.seed, cfg.denom);
            let schedule = update_schedule(cfg, m);
            let updates = schedule.len();
            if updates == 0 {
                continue;
            }
            for &k in &cfg.k_sizes {
                if k == 0 {
                    continue;
                }
                let loads = load_specs(cfg, k);
                for path in ["splice", "rebuild", "resolve"] {
                    let mut engine = MultiLoadEngine::new(model, &bids, &loads)
                        .map_err(|e| format!("engine setup: {e}"))?;
                    let mut bids_now = bids.clone();
                    let (ns_block, last) = time_ns(cfg.target_ns_per_cell, || {
                        let mut acc = 0.0;
                        for &(i, r) in &schedule {
                            match path {
                                "rebuild" => {
                                    engine
                                        .submit_bid_rebuild(i, r)
                                        .map_err(|e| format!("rebuild: {e}"))?;
                                    for l in 0..k {
                                        acc += engine
                                            .load_makespan(l)
                                            .map_err(|e| format!("quote: {e}"))?;
                                    }
                                }
                                "resolve" => {
                                    // k independent from-scratch solves:
                                    // the pre-engine one-shot pipeline
                                    // per load on every update.
                                    if let Some(slot) = bids_now.get_mut(i) {
                                        *slot = r;
                                    }
                                    for spec in &loads {
                                        let params =
                                            BusParams::new(spec.z, bids_now.clone())
                                                .map_err(|e| format!("resolve: {e}"))?;
                                        acc += spec.size
                                            * optimal::optimal_makespan(model, &params);
                                    }
                                }
                                _ => {
                                    engine
                                        .submit_bid(i, r)
                                        .map_err(|e| format!("splice: {e}"))?;
                                    for l in 0..k {
                                        acc += engine
                                            .load_makespan(l)
                                            .map_err(|e| format!("quote: {e}"))?;
                                    }
                                }
                            }
                        }
                        Ok::<f64, String>(std::hint::black_box(acc))
                    });
                    last?;
                    let ns = ns_block as f64 / updates as f64;
                    let per_load = ns / k as f64;
                    let rate = loads_per_sec((k * updates) as u128, ns_block);
                    eprintln!(
                        "{slug:8} m={m:5} k={k:3} {path:<10} {ns:>14.1} ns/update  {per_load:>12.1} ns/load  {rate:>10} loads/s"
                    );
                    entries.push(MultiloadEntry {
                        model: slug,
                        m,
                        k,
                        path,
                        ops: updates,
                        ns_per_op: ns,
                        per_load_ns: per_load,
                        loads_per_sec: rate,
                    });
                }
            }
        }
    }

    // --- Protocol layer: full k-load sessions through drive_session ---
    for &k in &cfg.session_k {
        if k == 0 {
            continue;
        }
        let ml = session_workload(cfg, k)?;
        warm_session_caches(ml.sessions(), 1)?;
        let (ns_block, last) = time_ns(cfg.target_ns_per_cell, || {
            let out = ml.run_vm();
            if out.all_completed() {
                Ok(std::hint::black_box(out.k()))
            } else {
                Err("multi-load session did not complete".to_string())
            }
        });
        last?;
        let ns = ns_block as f64;
        let per_load = ns / k as f64;
        let rate = loads_per_sec(k as u128, ns_block);
        eprintln!(
            "ncp-fe   m={:5} k={k:3} session-vm {ns:>14.1} ns/session {per_load:>12.1} ns/load  {rate:>10} loads/s",
            cfg.session_m
        );
        entries.push(MultiloadEntry {
            model: "ncp-fe",
            m: cfg.session_m,
            k,
            path: "session-vm",
            ops: 1,
            ns_per_op: ns,
            per_load_ns: per_load,
            loads_per_sec: rate,
        });
    }

    Ok(entries)
}

/// Speedup of the `"splice"` path over the `"resolve"`
/// (k-independent-solves) baseline at `(model, m, k)`, in loads/sec;
/// `None` when either entry is missing.
pub fn splice_speedup(
    entries: &[MultiloadEntry],
    model: &str,
    m: usize,
    k: usize,
) -> Option<f64> {
    let find = |path: &str| {
        entries
            .iter()
            .find(|e| e.model == model && e.m == m && e.k == k && e.path == path)
            .map(|e| e.ns_per_op)
    };
    let (splice, resolve) = (find("splice")?, find("resolve")?);
    if splice <= 0.0 {
        return None;
    }
    Some(resolve / splice)
}

/// Renders the sweep as the committed `BENCH_multiload.json` document.
/// Hand-rolled writer (the workspace deliberately has no JSON
/// dependency); all dynamic values are integers and short slugs, so
/// escaping is not needed.
pub fn render_json(cfg: &MultiloadConfig, entries: &[MultiloadEntry]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!(
        "  \"config\": {{\"seed\": {}, \"lo\": {:?}, \"hi\": {:?}, \"denom\": {}, \"updates_per_block\": {}, \"session_m\": {}, \"session_blocks\": {}}},\n",
        cfg.seed, cfg.lo, cfg.hi, cfg.denom, cfg.updates_per_block, cfg.session_m, cfg.session_blocks
    ));
    s.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"model\": \"{}\", \"m\": {}, \"k\": {}, \"path\": \"{}\", \"ops\": {}, \"ns_per_op\": {:?}, \"per_load_ns\": {:?}, \"loads_per_sec\": {}}}{sep}\n",
            e.model, e.m, e.k, e.path, e.ops, e.ns_per_op, e.per_load_ns, e.loads_per_sec
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_specs_are_deterministic_dyadic_and_valid() {
        let cfg = MultiloadConfig::quick();
        let a = load_specs(&cfg, 64);
        assert_eq!(a.len(), 64);
        let b = load_specs(&cfg, 64);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.size.to_bits(), y.size.to_bits());
            assert_eq!(x.z.to_bits(), y.z.to_bits());
        }
        for spec in &a {
            assert!(spec.size > 0.0 && spec.size <= 2.5);
            assert!(spec.z > 0.0 && spec.z <= 0.75);
            let scaled = spec.z * cfg.denom as f64;
            assert_eq!(scaled, scaled.round(), "z not dyadic: {}", spec.z);
        }
    }

    #[test]
    fn update_schedule_is_deterministic_and_in_range() {
        let cfg = MultiloadConfig::quick();
        let s1 = update_schedule(&cfg, 256);
        assert_eq!(s1, update_schedule(&cfg, 256));
        assert_eq!(s1.len(), cfg.updates_per_block);
        for &(i, r) in &s1 {
            assert!(i < 256);
            assert!(r.is_finite() && r > 0.0);
        }
    }

    #[test]
    fn render_json_has_schema_and_balanced_braces() {
        let cfg = MultiloadConfig::quick();
        let entries = vec![MultiloadEntry {
            model: "cp",
            m: 16,
            k: 8,
            path: "splice",
            ops: 32,
            ns_per_op: 420.5,
            per_load_ns: 52.5625,
            loads_per_sec: 19_024_970,
        }];
        let json = render_json(&cfg, &entries);
        assert!(json.contains("\"schema\": \"dls-bench-multiload-v1\""));
        assert!(json.contains("\"path\": \"splice\""));
        assert!(json.contains("\"ns_per_op\": 420.5"));
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
        assert_eq!(opens, 3, "root + config + one entry");
    }

    #[test]
    fn splice_speedup_reads_matching_entries() {
        let mk = |path: &'static str, ns: f64| MultiloadEntry {
            model: "cp",
            m: 1024,
            k: 64,
            path,
            ops: 32,
            ns_per_op: ns,
            per_load_ns: ns / 64.0,
            loads_per_sec: 0,
        };
        let entries = vec![mk("splice", 100.0), mk("resolve", 700.0)];
        assert_eq!(splice_speedup(&entries, "cp", 1024, 64), Some(7.0));
        assert_eq!(splice_speedup(&entries, "cp", 1024, 8), None);
        assert_eq!(splice_speedup(&entries, "ncp-fe", 1024, 64), None);
    }
}
