//! Deterministic payment-solver sweep: the data source for
//! `BENCH_payments.json` and the start of the recorded perf trajectory.
//!
//! The sweep times the four payment paths — `f64-fast` / `f64-naive`
//! ([`dls_mechanism::compute_payments`] vs
//! [`dls_mechanism::compute_payments_naive`]) and `exact-fast` /
//! `exact-naive` ([`compute_payments_exact`] vs
//! [`compute_payments_exact_naive`]), plus the opt-in `exact-parallel`
//! path — across market sizes and all three bus models, on workloads from
//! [`crate::workloads::quantized_rates`] (dyadic rates, frozen generator,
//! no external RNG). Everything about a run is a pure function of the
//! [`SweepConfig`], so two machines produce entry-for-entry comparable
//! files (wall-clock numbers differ; structure and workloads do not).
//!
//! The naive exact path is Θ(m²) with growing limb counts, so measuring it
//! at the largest sizes would dominate the whole sweep. The harness instead
//! measures it up to `exact_naive_sizes` and extrapolates to
//! `extrapolate_naive_to` with a power-law fit through the two largest
//! measured sizes — entries so produced carry `"extrapolated": true` and
//! the methodology is documented in `EXPERIMENTS.md`.

use std::time::Instant;

use dls_dlt::{optimal, BusParams, SystemModel, ALL_MODELS};
use dls_mechanism::exact::{
    compute_payments_exact, compute_payments_exact_naive, compute_payments_exact_parallel,
    ExactPayment,
};
use dls_mechanism::{compute_payments, compute_payments_naive};
use dls_num::Rational;

use crate::workloads::quantized_rates;

/// Schema identifier written into the JSON header; bump when the layout of
/// the file changes incompatibly.
pub const SCHEMA: &str = "dls-bench-payments-v1";

/// Everything that determines a sweep. All workload inputs are here, so the
/// output is reproducible from the config alone.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// splitmix64 seed for the rate workload.
    pub seed: u64,
    /// Bus communication rate `z` (dyadic, exactly representable).
    pub z: f64,
    /// Lower bound of the log-uniform rate range.
    pub lo: f64,
    /// Upper bound of the log-uniform rate range.
    pub hi: f64,
    /// Rates are quantized to multiples of `1/denom` (power of two keeps
    /// the exact path's denominators dyadic).
    pub denom: u32,
    /// Market sizes for the O(m) f64 path.
    pub f64_sizes: Vec<usize>,
    /// Market sizes for the Θ(m²) f64 oracle.
    pub f64_naive_sizes: Vec<usize>,
    /// Market sizes for the O(m) exact-rational path.
    pub exact_sizes: Vec<usize>,
    /// Market sizes where the Θ(m²) exact oracle is actually timed.
    pub exact_naive_sizes: Vec<usize>,
    /// Market sizes where the exact oracle is power-law extrapolated
    /// instead of timed (must exceed the largest measured naive size).
    pub extrapolate_naive_to: Vec<usize>,
    /// Sizes at which the scoped-thread exact path is timed (0 = skip).
    pub exact_parallel_sizes: Vec<usize>,
    /// Thread count for the parallel path.
    pub threads: usize,
    /// Per-cell time budget in nanoseconds: repetitions stop once this much
    /// wall-clock has been spent (at least two reps always run).
    pub target_ns_per_cell: u128,
}

impl SweepConfig {
    /// The full sweep behind the committed `BENCH_payments.json`.
    pub fn full() -> Self {
        SweepConfig {
            seed: 42,
            z: 0.0625,
            lo: 1.0,
            hi: 8.0,
            denom: 64,
            f64_sizes: vec![4, 16, 64, 256, 1024, 4096],
            f64_naive_sizes: vec![4, 16, 64, 256, 1024, 4096],
            exact_sizes: vec![4, 16, 64, 256, 512],
            exact_naive_sizes: vec![4, 16, 64, 128],
            extrapolate_naive_to: vec![256, 512],
            exact_parallel_sizes: vec![64, 256, 512],
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            target_ns_per_cell: 250_000_000,
        }
    }

    /// A seconds-scale subset used by the tier-1 schema test.
    pub fn quick() -> Self {
        SweepConfig {
            f64_sizes: vec![4, 16],
            f64_naive_sizes: vec![4, 16],
            exact_sizes: vec![4, 16],
            exact_naive_sizes: vec![4, 8],
            extrapolate_naive_to: vec![16],
            exact_parallel_sizes: vec![16],
            target_ns_per_cell: 2_000_000,
            ..SweepConfig::full()
        }
    }
}

/// One measured (or extrapolated) cell of the sweep.
#[derive(Debug, Clone)]
pub struct BenchEntry {
    /// Model slug: `"cp"`, `"ncp-fe"`, or `"ncp-nfe"`.
    pub model: &'static str,
    /// Market size.
    pub m: usize,
    /// Path slug: `"f64-fast"`, `"f64-naive"`, `"exact-fast"`,
    /// `"exact-naive"`, or `"exact-parallel"`.
    pub path: &'static str,
    /// Best-of-reps wall-clock for one full payment vector, nanoseconds.
    pub ns_per_op: u128,
    /// Largest numerator/denominator bit-length across the produced
    /// payments; `0` for the f64 paths where it does not apply.
    pub peak_rational_bits: usize,
    /// `true` when `ns_per_op` comes from the power-law fit rather than a
    /// measurement.
    pub extrapolated: bool,
}

/// Model slug used in the JSON (short, lowercase, stable).
pub fn model_slug(model: SystemModel) -> &'static str {
    match model {
        SystemModel::Cp => "cp",
        SystemModel::NcpFe => "ncp-fe",
        SystemModel::NcpNfe => "ncp-nfe",
    }
}

/// The workload for a given size: bids plus observed rates where every
/// seventh agent slacks by one quantum (keeps rates dyadic while
/// exercising the mixed-schedule shift in every path).
pub fn workload(cfg: &SweepConfig, m: usize) -> (Vec<f64>, Vec<f64>) {
    let bids = quantized_rates(m, cfg.lo, cfg.hi, cfg.seed, cfg.denom);
    let observed = bids
        .iter()
        .enumerate()
        .map(|(i, &w)| {
            if i % 7 == 3 {
                w + 1.0 / cfg.denom as f64
            } else {
                w
            }
        })
        .collect();
    (bids, observed)
}

fn to_rationals(xs: &[f64]) -> Vec<Rational> {
    xs.iter()
        .map(|&x| Rational::from_f64(x).expect("workload rates are finite"))
        .collect()
}

fn peak_bits(payments: &[ExactPayment]) -> usize {
    payments
        .iter()
        .map(|p| p.compensation.bit_complexity().max(p.bonus.bit_complexity()))
        .max()
        .unwrap_or(0)
}

/// Times `op` with a min-of-reps loop: at least two repetitions, stopping
/// once `target_ns` total has elapsed or 64 reps have run.
fn time_ns<R>(target_ns: u128, mut op: impl FnMut() -> R) -> (u128, R) {
    let mut best = u128::MAX;
    let mut reps: u32 = 0;
    let mut total: u128 = 0;
    let mut last;
    loop {
        let t0 = Instant::now();
        last = op();
        let dt = t0.elapsed().as_nanos();
        best = best.min(dt);
        total += dt;
        reps += 1;
        if reps >= 2 && (total >= target_ns || reps >= 64) {
            return (best, last);
        }
    }
}

/// Power-law extrapolation `t(m) = t1·(m/m1)^p` through the two largest
/// measured `(m, ns)` points. Returns `None` with fewer than two points.
pub fn extrapolate(points: &[(usize, u128)], m: usize) -> Option<u128> {
    if points.len() < 2 {
        return None;
    }
    let mut pts = points.to_vec();
    pts.sort_unstable();
    let (m0, t0) = pts[pts.len() - 2];
    let (m1, t1) = pts[pts.len() - 1];
    if m0 == 0 || t0 == 0 || m1 <= m0 {
        return None;
    }
    let p = ((t1 as f64) / (t0 as f64)).ln() / ((m1 as f64) / (m0 as f64)).ln();
    let ns = t1 as f64 * ((m as f64) / (m1 as f64)).powf(p);
    Some(ns as u128)
}

/// Runs the whole sweep, emitting progress on stderr.
pub fn run_sweep(cfg: &SweepConfig) -> Vec<BenchEntry> {
    let mut entries = Vec::new();
    for &model in &ALL_MODELS {
        let slug = model_slug(model);

        for &m in &cfg.f64_sizes {
            let (bids, observed) = workload(cfg, m);
            let params = BusParams::new(cfg.z, bids).expect("positive quantized rates");
            let alloc = optimal::fractions(model, &params);
            let (ns, _) = time_ns(cfg.target_ns_per_cell, || {
                compute_payments(model, &params, &alloc, &observed)
            });
            eprintln!("{slug:8} m={m:5} f64-fast       {ns:>12} ns/op");
            entries.push(BenchEntry {
                model: slug,
                m,
                path: "f64-fast",
                ns_per_op: ns,
                peak_rational_bits: 0,
                extrapolated: false,
            });
        }

        for &m in &cfg.f64_naive_sizes {
            let (bids, observed) = workload(cfg, m);
            let params = BusParams::new(cfg.z, bids).expect("positive quantized rates");
            let alloc = optimal::fractions(model, &params);
            let (ns, _) = time_ns(cfg.target_ns_per_cell, || {
                compute_payments_naive(model, &params, &alloc, &observed)
            });
            eprintln!("{slug:8} m={m:5} f64-naive      {ns:>12} ns/op");
            entries.push(BenchEntry {
                model: slug,
                m,
                path: "f64-naive",
                ns_per_op: ns,
                peak_rational_bits: 0,
                extrapolated: false,
            });
        }

        let z = Rational::from_f64(cfg.z).expect("dyadic z");
        let mut fast_bits: Vec<(usize, usize)> = Vec::new();
        for &m in &cfg.exact_sizes {
            let (bids, observed) = workload(cfg, m);
            let (bids, observed) = (to_rationals(&bids), to_rationals(&observed));
            let (ns, pay) = time_ns(cfg.target_ns_per_cell, || {
                compute_payments_exact(model, &z, &bids, &observed)
                    .expect("validated workload")
            });
            let bits = peak_bits(&pay);
            fast_bits.push((m, bits));
            eprintln!("{slug:8} m={m:5} exact-fast     {ns:>12} ns/op  peak {bits} bits");
            entries.push(BenchEntry {
                model: slug,
                m,
                path: "exact-fast",
                ns_per_op: ns,
                peak_rational_bits: bits,
                extrapolated: false,
            });
        }

        let mut naive_points: Vec<(usize, u128)> = Vec::new();
        for &m in &cfg.exact_naive_sizes {
            let (bids, observed) = workload(cfg, m);
            let (bids, observed) = (to_rationals(&bids), to_rationals(&observed));
            let (ns, pay) = time_ns(cfg.target_ns_per_cell, || {
                compute_payments_exact_naive(model, &z, &bids, &observed)
                    .expect("validated workload")
            });
            let bits = peak_bits(&pay);
            naive_points.push((m, ns));
            eprintln!("{slug:8} m={m:5} exact-naive    {ns:>12} ns/op  peak {bits} bits");
            entries.push(BenchEntry {
                model: slug,
                m,
                path: "exact-naive",
                ns_per_op: ns,
                peak_rational_bits: bits,
                extrapolated: false,
            });
        }

        for &m in &cfg.extrapolate_naive_to {
            let Some(ns) = extrapolate(&naive_points, m) else {
                continue;
            };
            // The payments are identical whichever solver computes them, so
            // the fast path's peak bit-length at this size is the honest
            // value for the extrapolated row too.
            let bits = fast_bits
                .iter()
                .find(|&&(fm, _)| fm == m)
                .map_or(0, |&(_, b)| b);
            eprintln!("{slug:8} m={m:5} exact-naive    {ns:>12} ns/op  (extrapolated)");
            entries.push(BenchEntry {
                model: slug,
                m,
                path: "exact-naive",
                ns_per_op: ns,
                peak_rational_bits: bits,
                extrapolated: true,
            });
        }

        for &m in &cfg.exact_parallel_sizes {
            let (bids, observed) = workload(cfg, m);
            let (bids, observed) = (to_rationals(&bids), to_rationals(&observed));
            let (ns, pay) = time_ns(cfg.target_ns_per_cell, || {
                compute_payments_exact_parallel(model, &z, &bids, &observed, cfg.threads)
                    .expect("validated workload")
            });
            let bits = peak_bits(&pay);
            eprintln!(
                "{slug:8} m={m:5} exact-parallel {ns:>12} ns/op  ({} threads)",
                cfg.threads
            );
            entries.push(BenchEntry {
                model: slug,
                m,
                path: "exact-parallel",
                ns_per_op: ns,
                peak_rational_bits: bits,
                extrapolated: false,
            });
        }
    }
    entries
}

/// Speedup of `fast_path` over `naive_path` at size `m` for `model`;
/// `None` when either entry is missing.
pub fn speedup(
    entries: &[BenchEntry],
    model: &str,
    m: usize,
    fast_path: &str,
    naive_path: &str,
) -> Option<f64> {
    let find = |path: &str| {
        entries
            .iter()
            .find(|e| e.model == model && e.m == m && e.path == path)
            .map(|e| e.ns_per_op)
    };
    let (fast, naive) = (find(fast_path)?, find(naive_path)?);
    if fast == 0 {
        return None;
    }
    Some(naive as f64 / fast as f64)
}

/// Renders the sweep as the committed `BENCH_payments.json` document.
///
/// Hand-rolled writer (the workspace deliberately has no JSON dependency);
/// the only dynamic values are integers, booleans, and short slugs, so
/// escaping is not needed.
pub fn render_json(cfg: &SweepConfig, entries: &[BenchEntry]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
    s.push_str(&format!(
        "  \"config\": {{\"seed\": {}, \"z\": {:?}, \"lo\": {:?}, \"hi\": {:?}, \"denom\": {}, \"threads\": {}}},\n",
        cfg.seed, cfg.z, cfg.lo, cfg.hi, cfg.denom, cfg.threads
    ));
    s.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"model\": \"{}\", \"m\": {}, \"path\": \"{}\", \"ns_per_op\": {}, \"peak_rational_bits\": {}, \"extrapolated\": {}}}{sep}\n",
            e.model, e.m, e.path, e.ns_per_op, e.peak_rational_bits, e.extrapolated
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extrapolation_recovers_quadratic() {
        // t = m² exactly; fitting through (64, 4096) and (128, 16384) must
        // predict 256² and 512².
        let pts = vec![(16usize, 256u128), (64, 4096), (128, 16384)];
        assert_eq!(extrapolate(&pts, 256), Some(65536));
        assert_eq!(extrapolate(&pts, 512), Some(262144));
        assert_eq!(extrapolate(&pts[..1], 256), None);
    }

    #[test]
    fn workload_is_deterministic_and_dyadic() {
        let cfg = SweepConfig::quick();
        let (bids, observed) = workload(&cfg, 16);
        assert_eq!(bids.len(), 16);
        assert_eq!((bids.clone(), observed.clone()), workload(&cfg, 16));
        // Slackers observe strictly slower rates; everyone else is truthful.
        for (i, (&b, &o)) in bids.iter().zip(&observed).enumerate() {
            if i % 7 == 3 {
                assert!(o > b);
            } else {
                assert_eq!(o, b);
            }
        }
    }

    #[test]
    fn render_json_has_schema_and_balanced_braces() {
        let cfg = SweepConfig::quick();
        let entries = vec![BenchEntry {
            model: "cp",
            m: 4,
            path: "f64-fast",
            ns_per_op: 1200,
            peak_rational_bits: 0,
            extrapolated: false,
        }];
        let json = render_json(&cfg, &entries);
        assert!(json.contains("\"schema\": \"dls-bench-payments-v1\""));
        assert!(json.contains("\"path\": \"f64-fast\""));
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
        assert_eq!(opens, 3, "root + config + one entry");
    }

    #[test]
    fn speedup_reads_matching_entries() {
        let mk = |path: &'static str, ns: u128| BenchEntry {
            model: "cp",
            m: 64,
            path,
            ns_per_op: ns,
            peak_rational_bits: 0,
            extrapolated: false,
        };
        let entries = vec![mk("exact-fast", 100), mk("exact-naive", 5000)];
        assert_eq!(
            speedup(&entries, "cp", 64, "exact-fast", "exact-naive"),
            Some(50.0)
        );
        assert_eq!(speedup(&entries, "cp", 32, "exact-fast", "exact-naive"), None);
    }
}
