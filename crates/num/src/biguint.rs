//! Arbitrary-precision unsigned integer.
//!
//! Little-endian `Vec<u32>` limb representation, normalized so the most
//! significant limb is non-zero (zero is the empty vector). Every pairwise
//! limb product fits in `u64`, which keeps the schoolbook kernels free of
//! overflow gymnastics.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, BitAnd, Div, Mul, Rem, Shl, Shr, Sub};

/// Number of decimal digits that fit a single `u32` chunk when parsing and
/// printing (10^9 < 2^32).
const DEC_CHUNK_DIGITS: usize = 9;
const DEC_CHUNK_RADIX: u32 = 1_000_000_000;

/// Limb count above which multiplication switches from schoolbook to
/// Karatsuba. Chosen empirically; correctness does not depend on it (property
/// tests exercise both paths by straddling the threshold).
const KARATSUBA_THRESHOLD: usize = 32;

/// Error returned when parsing a [`BigUint`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseErrorKind::InvalidDigit(c) => write!(f, "invalid digit {c:?}"),
        }
    }
}

impl std::error::Error for ParseBigUintError {}

/// An arbitrary-precision unsigned integer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; no trailing zeros; empty == 0.
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value `0`.
    #[inline]
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    #[inline]
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from little-endian `u32` limbs (trailing zeros allowed).
    pub fn from_limbs_le(limbs: Vec<u32>) -> Self {
        let mut v = BigUint { limbs };
        v.normalize();
        v
    }

    /// Returns the little-endian limbs (no trailing zeros).
    pub fn limbs(&self) -> &[u32] {
        &self.limbs
    }

    /// Replaces `self`'s value with the little-endian limbs in `src`
    /// (trailing zeros allowed), reusing the existing allocation.
    pub(crate) fn assign_from_slice(&mut self, src: &[u32]) {
        self.limbs.clear();
        self.limbs.extend_from_slice(src);
        self.normalize();
    }

    /// `true` iff the value is `0`.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// `true` iff the value is `1`.
    #[inline]
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// `true` iff the value is even (zero is even).
    #[inline]
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits; `0` has zero bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 32, i % 32);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to `value`, growing the limb vector as needed.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let (limb, off) = (i / 32, i % 32);
        if value {
            if self.limbs.len() <= limb {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << off;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1 << off);
            self.normalize();
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Converts to `u64`, returning `None` on overflow.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u64),
            2 => Some(self.limbs[0] as u64 | (self.limbs[1] as u64) << 32),
            _ => None,
        }
    }

    /// Converts to `u128`, returning `None` on overflow.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut v: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            v |= (l as u128) << (32 * i);
        }
        Some(v)
    }

    /// Lossy conversion to `f64` (round-to-nearest on the top 64 bits).
    ///
    /// Values above `f64::MAX` map to `f64::INFINITY`.
    ///
    /// This is a reporting/display boundary: exact arithmetic never reads
    /// the result back.
    // dls-lint: allow(no-float-in-exact) -- exit boundary from the exact domain
    pub fn to_f64(&self) -> f64 {
        let bits = self.bits();
        if bits == 0 {
            return 0.0; // dls-lint: allow(no-float-in-exact) -- exit boundary
        }
        if bits <= 64 {
            // dls-lint: allow(no-float-in-exact) -- exit boundary
            return self.to_u64().expect("fits by bit count") as f64;
        }
        // Take the top 64 bits and scale.
        let shift = bits - 64;
        let top = (self >> shift).to_u64().expect("64 bits by construction");
        let mut v = top as f64; // dls-lint: allow(no-float-in-exact) -- exit boundary
        // Multiply by 2^shift without overflowing intermediate exponents.
        let mut remaining = shift;
        while remaining > 0 {
            let step = remaining.min(512);
            v *= 2f64.powi(step as i32); // dls-lint: allow(no-float-in-exact) -- exit boundary
            remaining -= step; // dls-lint: allow(unchecked-arith) -- step = remaining.min(512) <= remaining
        }
        v
    }

    /// Parses a decimal string (ASCII digits only, no sign, underscores
    /// permitted as separators).
    pub fn from_dec_str(s: &str) -> Result<Self, ParseBigUintError> {
        let digits: Vec<u32> = {
            let mut ds = Vec::with_capacity(s.len());
            for c in s.chars() {
                if c == '_' {
                    continue;
                }
                match c.to_digit(10) {
                    Some(d) => ds.push(d),
                    None => {
                        return Err(ParseBigUintError {
                            kind: ParseErrorKind::InvalidDigit(c),
                        })
                    }
                }
            }
            ds
        };
        if digits.is_empty() {
            return Err(ParseBigUintError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut acc = BigUint::zero();
        // Consume 9 digits at a time: acc = acc * 10^k + chunk.
        for group in digits.chunks(DEC_CHUNK_DIGITS) {
            let mut chunk: u32 = 0;
            let mut radix: u32 = 1;
            for &d in group {
                chunk = chunk * 10 + d;
                radix = radix.saturating_mul(10);
            }
            let radix = if group.len() == DEC_CHUNK_DIGITS {
                DEC_CHUNK_RADIX
            } else {
                radix
            };
            acc = acc.mul_small(radix);
            // dls-lint: allow(unchecked-arith) -- BigUint AddAssign is arbitrary-precision
            acc += &BigUint::from(chunk);
        }
        Ok(acc)
    }

    /// Parses a hexadecimal string (no `0x` prefix, underscores permitted).
    pub fn from_hex_str(s: &str) -> Result<Self, ParseBigUintError> {
        let mut nibbles = Vec::with_capacity(s.len());
        for c in s.chars() {
            if c == '_' {
                continue;
            }
            match c.to_digit(16) {
                Some(d) => nibbles.push(d),
                None => {
                    return Err(ParseBigUintError {
                        kind: ParseErrorKind::InvalidDigit(c),
                    })
                }
            }
        }
        if nibbles.is_empty() {
            return Err(ParseBigUintError {
                kind: ParseErrorKind::Empty,
            });
        }
        let mut limbs = vec![0u32; nibbles.len().div_ceil(8)];
        for (i, &n) in nibbles.iter().rev().enumerate() {
            // dls-lint: allow(unchecked-arith) -- nibble < 16 shifted by at most 28 fits u32
            limbs[i / 8] |= n << (4 * (i % 8));
        }
        Ok(BigUint::from_limbs_le(limbs))
    }

    /// Serializes to big-endian bytes with no leading zeros (`0` → empty).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for &l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        let first_nonzero = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first_nonzero);
        out
    }

    /// Parses from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = vec![0u32; bytes.len().div_ceil(4)];
        for (i, &b) in bytes.iter().rev().enumerate() {
            // dls-lint: allow(unchecked-arith) -- byte < 256 shifted by at most 24 fits u32
            limbs[i / 4] |= (b as u32) << (8 * (i % 4));
        }
        BigUint::from_limbs_le(limbs)
    }

    /// Multiplies by a single `u32` limb.
    pub fn mul_small(&self, rhs: u32) -> BigUint {
        if rhs == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: u64 = 0;
        for &l in &self.limbs {
            let p = l as u64 * rhs as u64 + carry;
            out.push(p as u32);
            carry = p >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        BigUint::from_limbs_le(out)
    }

    /// Divides by a single `u32`, returning `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `rhs == 0`.
    pub fn divrem_small(&self, rhs: u32) -> (BigUint, u32) {
        assert!(rhs != 0, "division by zero");
        let mut out = vec![0u32; self.limbs.len()];
        let mut rem: u64 = 0;
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            let cur = (rem << 32) | l as u64;
            out[i] = (cur / rhs as u64) as u32;
            rem = cur % rhs as u64;
        }
        (BigUint::from_limbs_le(out), rem as u32)
    }

    /// Checked subtraction: `None` if `rhs > self`.
    pub fn checked_sub(&self, rhs: &BigUint) -> Option<BigUint> {
        if self < rhs {
            return None;
        }
        Some(sub_unchecked(&self.limbs, &rhs.limbs))
    }

    /// Euclidean division returning `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn divrem(&self, divisor: &BigUint) -> (BigUint, BigUint) {
        assert!(!divisor.is_zero(), "division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (BigUint::zero(), self.clone()),
            Ordering::Equal => return (BigUint::one(), BigUint::zero()),
            Ordering::Greater => {}
        }
        if divisor.limbs.len() == 1 {
            let (q, r) = self.divrem_small(divisor.limbs[0]);
            return (q, BigUint::from(r));
        }
        knuth_d(self, divisor)
    }

    /// Raises `self` to the power `exp` by binary exponentiation.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            exp >>= 1;
            if exp > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Integer square root (floor).
    pub fn isqrt(&self) -> BigUint {
        if self.is_zero() {
            return BigUint::zero();
        }
        // Newton's method with an initial guess from the bit length.
        // dls-lint: allow(unchecked-arith) -- BigUint shift is arbitrary-precision
        let mut x = BigUint::one() << (self.bits().div_ceil(2));
        loop {
            // y = (x + self/x) / 2
            let y = (&x + &(self / &x)).divrem_small(2).0;
            if y >= x {
                return x;
            }
            x = y;
        }
    }
}

// ---------------------------------------------------------------------------
// Construction from primitives
// ---------------------------------------------------------------------------

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from_limbs_le(vec![v])
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_limbs_le(vec![v as u32, (v >> 32) as u32])
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs_le(vec![
            v as u32,
            (v >> 32) as u32,
            (v >> 64) as u32,
            (v >> 96) as u32,
        ])
    }
}

impl From<usize> for BigUint {
    fn from(v: usize) -> Self {
        BigUint::from(v as u64)
    }
}

// ---------------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------------

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

// ---------------------------------------------------------------------------
// Arithmetic kernels
// ---------------------------------------------------------------------------

#[allow(clippy::needless_range_loop)] // indexing two slices in lockstep
fn add_limbs(a: &[u32], b: &[u32]) -> BigUint {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry: u64 = 0;
    for i in 0..long.len() {
        let s = long[i] as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
        out.push(s as u32);
        carry = s >> 32;
    }
    if carry != 0 {
        out.push(carry as u32);
    }
    BigUint::from_limbs_le(out)
}

/// `a - b` assuming `a >= b`.
#[allow(clippy::needless_range_loop)] // indexing two slices in lockstep
fn sub_unchecked(a: &[u32], b: &[u32]) -> BigUint {
    debug_assert!(a.len() >= b.len());
    let mut out = Vec::with_capacity(a.len());
    let mut borrow: i64 = 0;
    for i in 0..a.len() {
        let d = a[i] as i64 - b.get(i).copied().unwrap_or(0) as i64 - borrow;
        if d < 0 {
            // dls-lint: allow(unchecked-arith) -- d in (-2^32, 0), so d + 2^32 fits i64 and u32
            out.push((d + (1i64 << 32)) as u32);
            borrow = 1;
        } else {
            out.push(d as u32);
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0, "subtraction underflow");
    BigUint::from_limbs_le(out)
}

fn mul_schoolbook(a: &[u32], b: &[u32]) -> BigUint {
    if a.is_empty() || b.is_empty() {
        return BigUint::zero();
    }
    let mut out = vec![0u32; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: u64 = 0;
        for (j, &bj) in b.iter().enumerate() {
            let t = ai as u64 * bj as u64 + out[i + j] as u64 + carry;
            out[i + j] = t as u32;
            carry = t >> 32;
        }
        // dls-lint: allow(unchecked-arith) -- i < a.len(), so k <= out.len(), memory-bounded
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u64 + carry;
            out[k] = t as u32;
            carry = t >> 32;
            k += 1;
        }
    }
    BigUint::from_limbs_le(out)
}

fn mul_karatsuba(a: &[u32], b: &[u32]) -> BigUint {
    let n = a.len().min(b.len());
    if n < KARATSUBA_THRESHOLD {
        return mul_schoolbook(a, b);
    }
    let half = a.len().max(b.len()) / 2;
    let (a0, a1) = split_at_clamped(a, half);
    let (b0, b1) = split_at_clamped(b, half);
    // Low halves can end in zero limbs after the split; trim the borrowed
    // slices instead of allocating normalized copies. High halves inherit
    // the parent's non-zero top limb and need no trim.
    let (a0, b0) = (trim_zeros(a0), trim_zeros(b0));

    let z0 = mul_karatsuba(a0, b0);
    let z2 = mul_karatsuba(a1, b1);
    let sa = add_limbs(a0, a1);
    let sb = add_limbs(b0, b1);
    let z1_full = mul_karatsuba(sa.limbs(), sb.limbs());
    // z1 = (a0+a1)(b0+b1) - z0 - z2  >= 0
    let z1 = z1_full
        .checked_sub(&z0)
        .and_then(|t| t.checked_sub(&z2))
        .expect("karatsuba middle term is non-negative");

    // dls-lint: allow(unchecked-arith) -- BigUint shifts and adds are arbitrary-precision
    (z2 << (64 * half)) + (z1 << (32 * half)) + z0
}

fn split_at_clamped(v: &[u32], at: usize) -> (&[u32], &[u32]) {
    if at >= v.len() {
        (v, &[])
    } else {
        v.split_at(at)
    }
}

/// Drops trailing zero limbs from a borrowed slice (the slice analogue of
/// [`BigUint::normalize`]).
fn trim_zeros(v: &[u32]) -> &[u32] {
    let mut n = v.len();
    while n > 0 && v[n - 1] == 0 {
        n -= 1;
    }
    &v[..n]
}

/// Knuth TAOCP vol. 2, Algorithm 4.3.1 D: multi-limb division.
fn knuth_d(num: &BigUint, den: &BigUint) -> (BigUint, BigUint) {
    // Normalize: shift so the divisor's top limb has its high bit set.
    let shift = den.limbs.last().expect("divisor >= 2 limbs").leading_zeros() as usize;
    // dls-lint: allow(unchecked-arith) -- BigUint shift is arbitrary-precision
    let v = den << shift; // divisor
    let n = v.limbs.len();

    // Shifted dividend, consumed directly as the working buffer (one extra
    // high limb appended) — the shift already allocated a fresh vector.
    // dls-lint: allow(unchecked-arith) -- BigUint shift is arbitrary-precision
    let mut us: Vec<u32> = (num << shift).limbs;
    let m = us.len() - n; // dls-lint: allow(unchecked-arith) -- knuth_d requires num >= den, so us.len() >= n
    us.push(0);

    let mut q = vec![0u32; m + 1];
    knuth_d_core(&mut us, &v.limbs, Some(&mut q));

    let quotient = BigUint::from_limbs_le(q);
    let remainder = BigUint::from_limbs_le(us[..n].to_vec()) >> shift;
    (quotient, remainder)
}

/// Main loop of Algorithm D over pre-normalized buffers, shared between
/// [`knuth_d`] and the remainder-only scratch path in [`crate::modmath`].
///
/// `vs` is the shifted divisor (top bit of its last limb set, at least two
/// limbs); `us` is the shifted dividend with one extra high limb appended
/// (`us.len() >= vs.len() + 1`). On return `us[..vs.len()]` holds the still
/// shifted remainder. Quotient limbs are written to `q_out` when provided
/// (`q_out.len() == us.len() - vs.len()`); a remainder-only caller passes
/// `None` and skips the quotient allocation entirely.
pub(crate) fn knuth_d_core(us: &mut [u32], vs: &[u32], mut q_out: Option<&mut [u32]>) {
    let n = vs.len();
    let m = us.len() - 1 - n;
    let vn1 = vs[n - 1] as u64;
    let vn2 = vs[n - 2] as u64;

    for j in (0..=m).rev() {
        // Estimate q̂ = (u[j+n]·B + u[j+n-1]) / v[n-1], then correct.
        let top = ((us[j + n] as u64) << 32) | us[j + n - 1] as u64;
        let mut qhat = top / vn1;
        let mut rhat = top % vn1;
        while qhat >= 1u64 << 32
            || qhat * vn2 > ((rhat << 32) | us[j + n - 2] as u64)
        {
            qhat -= 1;
            // dls-lint: allow(unchecked-arith) -- rhat < vn1 < 2^32, so rhat + vn1 < 2^33 fits u64
            rhat += vn1;
            if rhat >= 1u64 << 32 {
                break;
            }
        }

        // Multiply-subtract: u[j..j+n] -= q̂ · v.
        let mut borrow: i64 = 0;
        let mut carry: u64 = 0;
        for i in 0..n {
            let p = qhat * vs[i] as u64 + carry;
            carry = p >> 32;
            let d = us[j + i] as i64 - (p as u32) as i64 - borrow;
            if d < 0 {
                // dls-lint: allow(unchecked-arith) -- d in (-2^32, 0), so d + 2^32 fits i64 and u32
                us[j + i] = (d + (1i64 << 32)) as u32;
                borrow = 1;
            } else {
                us[j + i] = d as u32;
                borrow = 0;
            }
        }
        let d = us[j + n] as i64 - carry as i64 - borrow;
        if d < 0 {
            // q̂ was one too large: add back.
            // dls-lint: allow(unchecked-arith) -- d in (-2^32, 0), so d + 2^32 fits i64 and u32
            us[j + n] = (d + (1i64 << 32)) as u32;
            qhat -= 1;
            let mut carry: u64 = 0;
            for i in 0..n {
                let s = us[j + i] as u64 + vs[i] as u64 + carry;
                us[j + i] = s as u32;
                carry = s >> 32;
            }
            us[j + n] = us[j + n].wrapping_add(carry as u32);
        } else {
            us[j + n] = d as u32;
        }
        if let Some(q) = q_out.as_deref_mut() {
            q[j] = qhat as u32;
        }
    }
}

// ---------------------------------------------------------------------------
// Operator impls (reference forms are canonical; owned forms forward)
// ---------------------------------------------------------------------------

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        add_limbs(&self.limbs, &rhs.limbs)
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(mut self, rhs: BigUint) -> BigUint {
        self += &rhs; // dls-lint: allow(unchecked-arith) -- BigUint AddAssign is arbitrary-precision
        self
    }
}

impl AddAssign<&BigUint> for BigUint {
    /// In-place addition reusing `self`'s limb buffer — no allocation unless
    /// the result needs an extra limb beyond the current capacity.
    fn add_assign(&mut self, rhs: &BigUint) {
        if self.limbs.len() < rhs.limbs.len() {
            self.limbs.resize(rhs.limbs.len(), 0);
        }
        let mut carry: u64 = 0;
        for (i, limb) in self.limbs.iter_mut().enumerate() {
            if carry == 0 && i >= rhs.limbs.len() {
                return; // no addend limbs left and nothing to propagate
            }
            let r = rhs.limbs.get(i).copied().unwrap_or(0);
            let s = *limb as u64 + r as u64 + carry;
            *limb = s as u32;
            carry = s >> 32;
        }
        if carry != 0 {
            self.limbs.push(carry as u32);
        }
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    /// # Panics
    /// Panics on underflow; use [`BigUint::checked_sub`] to handle it.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs).expect("BigUint subtraction underflow")
    }
}

impl Sub<&BigUint> for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        &self - rhs // dls-lint: allow(unchecked-arith) -- forwards to the checked_sub-backed impl
    }
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        mul_karatsuba(&self.limbs, &rhs.limbs)
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        &self * &rhs
    }
}

impl Div for &BigUint {
    type Output = BigUint;
    fn div(self, rhs: &BigUint) -> BigUint {
        self.divrem(rhs).0
    }
}

impl Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.divrem(rhs).1
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let (limb_shift, bit_shift) = (bits / 32, bits % 32);
        let mut out = vec![0u32; self.limbs.len() + limb_shift + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            let v = (l as u64) << bit_shift;
            out[i + limb_shift] |= v as u32;
            out[i + limb_shift + 1] |= (v >> 32) as u32;
        }
        BigUint::from_limbs_le(out)
    }
}

impl Shl<usize> for BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        &self << bits // dls-lint: allow(unchecked-arith) -- BigUint shift is arbitrary-precision
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        let (limb_shift, bit_shift) = (bits / 32, bits % 32);
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        // dls-lint: allow(unchecked-arith) -- early return above guarantees limb_shift < len
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for i in limb_shift..self.limbs.len() {
            let lo = self.limbs[i] >> bit_shift;
            let hi = if bit_shift > 0 {
                self.limbs
                    .get(i + 1)
                    .map_or(0, |&n| (n as u64) << (32 - bit_shift))
                    as u32
            } else {
                0
            };
            out.push(lo | hi);
        }
        BigUint::from_limbs_le(out)
    }
}

impl Shr<usize> for BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        &self >> bits
    }
}

impl BitAnd for &BigUint {
    type Output = BigUint;
    fn bitand(self, rhs: &BigUint) -> BigUint {
        let n = self.limbs.len().min(rhs.limbs.len());
        let out = (0..n).map(|i| self.limbs[i] & rhs.limbs[i]).collect();
        BigUint::from_limbs_le(out)
    }
}

// ---------------------------------------------------------------------------
// Formatting
// ---------------------------------------------------------------------------

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        // Repeated division by 10^9 yields base-10^9 digits.
        let mut chunks = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.divrem_small(DEC_CHUNK_RADIX);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::with_capacity(chunks.len() * DEC_CHUNK_DIGITS);
        s.push_str(&chunks.last().unwrap().to_string());
        for c in chunks.iter().rev().skip(1) {
            s.push_str(&format!("{c:09}"));
        }
        f.write_str(&s)
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({self})")
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        write!(f, "{:x}", self.limbs.last().unwrap())?;
        for l in self.limbs.iter().rev().skip(1) {
            write!(f, "{l:08x}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for BigUint {
    type Err = ParseBigUintError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BigUint::from_dec_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigUint {
        BigUint::from_dec_str(s).unwrap()
    }

    #[test]
    fn zero_properties() {
        let z = BigUint::zero();
        assert!(z.is_zero());
        assert!(z.is_even());
        assert_eq!(z.bits(), 0);
        assert_eq!(z.to_string(), "0");
        assert_eq!(z.to_u64(), Some(0));
    }

    #[test]
    fn from_primitives_roundtrip() {
        assert_eq!(BigUint::from(0u32).to_u64(), Some(0));
        assert_eq!(BigUint::from(u32::MAX).to_u64(), Some(u32::MAX as u64));
        assert_eq!(BigUint::from(u64::MAX).to_u64(), Some(u64::MAX));
        assert_eq!(BigUint::from(u128::MAX).to_u128(), Some(u128::MAX));
        assert_eq!(BigUint::from(u64::MAX).to_u128(), Some(u64::MAX as u128));
    }

    #[test]
    fn dec_parse_and_display() {
        for s in [
            "0",
            "1",
            "9",
            "10",
            "999999999",
            "1000000000",
            "123456789012345678901234567890",
            "340282366920938463463374607431768211455", // u128::MAX
        ] {
            assert_eq!(big(s).to_string(), s, "roundtrip {s}");
        }
        assert_eq!(big("1_000_000"), BigUint::from(1_000_000u32));
        assert!(BigUint::from_dec_str("").is_err());
        assert!(BigUint::from_dec_str("12a").is_err());
    }

    #[test]
    fn hex_parse_and_format() {
        let v = BigUint::from_hex_str("deadbeefcafebabe0123456789abcdef").unwrap();
        assert_eq!(format!("{v:x}"), "deadbeefcafebabe0123456789abcdef");
        assert_eq!(format!("{:x}", BigUint::zero()), "0");
        assert_eq!(
            BigUint::from_hex_str("ff").unwrap(),
            BigUint::from(255u32)
        );
        assert!(BigUint::from_hex_str("xyz").is_err());
    }

    #[test]
    fn bytes_roundtrip() {
        let v = big("123456789012345678901234567890123456789");
        assert_eq!(BigUint::from_bytes_be(&v.to_bytes_be()), v);
        assert_eq!(BigUint::zero().to_bytes_be(), Vec::<u8>::new());
        assert_eq!(BigUint::from_bytes_be(&[0, 0, 7]), BigUint::from(7u32));
        assert_eq!(BigUint::from(256u32).to_bytes_be(), vec![1, 0]);
    }

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::one();
        let s = &a + &b;
        assert_eq!(s.to_string(), "18446744073709551616");
        assert_eq!(s.bits(), 65);
    }

    #[test]
    fn add_assign_matches_operator() {
        let cases = [
            ("0", "0"),
            ("0", "123456789012345678901234567890"),
            ("123456789012345678901234567890", "0"),
            ("18446744073709551615", "1"), // carry ripples past rhs
            ("4294967295", "4294967295"),  // wrap at the top limb
            (
                "123456789012345678901234567890",
                "98765432109876543210",
            ),
        ];
        for (a, b) in cases {
            let (a, b) = (big(a), big(b));
            let mut s = a.clone();
            s += &b;
            assert_eq!(s, &a + &b, "{a} += {b}");
            assert!(s.limbs.last() != Some(&0), "normalized after {a} += {b}");
        }
    }

    #[test]
    fn sub_with_borrow_chain() {
        let a = big("18446744073709551616"); // 2^64
        let b = BigUint::one();
        assert_eq!((a - &b).to_u64(), Some(u64::MAX));
    }

    #[test]
    fn sub_underflow_checked() {
        assert!(BigUint::one().checked_sub(&BigUint::from(2u32)).is_none());
        assert_eq!(
            BigUint::from(2u32).checked_sub(&BigUint::from(2u32)),
            Some(BigUint::zero())
        );
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = &BigUint::one() - &BigUint::from(2u32);
    }

    #[test]
    fn mul_known_answer() {
        // Computed independently: 2^127 - 1 squared.
        let m127 = (BigUint::one() << 127usize) - &BigUint::one();
        let sq = &m127 * &m127;
        assert_eq!(
            sq.to_string(),
            "28948022309329048855892746252171976962977213799489202546401021394546514198529"
        );
    }

    #[test]
    fn mul_karatsuba_matches_schoolbook() {
        // Construct operands bigger than the Karatsuba threshold.
        let mut limbs_a = Vec::new();
        let mut limbs_b = Vec::new();
        let mut x: u32 = 0x9e3779b9;
        for i in 0..(KARATSUBA_THRESHOLD * 3) {
            x = x.wrapping_mul(2654435761).wrapping_add(i as u32);
            limbs_a.push(x);
            x = x.rotate_left(13) ^ 0xabcdef01;
            limbs_b.push(x);
        }
        let a = BigUint::from_limbs_le(limbs_a);
        let b = BigUint::from_limbs_le(limbs_b);
        assert_eq!(mul_karatsuba(a.limbs(), b.limbs()), mul_schoolbook(a.limbs(), b.limbs()));
    }

    #[test]
    fn div_small_cases() {
        let (q, r) = BigUint::from(100u32).divrem(&BigUint::from(7u32));
        assert_eq!((q.to_u64(), r.to_u64()), (Some(14), Some(2)));
        let (q, r) = BigUint::from(5u32).divrem(&BigUint::from(7u32));
        assert_eq!((q.to_u64(), r.to_u64()), (Some(0), Some(5)));
        let (q, r) = BigUint::from(7u32).divrem(&BigUint::from(7u32));
        assert_eq!((q.to_u64(), r.to_u64()), (Some(1), Some(0)));
    }

    #[test]
    fn div_multi_limb_known_answer() {
        let n = big("123456789012345678901234567890123456789012345678901234567890");
        let d = big("987654321098765432109876543210");
        let (q, r) = n.divrem(&d);
        // Verified by exact reconstruction below and magnitudes here.
        assert_eq!(&(&q * &d) + &r, n);
        assert!(r < d);
        // Quotient and remainder verified against an independent
        // arbitrary-precision implementation.
        assert_eq!(q.to_string(), "124999998860937500014238281249");
        assert_eq!(r.to_string(), "935329860093532986009353298600");
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigUint::one().divrem(&BigUint::zero());
    }

    #[test]
    fn knuth_d_add_back_case() {
        // A case engineered to trigger the rare "add back" branch:
        // u = B^2·(B-1), v = B·(B-1)+1 where B = 2^32 triggers qhat
        // overestimation.
        let b = BigUint::one() << 32usize;
        let u = &(&b * &b) * &(&b - &BigUint::one());
        let v = &(&b * &(&b - &BigUint::one())) + &BigUint::one();
        let (q, r) = u.divrem(&v);
        assert_eq!(&(&q * &v) + &r, u);
        assert!(r < v);
    }

    #[test]
    fn shifts() {
        let v = big("123456789012345678901234567890");
        assert_eq!(&(&v << 67) >> 67, v);
        assert_eq!(&v >> 200, BigUint::zero());
        assert_eq!(&v << 0, v);
        assert_eq!(BigUint::one() << 32usize, big("4294967296"));
    }

    #[test]
    fn bit_access() {
        let mut v = BigUint::zero();
        v.set_bit(100, true);
        assert!(v.bit(100));
        assert!(!v.bit(99));
        assert_eq!(v.bits(), 101);
        v.set_bit(100, false);
        assert!(v.is_zero());
    }

    #[test]
    fn pow_known() {
        assert_eq!(BigUint::from(2u32).pow(100).to_string(), "1267650600228229401496703205376");
        assert_eq!(BigUint::from(7u32).pow(0), BigUint::one());
        assert_eq!(BigUint::zero().pow(0), BigUint::one());
        assert_eq!(BigUint::zero().pow(5), BigUint::zero());
    }

    #[test]
    fn isqrt_known() {
        assert_eq!(BigUint::zero().isqrt(), BigUint::zero());
        assert_eq!(BigUint::from(15u32).isqrt(), BigUint::from(3u32));
        assert_eq!(BigUint::from(16u32).isqrt(), BigUint::from(4u32));
        let big_square = big("123456789012345678901234567890").pow(2);
        assert_eq!(big_square.isqrt(), big("123456789012345678901234567890"));
    }

    #[test]
    fn to_f64_accuracy() {
        assert_eq!(BigUint::from(12345u32).to_f64(), 12345.0);
        let v = BigUint::from(2u32).pow(100);
        let expected = 2f64.powi(100);
        assert!((v.to_f64() - expected).abs() / expected < 1e-15);
    }

    #[test]
    fn ordering() {
        assert!(big("100") > big("99"));
        assert!(big("18446744073709551616") > big("18446744073709551615"));
        assert_eq!(big("42").cmp(&big("42")), Ordering::Equal);
    }
}
