//! Montgomery-form modular arithmetic over odd moduli — the fast path under
//! the RSA-style signature substrate in `dls-crypto`.
//!
//! [`modmath::pow_mod`](crate::modmath::pow_mod) reduces every intermediate
//! with a full Knuth-D division. A [`MontgomeryCtx`] instead precomputes, once
//! per modulus, the constants that let every modular multiplication run as a
//! single fused multiply-reduce pass (CIOS — Coarsely Integrated Operand
//! Scanning) over the `u32` limb vectors: `n' = -n⁻¹ mod 2³²` (Hensel
//! lifting) and `R² mod n` where `R = 2^(32·s)` for an `s`-limb modulus.
//! Exponentiation uses a fixed-window (w = 4) ladder with a precomputed
//! odd-power table; the window schedule itself ([`ExpWindows`]) depends only
//! on the exponent and can be built once per key and reused across calls.
//!
//! Montgomery representation is a bijection `a ↦ a·R mod n` on `[0, n)`, and
//! every kernel here returns the canonical representative, so results are
//! bit-identical to the `pow_mod` oracle — the property the differential
//! tests in this module and in `dls-crypto` pin down.

use crate::biguint::BigUint;
use std::cmp::Ordering;
use std::fmt;

/// Window width (bits) for the fixed-window exponentiation ladder.
///
/// w = 4 needs an 8-entry odd-power table (1 squaring + 7 multiplies to
/// build) and amortizes to one multiply per 4 exponent bits — the sweet spot
/// for 384–2048-bit RSA exponents, where w = 5 would spend more on the
/// 16-entry table than it saves.
const WINDOW_BITS: u32 = 4;

/// Odd powers stored in the table: `base^1, base^3, …, base^15`.
const TABLE_LEN: usize = 1 << (WINDOW_BITS - 1);

/// Error building a [`MontgomeryCtx`]: the modulus must be odd and > 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MontgomeryError {
    /// The modulus is even (including zero); Montgomery reduction requires
    /// `gcd(n, 2³²) = 1`.
    EvenModulus,
    /// The modulus is the unit `1`, which has no non-trivial residues.
    UnitModulus,
}

impl fmt::Display for MontgomeryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MontgomeryError::EvenModulus => {
                write!(f, "Montgomery modulus must be odd (gcd(n, 2^32) = 1)")
            }
            MontgomeryError::UnitModulus => {
                write!(f, "Montgomery modulus must be > 1")
            }
        }
    }
}

impl std::error::Error for MontgomeryError {}

/// Precomputed per-modulus constants for Montgomery multiplication.
///
/// Build once per odd modulus with [`MontgomeryCtx::new`]; every subsequent
/// [`mul`](MontgomeryCtx::mul)/[`pow`](MontgomeryCtx::pow) reuses the
/// constants and runs division-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MontgomeryCtx {
    /// The modulus `n` (odd, > 1).
    n: BigUint,
    /// `n`'s limbs, exactly `s` words (top word non-zero).
    n_limbs: Vec<u32>,
    /// `-n⁻¹ mod 2³²`, via Hensel/Newton lifting from the low limb.
    n0_inv: u32,
    /// `R² mod n`, padded to `s` words (`R = 2^(32·s)`).
    r2: Vec<u32>,
    /// `R mod n`, padded to `s` words — the Montgomery form of `1`.
    one: Vec<u32>,
}

impl MontgomeryCtx {
    /// Builds a context for the odd modulus `n > 1`.
    pub fn new(n: &BigUint) -> Result<Self, MontgomeryError> {
        if n.is_even() {
            // Zero is even, so this also rejects n = 0.
            return Err(MontgomeryError::EvenModulus);
        }
        if n.is_one() {
            return Err(MontgomeryError::UnitModulus);
        }
        let n_limbs = n.limbs().to_vec();
        let s = n_limbs.len();
        // Hensel lifting: x ≡ n₀⁻¹ (mod 2^(2^k)) doubles its valid bits per
        // Newton step x ← x·(2 − n₀·x); five steps from x = 1 (exact mod 2
        // since n₀ is odd) reach 32 bits.
        let n0 = n_limbs[0];
        let mut x: u32 = 1;
        for _ in 0..5 {
            x = x.wrapping_mul(2u32.wrapping_sub(n0.wrapping_mul(x)));
        }
        debug_assert_eq!(n0.wrapping_mul(x), 1);
        let n0_inv = x.wrapping_neg();
        // dls-lint: allow(unchecked-arith) -- BigUint shift is arbitrary-precision
        let r2 = &(BigUint::one() << (64 * s)) % n;
        // dls-lint: allow(unchecked-arith) -- BigUint shift is arbitrary-precision
        let one = &(BigUint::one() << (32 * s)) % n;
        Ok(MontgomeryCtx {
            n: n.clone(),
            n0_inv,
            r2: pad(r2.limbs(), s),
            one: pad(one.limbs(), s),
            n_limbs,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// Operand width in `u32` limbs (`s`); every Montgomery vector this
    /// context produces or consumes has exactly this length.
    pub fn width(&self) -> usize {
        self.n_limbs.len()
    }

    /// Converts `a` into Montgomery form `a·R mod n` (reducing `a` first, so
    /// `a >= n` is fine).
    pub fn to_mont(&self, a: &BigUint) -> Vec<u32> {
        let reduced = a % &self.n;
        let a_limbs = pad(reduced.limbs(), self.width());
        self.mul(&a_limbs, &self.r2)
    }

    /// Converts a Montgomery vector back to the canonical integer in `[0, n)`.
    pub fn from_mont(&self, a: &[u32]) -> BigUint {
        let one_int = [1u32];
        let mut t = Vec::new();
        let mut out = vec![0u32; self.width()];
        self.mul_into(a, &pad(&one_int, self.width()), &mut t, &mut out);
        BigUint::from_limbs_le(out)
    }

    /// Montgomery product `a·b·R⁻¹ mod n` of two width-`s` vectors.
    pub fn mul(&self, a: &[u32], b: &[u32]) -> Vec<u32> {
        let mut t = Vec::new();
        let mut out = vec![0u32; self.width()];
        self.mul_into(a, b, &mut t, &mut out);
        out
    }

    /// CIOS multiply-reduce into `out`, reusing `t` as the working buffer.
    ///
    /// `a` and `b` are width-`s` Montgomery vectors (values < n); `out` must
    /// be width `s` and must not alias `a` or `b`. The working value after
    /// each outer iteration stays below `2n`, so `t` needs `s + 2` words and
    /// the top word never exceeds 1 (the classical CIOS bound).
    fn mul_into(&self, a: &[u32], b: &[u32], t: &mut Vec<u32>, out: &mut [u32]) {
        let s = self.width();
        debug_assert!(a.len() == s && b.len() == s && out.len() == s);
        t.clear();
        t.resize(s + 2, 0);
        for i in 0..s {
            // Multiply step: t += a · b[i].
            let bi = b[i] as u64;
            let mut carry: u64 = 0;
            for j in 0..s {
                // (2³²−1)² + 2·(2³²−1) = 2⁶⁴−1: the three-term sum fits u64.
                let sum = t[j] as u64 + a[j] as u64 * bi + carry;
                t[j] = sum as u32;
                carry = sum >> 32;
            }
            let sum = t[s] as u64 + carry;
            t[s] = sum as u32;
            // sum < 2³³ (word + carry), so the overflow word is 0 or 1.
            t[s + 1] = (sum >> 32) as u32;

            // Reduce step: add m·n with m chosen so the low word cancels,
            // then shift down one word.
            let m = t[0].wrapping_mul(self.n0_inv) as u64;
            let sum = t[0] as u64 + m * self.n_limbs[0] as u64;
            debug_assert_eq!(sum as u32, 0, "low word must cancel");
            let mut carry = sum >> 32;
            for j in 1..s {
                let sum = t[j] as u64 + m * self.n_limbs[j] as u64 + carry;
                t[j - 1] = sum as u32;
                carry = sum >> 32;
            }
            let sum = t[s] as u64 + carry;
            t[s - 1] = sum as u32;
            // Both addends are at most 1 (CIOS invariant + carry), so the
            // top word stays 0 or 1 and the sum cannot wrap.
            t[s] = (t[s + 1] as u64 + (sum >> 32)) as u32;
        }
        // Final value is t[0..=s] < 2n: one conditional subtract canonicalizes.
        let ge = t[s] != 0 || cmp_limbs(&t[..s], &self.n_limbs) != Ordering::Less;
        if !ge {
            out.copy_from_slice(&t[..s]);
            return;
        }
        let mut borrow: i64 = 0;
        for j in 0..s {
            let d = t[j] as i64 - self.n_limbs[j] as i64 - borrow;
            if d < 0 {
                // dls-lint: allow(unchecked-arith) -- d in (-2^32, 0), so d + 2^32 fits i64 and u32
                out[j] = (d + (1i64 << 32)) as u32;
                borrow = 1;
            } else {
                out[j] = d as u32;
                borrow = 0;
            }
        }
        // t < 2n guarantees the final borrow is absorbed by t[s].
        debug_assert_eq!(t[s] as i64, borrow, "reduction must not underflow");
    }

    /// `base^exp mod n` with a per-call window schedule.
    ///
    /// Matches [`modmath::pow_mod`](crate::modmath::pow_mod) bit-for-bit on
    /// every input (including `base >= n` and `exp = 0`).
    pub fn pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        self.pow_windows(base, &ExpWindows::new(exp))
    }

    /// `base^exp mod n` with a precomputed window schedule (build once per
    /// exponent with [`ExpWindows::new`], reuse for every base).
    pub fn pow_windows(&self, base: &BigUint, windows: &ExpWindows) -> BigUint {
        let base_mont = self.to_mont(base);
        let result = self.pow_to_mont(&base_mont, windows);
        self.from_mont(&result)
    }

    /// Windowed exponentiation entirely in the Montgomery domain: maps a
    /// Montgomery-form base to the Montgomery form of `base^exp`.
    ///
    /// Staying in the domain lets callers (e.g. Miller–Rabin) compare
    /// intermediate values against precomputed Montgomery constants without
    /// converting back — the representation is a bijection, so vector
    /// equality is value equality.
    pub fn pow_to_mont(&self, base_mont: &[u32], windows: &ExpWindows) -> Vec<u32> {
        let s = self.width();
        debug_assert_eq!(base_mont.len(), s);
        if windows.ops.is_empty() {
            // exp = 0: the empty product is 1.
            return self.one.clone();
        }
        // Odd-power table: table[i] = base^(2i+1) in Montgomery form.
        let sq = self.mul(base_mont, base_mont);
        let mut table: Vec<Vec<u32>> = Vec::with_capacity(TABLE_LEN);
        table.push(base_mont.to_vec());
        for i in 1..TABLE_LEN {
            table.push(self.mul(&table[i - 1], &sq));
        }
        // Left-to-right ladder over the schedule; `acc = None` until the
        // leading window lands (skipping its squarings of 1).
        let mut t = Vec::new();
        let mut tmp = vec![0u32; s];
        let mut acc: Option<Vec<u32>> = None;
        for op in &windows.ops {
            match *op {
                WindowOp::Squares(k) => {
                    if let Some(cur) = acc.as_mut() {
                        for _ in 0..k {
                            self.mul_into(cur, cur, &mut t, &mut tmp);
                            std::mem::swap(cur, &mut tmp);
                        }
                    }
                }
                WindowOp::MulOdd(idx) => match acc.as_mut() {
                    None => acc = Some(table[idx as usize].clone()),
                    Some(cur) => {
                        self.mul_into(cur, &table[idx as usize], &mut t, &mut tmp);
                        std::mem::swap(cur, &mut tmp);
                    }
                },
            }
        }
        acc.expect("non-empty schedule ends with a window")
    }
}

/// One step of a windowed-exponentiation schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WindowOp {
    /// Square the accumulator `k` times.
    Squares(u32),
    /// Multiply by the odd power `base^(2i+1)` at table index `i`.
    MulOdd(u8),
}

/// A precomputed fixed-window (w = 4) exponentiation schedule.
///
/// Depends only on the exponent, so a key's schedule is built once and
/// reused for every signature/verification under that key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpWindows {
    ops: Vec<WindowOp>,
}

impl ExpWindows {
    /// Scans `exp` left-to-right into maximal ≤4-bit windows ending in a set
    /// bit, so every window value is odd and the table stays half-size.
    pub fn new(exp: &BigUint) -> Self {
        let mut ops = Vec::new();
        let mut i = exp.bits() as i64 - 1;
        let mut pending: u32 = 0;
        while i >= 0 {
            if !exp.bit(i as usize) {
                pending += 1;
                i -= 1;
                continue;
            }
            // Window [j..=i]: lowest set bit within WINDOW_BITS of i.
            let lo = if i >= WINDOW_BITS as i64 - 1 {
                i - (WINDOW_BITS as i64 - 1)
            } else {
                0
            };
            let mut j = lo;
            while !exp.bit(j as usize) {
                j += 1;
            }
            // dls-lint: allow(unchecked-arith) -- j <= i by loop bound, width <= WINDOW_BITS
            let width = (i - j + 1) as u32;
            let mut u: u8 = 0;
            for k in (j..=i).rev() {
                u = (u << 1) | exp.bit(k as usize) as u8;
            }
            // Pending squarings from the zero run fold into the window's own.
            // dls-lint: allow(unchecked-arith) -- pending + width <= exp.bits() + 4, far below u32::MAX
            ops.push(WindowOp::Squares(pending + width));
            // u is odd (bit j is set), so u >> 1 indexes the odd-power table.
            ops.push(WindowOp::MulOdd(u >> 1));
            pending = 0;
            i = j - 1;
        }
        if pending > 0 {
            ops.push(WindowOp::Squares(pending));
        }
        ExpWindows { ops }
    }
}

/// Copies `limbs` into a fresh width-`s` vector, zero-extended at the top.
fn pad(limbs: &[u32], s: usize) -> Vec<u32> {
    debug_assert!(limbs.len() <= s);
    let mut out = vec![0u32; s];
    out[..limbs.len()].copy_from_slice(limbs);
    out
}

/// Compares two equal-width little-endian limb slices.
fn cmp_limbs(a: &[u32], b: &[u32]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modmath;

    fn b(v: u64) -> BigUint {
        BigUint::from(v)
    }

    /// Deterministic pseudo-random value of exactly `bits` bits.
    fn rnd(bits: usize, seed: u32) -> BigUint {
        let limbs = bits.div_ceil(32);
        let mut v = Vec::with_capacity(limbs);
        let mut x = seed.wrapping_mul(0x9e3779b9) | 1;
        for i in 0..limbs {
            x = x.wrapping_mul(2654435761).wrapping_add(i as u32 | 1);
            v.push(x);
        }
        let mut out = BigUint::from_limbs_le(v);
        // Trim to the requested width and force the top bit.
        out = &out >> (limbs * 32 - bits);
        out.set_bit(bits - 1, true);
        out
    }

    #[test]
    fn rejects_even_and_unit_moduli() {
        assert_eq!(
            MontgomeryCtx::new(&BigUint::zero()),
            Err(MontgomeryError::EvenModulus)
        );
        assert_eq!(
            MontgomeryCtx::new(&b(4096)),
            Err(MontgomeryError::EvenModulus)
        );
        assert_eq!(
            MontgomeryCtx::new(&BigUint::one()),
            Err(MontgomeryError::UnitModulus)
        );
        assert!(MontgomeryCtx::new(&b(3)).is_ok());
    }

    #[test]
    fn n0_inv_is_negative_inverse() {
        for n in [3u64, 17, 0xffff_fffb, 0x1_0000_0001, 12345678901234567] {
            let ctx = MontgomeryCtx::new(&b(n | 1)).unwrap();
            let n0 = ctx.n_limbs[0];
            assert_eq!(n0.wrapping_mul(ctx.n0_inv), u32::MAX, "n = {n}");
        }
    }

    #[test]
    fn roundtrip_to_from_mont() {
        let mut n = rnd(192, 11);
        n.set_bit(0, true);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        for seed in 0..20 {
            let a = rnd(192, 100 + seed);
            let am = ctx.to_mont(&a);
            assert_eq!(ctx.from_mont(&am), &a % &n, "seed {seed}");
        }
    }

    #[test]
    fn mul_matches_mul_mod() {
        for bits in [64usize, 96, 192, 512] {
            let mut n = rnd(bits, 7);
            n.set_bit(0, true);
            let ctx = MontgomeryCtx::new(&n).unwrap();
            for seed in 0..10 {
                let a = &rnd(bits, 31 + seed) % &n;
                let c = &rnd(bits, 77 + seed) % &n;
                let prod = ctx.from_mont(&ctx.mul(&ctx.to_mont(&a), &ctx.to_mont(&c)));
                assert_eq!(prod, modmath::mul_mod(&a, &c, &n), "bits {bits} seed {seed}");
            }
        }
    }

    #[test]
    fn pow_matches_pow_mod_random() {
        for bits in [64usize, 128, 384, 1024, 2048] {
            let mut n = rnd(bits, 5);
            n.set_bit(0, true);
            let ctx = MontgomeryCtx::new(&n).unwrap();
            for seed in 0..4 {
                let base = rnd(bits, 1000 + seed);
                let exp = rnd(bits.min(256), 2000 + seed);
                assert_eq!(
                    ctx.pow(&base, &exp),
                    modmath::pow_mod(&base, &exp, &n),
                    "bits {bits} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn pow_edge_cases() {
        let n = b(1_000_000_007);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        // exp = 0 → 1.
        assert_eq!(ctx.pow(&b(5), &BigUint::zero()), BigUint::one());
        // base >= n reduces first.
        let big_base = &(&n * &n) + &b(17);
        assert_eq!(
            ctx.pow(&big_base, &b(1234)),
            modmath::pow_mod(&big_base, &b(1234), &n)
        );
        // base = 0.
        assert_eq!(ctx.pow(&BigUint::zero(), &b(9)), BigUint::zero());
        // base ≡ 0 (mod n).
        assert_eq!(ctx.pow(&n, &b(3)), BigUint::zero());
        // Single-limb modulus, exponent 1.
        let ctx3 = MontgomeryCtx::new(&b(3)).unwrap();
        assert_eq!(ctx3.pow(&b(7), &BigUint::one()), b(1));
    }

    #[test]
    fn pow_fermat() {
        let p = b(1_000_000_007);
        let ctx = MontgomeryCtx::new(&p).unwrap();
        for a in [2u64, 3, 65_537, 999_999_999] {
            assert_eq!(ctx.pow(&b(a), &(&p - &b(1))), BigUint::one(), "a = {a}");
        }
    }

    #[test]
    fn window_schedule_reuse_is_consistent() {
        let mut n = rnd(256, 3);
        n.set_bit(0, true);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let exp = b(65_537);
        let windows = ExpWindows::new(&exp);
        for seed in 0..8 {
            let base = rnd(256, 500 + seed);
            assert_eq!(
                ctx.pow_windows(&base, &windows),
                modmath::pow_mod(&base, &exp, &n),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn window_schedule_covers_exponent_shapes() {
        // All-ones, single-bit, sparse, and dense exponents exercise every
        // branch of the window scanner.
        let mut n = rnd(128, 9);
        n.set_bit(0, true);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let exps = [
            BigUint::zero(),
            BigUint::one(),
            b(2),
            b(15),
            b(16),
            b(0b1000_0001),
            (BigUint::one() << 127usize) - &BigUint::one(),
            BigUint::one() << 127usize,
            b(0xdead_beef_cafe_babe),
        ];
        for (k, exp) in exps.iter().enumerate() {
            for seed in 0..3 {
                let base = rnd(128, 40 + seed);
                assert_eq!(
                    ctx.pow(&base, exp),
                    modmath::pow_mod(&base, exp, &n),
                    "exp #{k} seed {seed}"
                );
            }
        }
    }

    #[test]
    fn pow_to_mont_stays_in_domain() {
        let p = b(1_000_000_007);
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let base = b(123_456);
        let exp = b(7919);
        let bm = ctx.to_mont(&base);
        let rm = ctx.pow_to_mont(&bm, &ExpWindows::new(&exp));
        // Domain equality: the Montgomery vector of the expected value.
        let expected = modmath::pow_mod(&base, &exp, &p);
        assert_eq!(rm, ctx.to_mont(&expected));
        assert_eq!(ctx.from_mont(&rm), expected);
    }
}
