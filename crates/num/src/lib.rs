//! # `dls-num` — exact arithmetic substrate
//!
//! Arbitrary-precision unsigned/signed integers and rationals, built from
//! scratch for the DLS-BL-NCP reproduction. Two consumers drive the design:
//!
//! * **Exact Divisible Load Theory algebra.** The closed-form allocation
//!   recursions of Algorithms 2.1/2.2 (Carroll & Grosu, IPPS 2006, §2) are
//!   solved both in `f64` and in exact [`Rational`] arithmetic; the exact
//!   solution certifies the floating-point solver and lets property tests
//!   assert the *equal finish time* optimality condition (Theorem 2.1) with
//!   zero tolerance.
//! * **The cryptographic substrate.** The paper assumes a PKI with digital
//!   signatures; `dls-crypto` implements RSA-style signatures over
//!   [`BigUint`] modular arithmetic ([`modmath`]).
//!
//! The representation is a little-endian `Vec<u32>` limb vector (so every
//! intermediate product fits a `u64`), normalized to have no trailing zero
//! limbs. Multiplication switches to Karatsuba above a threshold; division is
//! Knuth's Algorithm D.
//!
//! ```
//! use dls_num::{BigUint, BigInt, Rational};
//!
//! let a = BigUint::from_dec_str("123456789012345678901234567890").unwrap();
//! let b = BigUint::from(42u64);
//! assert_eq!(&(&a * &b) / &b, a);
//!
//! let half = Rational::new(BigInt::from(1), BigInt::from(2)).unwrap();
//! let third = Rational::new(BigInt::from(1), BigInt::from(3)).unwrap();
//! assert_eq!((&half + &third).to_string(), "5/6");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod biguint;
pub mod modmath;
pub mod montgomery;
mod rational;

pub use bigint::{BigInt, Sign};
pub use biguint::{BigUint, ParseBigUintError};
pub use montgomery::{ExpWindows, MontgomeryCtx, MontgomeryError};
pub use rational::{Rational, RationalError, RationalProduct};

/// Greatest common divisor of two unsigned big integers.
///
/// `gcd(0, 0) == 0` by convention.
pub fn gcd(a: &BigUint, b: &BigUint) -> BigUint {
    // Euclidean algorithm; division is fast enough at the sizes the DLT and
    // crypto layers use, and it keeps the implementation obviously correct.
    let mut a = a.clone();
    let mut b = b.clone();
    while !b.is_zero() {
        let r = &a % &b;
        a = b;
        b = r;
    }
    a
}

/// Least common multiple.
///
/// `lcm(0, x) == 0`.
pub fn lcm(a: &BigUint, b: &BigUint) -> BigUint {
    if a.is_zero() || b.is_zero() {
        return BigUint::zero();
    }
    let g = gcd(a, b);
    &(a / &g) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_small() {
        let g = gcd(&BigUint::from(48u32), &BigUint::from(36u32));
        assert_eq!(g, BigUint::from(12u32));
    }

    #[test]
    fn gcd_zeroes() {
        assert_eq!(gcd(&BigUint::zero(), &BigUint::zero()), BigUint::zero());
        assert_eq!(
            gcd(&BigUint::zero(), &BigUint::from(7u32)),
            BigUint::from(7u32)
        );
        assert_eq!(
            gcd(&BigUint::from(7u32), &BigUint::zero()),
            BigUint::from(7u32)
        );
    }

    #[test]
    fn lcm_small() {
        let l = lcm(&BigUint::from(4u32), &BigUint::from(6u32));
        assert_eq!(l, BigUint::from(12u32));
        assert_eq!(lcm(&BigUint::zero(), &BigUint::from(5u32)), BigUint::zero());
    }

    #[test]
    fn gcd_large_coprime() {
        // 2^89-1 and 2^61-1 are both Mersenne primes, hence coprime.
        let a = (BigUint::one() << 89usize) - &BigUint::one();
        let b = (BigUint::one() << 61usize) - &BigUint::one();
        assert_eq!(gcd(&a, &b), BigUint::one());
    }
}
