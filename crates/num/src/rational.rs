//! Exact rational numbers over [`BigInt`].
//!
//! Always stored in lowest terms with a strictly positive denominator, so
//! structural equality coincides with numeric equality. The DLT layer uses
//! these to solve the allocation recursions exactly and to assert optimality
//! conditions (Theorem 2.1) with zero tolerance.

use crate::bigint::{BigInt, Sign};
use crate::biguint::BigUint;
use crate::gcd;
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Error constructing a [`Rational`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RationalError {
    /// A zero denominator was supplied.
    ZeroDenominator,
    /// The `f64` being converted was NaN or infinite.
    NotFinite,
}

impl fmt::Display for RationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RationalError::ZeroDenominator => write!(f, "zero denominator"),
            RationalError::NotFinite => write!(f, "value is NaN or infinite"),
        }
    }
}

impl std::error::Error for RationalError {}

/// An exact rational number in lowest terms (`den > 0`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl Rational {
    /// The value `0`.
    pub fn zero() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        Rational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Constructs `num/den`, normalizing sign and reducing to lowest terms.
    pub fn new(num: BigInt, den: BigInt) -> Result<Self, RationalError> {
        if den.is_zero() {
            return Err(RationalError::ZeroDenominator);
        }
        let mut r = Rational { num, den };
        r.reduce();
        Ok(r)
    }

    /// Constructs from an integer.
    pub fn from_int(v: impl Into<BigInt>) -> Self {
        Rational {
            num: v.into(),
            den: BigInt::one(),
        }
    }

    /// Constructs from a primitive ratio, e.g. `Rational::from_ratio(1, 3)`.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn from_ratio(num: i64, den: i64) -> Self {
        Rational::new(BigInt::from(num), BigInt::from(den)).expect("non-zero denominator")
    }

    /// Exact conversion from a finite `f64` (every finite double is a binary
    /// rational).
    // dls-lint: allow(no-float-in-exact) -- entry boundary: the float is decomposed bit-exactly, never rounded
    pub fn from_f64(v: f64) -> Result<Self, RationalError> {
        if !v.is_finite() {
            return Err(RationalError::NotFinite);
        }
        if v == 0.0 { // dls-lint: allow(no-float-in-exact) -- entry boundary
            return Ok(Rational::zero());
        }
        let bits = v.to_bits();
        let sign = if bits >> 63 == 1 { Sign::Minus } else { Sign::Plus };
        let exponent = ((bits >> 52) & 0x7ff) as i64;
        let fraction = bits & ((1u64 << 52) - 1);
        // value = (-1)^s * mantissa * 2^(exp2), mantissa integer.
        let (mantissa, exp2) = if exponent == 0 {
            (fraction, -1074i64) // subnormal
        } else {
            (fraction | (1u64 << 52), exponent - 1075)
        };
        let mag = BigUint::from(mantissa);
        let num = BigInt::from_sign_mag(sign, mag);
        let r = if exp2 >= 0 {
            let num = &num * &BigInt::from(BigUint::one() << exp2 as usize);
            Rational { num, den: BigInt::one() }
        } else {
            let den = BigInt::from(BigUint::one() << (-exp2) as usize);
            Rational::new(num, den).expect("den is a power of two")
        };
        Ok(r)
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// `true` iff exactly zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// `true` iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// `true` iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "cannot invert zero");
        let mut r = Rational {
            num: self.den.clone(),
            den: self.num.clone(),
        };
        r.fix_sign();
        r
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Operand size in bits: the larger of the numerator and denominator
    /// bit-lengths. The cost driver of every rational operation, reported by
    /// the payment benchmark harness as "peak rational bit-length".
    pub fn bit_complexity(&self) -> usize {
        self.num
            .magnitude()
            .bits()
            .max(self.den.magnitude().bits())
    }

    /// Lossy conversion to `f64`.
    ///
    /// Accurate to within one ULP for the magnitudes used in this workspace
    /// (numerator/denominator each representable after scaling). This is a
    /// reporting/display boundary: exact arithmetic never reads it back.
    // dls-lint: allow(no-float-in-exact) -- exit boundary from the exact domain
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0; // dls-lint: allow(no-float-in-exact) -- exit boundary
        }
        // Scale so that the integer division num/den has ~80 significant
        // bits, then divide as f64.
        let nbits = self.num.magnitude().bits() as i64;
        let dbits = self.den.magnitude().bits() as i64;
        let shift = 96 - (nbits - dbits);
        let (scaled_num, post_scale) = if shift > 0 {
            (
                BigInt::from_sign_mag(
                    self.num.sign(),
                    self.num.magnitude() << shift as usize,
                ),
                -shift,
            )
        } else {
            (self.num.clone(), 0)
        };
        let q = (&scaled_num / &self.den).to_f64();
        // Apply the 2^post_scale correction in steps so intermediates never
        // underflow before the final (possibly subnormal) result.
        let mut v = q;
        let mut e = post_scale;
        while e < 0 {
            let step = (-e).min(512);
            v *= 2f64.powi(-(step as i32)); // dls-lint: allow(no-float-in-exact) -- exit boundary
            e += step;
        }
        v
    }

    fn reduce(&mut self) {
        self.fix_sign();
        if self.num.is_zero() {
            self.den = BigInt::one();
            return;
        }
        let g = gcd(self.num.magnitude(), self.den.magnitude());
        if !g.is_one() {
            let g = BigInt::from(g);
            self.num = &self.num / &g;
            self.den = &self.den / &g;
        }
    }

    fn fix_sign(&mut self) {
        if self.den.is_negative() {
            self.num = -&self.num;
            self.den = -&self.den;
        }
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        Rational::from_int(v)
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(BigInt::from(v))
    }
}

impl Rational {
    /// In-place `self = self ± rhs` with the operands-first GCD strategy
    /// (Knuth TAOCP 4.5.1): cancel `g = gcd(den, rhs.den)` *before*
    /// cross-multiplying, so intermediates stay near the size of the result
    /// and the final normalization GCD runs on `g`, not on the full
    /// denominator product. `negate` subtracts instead of adding.
    fn add_assign_signed(&mut self, rhs: &Rational, negate: bool) {
        let cross = |a: &BigInt, b: &BigInt| -> BigInt { if negate { a - b } else { a + b } };
        let g = gcd(self.den.magnitude(), rhs.den.magnitude());
        if g.is_one() {
            // Coprime denominators: (a·d ± c·b)/(b·d) is already in lowest
            // terms — no trailing reduction at all.
            self.num = cross(&(&self.num * &rhs.den), &(&rhs.num * &self.den));
            self.den = &self.den * &rhs.den;
        } else {
            let g = BigInt::from(g);
            let b_r = &self.den / &g; // b/g
            let d_r = &rhs.den / &g; // d/g
            let num = cross(&(&self.num * &d_r), &(&rhs.num * &b_r));
            // The only factor the numerator can still share with the
            // denominator (b/g)·d is a divisor of g.
            let g2 = gcd(num.magnitude(), g.magnitude());
            let den = &b_r * &rhs.den;
            if g2.is_one() {
                self.num = num;
                self.den = den;
            } else {
                let g2 = BigInt::from(g2);
                self.num = &num / &g2;
                self.den = &den / &g2;
            }
        }
        if self.num.is_zero() {
            self.den = BigInt::one();
        }
    }
}

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, rhs: &Rational) {
        self.add_assign_signed(rhs, false);
    }
}

impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, rhs: &Rational) {
        self.add_assign_signed(rhs, true);
    }
}

impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, rhs: &Rational) {
        // Cross-cancellation: reduce gcd(a, d) and gcd(c, b) before
        // multiplying. Both inputs are in lowest terms, so the result is
        // too — the expensive GCD of the full products never happens.
        let g1 = gcd(self.num.magnitude(), rhs.den.magnitude());
        let g2 = gcd(rhs.num.magnitude(), self.den.magnitude());
        let (a, d) = if g1.is_one() {
            (self.num.clone(), rhs.den.clone())
        } else {
            let g1 = BigInt::from(g1);
            (&self.num / &g1, &rhs.den / &g1)
        };
        let (c, b) = if g2.is_one() {
            (rhs.num.clone(), self.den.clone())
        } else {
            let g2 = BigInt::from(g2);
            (&rhs.num / &g2, &self.den / &g2)
        };
        self.num = &a * &c;
        self.den = &b * &d;
        if self.num.is_zero() {
            self.den = BigInt::one();
        }
    }
}

impl DivAssign<&Rational> for Rational {
    /// # Panics
    /// Panics if `rhs` is zero.
    #[allow(clippy::suspicious_op_assign_impl)] // division IS multiplication by the reciprocal
    fn div_assign(&mut self, rhs: &Rational) {
        *self *= &rhs.recip();
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, rhs: &Rational) -> Rational {
        let mut out = self.clone();
        out += rhs;
        out
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(mut self, rhs: Rational) -> Rational {
        self += &rhs;
        self
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, rhs: &Rational) -> Rational {
        let mut out = self.clone();
        out -= rhs;
        out
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(mut self, rhs: Rational) -> Rational {
        self -= &rhs;
        self
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, rhs: &Rational) -> Rational {
        let mut out = self.clone();
        out *= rhs;
        out
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(mut self, rhs: Rational) -> Rational {
        self *= &rhs;
        self
    }
}

impl Div for &Rational {
    type Output = Rational;
    /// # Panics
    /// Panics if `rhs` is zero.
    fn div(self, rhs: &Rational) -> Rational {
        let mut out = self.clone();
        out /= rhs;
        out
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(mut self, rhs: Rational) -> Rational {
        self /= &rhs;
        self
    }
}

/// Product accumulator that **defers GCD normalization across a chain**.
///
/// Folding `Πᵢ rᵢ` through [`Mul`] renormalizes after every factor; when the
/// chain's factors barely cancel (the common case for the allocation chains
/// `u_{j+1} = u_j·k_j`), those intermediate GCDs are pure overhead. The
/// accumulator multiplies raw numerators and denominators and reduces once,
/// at extraction.
///
/// ```
/// use dls_num::{Rational, RationalProduct};
///
/// let factors = [Rational::from_ratio(2, 3), Rational::from_ratio(9, 4)];
/// let mut chain = RationalProduct::new();
/// for f in &factors {
///     chain.mul(f);
/// }
/// assert_eq!(chain.into_rational(), Rational::from_ratio(3, 2));
/// ```
#[derive(Debug, Clone)]
pub struct RationalProduct {
    num: BigInt,
    den: BigInt,
}

impl RationalProduct {
    /// Starts a chain at `1`.
    pub fn new() -> Self {
        RationalProduct {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Multiplies the accumulated product by `factor` without normalizing.
    pub fn mul(&mut self, factor: &Rational) {
        self.num = &self.num * factor.numer();
        self.den = &self.den * factor.denom();
    }

    /// Extracts the product, normalizing once (single GCD for the chain).
    pub fn into_rational(self) -> Rational {
        // The denominator is a product of strictly positive denominators,
        // so it is never zero and direct construction + reduce is safe.
        let mut r = Rational {
            num: self.num,
            den: self.den,
        };
        r.reduce();
        r
    }

    /// Normalized snapshot of the running product without ending the chain.
    pub fn to_rational(&self) -> Rational {
        self.clone().into_rational()
    }
}

impl Default for RationalProduct {
    fn default() -> Self {
        RationalProduct::new()
    }
}

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -&self.num,
            den: self.den.clone(),
        }
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a·d ? c·b   (b, d > 0)
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_positive() && !self.den.abs().magnitude().is_one() {
            write!(f, "{}/{}", self.num, self.den)
        } else {
            write!(f, "{}", self.num)
        }
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rational({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(n: i64, d: i64) -> Rational {
        Rational::from_ratio(n, d)
    }

    #[test]
    fn construction_normalizes() {
        assert_eq!(rat(2, 4), rat(1, 2));
        assert_eq!(rat(-2, -4), rat(1, 2));
        assert_eq!(rat(2, -4), rat(-1, 2));
        assert_eq!(rat(0, 5), Rational::zero());
        assert!(Rational::new(BigInt::one(), BigInt::zero()).is_err());
    }

    #[test]
    fn field_ops() {
        assert_eq!(&rat(1, 2) + &rat(1, 3), rat(5, 6));
        assert_eq!(&rat(1, 2) - &rat(1, 3), rat(1, 6));
        assert_eq!(&rat(2, 3) * &rat(3, 4), rat(1, 2));
        assert_eq!(&rat(2, 3) / &rat(4, 3), rat(1, 2));
        assert_eq!(rat(3, 7).recip(), rat(7, 3));
        assert_eq!(rat(-3, 7).recip(), rat(-7, 3));
    }

    #[test]
    #[should_panic(expected = "cannot invert zero")]
    fn recip_zero_panics() {
        let _ = Rational::zero().recip();
    }

    #[test]
    fn ordering() {
        assert!(rat(1, 3) < rat(1, 2));
        assert!(rat(-1, 2) < rat(-1, 3));
        assert!(rat(-1, 2) < Rational::zero());
        assert_eq!(rat(4, 8).cmp(&rat(1, 2)), Ordering::Equal);
    }

    #[test]
    fn display() {
        assert_eq!(rat(1, 2).to_string(), "1/2");
        assert_eq!(rat(4, 2).to_string(), "2");
        assert_eq!(rat(-1, 2).to_string(), "-1/2");
        assert_eq!(Rational::zero().to_string(), "0");
    }

    #[test]
    fn from_f64_exact() {
        assert_eq!(Rational::from_f64(0.5).unwrap(), rat(1, 2));
        assert_eq!(Rational::from_f64(-0.75).unwrap(), rat(-3, 4));
        assert_eq!(Rational::from_f64(3.0).unwrap(), rat(3, 1));
        assert_eq!(Rational::from_f64(0.0).unwrap(), Rational::zero());
        assert!(Rational::from_f64(f64::NAN).is_err());
        assert!(Rational::from_f64(f64::INFINITY).is_err());
        // 0.1 is NOT 1/10 in binary; verify the exact bit value round-trips.
        let tenth = Rational::from_f64(0.1).unwrap();
        assert_eq!(tenth.to_f64(), 0.1);
        assert_ne!(tenth, rat(1, 10));
    }

    #[test]
    fn from_f64_subnormal() {
        let tiny = f64::MIN_POSITIVE / 4.0; // subnormal
        let r = Rational::from_f64(tiny).unwrap();
        assert!(r.is_positive());
        assert_eq!(r.to_f64(), tiny);
    }

    #[test]
    fn to_f64_roundtrip_fractions() {
        for (n, d) in [(1i64, 3i64), (22, 7), (-355, 113), (1, 1_000_000_007)] {
            let r = rat(n, d);
            let expected = n as f64 / d as f64;
            let got = r.to_f64();
            assert!(
                (got - expected).abs() <= expected.abs() * 1e-15 + 1e-300,
                "{n}/{d}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn large_cancellation() {
        // (1/3 + 1/3 + 1/3) - 1 == 0 exactly.
        let third = rat(1, 3);
        let one = Rational::one();
        let sum = &(&(&third + &third) + &third) - &one;
        assert!(sum.is_zero());
    }

    /// The gcd-lean assign kernels must produce reduced results on both the
    /// coprime fast path and the shared-factor slow path, across signs.
    #[test]
    fn assign_kernels_stay_reduced() {
        let cases = [
            (rat(1, 2), rat(1, 3)),   // coprime denominators
            (rat(1, 6), rat(1, 10)),  // shared factor 2, g2 > 1 branch
            (rat(5, 6), rat(1, 6)),   // equal denominators
            (rat(-3, 4), rat(3, 4)),  // sums to zero
            (rat(-7, 12), rat(5, 18)),
            (rat(0, 1), rat(4, 9)),   // zero operand
        ];
        for (a, b) in &cases {
            for (x, y) in [(a, b), (b, a)] {
                let by_new = |num: BigInt, den: BigInt| Rational::new(num, den).unwrap();
                let want_add = by_new(
                    &(x.numer() * y.denom()) + &(y.numer() * x.denom()),
                    x.denom() * y.denom(),
                );
                let want_sub = by_new(
                    &(x.numer() * y.denom()) - &(y.numer() * x.denom()),
                    x.denom() * y.denom(),
                );
                let want_mul = by_new(x.numer() * y.numer(), x.denom() * y.denom());

                let mut s = x.clone();
                s += y;
                assert_eq!(s, want_add, "{x} + {y}");
                assert!(s.denom().is_positive());

                let mut s = x.clone();
                s -= y;
                assert_eq!(s, want_sub, "{x} - {y}");

                let mut s = x.clone();
                s *= y;
                assert_eq!(s, want_mul, "{x} * {y}");

                if !y.is_zero() {
                    let mut s = x.clone();
                    s /= y;
                    assert_eq!(s, want_mul_div(x, y), "{x} / {y}");
                }
            }
        }

        fn want_mul_div(x: &Rational, y: &Rational) -> Rational {
            Rational::new(x.numer() * y.denom(), x.denom() * y.numer()).unwrap()
        }
    }

    #[test]
    fn assign_zero_result_normalizes_denominator() {
        let mut s = rat(3, 7);
        s -= &rat(3, 7);
        assert!(s.is_zero());
        assert_eq!(s.denom(), &BigInt::one());

        let mut p = rat(3, 7);
        p *= &Rational::zero();
        assert!(p.is_zero());
        assert_eq!(p.denom(), &BigInt::one());
    }

    #[test]
    fn product_accumulator_matches_fold() {
        let factors = [rat(2, 3), rat(9, 4), rat(-5, 7), rat(14, 15), rat(1, 2)];
        let folded = factors
            .iter()
            .fold(Rational::one(), |acc, f| &acc * f);
        let mut chain = RationalProduct::new();
        for f in &factors {
            chain.mul(f);
        }
        assert_eq!(chain.to_rational(), folded);
        assert_eq!(chain.into_rational(), folded);
        assert_eq!(RationalProduct::default().into_rational(), Rational::one());
    }

    #[test]
    fn bit_complexity_tracks_operand_size() {
        assert_eq!(Rational::zero().bit_complexity(), 1);
        assert_eq!(rat(1, 1).bit_complexity(), 1);
        assert_eq!(rat(255, 256).bit_complexity(), 9);
        assert_eq!(rat(-1024, 3).bit_complexity(), 11);
    }
}
