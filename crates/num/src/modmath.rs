//! Modular arithmetic over [`BigUint`] — the kernel under the RSA-style
//! signature substrate in `dls-crypto`.

use crate::bigint::BigInt;
use crate::biguint::BigUint;

/// `(a + b) mod m`.
///
/// # Panics
/// Panics if `m` is zero.
pub fn add_mod(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    &(a + b) % m
}

/// `(a * b) mod m`.
///
/// # Panics
/// Panics if `m` is zero.
pub fn mul_mod(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    &(a * b) % m
}

/// `base^exp mod m` by left-to-right square-and-multiply.
///
/// `pow_mod(_, 0, m) == 1 mod m`.
///
/// # Panics
/// Panics if `m` is zero.
pub fn pow_mod(base: &BigUint, exp: &BigUint, m: &BigUint) -> BigUint {
    assert!(!m.is_zero(), "zero modulus");
    if m.is_one() {
        return BigUint::zero();
    }
    let mut result = BigUint::one();
    let base = base % m;
    let nbits = exp.bits();
    for i in (0..nbits).rev() {
        result = mul_mod(&result, &result, m);
        if exp.bit(i) {
            result = mul_mod(&result, &base, m);
        }
    }
    result
}

/// Modular inverse: `a^(-1) mod m` if `gcd(a, m) == 1`, else `None`.
///
/// # Panics
/// Panics if `m` is zero.
pub fn inv_mod(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    assert!(!m.is_zero(), "zero modulus");
    if m.is_one() {
        return Some(BigUint::zero());
    }
    let ai = BigInt::from(a % m);
    let mi = BigInt::from(m.clone());
    let (g, x, _) = BigInt::extended_gcd(&ai, &mi);
    if !g.magnitude().is_one() {
        return None;
    }
    let inv = x.mod_floor(&mi);
    Some(inv.magnitude().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u64) -> BigUint {
        BigUint::from(v)
    }

    #[test]
    fn pow_mod_small() {
        assert_eq!(pow_mod(&b(2), &b(10), &b(1000)), b(24));
        assert_eq!(pow_mod(&b(3), &b(0), &b(7)), b(1));
        assert_eq!(pow_mod(&b(0), &b(5), &b(7)), b(0));
        assert_eq!(pow_mod(&b(5), &b(117), &b(1)), b(0));
    }

    #[test]
    fn pow_mod_fermat() {
        // Fermat's little theorem: a^(p-1) ≡ 1 (mod p) for prime p ∤ a.
        let p = b(1_000_000_007);
        for a in [2u64, 3, 65_537, 999_999_999] {
            assert_eq!(pow_mod(&b(a), &(&p - &b(1)), &p), b(1), "a={a}");
        }
    }

    #[test]
    fn pow_mod_large_known_answer() {
        // 2^1000 mod (2^89 - 1): verified via repeated squaring structure —
        // 2^89 ≡ 1, so 2^1000 = 2^(89*11 + 21) ≡ 2^21.
        let m = &(BigUint::one() << 89usize) - &BigUint::one();
        assert_eq!(pow_mod(&b(2), &b(1000), &m), b(1 << 21));
    }

    #[test]
    fn inv_mod_basics() {
        assert_eq!(inv_mod(&b(3), &b(7)), Some(b(5)));
        assert_eq!(inv_mod(&b(10), &b(17)), Some(b(12)));
        assert_eq!(inv_mod(&b(6), &b(9)), None); // gcd = 3
        assert_eq!(inv_mod(&b(5), &b(1)), Some(b(0)));
    }

    #[test]
    fn inv_mod_roundtrip() {
        let m = b(1_000_000_007);
        for a in [2u64, 12345, 999_999_999, 65_537] {
            let inv = inv_mod(&b(a), &m).expect("prime modulus");
            assert_eq!(mul_mod(&b(a), &inv, &m), b(1), "a={a}");
        }
    }

    #[test]
    fn add_mul_mod() {
        assert_eq!(add_mod(&b(8), &b(9), &b(10)), b(7));
        assert_eq!(mul_mod(&b(8), &b(9), &b(10)), b(2));
    }
}
