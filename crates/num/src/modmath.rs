//! Modular arithmetic over [`BigUint`] — the kernel under the RSA-style
//! signature substrate in `dls-crypto`.
//!
//! The operator forms ([`add_mod`], [`mul_mod`]) allocate a fresh result per
//! call; the `_into` variants reuse caller-held [`ModScratch`] buffers so a
//! hot loop (notably [`pow_mod`]'s per-bit squarings) runs allocation-lean.
//! Both forms compute the same unique representative in `[0, m)`, which keeps
//! [`pow_mod`] valid as the bit-exactness oracle for the Montgomery kernels
//! in [`crate::montgomery`].

use crate::bigint::BigInt;
use crate::biguint::{knuth_d_core, BigUint};
use std::cmp::Ordering;

/// Reusable scratch buffers for the `_into` modular kernels.
///
/// One instance serves any modulus size; buffers grow to the largest
/// operands seen and are reused thereafter.
#[derive(Debug, Clone, Default)]
pub struct ModScratch {
    /// Product / working-dividend buffer (doubles as Knuth-D's in-place
    /// remainder buffer).
    us: Vec<u32>,
    /// Normalized (shifted) divisor buffer.
    vs: Vec<u32>,
}

/// `(a + b) mod m`.
///
/// # Panics
/// Panics if `m` is zero.
pub fn add_mod(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    &(a + b) % m
}

/// `(a + b) mod m` into `out`, reusing `scratch` — no allocation once the
/// buffers have grown to the operand size.
///
/// Requires reduced operands (`a < m`, `b < m`), so the sum is below `2m`
/// and a single conditional subtract canonicalizes without dividing.
///
/// # Panics
/// Panics if `m` is zero; debug-asserts the reduced-operand precondition.
pub fn add_mod_into(
    a: &BigUint,
    b: &BigUint,
    m: &BigUint,
    scratch: &mut ModScratch,
    out: &mut BigUint,
) {
    assert!(!m.is_zero(), "zero modulus");
    debug_assert!(a < m && b < m, "add_mod_into requires reduced operands");
    let us = &mut scratch.us;
    us.clear();
    let (al, bl) = (a.limbs(), b.limbs());
    let (long, short) = if al.len() >= bl.len() { (al, bl) } else { (bl, al) };
    let mut carry: u64 = 0;
    for (i, &l) in long.iter().enumerate() {
        let s = l as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
        us.push(s as u32);
        carry = s >> 32;
    }
    if carry != 0 {
        us.push(carry as u32);
    }
    trim(us);
    // a + b < 2m: subtract m at most once.
    if cmp_slices(us, m.limbs()) != Ordering::Less {
        sub_in_place(us, m.limbs());
        trim(us);
    }
    out.assign_from_slice(us);
}

/// `(a * b) mod m`.
///
/// # Panics
/// Panics if `m` is zero.
pub fn mul_mod(a: &BigUint, b: &BigUint, m: &BigUint) -> BigUint {
    &(a * b) % m
}

/// `(a * b) mod m` into `out`, reusing `scratch` — the schoolbook product
/// and the Knuth-D remainder both run in caller-held buffers, and the
/// quotient is never materialized.
///
/// Accepts arbitrary (unreduced) operands, like [`mul_mod`].
///
/// # Panics
/// Panics if `m` is zero.
pub fn mul_mod_into(
    a: &BigUint,
    b: &BigUint,
    m: &BigUint,
    scratch: &mut ModScratch,
    out: &mut BigUint,
) {
    assert!(!m.is_zero(), "zero modulus");
    mul_limbs_into(a.limbs(), b.limbs(), &mut scratch.us);
    rem_in_place(scratch, m);
    out.assign_from_slice(&scratch.us);
}

/// `base^exp mod m` by left-to-right square-and-multiply.
///
/// `pow_mod(_, 0, m) == 1 mod m`.
///
/// Every squaring and multiply routes through [`mul_mod_into`] over two work
/// registers and one scratch set, so the loop allocates nothing after the
/// first iteration. This function is the oracle the Montgomery differential
/// suites compare against; [`crate::montgomery::MontgomeryCtx::pow`] must
/// match it bit-for-bit.
///
/// # Panics
/// Panics if `m` is zero.
pub fn pow_mod(base: &BigUint, exp: &BigUint, m: &BigUint) -> BigUint {
    assert!(!m.is_zero(), "zero modulus");
    if m.is_one() {
        return BigUint::zero();
    }
    let mut scratch = ModScratch::default();
    let mut result = BigUint::one();
    let mut tmp = BigUint::zero();
    let base = base % m;
    let nbits = exp.bits();
    for i in (0..nbits).rev() {
        mul_mod_into(&result, &result, m, &mut scratch, &mut tmp);
        std::mem::swap(&mut result, &mut tmp);
        if exp.bit(i) {
            mul_mod_into(&result, &base, m, &mut scratch, &mut tmp);
            std::mem::swap(&mut result, &mut tmp);
        }
    }
    result
}

/// Modular inverse: `a^(-1) mod m` if `gcd(a, m) == 1`, else `None`.
///
/// # Panics
/// Panics if `m` is zero.
pub fn inv_mod(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    assert!(!m.is_zero(), "zero modulus");
    if m.is_one() {
        return Some(BigUint::zero());
    }
    let ai = BigInt::from(a % m);
    let mi = BigInt::from(m.clone());
    let (g, x, _) = BigInt::extended_gcd(&ai, &mi);
    if !g.magnitude().is_one() {
        return None;
    }
    let inv = x.mod_floor(&mi);
    Some(inv.magnitude().clone())
}

// ---------------------------------------------------------------------------
// Limb-buffer helpers for the `_into` kernels
// ---------------------------------------------------------------------------

/// Drops trailing zero limbs.
fn trim(us: &mut Vec<u32>) {
    while us.last() == Some(&0) {
        us.pop();
    }
}

/// Compares two trimmed little-endian limb slices.
fn cmp_slices(a: &[u32], b: &[u32]) -> Ordering {
    match a.len().cmp(&b.len()) {
        Ordering::Equal => {}
        ord => return ord,
    }
    for (x, y) in a.iter().rev().zip(b.iter().rev()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

/// `us -= b` in place, assuming `us >= b` (as values).
fn sub_in_place(us: &mut [u32], b: &[u32]) {
    let mut borrow: i64 = 0;
    for (i, limb) in us.iter_mut().enumerate() {
        let d = *limb as i64 - b.get(i).copied().unwrap_or(0) as i64 - borrow;
        if d < 0 {
            *limb = (d + (1i64 << 32)) as u32;
            borrow = 1;
        } else {
            *limb = d as u32;
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0, "subtraction underflow");
}

/// Schoolbook product `a * b` into `out` (trimmed), reusing its allocation.
fn mul_limbs_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    out.resize(a.len() + b.len(), 0);
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: u64 = 0;
        for (j, &bj) in b.iter().enumerate() {
            let t = ai as u64 * bj as u64 + out[i + j] as u64 + carry;
            out[i + j] = t as u32;
            carry = t >> 32;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u64 + carry;
            out[k] = t as u32;
            carry = t >> 32;
            k += 1;
        }
    }
    trim(out);
}

/// Multiplies the buffer by `2^sh` in place (`sh < 32`), growing by one limb.
fn shl_small_in_place(us: &mut Vec<u32>, sh: usize) {
    if sh == 0 || us.is_empty() {
        return;
    }
    us.push(0);
    for i in (0..us.len() - 1).rev() {
        let v = (us[i] as u64) << sh;
        // The already-shifted limb above has its low `sh` bits zero, so the
        // carry ORs in losslessly.
        us[i + 1] |= (v >> 32) as u32;
        us[i] = v as u32;
    }
}

/// Divides the buffer by `2^sh` in place (`sh < 32`, low bits discarded).
fn shr_small_in_place(us: &mut [u32], sh: usize) {
    if sh == 0 {
        return;
    }
    for i in 0..us.len() {
        let hi = us.get(i + 1).copied().unwrap_or(0);
        us[i] = (us[i] >> sh) | (((hi as u64) << (32 - sh)) as u32);
    }
}

/// Reduces `scratch.us` modulo `m` in place (remainder-only Knuth D; no
/// quotient storage, no allocation once the buffers have grown).
fn rem_in_place(scratch: &mut ModScratch, m: &BigUint) {
    trim(&mut scratch.us);
    if cmp_slices(&scratch.us, m.limbs()) == Ordering::Less {
        return;
    }
    let ml = m.limbs();
    if ml.len() == 1 {
        // Single-limb modulus: the same u64 scan as `divrem_small`, minus
        // the quotient.
        let d = ml[0] as u64;
        let mut rem: u64 = 0;
        for &l in scratch.us.iter().rev() {
            rem = (((rem << 32) | l as u64) % d) & 0xffff_ffff;
        }
        scratch.us.clear();
        if rem != 0 {
            scratch.us.push(rem as u32);
        }
        return;
    }
    // Normalize: shift so the divisor's top limb has its high bit set, then
    // run the shared Algorithm D core with no quotient sink.
    let sh = ml.last().expect("multi-limb modulus").leading_zeros() as usize;
    let vs = &mut scratch.vs;
    vs.clear();
    vs.extend_from_slice(ml);
    shl_small_in_place(vs, sh);
    trim(vs);
    shl_small_in_place(&mut scratch.us, sh);
    trim(&mut scratch.us);
    scratch.us.push(0); // the extra high limb Algorithm D works in
    knuth_d_core(&mut scratch.us, vs, None);
    let n = vs.len();
    scratch.us.truncate(n);
    shr_small_in_place(&mut scratch.us, sh);
    trim(&mut scratch.us);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: u64) -> BigUint {
        BigUint::from(v)
    }

    /// Deterministic pseudo-random value with roughly `limbs` limbs.
    fn rnd(limbs: usize, seed: u32) -> BigUint {
        let mut v = Vec::with_capacity(limbs);
        let mut x = seed.wrapping_mul(0x9e3779b9) | 1;
        for i in 0..limbs {
            x = x.wrapping_mul(2654435761).wrapping_add(i as u32 | 1);
            v.push(x);
        }
        BigUint::from_limbs_le(v)
    }

    #[test]
    fn pow_mod_small() {
        assert_eq!(pow_mod(&b(2), &b(10), &b(1000)), b(24));
        assert_eq!(pow_mod(&b(3), &b(0), &b(7)), b(1));
        assert_eq!(pow_mod(&b(0), &b(5), &b(7)), b(0));
        assert_eq!(pow_mod(&b(5), &b(117), &b(1)), b(0));
    }

    #[test]
    fn pow_mod_fermat() {
        // Fermat's little theorem: a^(p-1) ≡ 1 (mod p) for prime p ∤ a.
        let p = b(1_000_000_007);
        for a in [2u64, 3, 65_537, 999_999_999] {
            assert_eq!(pow_mod(&b(a), &(&p - &b(1)), &p), b(1), "a={a}");
        }
    }

    #[test]
    fn pow_mod_large_known_answer() {
        // 2^1000 mod (2^89 - 1): verified via repeated squaring structure —
        // 2^89 ≡ 1, so 2^1000 = 2^(89*11 + 21) ≡ 2^21.
        let m = &(BigUint::one() << 89usize) - &BigUint::one();
        assert_eq!(pow_mod(&b(2), &b(1000), &m), b(1 << 21));
    }

    #[test]
    fn inv_mod_basics() {
        assert_eq!(inv_mod(&b(3), &b(7)), Some(b(5)));
        assert_eq!(inv_mod(&b(10), &b(17)), Some(b(12)));
        assert_eq!(inv_mod(&b(6), &b(9)), None); // gcd = 3
        assert_eq!(inv_mod(&b(5), &b(1)), Some(b(0)));
    }

    #[test]
    fn inv_mod_roundtrip() {
        let m = b(1_000_000_007);
        for a in [2u64, 12345, 999_999_999, 65_537] {
            let inv = inv_mod(&b(a), &m).expect("prime modulus");
            assert_eq!(mul_mod(&b(a), &inv, &m), b(1), "a={a}");
        }
    }

    #[test]
    fn add_mul_mod() {
        assert_eq!(add_mod(&b(8), &b(9), &b(10)), b(7));
        assert_eq!(mul_mod(&b(8), &b(9), &b(10)), b(2));
    }

    #[test]
    fn mul_mod_into_matches_mul_mod() {
        let mut scratch = ModScratch::default();
        let mut out = BigUint::zero();
        for (la, lb, lm) in [(1usize, 1usize, 1usize), (4, 3, 2), (8, 8, 5), (20, 20, 13), (40, 40, 33)] {
            for seed in 0..10u32 {
                let a = rnd(la, seed.wrapping_add(1));
                let c = rnd(lb, seed.wrapping_add(100));
                let mut m = rnd(lm, seed.wrapping_add(200));
                if m.is_zero() {
                    m = b(97);
                }
                mul_mod_into(&a, &c, &m, &mut scratch, &mut out);
                assert_eq!(out, mul_mod(&a, &c, &m), "la={la} lb={lb} lm={lm} seed={seed}");
            }
        }
    }

    #[test]
    fn mul_mod_into_edges() {
        let mut scratch = ModScratch::default();
        let mut out = BigUint::one();
        // Zero operands and a product exactly divisible by m.
        mul_mod_into(&BigUint::zero(), &b(7), &b(5), &mut scratch, &mut out);
        assert_eq!(out, BigUint::zero());
        mul_mod_into(&b(15), &b(4), &b(12), &mut scratch, &mut out);
        assert_eq!(out, BigUint::zero());
        // m = 1 → always 0.
        mul_mod_into(&b(99), &b(98), &b(1), &mut scratch, &mut out);
        assert_eq!(out, BigUint::zero());
        // Product smaller than m (no division needed).
        mul_mod_into(&b(3), &b(4), &b(1000), &mut scratch, &mut out);
        assert_eq!(out, b(12));
    }

    #[test]
    fn add_mod_into_matches_add_mod() {
        let mut scratch = ModScratch::default();
        let mut out = BigUint::zero();
        for lm in [1usize, 2, 5, 16] {
            for seed in 0..10u32 {
                let mut m = rnd(lm, seed.wrapping_add(300));
                if m.is_zero() || m.is_one() {
                    m = b(101);
                }
                let a = &rnd(lm + 1, seed.wrapping_add(400)) % &m;
                let c = &rnd(lm + 1, seed.wrapping_add(500)) % &m;
                add_mod_into(&a, &c, &m, &mut scratch, &mut out);
                assert_eq!(out, add_mod(&a, &c, &m), "lm={lm} seed={seed}");
            }
        }
    }

    #[test]
    fn add_mod_into_wraps_exactly_once() {
        let mut scratch = ModScratch::default();
        let mut out = BigUint::zero();
        let m = b(10);
        add_mod_into(&b(8), &b(9), &m, &mut scratch, &mut out);
        assert_eq!(out, b(7));
        add_mod_into(&b(5), &b(5), &m, &mut scratch, &mut out);
        assert_eq!(out, BigUint::zero());
        add_mod_into(&b(1), &b(2), &m, &mut scratch, &mut out);
        assert_eq!(out, b(3));
    }
}
