//! Arbitrary-precision signed integer: sign + [`BigUint`] magnitude.

use crate::biguint::{BigUint, ParseBigUintError};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Rem, Sub};

/// Sign of a [`BigInt`]. Zero always has [`Sign::Zero`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Minus,
    /// Exactly zero.
    Zero,
    /// Strictly positive.
    Plus,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        }
    }

    fn product(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Plus,
            _ => Sign::Minus,
        }
    }
}

/// An arbitrary-precision signed integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            mag: BigUint::zero(),
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt {
            sign: Sign::Plus,
            mag: BigUint::one(),
        }
    }

    /// Builds from an explicit sign and magnitude (sign is normalized when
    /// the magnitude is zero).
    pub fn from_sign_mag(sign: Sign, mag: BigUint) -> Self {
        if mag.is_zero() {
            BigInt::zero()
        } else {
            let sign = if sign == Sign::Zero { Sign::Plus } else { sign };
            BigInt { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude `|self|` as an unsigned integer.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// `true` iff zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// `true` iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// `true` iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt::from_sign_mag(Sign::Plus, self.mag.clone())
    }

    /// Parses a decimal string with optional leading `-` or `+`.
    pub fn from_dec_str(s: &str) -> Result<Self, ParseBigUintError> {
        let (sign, rest) = match s.strip_prefix('-') {
            Some(rest) => (Sign::Minus, rest),
            None => (Sign::Plus, s.strip_prefix('+').unwrap_or(s)),
        };
        Ok(BigInt::from_sign_mag(sign, BigUint::from_dec_str(rest)?))
    }

    /// Truncated division returning `(quotient, remainder)` with
    /// `self = q·d + r`, `|r| < |d|`, and `r` sharing `self`'s sign
    /// (the convention of Rust's primitive `/` and `%`).
    ///
    /// # Panics
    /// Panics if `divisor` is zero.
    pub fn divrem(&self, divisor: &BigInt) -> (BigInt, BigInt) {
        let (q_mag, r_mag) = self.mag.divrem(&divisor.mag);
        let q = BigInt::from_sign_mag(self.sign.product(divisor.sign), q_mag);
        let r = BigInt::from_sign_mag(self.sign, r_mag);
        (q, r)
    }

    /// Floor division: `self = q·d + r` with `q = ⌊self/d⌋`, so the remainder
    /// shares the *divisor*'s sign (and is non-negative for positive `d` —
    /// the form modular arithmetic wants).
    pub fn div_mod_floor(&self, divisor: &BigInt) -> (BigInt, BigInt) {
        let (q, r) = self.divrem(divisor);
        if r.is_zero() || r.is_negative() == divisor.is_negative() {
            (q, r)
        } else {
            // dls-lint: allow(unchecked-arith) -- BigInt ops are arbitrary-precision
            (&q - &BigInt::one(), &r + divisor)
        }
    }

    /// `self mod m` in `[0, m)` for positive modulus `m`.
    ///
    /// # Panics
    /// Panics if `m` is not strictly positive.
    pub fn mod_floor(&self, m: &BigInt) -> BigInt {
        assert!(m.is_positive(), "modulus must be positive");
        self.div_mod_floor(m).1
    }

    /// Extended Euclidean algorithm: returns `(g, x, y)` with
    /// `g = gcd(|a|, |b|)` and `a·x + b·y = g`.
    pub fn extended_gcd(a: &BigInt, b: &BigInt) -> (BigInt, BigInt, BigInt) {
        let (mut old_r, mut r) = (a.clone(), b.clone());
        let (mut old_s, mut s) = (BigInt::one(), BigInt::zero());
        let (mut old_t, mut t) = (BigInt::zero(), BigInt::one());
        while !r.is_zero() {
            let (q, rem) = old_r.divrem(&r);
            old_r = std::mem::replace(&mut r, rem);
            let ns = &old_s - &(&q * &s);
            old_s = std::mem::replace(&mut s, ns);
            let nt = &old_t - &(&q * &t);
            old_t = std::mem::replace(&mut t, nt);
        }
        if old_r.is_negative() {
            (-&old_r, -&old_s, -&old_t)
        } else {
            (old_r, old_s, old_t)
        }
    }

    /// Converts to `i64`, returning `None` on overflow.
    pub fn to_i64(&self) -> Option<i64> {
        let mag = self.mag.to_u64()?;
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Plus => i64::try_from(mag).ok(),
            Sign::Minus => {
                if mag <= i64::MAX as u64 + 1 {
                    Some((mag as i64).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    /// Lossy conversion to `f64` (reporting/display boundary; exact
    /// arithmetic never reads the result back).
    // dls-lint: allow(no-float-in-exact) -- exit boundary from the exact domain
    pub fn to_f64(&self) -> f64 {
        let m = self.mag.to_f64();
        match self.sign {
            Sign::Minus => -m,
            _ => m,
        }
    }
}

impl From<BigUint> for BigInt {
    fn from(mag: BigUint) -> Self {
        BigInt::from_sign_mag(Sign::Plus, mag)
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        let sign = match v.cmp(&0) {
            Ordering::Less => Sign::Minus,
            Ordering::Equal => Sign::Zero,
            Ordering::Greater => Sign::Plus,
        };
        BigInt::from_sign_mag(sign, BigUint::from(v.unsigned_abs()))
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(v as i64)
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from_sign_mag(Sign::Plus, BigUint::from(v))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Minus, Sign::Minus) => other.mag.cmp(&self.mag),
            (Sign::Minus, _) => Ordering::Less,
            (Sign::Zero, Sign::Minus) => Ordering::Greater,
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Zero, Sign::Plus) => Ordering::Less,
            (Sign::Plus, Sign::Plus) => self.mag.cmp(&other.mag),
            (Sign::Plus, _) => Ordering::Greater,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.flip(),
            mag: self.mag.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.flip(),
            mag: self.mag,
        }
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_mag(a, &self.mag + &rhs.mag),
            _ => match self.mag.cmp(&rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_sign_mag(self.sign, &self.mag - &rhs.mag)
                }
                Ordering::Less => BigInt::from_sign_mag(rhs.sign, &rhs.mag - &self.mag),
            },
        }
    }
}

impl Add for BigInt {
    type Output = BigInt;
    fn add(self, rhs: BigInt) -> BigInt {
        &self + &rhs
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Sub for BigInt {
    type Output = BigInt;
    fn sub(self, rhs: BigInt) -> BigInt {
        &self - &rhs
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        BigInt::from_sign_mag(self.sign.product(rhs.sign), &self.mag * &rhs.mag)
    }
}

impl Mul for BigInt {
    type Output = BigInt;
    fn mul(self, rhs: BigInt) -> BigInt {
        &self * &rhs
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.divrem(rhs).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.divrem(rhs).1
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sign == Sign::Minus {
            f.write_str("-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

impl std::str::FromStr for BigInt {
    type Err = ParseBigUintError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        BigInt::from_dec_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn sign_normalization() {
        assert_eq!(BigInt::from_sign_mag(Sign::Minus, BigUint::zero()), BigInt::zero());
        assert!(!BigInt::zero().is_negative());
        assert!(!BigInt::zero().is_positive());
    }

    #[test]
    fn parse_and_display() {
        assert_eq!(BigInt::from_dec_str("-123").unwrap(), int(-123));
        assert_eq!(BigInt::from_dec_str("+123").unwrap(), int(123));
        assert_eq!(BigInt::from_dec_str("-0").unwrap(), BigInt::zero());
        assert_eq!(int(-45).to_string(), "-45");
        assert_eq!(BigInt::zero().to_string(), "0");
    }

    #[test]
    fn signed_addition_table() {
        for a in -5i64..=5 {
            for b in -5i64..=5 {
                assert_eq!((&int(a) + &int(b)).to_i64(), Some(a + b), "{a}+{b}");
                assert_eq!((&int(a) - &int(b)).to_i64(), Some(a - b), "{a}-{b}");
                assert_eq!((&int(a) * &int(b)).to_i64(), Some(a * b), "{a}*{b}");
            }
        }
    }

    #[test]
    fn division_matches_rust_semantics() {
        for a in [-100i64, -37, -1, 0, 1, 37, 100] {
            for b in [-7i64, -3, 3, 7] {
                let (q, r) = int(a).divrem(&int(b));
                assert_eq!(q.to_i64(), Some(a / b), "{a}/{b}");
                assert_eq!(r.to_i64(), Some(a % b), "{a}%{b}");
            }
        }
    }

    #[test]
    fn floor_division() {
        let (q, r) = int(-7).div_mod_floor(&int(3));
        assert_eq!((q.to_i64(), r.to_i64()), (Some(-3), Some(2)));
        let (q, r) = int(7).div_mod_floor(&int(-3));
        assert_eq!((q.to_i64(), r.to_i64()), (Some(-3), Some(-2)));
        let (q, r) = int(-7).div_mod_floor(&int(-3));
        assert_eq!((q.to_i64(), r.to_i64()), (Some(2), Some(-1)));
        assert_eq!(int(-7).mod_floor(&int(3)).to_i64(), Some(2));
    }

    #[test]
    fn extended_gcd_bezout() {
        for (a, b) in [(240i64, 46i64), (-240, 46), (240, -46), (0, 5), (5, 0), (12, 18)] {
            let (g, x, y) = BigInt::extended_gcd(&int(a), &int(b));
            let lhs = &(&int(a) * &x) + &(&int(b) * &y);
            assert_eq!(lhs, g, "bezout for ({a},{b})");
            let expected_g = {
                let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
                while b != 0 {
                    let t = a % b;
                    a = b;
                    b = t;
                }
                a
            };
            assert_eq!(g.to_i64(), Some(expected_g as i64));
        }
    }

    #[test]
    fn to_i64_bounds() {
        assert_eq!(int(i64::MAX).to_i64(), Some(i64::MAX));
        assert_eq!(int(i64::MIN).to_i64(), Some(i64::MIN));
        let too_big = &BigInt::from(i64::MAX as u64) + &BigInt::one();
        assert_eq!(too_big.to_i64(), None);
    }

    #[test]
    fn ordering_across_signs() {
        assert!(int(-5) < int(-4));
        assert!(int(-1) < BigInt::zero());
        assert!(BigInt::zero() < int(1));
        assert!(int(3) < int(10));
    }

    #[test]
    fn to_f64_signed() {
        assert_eq!(int(-12345).to_f64(), -12345.0);
        assert_eq!(BigInt::zero().to_f64(), 0.0);
    }
}
