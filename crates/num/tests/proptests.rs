//! Property-based tests for the bignum substrate.
//!
//! Strategy: generate random values both as primitives (cross-checked against
//! `u128`/`i128` arithmetic) and as random limb vectors (exercising carry
//! chains, Karatsuba, and Knuth-D on multi-limb operands).
//!
//! **Fidelity note:** in this offline workspace these properties run
//! against the vendored proptest stand-in (`vendor/proptest`): a
//! deterministic per-test seed, a fixed case count, no shrinking, and no
//! run-to-run variation. A green run is a frozen regression sweep (256
//! cases by default), not real fuzzing — re-run the suite against
//! upstream proptest whenever registry access is available (see
//! `vendor/README.md`).

use dls_num::{gcd, lcm, modmath, BigInt, BigUint, Rational};
use proptest::prelude::*;

fn arb_biguint() -> impl Strategy<Value = BigUint> {
    prop::collection::vec(any::<u32>(), 0..12).prop_map(BigUint::from_limbs_le)
}

fn arb_bigint() -> impl Strategy<Value = BigInt> {
    (arb_biguint(), any::<bool>()).prop_map(|(mag, neg)| {
        let v = BigInt::from(mag);
        if neg {
            -v
        } else {
            v
        }
    })
}

fn arb_rational() -> impl Strategy<Value = Rational> {
    (any::<i64>(), 1..u32::MAX).prop_map(|(n, d)| {
        Rational::new(BigInt::from(n), BigInt::from(d as u64)).unwrap()
    })
}

proptest! {
    // ---------------- BigUint vs u128 ground truth ----------------

    #[test]
    fn u128_add_matches(a in any::<u64>(), b in any::<u64>()) {
        let s = &BigUint::from(a) + &BigUint::from(b);
        prop_assert_eq!(s.to_u128(), Some(a as u128 + b as u128));
    }

    #[test]
    fn u128_mul_matches(a in any::<u64>(), b in any::<u64>()) {
        let p = &BigUint::from(a) * &BigUint::from(b);
        prop_assert_eq!(p.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn u128_divrem_matches(a in any::<u128>(), b in 1..=u64::MAX) {
        let (q, r) = BigUint::from(a).divrem(&BigUint::from(b));
        prop_assert_eq!(q.to_u128(), Some(a / b as u128));
        prop_assert_eq!(r.to_u128(), Some(a % b as u128));
    }

    // ---------------- BigUint ring axioms on multi-limb values ----------------

    #[test]
    fn add_commutative(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutative(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_associative(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
    }

    #[test]
    fn distributive(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn add_sub_roundtrip(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!((&a + &b) - &b, a);
    }

    #[test]
    fn divrem_reconstruction(a in arb_biguint(), b in arb_biguint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.divrem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn shift_roundtrip(a in arb_biguint(), s in 0usize..200) {
        prop_assert_eq!(&(&a << s) >> s, a);
    }

    #[test]
    fn shift_is_mul_by_power(a in arb_biguint(), s in 0usize..64) {
        prop_assert_eq!(&a << s, &a * &(BigUint::one() << s));
    }

    #[test]
    fn dec_string_roundtrip(a in arb_biguint()) {
        prop_assert_eq!(BigUint::from_dec_str(&a.to_string()).unwrap(), a);
    }

    #[test]
    fn hex_string_roundtrip(a in arb_biguint()) {
        prop_assert_eq!(BigUint::from_hex_str(&format!("{a:x}")).unwrap(), a);
    }

    #[test]
    fn bytes_roundtrip(a in arb_biguint()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a);
    }

    #[test]
    fn isqrt_bounds(a in arb_biguint()) {
        let s = a.isqrt();
        prop_assert!(&s * &s <= a);
        let s1 = &s + &BigUint::one();
        prop_assert!(&s1 * &s1 > a);
    }

    #[test]
    fn gcd_divides_both(a in arb_biguint(), b in arb_biguint()) {
        prop_assume!(!a.is_zero() && !b.is_zero());
        let g = gcd(&a, &b);
        prop_assert!((&a % &g).is_zero());
        prop_assert!((&b % &g).is_zero());
    }

    #[test]
    fn gcd_lcm_product(a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != 0 && b != 0);
        let (a, b) = (BigUint::from(a), BigUint::from(b));
        prop_assert_eq!(&gcd(&a, &b) * &lcm(&a, &b), &a * &b);
    }

    // ---------------- BigInt vs i128 ground truth ----------------

    #[test]
    fn i128_ops_match(a in any::<i64>(), b in any::<i64>()) {
        let (ba, bb) = (BigInt::from(a), BigInt::from(b));
        prop_assert_eq!((&ba + &bb).to_string(), (a as i128 + b as i128).to_string());
        prop_assert_eq!((&ba - &bb).to_string(), (a as i128 - b as i128).to_string());
        prop_assert_eq!((&ba * &bb).to_string(), (a as i128 * b as i128).to_string());
    }

    #[test]
    fn bigint_divrem_identity(a in arb_bigint(), b in arb_bigint()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.divrem(&b);
        prop_assert_eq!(&(&q * &b) + &r, a.clone());
        prop_assert!(r.magnitude() < b.magnitude());
    }

    #[test]
    fn bigint_mod_floor_range(a in arb_bigint(), b in arb_bigint()) {
        prop_assume!(b.is_positive());
        let r = a.mod_floor(&b);
        prop_assert!(!r.is_negative());
        prop_assert!(r < b);
    }

    #[test]
    fn extended_gcd_bezout(a in arb_bigint(), b in arb_bigint()) {
        let (g, x, y) = BigInt::extended_gcd(&a, &b);
        prop_assert_eq!(&(&a * &x) + &(&b * &y), g);
    }

    // ---------------- Rational field axioms ----------------

    #[test]
    fn rational_add_commutative(a in arb_rational(), b in arb_rational()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn rational_mul_inverse(a in arb_rational()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(&a * &a.recip(), Rational::one());
    }

    #[test]
    fn rational_distributive(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn rational_sub_self_is_zero(a in arb_rational()) {
        prop_assert!((&a - &a).is_zero());
    }

    #[test]
    fn rational_f64_roundtrip(v in -1e12f64..1e12) {
        let r = Rational::from_f64(v).unwrap();
        let back = r.to_f64();
        prop_assert!((back - v).abs() <= v.abs() * 1e-12, "{} vs {}", back, v);
    }

    #[test]
    fn rational_ordering_consistent_with_f64(a in -10_000i64..10_000, b in 1i64..1000,
                                             c in -10_000i64..10_000, d in 1i64..1000) {
        let r1 = Rational::from_ratio(a, b);
        let r2 = Rational::from_ratio(c, d);
        let f1 = a as f64 / b as f64;
        let f2 = c as f64 / d as f64;
        if f1 < f2 {
            prop_assert!(r1 < r2);
        } else if f1 > f2 {
            prop_assert!(r1 > r2);
        }
    }

    // ---------------- Modular arithmetic ----------------

    #[test]
    fn pow_mod_matches_naive(base in 0u64..1000, exp in 0u32..50, m in 2u64..100_000) {
        let expected = {
            let mut acc: u128 = 1;
            for _ in 0..exp {
                acc = acc * base as u128 % m as u128;
            }
            acc as u64
        };
        let got = modmath::pow_mod(
            &BigUint::from(base),
            &BigUint::from(exp as u64),
            &BigUint::from(m),
        );
        prop_assert_eq!(got.to_u64(), Some(expected));
    }

    #[test]
    fn inv_mod_is_inverse(a in 1u64..u64::MAX, m in 2u64..u64::MAX) {
        let (ba, bm) = (BigUint::from(a), BigUint::from(m));
        if let Some(inv) = modmath::inv_mod(&ba, &bm) {
            prop_assert_eq!(modmath::mul_mod(&ba, &inv, &bm), BigUint::one());
        } else {
            // No inverse implies a shared factor.
            prop_assert!(!gcd(&ba, &bm).is_one());
        }
    }
}
