//! Baseline support for the workspace lint gate.
//!
//! `lint_baseline.json` at the repo root records diagnostics that are
//! temporarily accepted: the tier-1 gate fails on any finding *not* in the
//! baseline, so new violations can't land silently, while a burn-down can
//! be staged across PRs. The shipped baseline is empty — the workspace is
//! fully clean or suppressed-with-reason — and the gate also asserts that,
//! so the file can only grow in an explicit, reviewed diff.
//!
//! The format is a strict subset of JSON, parsed with a tiny hand-rolled
//! reader (the lint crate stays std-only):
//!
//! ```json
//! {
//!   "version": 2,
//!   "diagnostics": [
//!     { "rule": "determinism", "file": "crates/x/src/y.rs", "line": 12 }
//!   ]
//! }
//! ```
//!
//! Entries match a [`Diagnostic`] on exact `(rule, file, line)`; columns
//! and messages are deliberately not part of the key so that unrelated
//! same-line edits don't churn the baseline.

use crate::diag::Diagnostic;

/// One accepted finding: matched on exact rule + file + line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id (`determinism`, `unchecked-arith`, …).
    pub rule: String,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line of the accepted finding.
    pub line: usize,
}

impl BaselineEntry {
    /// `true` when this entry accepts `d`.
    pub fn matches(&self, d: &Diagnostic) -> bool {
        self.rule == d.rule && self.file == d.file && self.line == d.line
    }
}

/// Splits diagnostics into (new, baselined) against the baseline entries.
pub fn diff<'d>(
    diags: &'d [Diagnostic],
    baseline: &[BaselineEntry],
) -> (Vec<&'d Diagnostic>, Vec<&'d Diagnostic>) {
    let mut fresh = Vec::new();
    let mut accepted = Vec::new();
    for d in diags {
        if baseline.iter().any(|e| e.matches(d)) {
            accepted.push(d);
        } else {
            fresh.push(d);
        }
    }
    (fresh, accepted)
}

/// Parses a baseline file. Errors are strings: the only caller is the gate
/// test, which wants a message, not a typed error.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut p = Parser {
        chars: text.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    p.expect('{')?;
    let mut version_seen = false;
    let mut entries = Vec::new();
    loop {
        p.skip_ws();
        if p.eat('}') {
            break;
        }
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        match key.as_str() {
            "version" => {
                let v = p.number()?;
                if v != 2 {
                    return Err(format!("unsupported baseline version {v} (expected 2)"));
                }
                version_seen = true;
            }
            "diagnostics" => {
                p.expect('[')?;
                loop {
                    p.skip_ws();
                    if p.eat(']') {
                        break;
                    }
                    entries.push(p.entry()?);
                    p.skip_ws();
                    if !p.eat(',') {
                        p.skip_ws();
                        p.expect(']')?;
                        break;
                    }
                }
            }
            other => return Err(format!("unknown baseline key {other:?}")),
        }
        p.skip_ws();
        if !p.eat(',') {
            p.skip_ws();
            p.expect('}')?;
            break;
        }
    }
    if !version_seen {
        return Err("baseline missing \"version\"".to_string());
    }
    Ok(entries)
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!(
                "baseline parse error at offset {}: expected {c:?}, found {:?}",
                self.pos,
                self.peek()
            ))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some('"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(c @ ('"' | '\\' | '/')) => s.push(c),
                        Some('n') => s.push('\n'),
                        Some('t') => s.push('\t'),
                        other => {
                            return Err(format!("unsupported baseline escape {other:?}"));
                        }
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    s.push(c);
                    self.pos += 1;
                }
                None => return Err("unterminated string in baseline".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<usize, String> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("baseline parse error at offset {start}: expected number"));
        }
        self.chars[start..self.pos]
            .iter()
            .collect::<String>()
            .parse::<usize>()
            .map_err(|e| format!("baseline number out of range: {e}"))
    }

    fn entry(&mut self) -> Result<BaselineEntry, String> {
        self.expect('{')?;
        let mut rule = None;
        let mut file = None;
        let mut line = None;
        loop {
            self.skip_ws();
            if self.eat('}') {
                break;
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            match key.as_str() {
                "rule" => rule = Some(self.string()?),
                "file" => file = Some(self.string()?),
                "line" => line = Some(self.number()?),
                other => return Err(format!("unknown baseline entry key {other:?}")),
            }
            self.skip_ws();
            if !self.eat(',') {
                self.skip_ws();
                self.expect('}')?;
                break;
            }
        }
        match (rule, file, line) {
            (Some(rule), Some(file), Some(line)) => Ok(BaselineEntry { rule, file, line }),
            _ => Err("baseline entry missing rule/file/line".to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_baseline_parses() {
        let entries = parse("{\n  \"version\": 2,\n  \"diagnostics\": []\n}\n").unwrap();
        assert!(entries.is_empty());
    }

    #[test]
    fn entries_parse_and_match() {
        let entries = parse(
            r#"{ "version": 2, "diagnostics": [
                { "rule": "determinism", "file": "crates/a/src/b.rs", "line": 7 },
                { "rule": "unchecked-arith", "file": "crates/num/src/biguint.rs", "line": 12 }
            ] }"#,
        )
        .unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].rule, "determinism");
        assert_eq!(entries[1].line, 12);
    }

    #[test]
    fn wrong_version_is_rejected() {
        assert!(parse("{ \"version\": 1, \"diagnostics\": [] }").is_err());
    }

    #[test]
    fn missing_version_is_rejected() {
        assert!(parse("{ \"diagnostics\": [] }").is_err());
    }
}
