//! Determinism pass: the identical-computation assumption, statically.
//!
//! The mechanism's strategyproofness theorems (Thms 5.1–5.3) hold because
//! every honest participant derives the same allocation, meters and
//! payments from the same signed bids. Two classes of code break that
//! without failing any functional test:
//!
//! * **wall-clock reads** (`Instant::now`, `SystemTime`) and
//!   `thread::sleep` inside the virtual-time path — the event-driven
//!   executor is bit-reproducible precisely because time only exists as
//!   `VirtualClock`; a real clock read makes outcomes host-dependent.
//! * **unordered collections** (`HashMap`/`HashSet`) in modules whose
//!   iteration order can reach a committed output, a canonical encoding or
//!   a message sequence — `RandomState` hashing makes the order differ
//!   *between processes*, so two honest runs sign different bytes.
//!
//! The threaded oracle (`runtime.rs`) legitimately reads real deadlines for
//! its phase barriers and sleeps to model injected delay faults; those
//! sites carry mandatory-reason suppressions rather than being scoped out,
//! so any *new* wall-clock read there needs a written justification too.

use crate::diag::Diagnostic;
use crate::rules::{in_ranges, DETERMINISM};
use crate::SourceFile;

/// Modules where real time must not be read at all: the virtual-time
/// executor and everything whose outputs feed canonical (signed) bytes.
const WALLCLOCK_SCOPE_FILES: &[&str] = &[
    "crates/protocol/src/executor.rs",
    "crates/protocol/src/sched.rs",
    "crates/protocol/src/runtime.rs",
    "crates/protocol/src/service.rs",
    "crates/protocol/src/supervisor.rs",
    "crates/protocol/src/multiload.rs",
    "crates/crypto/src/canon.rs",
];
const WALLCLOCK_SCOPE_PREFIXES: &[&str] = &[
    "crates/dlt/src/",
    "crates/mechanism/src/",
    "crates/num/src/",
];

/// Modules where unordered collections are forbidden: the wall-clock scope
/// plus every canonical encoder and the bench report assembly (whose output
/// tables are committed artifacts and must be stable across runs).
const UNORDERED_SCOPE_PREFIXES: &[&str] = &["crates/crypto/src/", "crates/bench/src/"];

/// `true` when the wall-clock half of the rule applies to `rel`.
fn wallclock_scope(rel: &str) -> bool {
    WALLCLOCK_SCOPE_FILES.contains(&rel)
        || WALLCLOCK_SCOPE_PREFIXES.iter().any(|p| rel.starts_with(p))
}

/// `true` when the unordered-collection half of the rule applies to `rel`.
fn unordered_scope(rel: &str) -> bool {
    wallclock_scope(rel) || UNORDERED_SCOPE_PREFIXES.iter().any(|p| rel.starts_with(p))
}

/// `true` when any half of the determinism rule evaluates in `rel` (drives
/// unused-suppression accounting).
pub fn in_scope(rel: &str) -> bool {
    unordered_scope(rel)
}

/// Runs the pass; returns `true` when at least one scoped file was seen.
pub(crate) fn run(files: &[SourceFile], out: &mut Vec<(usize, Diagnostic)>) -> bool {
    let mut activated = false;
    for (idx, sf) in files.iter().enumerate() {
        let wall = wallclock_scope(&sf.rel);
        let unordered = unordered_scope(&sf.rel);
        if !wall && !unordered {
            continue;
        }
        activated = true;
        let toks = &sf.lexed.tokens;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != crate::lexer::TokenKind::Ident || in_ranges(&sf.excluded, t.line) {
                continue;
            }
            let text = |k: usize| toks.get(k).map(|t| t.text.as_str()).unwrap_or("");
            let message = match t.text.as_str() {
                // `Instant::now()` — storing/passing an `Instant` someone
                // else read is fine; *reading* the clock is the violation.
                "Instant" if text(i + 1) == ":" && text(i + 2) == ":" && text(i + 3) == "now" => {
                    if !wall {
                        continue;
                    }
                    "wall-clock read `Instant::now()` in a declared virtual-time module"
                        .to_string()
                }
                // Any use of `SystemTime` is host state (even UNIX_EPOCH
                // arithmetic exists only to difference against a read).
                "SystemTime" => {
                    if !wall {
                        continue;
                    }
                    "`SystemTime` in a declared virtual-time module".to_string()
                }
                // `thread::sleep` / `std::thread::sleep`.
                "sleep" if text(i.wrapping_sub(1)) == ":" && i >= 3 && text(i - 3) == "thread" => {
                    if !wall {
                        continue;
                    }
                    "`thread::sleep` in a declared virtual-time module".to_string()
                }
                name @ ("HashMap" | "HashSet") => {
                    if !unordered {
                        continue;
                    }
                    format!(
                        "unordered `{name}` in a deterministic module — per-process \
                         RandomState iteration order can leak into committed output"
                    )
                }
                _ => continue,
            };
            out.push((
                idx,
                Diagnostic {
                    rule: DETERMINISM,
                    file: sf.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message,
                    snippet: sf.snippet(t.line),
                    help: "route time through VirtualClock / the phase-budget config and \
                           use BTreeMap/BTreeSet (or sort before iterating); a genuinely \
                           real deadline needs `// dls-lint: allow(determinism) -- <reason>`"
                        .to_string(),
                },
            ));
        }
    }
    activated
}
