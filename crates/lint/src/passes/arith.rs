//! Unchecked-arithmetic pass: exact-payment soundness in the limb kernels.
//!
//! Payments in the mechanism are agreed bit-exactly: every honest node
//! recomputes `Q_i` from the same bids and must land on the same bytes.
//! The bignum kernels in `crates/num` are the foundation of that — and a
//! bare `+`/`-`/`*`/`<<` on a limb type wraps silently in release builds,
//! corrupting the payment on *every* node at once (so no cross-check
//! catches it). The kernels therefore spell out their carry discipline
//! with `wrapping_`/`checked_`/`carrying_`-style forms or widening
//! casts; this pass flags the bare operators that slip through.
//!
//! Heuristic, lexical, and deliberately noisy-by-default in scope: a line
//! is exempt when it shows its own evidence of discipline (an explicit
//! `wrapping_*`/`checked_*`/`overflowing_*`/`saturating_*`/`carrying_*`
//! call, or a widening `as u64`/`as u128`/`as i128` cast); an operator is
//! exempt when one operand is a literal or a SCREAMING_CASE named
//! constant (small-step index bookkeeping like `i + 1` can't overflow
//! before memory does), or when it sits inside `[...]` (index expressions
//! are `usize` bounded by an allocation — at most `isize::MAX` bytes — and
//! every use is bounds-checked at the indexing site). Everything else
//! needs a fix or a `// dls-lint: allow(unchecked-arith) -- <proof>` with
//! a written bound argument.

use crate::diag::Diagnostic;
use crate::lexer::{Token, TokenKind};
use crate::rules::{in_ranges, UNCHECKED_ARITH};
use crate::SourceFile;

/// The limb kernels whose arithmetic feeds exact payments — including the
/// Montgomery kernel and the per-key exponentiation contexts built on it,
/// which now carry the RSA hot path.
const SCOPE: &[&str] = &[
    "crates/num/src/biguint.rs",
    "crates/num/src/bigint.rs",
    "crates/num/src/montgomery.rs",
    "crates/crypto/src/ctx.rs",
];

/// `true` when the pass evaluates in `rel`.
pub fn in_scope(rel: &str) -> bool {
    SCOPE.contains(&rel)
}

/// Keywords that make a preceding-token position a unary (not binary)
/// context for `-`/`*`/`+`.
const UNARY_CONTEXT_KEYWORDS: &[&str] = &[
    "return", "if", "else", "match", "in", "as", "mut", "let", "while", "for", "break",
    "continue", "move", "ref", "where", "impl", "fn", "use", "pub", "const", "static",
    "struct", "enum", "trait", "type", "loop", "unsafe", "dyn",
];

/// Method-name prefixes that prove a line handles overflow explicitly.
const DISCIPLINE_PREFIXES: &[&str] = &[
    "wrapping_", "checked_", "overflowing_", "saturating_", "carrying_", "widening_",
    "borrowing_",
];

/// Casts wide enough to absorb a limb-by-limb product or sum.
const WIDENING_CASTS: &[&str] = &["u64", "u128", "i64", "i128"];

fn is_screaming_const(text: &str) -> bool {
    text.len() > 1
        && text.chars().any(|c| c.is_ascii_uppercase())
        && text
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// `true` when the token can be the left operand of a binary operator.
fn is_left_operand(t: &Token) -> bool {
    match t.kind {
        TokenKind::Ident => !UNARY_CONTEXT_KEYWORDS.contains(&t.text.as_str()),
        TokenKind::Number => true,
        TokenKind::Punct => t.text == ")" || t.text == "]",
        _ => false,
    }
}

/// `true` when the token can start the right operand of a binary operator.
fn is_right_operand(t: &Token) -> bool {
    matches!(t.kind, TokenKind::Ident | TokenKind::Number)
        || (t.kind == TokenKind::Punct && t.text == "(")
}

/// `true` when either operand is a literal or named constant (exempt:
/// bounded-step bookkeeping, not limb arithmetic).
fn operand_exempt(t: &Token) -> bool {
    t.kind == TokenKind::Number || (t.kind == TokenKind::Ident && is_screaming_const(&t.text))
}

/// Runs the pass; returns `true` when at least one scoped file was seen.
pub(crate) fn run(files: &[SourceFile], out: &mut Vec<(usize, Diagnostic)>) -> bool {
    let mut activated = false;
    for (idx, sf) in files.iter().enumerate() {
        if !in_scope(&sf.rel) {
            continue;
        }
        activated = true;
        let toks = &sf.lexed.tokens;

        // Per-line discipline evidence: any token on the line proving the
        // overflow behavior is explicit.
        let mut evidenced: Vec<usize> = Vec::new();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Ident {
                continue;
            }
            let proves = DISCIPLINE_PREFIXES.iter().any(|p| t.text.starts_with(p))
                || (t.text == "as"
                    && toks
                        .get(i + 1)
                        .is_some_and(|n| WIDENING_CASTS.contains(&n.text.as_str())));
            if proves && !evidenced.contains(&t.line) {
                evidenced.push(t.line);
            }
        }

        // Bracket depth: arithmetic inside `[...]` is index/capacity
        // bookkeeping guarded by the bounds check, not limb arithmetic.
        let mut bracket_depth = 0usize;
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokenKind::Punct {
                continue;
            }
            match t.text.as_str() {
                "[" => {
                    bracket_depth += 1;
                    continue;
                }
                "]" => {
                    bracket_depth = bracket_depth.saturating_sub(1);
                    continue;
                }
                _ => {}
            }
            if bracket_depth > 0 || in_ranges(&sf.excluded, t.line) {
                continue;
            }
            let prev = match i.checked_sub(1).and_then(|p| toks.get(p)) {
                Some(p) => p,
                None => continue,
            };
            let op: &str;
            let rhs_idx: usize;
            match t.text.as_str() {
                "+" | "-" | "*" => {
                    if !is_left_operand(prev) {
                        continue;
                    }
                    match toks.get(i + 1) {
                        // Compound assignment `x += y`: judge the RHS after `=`.
                        Some(n) if n.text == "=" && n.kind == TokenKind::Punct => {
                            op = match t.text.as_str() {
                                "+" => "+=",
                                "-" => "-=",
                                _ => "*=",
                            };
                            rhs_idx = i + 2;
                        }
                        Some(n) if is_right_operand(n) => {
                            op = match t.text.as_str() {
                                "+" => "+",
                                "-" => "-",
                                _ => "*",
                            };
                            rhs_idx = i + 1;
                        }
                        _ => continue,
                    }
                }
                "<" => {
                    // `<<` is two adjacent `<` puncts on one line.
                    let Some(n) = toks.get(i + 1) else { continue };
                    if n.text != "<" || n.line != t.line || n.col != t.col + 1 {
                        continue;
                    }
                    if !is_left_operand(prev) {
                        continue;
                    }
                    match toks.get(i + 2) {
                        Some(e) if e.text == "=" && e.kind == TokenKind::Punct => {
                            op = "<<=";
                            rhs_idx = i + 3;
                        }
                        Some(e) if is_right_operand(e) => {
                            op = "<<";
                            rhs_idx = i + 2;
                        }
                        _ => continue,
                    }
                }
                _ => continue,
            }
            if evidenced.contains(&t.line) {
                continue;
            }
            // Literal / named-constant operand on either side: exempt
            // (shift-by-constant and step-by-constant are bounded by
            // inspection, not a carry-discipline question).
            if operand_exempt(prev) || toks.get(rhs_idx).is_some_and(operand_exempt) {
                continue;
            }
            out.push((
                idx,
                Diagnostic {
                    rule: UNCHECKED_ARITH,
                    file: sf.rel.clone(),
                    line: t.line,
                    col: t.col,
                    message: format!(
                        "bare `{op}` in a limb kernel — wraps silently in release and \
                         corrupts exact payments identically on every node"
                    ),
                    snippet: sf.snippet(t.line),
                    help: "use a wrapping_/checked_/carrying_ form or a widening cast on \
                           the same line; a provably-bounded index needs \
                           `// dls-lint: allow(unchecked-arith) -- <bound argument>`"
                        .to_string(),
                },
            ));
        }
    }
    activated
}
