//! Lock-order pass: static deadlock-freedom for the threaded oracle.
//!
//! The threaded runtime's phase barriers (`PhaseBarrier` = one `Mutex` +
//! `Condvar`) and the shared caches only stay deadlock-free as long as no
//! two threads acquire the same pair of locks in opposite orders. Today
//! the nesting is tiny — `Net::broadcast` holds `bcast` while `record`
//! takes `stats` — but the survivor re-solve and multi-load roadmap items
//! add lock sites faster than anyone re-audits them by hand.
//!
//! The pass extracts, per function, the sequence of `<lock>.lock()`
//! acquisitions plus calls into other scoped functions, closes the call
//! graph transitively, and builds the *held-before* graph: an edge
//! `A -> B` whenever `B` is (or may be, through a callee) acquired while
//! `A` is held. A cycle in that graph is a potential deadlock and fails
//! the gate. It also flags a condvar `wait`/`wait_for` reached while more
//! than one lock is held — the barrier protocol parks with exactly its own
//! state lock.
//!
//! Over-approximations (documented, deliberate): a guard is assumed held
//! until the end of its function (drops are invisible lexically), locks
//! are identified by field/static name across files, and self-edges are
//! ignored (sequential re-acquisition of the same lock in one function —
//! the cache double-checked-init pattern — is not nesting).

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::{match_brace, LOCK_ORDER};
use crate::SourceFile;

/// Files holding the threaded runtime's locks and barrier code.
const SCOPE: &[&str] = &[
    "crates/protocol/src/runtime.rs",
    "crates/protocol/src/executor.rs",
    "crates/protocol/src/service.rs",
    "crates/protocol/src/supervisor.rs",
];

/// `true` when the pass evaluates in `rel`.
pub fn in_scope(rel: &str) -> bool {
    SCOPE.contains(&rel)
}

/// One function's lexically extracted lock behavior.
struct FnInfo {
    name: String,
    /// Direct acquisitions in body order: (lock name, line, col).
    acquires: Vec<(String, usize, usize)>,
    /// Calls to other scoped functions in body order: (callee, position
    /// in the acquisition interleaving, line).
    calls: Vec<(String, usize, usize)>,
    file_idx: usize,
    file_rel: String,
    /// Condvar waits: (held count at the wait, line, col).
    waits: Vec<(usize, usize, usize)>,
}

/// Runs the pass; returns `true` when at least one scoped file was seen.
pub(crate) fn run(files: &[SourceFile], out: &mut Vec<(usize, Diagnostic)>) -> bool {
    let mut fns: Vec<FnInfo> = Vec::new();
    let mut activated = false;
    for (idx, sf) in files.iter().enumerate() {
        if !in_scope(&sf.rel) {
            continue;
        }
        activated = true;
        extract_fns(idx, sf, &mut fns);
    }
    if !activated {
        return false;
    }

    // Transitive lock sets per function name (merged across files: locks
    // are name-identified, so a helper called cross-file still counts).
    let mut locks_of: Vec<(String, Vec<String>)> = fns
        .iter()
        .map(|f| {
            let mut l: Vec<String> = f.acquires.iter().map(|(n, _, _)| n.clone()).collect();
            l.sort();
            l.dedup();
            (f.name.clone(), l)
        })
        .collect();
    // Fixpoint over the call graph (bounded: lock-name sets only grow).
    loop {
        let snapshot = locks_of.clone();
        let mut changed = false;
        for (fi, f) in fns.iter().enumerate() {
            for (callee, _, _) in &f.calls {
                let callee_locks: Vec<String> = snapshot
                    .iter()
                    .filter(|(n, _)| n == callee)
                    .flat_map(|(_, l)| l.iter().cloned())
                    .collect();
                for l in callee_locks {
                    let own = &mut locks_of[fi].1;
                    if !own.contains(&l) {
                        own.push(l);
                        own.sort();
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    let locks_of_name = |name: &str| -> Vec<String> {
        let mut l: Vec<String> = locks_of
            .iter()
            .filter(|(n, _)| n == name)
            .flat_map(|(_, v)| v.iter().cloned())
            .collect();
        l.sort();
        l.dedup();
        l
    };

    // Held-before edges: (from, to, file_idx, line, via).
    let mut edges: Vec<(String, String, usize, usize, String)> = Vec::new();
    for f in &fns {
        // Interleave acquisitions and calls by token position: both vectors
        // carry their position index in `.1`/`.1` respectively.
        let mut events: Vec<(usize, bool, usize)> = Vec::new(); // (pos, is_call, idx)
        for (i, (_, pos, _)) in f.acquires.iter().enumerate() {
            events.push((*pos, false, i));
        }
        for (i, (_, pos, _)) in f.calls.iter().enumerate() {
            events.push((*pos, true, i));
        }
        events.sort();
        let mut held: Vec<String> = Vec::new();
        for (_, is_call, i) in events {
            if is_call {
                let (callee, _, line) = &f.calls[i];
                for l in locks_of_name(callee) {
                    for h in &held {
                        if *h != l {
                            edges.push((
                                h.clone(),
                                l.clone(),
                                f.file_idx,
                                *line,
                                format!("via call to `{callee}` in `{}`", f.name),
                            ));
                        }
                    }
                }
            } else {
                let (l, _, line) = &f.acquires[i];
                for h in &held {
                    if h != l {
                        edges.push((
                            h.clone(),
                            l.clone(),
                            f.file_idx,
                            *line,
                            format!("in `{}`", f.name),
                        ));
                    }
                }
                if !held.contains(l) {
                    held.push(l.clone());
                }
            }
        }
        // Condvar waits with more than one lock held.
        for (held_count, line, col) in &f.waits {
            if *held_count > 1 {
                out.push((
                    f.file_idx,
                    Diagnostic {
                        rule: LOCK_ORDER,
                        file: f.file_rel.clone(),
                        line: *line,
                        col: *col,
                        message: format!(
                            "condvar wait in `{}` while holding {} locks — the parked \
                             thread keeps every extra lock across the whole wait",
                            f.name, held_count
                        ),
                        snippet: files
                            .get(f.file_idx)
                            .map(|sf| sf.snippet(*line))
                            .unwrap_or_default(),
                        help: "park with exactly the condvar's own mutex held; release \
                               (drop) other guards first"
                            .to_string(),
                    },
                ));
            }
        }
    }

    // Cycle detection over the held-before graph.
    report_cycles(files, &edges, out);
    activated
}

/// Extracts function lock/call/wait info from one scoped file.
fn extract_fns(file_idx: usize, sf: &SourceFile, out: &mut Vec<FnInfo>) {
    let toks = &sf.lexed.tokens;
    let text = |k: usize| toks.get(k).map(|t| t.text.as_str()).unwrap_or("");
    // First collect all fn names in scoped files so calls are recognizable
    // in a single forward walk (two-pass: names, then bodies).
    let mut i = 0usize;
    while i < toks.len() {
        if text(i) != "fn" || toks.get(i + 1).map(|t| t.kind) != Some(TokenKind::Ident) {
            i += 1;
            continue;
        }
        let name = text(i + 1).to_string();
        // Find the body `{` before a `;` (trait method decls have none).
        let mut k = i + 2;
        let mut open = None;
        while k < toks.len() {
            match text(k) {
                "{" => {
                    open = Some(k);
                    break;
                }
                ";" => break,
                _ => {}
            }
            k += 1;
        }
        let Some(open) = open else {
            i = k.max(i + 1);
            continue;
        };
        let close = match_brace(toks, open);
        let mut info = FnInfo {
            name,
            acquires: Vec::new(),
            calls: Vec::new(),
            file_idx,
            file_rel: sf.rel.clone(),
            waits: Vec::new(),
        };
        let mut held_names: Vec<String> = Vec::new();
        for j in open..=close.min(toks.len().saturating_sub(1)) {
            if toks[j].kind != TokenKind::Ident {
                continue;
            }
            match text(j) {
                // `<owner>.lock()` — the lock is the ident before `.lock`.
                "lock" if text(j.wrapping_sub(1)) == "." && text(j + 1) == "(" => {
                    if j >= 2 && toks[j - 2].kind == TokenKind::Ident {
                        let lock = text(j - 2).to_string();
                        if !held_names.contains(&lock) {
                            held_names.push(lock.clone());
                        }
                        info.acquires.push((lock, j, toks[j].line));
                    }
                }
                // Condvar waits (parking_lot: wait / wait_for / wait_while).
                "wait" | "wait_for" | "wait_while"
                    if text(j.wrapping_sub(1)) == "." && text(j + 1) == "(" =>
                {
                    info.waits.push((held_names.len(), toks[j].line, toks[j].col));
                }
                // Any other `name(` is a potential call; filtered against
                // the scoped fn set when edges are built.
                _ if text(j + 1) == "(" && text(j.wrapping_sub(1)) != "fn" => {
                    info.calls.push((text(j).to_string(), j, toks[j].line));
                }
                _ => {}
            }
        }
        out.push(info);
        i = close.saturating_add(1);
    }
}

/// Finds cycles in the held-before graph and reports one diagnostic per
/// distinct cycle (deterministic order).
fn report_cycles(
    files: &[SourceFile],
    edges: &[(String, String, usize, usize, String)],
    out: &mut Vec<(usize, Diagnostic)>,
) {
    let mut nodes: Vec<&str> = edges
        .iter()
        .flat_map(|(a, b, _, _, _)| [a.as_str(), b.as_str()])
        .collect();
    nodes.sort();
    nodes.dedup();
    let mut reported: Vec<Vec<String>> = Vec::new();
    for start in &nodes {
        // DFS from each node; a path returning to `start` is a cycle.
        let mut stack: Vec<(String, Vec<String>)> = vec![(start.to_string(), vec![start.to_string()])];
        while let Some((node, path)) = stack.pop() {
            for (a, b, fidx, line, via) in edges {
                if a != &node {
                    continue;
                }
                if b == start {
                    let mut cycle = path.clone();
                    cycle.push(b.clone());
                    let mut canon = cycle.clone();
                    canon.sort();
                    canon.dedup();
                    if reported.contains(&canon) {
                        continue;
                    }
                    reported.push(canon);
                    out.push((
                        *fidx,
                        Diagnostic {
                            rule: LOCK_ORDER,
                            file: files.get(*fidx).map(|f| f.rel.clone()).unwrap_or_default(),
                            line: *line,
                            col: 1,
                            message: format!(
                                "lock-order cycle: {} ({via} closes the cycle)",
                                cycle.join(" -> ")
                            ),
                            snippet: files
                                .get(*fidx)
                                .map(|f| f.snippet(*line))
                                .unwrap_or_default(),
                            help: "two threads taking these locks in opposite orders can \
                                   deadlock; pick one global order and stick to it"
                                .to_string(),
                        },
                    ));
                } else if !path.contains(b) {
                    let mut p = path.clone();
                    p.push(b.clone());
                    stack.push((b.clone(), p));
                }
            }
        }
    }
}
