//! The cross-file analysis passes (the "dls-analyze" layer).
//!
//! Unlike the per-file lexical rules, a pass sees the whole workspace
//! snapshot at once: every scoped file read, lexed and suppression-parsed
//! exactly once. Each pass guards one invariant of the paper's
//! strategyproofness argument that the dynamic test suite can only sample:
//!
//! * [`determinism`] — Theorems 5.1–5.3 assume every honest party computes
//!   the *same* allocation and payments from the same bids; wall-clock
//!   reads, sleeps and unordered-collection iteration are one edit away
//!   from breaking that silently.
//! * [`state_machine`] — the executor's phase order (Bidding → … → Done)
//!   is the protocol itself; an undeclared transition is a protocol bug
//!   even when no current test drives it.
//! * [`lock_order`] — the threaded oracle's phase barriers must stay
//!   deadlock-free or the deadline semantics the virtual executor mirrors
//!   stop meaning anything.
//! * [`arith`] — exact payment agreement is only as sound as the bignum
//!   limb kernels; a silently wrapping `+` would corrupt `Q_i` bit-exactly
//!   on every honest node at once.
//!
//! A pass pushes raw diagnostics tagged with the source-file index; the
//! engine in `lib.rs` applies suppressions and directive hygiene
//! afterwards, so `// dls-lint: allow(<rule>) -- <reason>` works for pass
//! findings exactly as for per-file rules.

pub mod arith;
pub mod determinism;
pub mod lock_order;
pub mod state_machine;

use crate::diag::Diagnostic;
use crate::SourceFile;

/// All pass names, in the order they run.
pub const PASS_NAMES: &[&str] = &[
    "determinism",
    "state-machine",
    "lock-order",
    "unchecked-arith",
];

/// Runs every pass over the snapshot. Returns the names of the passes that
/// found at least one scoped file and actually analyzed something (the gate
/// asserts all four activate on the real workspace).
pub(crate) fn run_all(
    files: &[SourceFile],
    out: &mut Vec<(usize, Diagnostic)>,
) -> Vec<&'static str> {
    let mut ran = Vec::new();
    if determinism::run(files, out) {
        ran.push("determinism");
    }
    if state_machine::run(files, out) {
        ran.push("state-machine");
    }
    if lock_order::run(files, out) {
        ran.push("lock-order");
    }
    if arith::run(files, out) {
        ran.push("unchecked-arith");
    }
    ran
}
