//! State-machine pass: the executor's transition graphs vs. the declared
//! phase-order spec.
//!
//! The protocol *is* its phase order — Bidding → AwaitBidVerdict →
//! Allocating → … → Done, with Crashed/Defaulted reachable from anywhere
//! (faults) and Halted only out of a verdict wait. The event-driven
//! executor encodes that order as `state = …` assignments scattered over a
//! ~600-line round function; the multi-load extensions on the roadmap will
//! multiply them. This pass re-derives the transition graph from the token
//! stream and diffs it against the spec below, so an illegal edge (say,
//! Processing → Done skipping settlement) fails the tier-1 gate even
//! before any test drives it.
//!
//! ## Extraction heuristics
//!
//! Single-file, lexical, no type information — and still exact for the
//! shape `executor.rs` uses:
//!
//! * The **from-state context** inside a function is tracked through
//!   comparisons: `state == Enum::V` and the guard form
//!   `if state != Enum::V { continue/return }` both pin the context to
//!   `V`; a `!=` comparison whose block *does* something (the
//!   `vm_barrier` default path) resets the context to *unknown*.
//! * An assignment `state = Enum::V` records the edge `context → V`.
//!   Assignments to non-terminal states update the context (the round
//!   function chains phases in one loop body); terminal states do not
//!   (their arms `continue`).
//! * Edges from an *unknown* context are legal only into the declared
//!   accept-from-any sinks (Crashed, Defaulted).
//! * `advance_referee(&mut s, Enum::From, Enum::To)` calls yield referee
//!   edges directly; plain `= RefereeState::V` bindings must construct the
//!   declared initial state.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::rules::STATE_MACHINE;
use crate::SourceFile;

/// The file this pass validates.
const EXECUTOR: &str = "crates/protocol/src/executor.rs";

/// Declared processor machine: states in enum order.
const PROC_STATES: &[&str] = &[
    "Bidding",
    "AwaitBidVerdict",
    "Allocating",
    "AwaitAllocationVerdict",
    "Processing",
    "AwaitMeters",
    "Payments",
    "AwaitSettlement",
    "Crashed",
    "Defaulted",
    "Halted",
    "Done",
];
const PROC_INITIAL: &str = "Bidding";
/// Fault sinks reachable from any state (crash/deadline removal).
const PROC_SINKS_FROM_ANY: &[&str] = &["Crashed", "Defaulted"];
/// Terminal states: assignments into them never advance the phase context.
const PROC_TERMINAL: &[&str] = &["Crashed", "Defaulted", "Halted", "Done"];
/// The legal phase-order edges (besides `* -> sink`).
const PROC_EDGES: &[(&str, &str)] = &[
    ("Bidding", "AwaitBidVerdict"),
    ("AwaitBidVerdict", "Halted"),
    ("AwaitBidVerdict", "Allocating"),
    ("Allocating", "AwaitAllocationVerdict"),
    ("AwaitAllocationVerdict", "Halted"),
    ("AwaitAllocationVerdict", "Processing"),
    ("Processing", "AwaitMeters"),
    ("AwaitMeters", "Payments"),
    ("Payments", "AwaitSettlement"),
    ("AwaitSettlement", "Done"),
];

/// Declared referee machine.
const REF_STATES: &[&str] = &["Bidding", "Allocating", "Processing", "Payments", "Settled"];
const REF_INITIAL: &str = "Bidding";
const REF_EDGES: &[(&str, &str)] = &[
    ("Bidding", "Allocating"),
    ("Bidding", "Settled"),
    ("Allocating", "Processing"),
    ("Allocating", "Settled"),
    ("Processing", "Payments"),
    ("Payments", "Settled"),
];

/// `true` when the pass evaluates in `rel`.
pub fn in_scope(rel: &str) -> bool {
    rel == EXECUTOR
}

/// An observed transition: `from == None` means the context was statically
/// unknown (a wildcard edge).
struct Edge {
    from: Option<String>,
    to: String,
    line: usize,
    col: usize,
}

/// Runs the pass; returns `true` when the executor file was in the
/// snapshot (the gate separately asserts it activates on the workspace).
pub(crate) fn run(files: &[SourceFile], out: &mut Vec<(usize, Diagnostic)>) -> bool {
    let Some((idx, sf)) = files.iter().enumerate().find(|(_, f)| in_scope(&f.rel)) else {
        return false;
    };
    let mut push = |line: usize, col: usize, message: String, help: &str| {
        out.push((
            idx,
            Diagnostic {
                rule: STATE_MACHINE,
                file: sf.rel.clone(),
                line,
                col,
                message,
                snippet: sf.snippet(line),
                help: help.to_string(),
            },
        ));
    };

    check_machine(
        sf,
        &MachineSpec {
            enum_name: "ProcessorState",
            states: PROC_STATES,
            initial: PROC_INITIAL,
            sinks_from_any: PROC_SINKS_FROM_ANY,
            terminal: PROC_TERMINAL,
            edges: PROC_EDGES,
        },
        &mut push,
    );
    check_machine(
        sf,
        &MachineSpec {
            enum_name: "RefereeState",
            states: REF_STATES,
            initial: REF_INITIAL,
            sinks_from_any: &[],
            terminal: &[],
            edges: REF_EDGES,
        },
        &mut push,
    );
    true
}

struct MachineSpec {
    enum_name: &'static str,
    states: &'static [&'static str],
    initial: &'static str,
    sinks_from_any: &'static [&'static str],
    terminal: &'static [&'static str],
    edges: &'static [(&'static str, &'static str)],
}

fn check_machine(
    sf: &SourceFile,
    spec: &MachineSpec,
    push: &mut impl FnMut(usize, usize, String, &str),
) {
    let toks = &sf.lexed.tokens;
    let text = |k: usize| toks.get(k).map(|t| t.text.as_str()).unwrap_or("");

    // --- 1. Enum declaration vs. declared state list -----------------------
    let mut variants: Vec<(String, usize)> = Vec::new();
    let mut enum_line = None;
    for i in 0..toks.len() {
        if text(i) == "enum" && text(i + 1) == spec.enum_name {
            enum_line = Some(toks[i].line);
            // Body: the next `{` .. matching `}`; variants are idents at
            // depth 1 directly after `{` or `,` (fieldless enums only,
            // which is all this machine uses).
            let mut k = i + 2;
            while k < toks.len() && text(k) != "{" {
                k += 1;
            }
            let close = crate::rules::match_brace(toks, k);
            let mut depth = 0usize;
            for j in k..=close.min(toks.len().saturating_sub(1)) {
                match text(j) {
                    "{" => depth += 1,
                    "}" => depth = depth.saturating_sub(1),
                    _ => {
                        if depth == 1
                            && toks[j].kind == TokenKind::Ident
                            && matches!(text(j.wrapping_sub(1)), "{" | ",")
                        {
                            variants.push((toks[j].text.clone(), toks[j].line));
                        }
                    }
                }
            }
            break;
        }
    }
    let Some(enum_line) = enum_line else {
        push(
            1,
            1,
            format!(
                "declared state machine `{}` not found in {}",
                spec.enum_name, sf.rel
            ),
            "the pass spec in crates/lint/src/passes/state_machine.rs names this \
             enum; update the spec together with the executor",
        );
        return;
    };
    for (v, line) in &variants {
        if !spec.states.contains(&v.as_str()) {
            push(
                *line,
                1,
                format!(
                    "state `{}::{v}` is not in the declared phase spec",
                    spec.enum_name
                ),
                "add the state and its legal edges to the spec in \
                 crates/lint/src/passes/state_machine.rs",
            );
        }
    }
    for s in spec.states {
        if !variants.iter().any(|(v, _)| v == s) {
            push(
                enum_line,
                1,
                format!(
                    "declared state `{}::{s}` is missing from the enum",
                    spec.enum_name
                ),
                "remove it from the spec or restore the variant",
            );
        }
    }

    // --- 2. Observed transitions ------------------------------------------
    let edges = extract_edges(sf, spec);
    let legal = |from: &Option<String>, to: &str| -> bool {
        if spec.sinks_from_any.contains(&to) {
            return true;
        }
        match from {
            Some(f) => spec.edges.iter().any(|(a, b)| a == f && *b == to),
            None => false,
        }
    };
    for e in &edges {
        if !legal(&e.from, &e.to) {
            let from = e.from.as_deref().unwrap_or("<statically unknown>");
            push(
                e.line,
                e.col,
                format!(
                    "undeclared transition {from} -> {to} of `{}`",
                    spec.enum_name,
                    to = e.to
                ),
                "every phase transition must be an edge of the declared spec in \
                 crates/lint/src/passes/state_machine.rs; extend the spec \
                 deliberately if the protocol really gained this edge",
            );
        }
    }

    // --- 3. Reachability ---------------------------------------------------
    for (v, line) in &variants {
        if v == spec.initial || !spec.states.contains(&v.as_str()) {
            continue;
        }
        let incoming = edges.iter().any(|e| e.to == *v);
        if !incoming {
            push(
                *line,
                1,
                format!(
                    "state `{}::{v}` is unreachable: no observed transition enters it",
                    spec.enum_name
                ),
                "dead states hide protocol drift; remove the variant or wire the \
                 transition that should produce it",
            );
        }
    }
}

/// Extracts every observed transition of `spec.enum_name` from the file.
fn extract_edges(sf: &SourceFile, spec: &MachineSpec) -> Vec<Edge> {
    let toks = &sf.lexed.tokens;
    let text = |k: usize| toks.get(k).map(|t| t.text.as_str()).unwrap_or("");
    let mut edges: Vec<Edge> = Vec::new();
    // The statically tracked "current state" context; `None` = unknown.
    let mut ctx: Option<String> = None;

    let mut i = 0usize;
    while i < toks.len() {
        // Function boundaries reset the context.
        if text(i) == "fn" {
            ctx = None;
            i += 1;
            continue;
        }
        // `advance_referee(… , Enum::From, Enum::To)` checked transitions.
        if toks[i].kind == TokenKind::Ident
            && text(i) == "advance_referee"
            && text(i + 1) == "("
            && text(i.wrapping_sub(1)) != "fn"
        {
            let mut depth = 0usize;
            let mut k = i + 1;
            let mut named: Vec<(String, usize, usize)> = Vec::new();
            while k < toks.len() {
                match text(k) {
                    "(" => depth += 1,
                    ")" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {
                        if text(k) == spec.enum_name && text(k + 1) == ":" && text(k + 2) == ":" {
                            named.push((
                                text(k + 3).to_string(),
                                toks[k].line,
                                toks[k].col,
                            ));
                        }
                    }
                }
                k += 1;
            }
            if named.len() >= 2 {
                edges.push(Edge {
                    from: Some(named[0].0.clone()),
                    to: named[1].0.clone(),
                    line: named[1].1,
                    col: named[1].2,
                });
            }
            i = k.max(i + 1);
            continue;
        }
        // Comparisons and assignments: `<ident> <op> Enum :: V`.
        let (op_len, is_eq, is_neq, is_assign) = if text(i + 1) == "=" && text(i + 2) == "=" {
            (3, true, false, false)
        } else if text(i + 1) == "!" && text(i + 2) == "=" {
            (3, false, true, false)
        } else if text(i + 1) == "=" {
            (2, false, false, true)
        } else {
            (0, false, false, false)
        };
        if op_len > 0
            && toks[i].kind == TokenKind::Ident
            && text(i + op_len) == spec.enum_name
            && text(i + op_len + 1) == ":"
            && text(i + op_len + 2) == ":"
            && toks
                .get(i + op_len + 3)
                .map(|t| t.kind == TokenKind::Ident)
                .unwrap_or(false)
        {
            let variant = text(i + op_len + 3).to_string();
            let vtok = &toks[i + op_len + 3];
            if is_eq {
                ctx = Some(variant);
            } else if is_neq {
                // Guard (`{ continue/return`) pins the context; a handling
                // block (the vm_barrier default path) loses it.
                let mut k = i + op_len + 4;
                while k < toks.len() && text(k) != "{" {
                    k += 1;
                }
                if matches!(text(k + 1), "continue" | "return") {
                    ctx = Some(variant);
                } else {
                    ctx = None;
                }
            } else if is_assign {
                let prev = text(i.wrapping_sub(1));
                if prev == "let" || prev == "mut" {
                    // `let [mut] x = Enum::V` constructs a fresh machine:
                    // legal only in the declared initial state. A non-initial
                    // construction is reported as a wildcard edge (which is
                    // never legal outside the fault sinks).
                    if variant != spec.initial {
                        edges.push(Edge {
                            from: None,
                            to: variant,
                            line: vtok.line,
                            col: vtok.col,
                        });
                    }
                } else {
                    edges.push(Edge {
                        from: ctx.clone(),
                        to: variant.clone(),
                        line: vtok.line,
                        col: vtok.col,
                    });
                    if !spec.terminal.contains(&variant.as_str()) {
                        ctx = Some(variant);
                    }
                }
            }
            i += op_len + 4;
            continue;
        }
        // Struct-literal construction: `state : Enum :: V` (single colon).
        if toks[i].kind == TokenKind::Ident
            && text(i) == "state"
            && text(i + 1) == ":"
            && text(i + 2) == spec.enum_name
            && text(i + 3) == ":"
            && text(i + 4) == ":"
        {
            let variant = text(i + 5).to_string();
            let line = toks.get(i + 5).map(|t| t.line).unwrap_or(toks[i].line);
            let col = toks.get(i + 5).map(|t| t.col).unwrap_or(1);
            if variant != spec.initial {
                edges.push(Edge {
                    from: None,
                    to: variant,
                    line,
                    col,
                });
            }
            i += 6;
            continue;
        }
        i += 1;
    }
    edges
}
