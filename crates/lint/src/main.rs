//! `dls-lint` CLI: scans the workspace and reports invariant violations.
//!
//! ```text
//! dls-lint [--json] [--root <dir>] [--baseline <file>] [--rules] [--help]
//! ```
//!
//! Runs the per-file rules (floats, panics, crate hygiene) plus the four
//! cross-file analysis passes (determinism, state-machine, lock-order,
//! unchecked-arith). With `--baseline`, findings recorded in the given
//! `lint_baseline.json` are reported but do not affect the exit status.
//!
//! Exit status: `0` clean, `1` violations found, `2` usage or I/O error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match args.next() {
                Some(file) => baseline_path = Some(PathBuf::from(file)),
                None => {
                    eprintln!("error: --baseline needs a file argument");
                    return ExitCode::from(2);
                }
            },
            "--rules" => {
                for (name, what) in dls_lint::rules::ALL_RULES {
                    println!("{name}\n    {what}\n");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "dls-lint: workspace invariant analyzer\n\n\
                     USAGE: dls-lint [--json] [--root <dir>] [--baseline <file>] [--rules]\n\n\
                     Per-file rules: no-float-in-exact, no-panic-in-protocol, \
                     crate-hygiene.\n\
                     Cross-file passes: determinism (wall-clock/unordered \
                     collections in virtual-time modules), state-machine \
                     (executor phase-order spec), lock-order (deadlock \
                     cycles in the threaded oracle), unchecked-arith (bare \
                     operators in the bignum limb kernels).\n\
                     Suppress a finding with `// dls-lint: allow(<rule>) -- <reason>`;\n\
                     --baseline accepts findings listed in a lint_baseline.json."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let start = root.unwrap_or_else(|| PathBuf::from("."));
    // Relative paths (the common `cargo run -p dls-lint` case from a
    // subdirectory) have no ancestors to walk; resolve before searching.
    let start = start.canonicalize().unwrap_or(start);
    let Some(root) = dls_lint::walk::find_workspace_root(&start) else {
        eprintln!(
            "error: no workspace root found at or above {}",
            start.display()
        );
        return ExitCode::from(2);
    };

    let baseline = match baseline_path {
        Some(p) => {
            let text = match std::fs::read_to_string(&p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read baseline {}: {e}", p.display());
                    return ExitCode::from(2);
                }
            };
            match dls_lint::baseline::parse(&text) {
                Ok(entries) => entries,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => Vec::new(),
    };

    match dls_lint::scan_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            let (fresh, accepted) = dls_lint::baseline::diff(&report.diagnostics, &baseline);
            if !accepted.is_empty() {
                eprintln!("dls-lint: {} finding(s) accepted by baseline", accepted.len());
            }
            if fresh.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
