//! `dls-lint` CLI: scans the workspace and reports invariant violations.
//!
//! ```text
//! dls-lint [--json] [--root <dir>] [--rules] [--help]
//! ```
//!
//! Exit status: `0` clean, `1` violations found, `2` usage or I/O error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--rules" => {
                for (name, what) in dls_lint::rules::ALL_RULES {
                    println!("{name}\n    {what}\n");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "dls-lint: workspace invariant analyzer\n\n\
                     USAGE: dls-lint [--json] [--root <dir>] [--rules]\n\n\
                     Enforces no-float-in-exact, no-panic-in-protocol and \
                     crate-hygiene over the workspace.\n\
                     Suppress a finding with `// dls-lint: allow(<rule>) -- <reason>`."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let start = root.unwrap_or_else(|| PathBuf::from("."));
    // Relative paths (the common `cargo run -p dls-lint` case from a
    // subdirectory) have no ancestors to walk; resolve before searching.
    let start = start.canonicalize().unwrap_or(start);
    let Some(root) = dls_lint::walk::find_workspace_root(&start) else {
        eprintln!(
            "error: no workspace root found at or above {}",
            start.display()
        );
        return ExitCode::from(2);
    };

    match dls_lint::scan_workspace(&root) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
