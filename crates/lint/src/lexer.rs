//! A lightweight Rust lexer: just enough token structure to lint without
//! false positives from comments, string literals or attributes.
//!
//! The lexer is intentionally *not* a full Rust tokenizer — it only
//! distinguishes the classes the rules care about (identifiers, numeric
//! literals with float-ness, punctuation, lifetimes) and guarantees that
//! comment and string *contents* never surface as code tokens. Comments are
//! preserved separately so the suppression layer can parse
//! `// dls-lint: allow(...)` directives.

/// Kind of a lexed code token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `f64`, `let`, `r#match`).
    Ident,
    /// Numeric literal; `is_float` on the token disambiguates.
    Number,
    /// String, byte-string, C-string or char literal (contents opaque).
    Literal,
    /// Lifetime (`'a`).
    Lifetime,
    /// Single punctuation character (`.`, `[`, `!`, …).
    Punct,
}

/// One code token with its source position (1-based line and column).
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Raw text for `Ident`/`Number`/`Punct`; empty for literals.
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (in characters).
    pub col: usize,
    /// For `Number`: whether the literal is a floating-point literal.
    pub is_float: bool,
}

/// One comment, with its position and whether code precedes it on its line.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment text without the `//` / `/*` framing (block comments keep
    /// interior newlines).
    pub text: String,
    /// 1-based line of the comment start.
    pub line: usize,
    /// `true` when a code token appears before the comment on the same
    /// line (a *trailing* comment).
    pub trailing: bool,
}

/// Lexer output: code tokens plus the comment stream.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `source`, never panicking on malformed input (unterminated
/// constructs are consumed to end of input).
pub fn lex(source: &str) -> Lexed {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    i: usize,
    line: usize,
    col: usize,
    out: Lexed,
    last_code_line: usize,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            src: source,
            i: 0,
            line: 1,
            col: 1,
            out: Lexed::default(),
            last_code_line: 0,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push_token(&mut self, kind: TokenKind, text: String, line: usize, col: usize, is_float: bool) {
        self.last_code_line = line;
        self.out.tokens.push(Token {
            kind,
            text,
            line,
            col,
            is_float,
        });
    }

    fn run(mut self) -> Lexed {
        let _ = self.src;
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string_literal(line, col),
                'b' | 'c' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string_literal(line, col);
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.bump();
                    self.char_literal(line, col);
                }
                'r' if matches!(self.peek(1), Some('"') | Some('#'))
                    && self.is_raw_string_start(0) =>
                {
                    self.bump();
                    self.raw_string(line, col);
                }
                'b' | 'c' if self.peek(1) == Some('r') && self.is_raw_string_start(1) => {
                    self.bump();
                    self.bump();
                    self.raw_string(line, col);
                }
                '\'' => self.quote(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c if is_ident_start(c) => self.ident(line, col),
                _ => {
                    self.bump();
                    self.push_token(TokenKind::Punct, c.to_string(), line, col, false);
                }
            }
        }
        self.out
    }

    /// True when position `off` holds `r` (already checked by the caller)
    /// followed by `#*"` — i.e. a raw string, not the raw identifier `r#foo`.
    fn is_raw_string_start(&self, off: usize) -> bool {
        let mut k = off + 1;
        while self.peek(k) == Some('#') {
            k += 1;
        }
        self.peek(k) == Some('"')
    }

    fn line_comment(&mut self, line: usize) {
        let trailing = self.last_code_line == line;
        self.bump();
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            text,
            line,
            trailing,
        });
    }

    fn block_comment(&mut self, line: usize) {
        let trailing = self.last_code_line == line;
        self.bump();
        self.bump();
        let mut depth = 1usize;
        let mut text = String::new();
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    text.push_str("/*");
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    text.push(c);
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.out.comments.push(Comment {
            text,
            line,
            trailing,
        });
    }

    fn string_literal(&mut self, line: usize, col: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        self.push_token(TokenKind::Literal, String::new(), line, col, false);
    }

    fn raw_string(&mut self, line: usize, col: usize) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        'outer: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'outer;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        self.push_token(TokenKind::Literal, String::new(), line, col, false);
    }

    fn char_literal(&mut self, line: usize, col: usize) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '\'' => break,
                _ => {}
            }
        }
        self.push_token(TokenKind::Literal, String::new(), line, col, false);
    }

    /// `'` — either a char literal or a lifetime.
    fn quote(&mut self, line: usize, col: usize) {
        let next = self.peek(1);
        let after = self.peek(2);
        let is_lifetime = match next {
            Some(c) if is_ident_start(c) => after != Some('\''),
            _ => false,
        };
        if is_lifetime {
            self.bump(); // '
            let mut text = String::from("'");
            while let Some(c) = self.peek(0) {
                if is_ident_continue(c) {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_token(TokenKind::Lifetime, text, line, col, false);
        } else {
            self.char_literal(line, col);
        }
    }

    fn number(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        let mut is_float = false;
        // Digits right after a `.` are a tuple-field index (`pair.0`,
        // `nested.0.1`), never a float literal: lex the digits alone so
        // `nested.0.1` stays `.`/`0`/`.`/`1` instead of `.`/`0.1`-float.
        let after_field_dot = matches!(
            self.out.tokens.last(),
            Some(t) if t.kind == TokenKind::Punct && t.text == "."
        );
        if after_field_dot {
            while let Some(c) = self.peek(0) {
                if c.is_ascii_digit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_token(TokenKind::Number, text, line, col, false);
            return;
        }
        // Radix prefixes are always integers (no hex floats in Rust).
        if self.peek(0) == Some('0')
            && matches!(self.peek(1), Some('x') | Some('X') | Some('o') | Some('b'))
        {
            text.push(self.bump().unwrap_or('0'));
            text.push(self.bump().unwrap_or('x'));
            while let Some(c) = self.peek(0) {
                if c.is_ascii_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_token(TokenKind::Number, text, line, col, false);
            return;
        }
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // Fractional part — but not `..` (range) and not `.method()`.
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                Some('.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    is_float = true;
                    text.push('.');
                    self.bump();
                    while let Some(c) = self.peek(0) {
                        if c.is_ascii_digit() || c == '_' {
                            text.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
            }
        }
        // Exponent (`1e9`, `2.5E-3`).
        if matches!(self.peek(0), Some('e') | Some('E')) {
            let sign_ok = matches!(self.peek(1), Some('+') | Some('-'));
            let digit_at = if sign_ok { 2 } else { 1 };
            if matches!(self.peek(digit_at), Some(c) if c.is_ascii_digit()) {
                is_float = true;
                text.push(self.bump().unwrap_or('e'));
                if sign_ok {
                    text.push(self.bump().unwrap_or('+'));
                }
                while let Some(c) = self.peek(0) {
                    if c.is_ascii_digit() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
            }
        }
        // Type suffix (`u64`, `f32`, `f64`, `usize`, …).
        let mut suffix = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                suffix.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if suffix == "f32" || suffix == "f64" {
            is_float = true;
        }
        text.push_str(&suffix);
        self.push_token(TokenKind::Number, text, line, col, is_float);
    }

    fn ident(&mut self, line: usize, col: usize) {
        let mut text = String::new();
        // Raw identifier prefix.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_token(TokenKind::Ident, text, line, col, false);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}
