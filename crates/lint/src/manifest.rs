//! Crate-hygiene checks: member `Cargo.toml` manifests and crate-root
//! attributes.
//!
//! The TOML handling here is a deliberately small line-oriented reader —
//! enough for the constrained manifests this workspace writes (sections,
//! `key = value`, inline tables), with zero dependencies so `dls-lint`
//! works offline.

use crate::diag::Diagnostic;
use crate::lexer::{lex, TokenKind};
use crate::rules::CRATE_HYGIENE;

/// Checks one member manifest. `rel_path` is workspace-relative (e.g.
/// `crates/num/Cargo.toml`).
pub fn check_manifest(rel_path: &str, content: &str, suppressed_out: &mut usize) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut section = String::new();
    let mut has_lints_workspace = false;
    let mut saw_package = false;
    let allow_all = content.lines().any(|l| {
        let t = l.trim();
        t.starts_with('#') && t.contains("dls-lint:") && t.contains("allow-file(crate-hygiene)")
    });

    for (lineno, raw) in content.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            if section == "package" {
                saw_package = true;
            }
            continue;
        }
        if section == "lints" && line.replace(' ', "") == "workspace=true" {
            has_lints_workspace = true;
        }
        let dep_section = matches!(
            section.as_str(),
            "dependencies" | "dev-dependencies" | "build-dependencies"
        );
        if dep_section {
            let Some((name, value)) = line.split_once('=') else {
                continue;
            };
            let name = name.trim();
            let value = value.trim();
            // Accept `foo.workspace = true` and `foo = { workspace = true, … }`.
            let uses_workspace = name.ends_with(".workspace")
                || (value.starts_with('{') && value.replace(' ', "").contains("workspace=true"));
            if !uses_workspace {
                let suppressed = allow_all
                    || prev_line_allows(content, lineno)
                    || raw.contains("dls-lint: allow(crate-hygiene)");
                if suppressed {
                    *suppressed_out += 1;
                } else {
                    out.push(Diagnostic {
                        rule: CRATE_HYGIENE,
                        file: rel_path.to_string(),
                        line: lineno,
                        col: 1,
                        message: format!(
                            "dependency `{name}` does not resolve through \
                             [workspace.dependencies]"
                        ),
                        snippet: line.to_string(),
                        help: "declare the version once in the root Cargo.toml and use \
                               `name.workspace = true` here"
                            .to_string(),
                    });
                }
            }
        }
    }

    if saw_package && !has_lints_workspace {
        if allow_all {
            *suppressed_out += 1;
        } else {
            out.push(Diagnostic {
                rule: CRATE_HYGIENE,
                file: rel_path.to_string(),
                line: 1,
                col: 1,
                message: "member crate does not inherit workspace lints".to_string(),
                snippet: String::new(),
                help: "add `[lints]\\nworkspace = true` so the curated rustc/clippy \
                       set applies to this crate"
                    .to_string(),
            });
        }
    }
    out
}

/// `true` when the line before `lineno` is a `# dls-lint: allow(crate-hygiene)`
/// TOML comment.
fn prev_line_allows(content: &str, lineno: usize) -> bool {
    if lineno < 2 {
        return false;
    }
    content
        .lines()
        .nth(lineno - 2)
        .map(|l| {
            let t = l.trim();
            t.starts_with('#') && t.contains("dls-lint:") && t.contains("allow(crate-hygiene)")
        })
        .unwrap_or(false)
}

/// Checks a crate root (`src/lib.rs` / `src/main.rs`) for the mandatory
/// inner attributes.
pub fn check_crate_root(rel_path: &str, source: &str, suppressed_out: &mut usize) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let mut has_forbid_unsafe = false;
    let mut has_missing_docs = false;

    // Scan inner attributes: `#` `!` `[` … `]`.
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i + 3 < toks.len() {
        let is_inner_attr = toks[i].kind == TokenKind::Punct
            && toks[i].text == "#"
            && toks[i + 1].text == "!"
            && toks[i + 2].text == "[";
        if !is_inner_attr {
            i += 1;
            continue;
        }
        let mut depth = 0usize;
        let mut j = i + 2;
        let mut words: Vec<&str> = Vec::new();
        while j < toks.len() {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {
                    if toks[j].kind == TokenKind::Ident {
                        words.push(toks[j].text.as_str());
                    }
                }
            }
            j += 1;
        }
        let has = |w: &str| words.iter().any(|x| *x == w);
        // Accept the attribute directly or via cfg_attr.
        if has("forbid") && has("unsafe_code") {
            has_forbid_unsafe = true;
        }
        if (has("warn") || has("deny") || has("forbid")) && has("missing_docs") {
            has_missing_docs = true;
        }
        i = j + 1;
    }

    let file_allowed = lexed.comments.iter().any(|c| {
        c.text.contains("dls-lint:") && c.text.contains("allow-file(crate-hygiene)")
    });

    let mut out = Vec::new();
    let mut missing = Vec::new();
    if !has_forbid_unsafe {
        missing.push("#![forbid(unsafe_code)]");
    }
    if !has_missing_docs {
        missing.push("#![warn(missing_docs)]");
    }
    for attr in missing {
        if file_allowed {
            *suppressed_out += 1;
            continue;
        }
        out.push(Diagnostic {
            rule: CRATE_HYGIENE,
            file: rel_path.to_string(),
            line: 1,
            col: 1,
            message: format!("crate root is missing `{attr}`"),
            snippet: String::new(),
            help: "every workspace crate carries the safety/doc attributes; add the \
                   attribute below the crate-level docs"
                .to_string(),
        });
    }
    out
}
