//! The rule catalog and the per-file checking engine.
//!
//! Each rule protects a specific invariant of the paper's strategyproofness
//! argument (Carroll & Grosu, IPPS 2006):
//!
//! * [`NO_FLOAT_IN_EXACT`] — Theorems 4.1/5.2 need payments `Q_i = C_i +
//!   B_i` agreed upon *bit-for-bit* by every processor; the exact-arithmetic
//!   crates must therefore never touch IEEE-754 floats except at explicitly
//!   annotated conversion boundaries.
//! * [`NO_PANIC_IN_PROTOCOL`] — Lemma 5.1's fining argument assumes the
//!   referee and runtime survive arbitrary deviant input; a panic on a
//!   malformed message is a free denial-of-service for a cheater.
//! * [`CRATE_HYGIENE`] — workspace-wide guarantees (`forbid(unsafe_code)`,
//!   documented public APIs, centralized dependency versions) that keep the
//!   other two rules meaningful.

use crate::lexer::{lex, Token, TokenKind};
use crate::suppress::Suppressions;
use crate::diag::Diagnostic;

/// Rule name: floats forbidden in exact-arithmetic code.
pub const NO_FLOAT_IN_EXACT: &str = "no-float-in-exact";
/// Rule name: panicking constructs forbidden in protocol hot paths.
pub const NO_PANIC_IN_PROTOCOL: &str = "no-panic-in-protocol";
/// Rule name: crate-root attributes and manifest hygiene.
pub const CRATE_HYGIENE: &str = "crate-hygiene";
/// Pseudo-rule for malformed `dls-lint:` directives.
pub const BAD_SUPPRESSION: &str = "bad-suppression";
/// Pseudo-rule for directives that silence nothing.
pub const UNUSED_SUPPRESSION: &str = "unused-suppression";

/// All rule names, for `--rules` listing and directive validation.
pub const ALL_RULES: &[(&str, &str)] = &[
    (
        NO_FLOAT_IN_EXACT,
        "f32/f64 and float literals are forbidden in the exact-arithmetic \
         crates (crates/num, crates/crypto, mechanism/exact.rs, dlt/exact.rs); \
         exact payment agreement (Thm 4.1/5.2) must not depend on IEEE-754",
    ),
    (
        NO_PANIC_IN_PROTOCOL,
        "unwrap()/expect()/panic!/unreachable!/todo!/unimplemented! and \
         slice indexing are forbidden in protocol hot paths \
         (protocol/src/{runtime,referee,ledger,messages,fault,config,\
         executor,sched}.rs, mechanism/src/{engine,batch}.rs, \
         bench/src/{throughput,sessions}.rs); a malformed message must \
         yield a typed error, not a crashed session (Lemma 5.1)",
    ),
    (
        CRATE_HYGIENE,
        "crate roots must carry #![forbid(unsafe_code)] and \
         #![warn(missing_docs)]; member manifests must resolve dependencies \
         through [workspace.dependencies] and inherit [workspace.lints]",
    ),
    (
        BAD_SUPPRESSION,
        "a `// dls-lint:` directive could not be parsed (every allow needs \
         `(<rule>)` and a ` -- <reason>`)",
    ),
    (
        UNUSED_SUPPRESSION,
        "a `// dls-lint: allow` directive silences nothing and must be removed",
    ),
];

/// `true` for names that may appear inside `allow(...)`.
pub fn is_known_rule(name: &str) -> bool {
    name == NO_FLOAT_IN_EXACT || name == NO_PANIC_IN_PROTOCOL || name == CRATE_HYGIENE
}

/// Paths (workspace-relative, unix separators) covered by
/// [`NO_FLOAT_IN_EXACT`].
pub fn float_rule_applies(rel_path: &str) -> bool {
    rel_path.starts_with("crates/num/src/")
        || rel_path.starts_with("crates/crypto/src/")
        || rel_path == "crates/mechanism/src/exact.rs"
        || rel_path == "crates/dlt/src/exact.rs"
}

/// Paths covered by [`NO_PANIC_IN_PROTOCOL`]. Beyond the protocol hot
/// paths, the auction engine and its batch/throughput layers qualify: they
/// re-solve markets from cached state on every bid update, so a panic there
/// lets a deviant bid crash the auctioneer mid-round. The fault/degradation
/// modules (`fault.rs`, `config.rs`) qualify for the same reason inverted:
/// the layer that turns crashes into typed reports must not itself panic.
/// The event-driven executor (`executor.rs`, `sched.rs`) multiplexes many
/// sessions on one thread, so a panic there takes down every session in the
/// shard, not just the faulty one; the sessions sweep rides along because it
/// drives both paths from benchmark binaries that must report, not abort.
pub fn panic_rule_applies(rel_path: &str) -> bool {
    matches!(
        rel_path,
        "crates/protocol/src/runtime.rs"
            | "crates/protocol/src/referee.rs"
            | "crates/protocol/src/ledger.rs"
            | "crates/protocol/src/messages.rs"
            | "crates/protocol/src/fault.rs"
            | "crates/protocol/src/config.rs"
            | "crates/protocol/src/executor.rs"
            | "crates/protocol/src/sched.rs"
            | "crates/mechanism/src/engine.rs"
            | "crates/mechanism/src/batch.rs"
            | "crates/bench/src/throughput.rs"
            | "crates/bench/src/sessions.rs"
    )
}

/// Lints one source file. `rel_path` selects the applicable rules; the
/// returned diagnostics are unsuppressed violations (suppressed ones are
/// counted in `suppressed_out`).
pub fn lint_source(rel_path: &str, source: &str, suppressed_out: &mut usize) -> Vec<Diagnostic> {
    let lexed = lex(source);
    let mut sup = Suppressions::from_comments(&lexed.comments);
    let lines: Vec<&str> = source.lines().collect();
    let excluded = test_code_lines(&lexed.tokens);

    let mut raw: Vec<Diagnostic> = Vec::new();
    if float_rule_applies(rel_path) {
        check_floats(rel_path, &lexed.tokens, &excluded, &lines, &mut raw);
    }
    if panic_rule_applies(rel_path) {
        check_panics(rel_path, &lexed.tokens, &excluded, &lines, &mut raw);
    }

    let mut out = Vec::new();
    for d in raw {
        if sup.covers(d.rule, d.line) {
            *suppressed_out += 1;
        } else {
            out.push(d);
        }
    }
    // Malformed directives are always reported.
    for bad in &sup.bad {
        out.push(Diagnostic {
            rule: BAD_SUPPRESSION,
            file: rel_path.to_string(),
            line: bad.line,
            col: 1,
            message: bad.problem.clone(),
            snippet: snippet(&lines, bad.line),
            help: "write `// dls-lint: allow(<rule>) -- <reason>`".to_string(),
        });
    }
    // Unused directives are reported so burndown annotations stay honest —
    // but only for rules this file's scope actually evaluates here
    // (`crate-hygiene` allows are consumed by the manifest checker).
    {
        let evaluated = |r: &String| {
            (r == NO_FLOAT_IN_EXACT && float_rule_applies(rel_path))
                || (r == NO_PANIC_IN_PROTOCOL && panic_rule_applies(rel_path))
        };
        for s in &sup.entries {
            if !s.used && s.rules.iter().any(evaluated) {
                out.push(Diagnostic {
                    rule: UNUSED_SUPPRESSION,
                    file: rel_path.to_string(),
                    line: s.directive_line,
                    col: 1,
                    message: format!(
                        "suppression of {} silences nothing and must be removed",
                        s.rules.join(", ")
                    ),
                    snippet: snippet(&lines, s.directive_line),
                    help: String::new(),
                });
            }
        }
    }
    out
}

/// Returns a sorted list of `(start_line, end_line)` ranges (inclusive)
/// holding `#[cfg(test)]` modules and `#[test]` functions. Rules skip code
/// inside them: tests may unwrap and compare against floats freely.
fn test_code_lines(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_test_attr_at(tokens, i) {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip over this and any further attributes.
        let mut j = i;
        while j < tokens.len() && tokens[j].kind == TokenKind::Punct && tokens[j].text == "#" {
            j = skip_attr(tokens, j);
        }
        // Find the body: the first `{` before a terminating `;`.
        let mut k = j;
        let mut open = None;
        while k < tokens.len() {
            if tokens[k].kind == TokenKind::Punct {
                if tokens[k].text == "{" {
                    open = Some(k);
                    break;
                }
                if tokens[k].text == ";" {
                    break;
                }
            }
            k += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 1);
            continue;
        };
        let close = match_brace(tokens, open);
        let end_line = tokens.get(close).map(|t| t.line).unwrap_or(usize::MAX);
        ranges.push((start_line, end_line));
        i = close.saturating_add(1);
    }
    ranges
}

/// Is `tokens[i..]` the start of `#[test]`, `#[cfg(test)]` or a
/// `#[cfg_attr(test, ...)]`-style attribute mentioning `test`?
fn is_test_attr_at(tokens: &[Token], i: usize) -> bool {
    if tokens.get(i).map(|t| t.text.as_str()) != Some("#") {
        return false;
    }
    if tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
        return false;
    }
    let end = skip_attr(tokens, i);
    let inner = &tokens[i + 2..end.saturating_sub(1).max(i + 2)];
    match inner.first() {
        Some(t) if t.text == "test" && inner.len() == 1 => true,
        // `cfg(test)` / `cfg(any(test, …))` are test code; `cfg(not(test))`
        // is the opposite and must stay in scope.
        Some(t) if t.text == "cfg" => {
            inner.iter().any(|t| t.text == "test") && !inner.iter().any(|t| t.text == "not")
        }
        _ => false,
    }
}

/// Given `tokens[i] == "#"` starting an attribute, returns the index just
/// past the closing `]`.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut k = i + 1;
    if tokens.get(k).map(|t| t.text.as_str()) != Some("[") {
        return i + 1;
    }
    let mut depth = 0usize;
    while k < tokens.len() {
        if tokens[k].kind == TokenKind::Punct {
            match tokens[k].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
                _ => {}
            }
        }
        k += 1;
    }
    tokens.len()
}

/// Given `tokens[open] == "{"`, returns the index of the matching `}` (or
/// the last token on unbalanced input).
fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < tokens.len() {
        if tokens[k].kind == TokenKind::Punct {
            match tokens[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
        k += 1;
    }
    tokens.len().saturating_sub(1)
}

fn in_ranges(ranges: &[(usize, usize)], line: usize) -> bool {
    ranges.iter().any(|&(a, b)| a <= line && line <= b)
}

fn snippet(lines: &[&str], line: usize) -> String {
    lines
        .get(line.saturating_sub(1))
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

// ---------------------------------------------------------------------------
// no-float-in-exact
// ---------------------------------------------------------------------------

fn check_floats(
    rel_path: &str,
    tokens: &[Token],
    excluded: &[(usize, usize)],
    lines: &[&str],
    out: &mut Vec<Diagnostic>,
) {
    for t in tokens {
        if in_ranges(excluded, t.line) {
            continue;
        }
        let message = match t.kind {
            TokenKind::Ident if t.text == "f32" || t.text == "f64" => {
                format!("`{}` used in exact-arithmetic code", t.text)
            }
            TokenKind::Number if t.is_float => {
                format!("float literal `{}` in exact-arithmetic code", t.text)
            }
            _ => continue,
        };
        out.push(Diagnostic {
            rule: NO_FLOAT_IN_EXACT,
            file: rel_path.to_string(),
            line: t.line,
            col: t.col,
            message,
            snippet: snippet(lines, t.line),
            help: "use dls_num::Rational / integer arithmetic, or annotate a \
                   conversion boundary with `// dls-lint: allow(no-float-in-exact) -- <reason>`"
                .to_string(),
        });
    }
}

// ---------------------------------------------------------------------------
// no-panic-in-protocol
// ---------------------------------------------------------------------------

/// Keywords that may legally precede `[` without it being an index
/// expression (array literals / patterns, `let [a, b] = …`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "if", "else", "match", "return", "in", "as", "ref", "move", "box", "break",
    "continue",
    "await", "yield", "where", "const", "static", "dyn", "impl", "for", "while", "loop", "fn",
    "pub", "use", "mod", "struct", "enum", "union", "trait", "type", "unsafe", "extern",
];

fn check_panics(
    rel_path: &str,
    tokens: &[Token],
    excluded: &[(usize, usize)],
    lines: &[&str],
    out: &mut Vec<Diagnostic>,
) {
    for (idx, t) in tokens.iter().enumerate() {
        if in_ranges(excluded, t.line) {
            continue;
        }
        let prev = idx.checked_sub(1).and_then(|p| tokens.get(p));
        let next = tokens.get(idx + 1);
        let message = match t.kind {
            TokenKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                // `.unwrap(` / `.expect(` method calls only; idents like
                // `unwrap_or` lex as one token and never reach here.
                let is_method_call = prev.map(|p| p.text == ".").unwrap_or(false)
                    && next.map(|n| n.text == "(").unwrap_or(false);
                if !is_method_call {
                    continue;
                }
                format!("`.{}()` may panic on deviant input", t.text)
            }
            TokenKind::Ident
                if matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) =>
            {
                let is_macro = next.map(|n| n.text == "!").unwrap_or(false);
                // `core::panic` paths and shadowing idents are not calls.
                let after_path = prev.map(|p| p.text == ":").unwrap_or(false);
                if !is_macro || after_path {
                    continue;
                }
                format!("`{}!` aborts the session on a reachable path", t.text)
            }
            TokenKind::Punct if t.text == "[" => {
                let indexing = match prev {
                    Some(p) => match p.kind {
                        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                        TokenKind::Punct => p.text == "]" || p.text == ")" || p.text == "?",
                        _ => false,
                    },
                    None => false,
                };
                if !indexing {
                    continue;
                }
                "slice indexing panics when out of bounds".to_string()
            }
            _ => continue,
        };
        out.push(Diagnostic {
            rule: NO_PANIC_IN_PROTOCOL,
            file: rel_path.to_string(),
            line: t.line,
            col: t.col,
            message,
            snippet: snippet(lines, t.line),
            help: "return a typed error (RunError/RefereeError) or use \
                   .get()/.get_mut(); if infallibility is provable, annotate with \
                   `// dls-lint: allow(no-panic-in-protocol) -- <proof>`"
                .to_string(),
        });
    }
}
