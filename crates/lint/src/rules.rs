//! The rule catalog and the per-file checking engine.
//!
//! Each rule protects a specific invariant of the paper's strategyproofness
//! argument (Carroll & Grosu, IPPS 2006):
//!
//! * [`NO_FLOAT_IN_EXACT`] — Theorems 4.1/5.2 need payments `Q_i = C_i +
//!   B_i` agreed upon *bit-for-bit* by every processor; the exact-arithmetic
//!   crates must therefore never touch IEEE-754 floats except at explicitly
//!   annotated conversion boundaries.
//! * [`NO_PANIC_IN_PROTOCOL`] — Lemma 5.1's fining argument assumes the
//!   referee and runtime survive arbitrary deviant input; a panic on a
//!   malformed message is a free denial-of-service for a cheater.
//! * [`CRATE_HYGIENE`] — workspace-wide guarantees (`forbid(unsafe_code)`,
//!   documented public APIs, centralized dependency versions) that keep the
//!   other two rules meaningful.

use crate::lexer::{Token, TokenKind};
use crate::diag::Diagnostic;

/// Rule name: floats forbidden in exact-arithmetic code.
pub const NO_FLOAT_IN_EXACT: &str = "no-float-in-exact";
/// Rule name: panicking constructs forbidden in protocol hot paths.
pub const NO_PANIC_IN_PROTOCOL: &str = "no-panic-in-protocol";
/// Rule name: crate-root attributes and manifest hygiene.
pub const CRATE_HYGIENE: &str = "crate-hygiene";
/// Pseudo-rule for malformed `dls-lint:` directives.
pub const BAD_SUPPRESSION: &str = "bad-suppression";
/// Pseudo-rule for directives that silence nothing.
pub const UNUSED_SUPPRESSION: &str = "unused-suppression";
/// Cross-file rule: wall-clock reads, sleeps and unordered collections are
/// forbidden in the declared deterministic modules.
pub const DETERMINISM: &str = "determinism";
/// Cross-file rule: the executor's state machines must match the declared
/// phase-order spec.
pub const STATE_MACHINE: &str = "state-machine";
/// Cross-file rule: lock acquisition nesting must be cycle-free.
pub const LOCK_ORDER: &str = "lock-order";
/// Cross-file rule: bare integer arithmetic is forbidden in the bignum limb
/// kernels outside wrapping/checked/widening forms.
pub const UNCHECKED_ARITH: &str = "unchecked-arith";

/// All rule names, for `--rules` listing and directive validation.
pub const ALL_RULES: &[(&str, &str)] = &[
    (
        NO_FLOAT_IN_EXACT,
        "f32/f64 and float literals are forbidden in the exact-arithmetic \
         crates (crates/num, crates/crypto, mechanism/exact.rs, dlt/exact.rs); \
         exact payment agreement (Thm 4.1/5.2) must not depend on IEEE-754",
    ),
    (
        NO_PANIC_IN_PROTOCOL,
        "unwrap()/expect()/panic!/unreachable!/todo!/unimplemented! and \
         slice indexing are forbidden in protocol hot paths \
         (protocol/src/{runtime,referee,ledger,messages,fault,config,\
         executor,sched,service,multiload}.rs, \
         mechanism/src/{engine,batch,multiload}.rs, dlt/src/multiload.rs, \
         bench/src/{throughput,sessions,service,multiload}.rs); a malformed \
         message must \
         yield a typed error, not a crashed session (Lemma 5.1)",
    ),
    (
        CRATE_HYGIENE,
        "crate roots must carry #![forbid(unsafe_code)] and \
         #![warn(missing_docs)]; member manifests must resolve dependencies \
         through [workspace.dependencies] and inherit [workspace.lints]",
    ),
    (
        DETERMINISM,
        "wall-clock reads (Instant::now, SystemTime), thread::sleep and \
         unordered HashMap/HashSet are forbidden in the declared virtual-time \
         and canonical-encoding modules; the mechanism's strategyproofness \
         (Thms 5.1-5.3) assumes every honest party computes identically",
    ),
    (
        STATE_MACHINE,
        "every `state = ...` transition in the executor must be an edge of \
         the declared phase-order spec (Bidding -> ... -> Done, with \
         Crashed/Defaulted as accept-from-any sinks), and every declared \
         state must be reachable",
    ),
    (
        LOCK_ORDER,
        "Mutex/Condvar acquisition nesting across the threaded runtime must \
         form an acyclic lock graph, and a condvar wait may hold only its \
         own lock (static deadlock-freedom for the phase barriers)",
    ),
    (
        UNCHECKED_ARITH,
        "bare + - * << on integer limbs in the bignum kernels is forbidden \
         outside wrapping_/checked_/carrying_ forms or widening-cast \
         accumulators; exact payment agreement must not silently wrap",
    ),
    (
        BAD_SUPPRESSION,
        "a `// dls-lint:` directive could not be parsed (every allow needs \
         `(<rule>)` and a ` -- <reason>`)",
    ),
    (
        UNUSED_SUPPRESSION,
        "a `// dls-lint: allow` directive silences nothing and must be removed",
    ),
];

/// `true` for names that may appear inside `allow(...)`.
pub fn is_known_rule(name: &str) -> bool {
    name == NO_FLOAT_IN_EXACT
        || name == NO_PANIC_IN_PROTOCOL
        || name == CRATE_HYGIENE
        || name == DETERMINISM
        || name == STATE_MACHINE
        || name == LOCK_ORDER
        || name == UNCHECKED_ARITH
}

/// Paths (workspace-relative, unix separators) covered by
/// [`NO_FLOAT_IN_EXACT`].
pub fn float_rule_applies(rel_path: &str) -> bool {
    rel_path.starts_with("crates/num/src/")
        || rel_path.starts_with("crates/crypto/src/")
        || rel_path == "crates/mechanism/src/exact.rs"
        || rel_path == "crates/dlt/src/exact.rs"
}

/// Paths covered by [`NO_PANIC_IN_PROTOCOL`]. Beyond the protocol hot
/// paths, the auction engine and its batch/throughput layers qualify: they
/// re-solve markets from cached state on every bid update, so a panic there
/// lets a deviant bid crash the auctioneer mid-round. The fault/degradation
/// modules (`fault.rs`, `config.rs`) qualify for the same reason inverted:
/// the layer that turns crashes into typed reports must not itself panic.
/// The event-driven executor (`executor.rs`, `sched.rs`) multiplexes many
/// sessions on one thread, so a panic there takes down every session in the
/// shard, not just the faulty one; the sessions sweep rides along because it
/// drives both paths from benchmark binaries that must report, not abort.
/// The always-on service (`service.rs`) is the strongest case of all: its
/// workers outlive any one session, so a panic kills capacity for every
/// future submission; its bench harness (`bench/src/service.rs`) rides
/// along like the sessions sweep. The multi-load installment stack
/// (`dlt/src/multiload.rs`, `mechanism/src/multiload.rs`,
/// `protocol/src/multiload.rs`, `bench/src/multiload.rs`) qualifies end to
/// end: one k-load session splices k chains per bid update, so a panic in
/// any layer aborts every in-flight load of the session at once.
pub fn panic_rule_applies(rel_path: &str) -> bool {
    matches!(
        rel_path,
        "crates/protocol/src/runtime.rs"
            | "crates/protocol/src/referee.rs"
            | "crates/protocol/src/ledger.rs"
            | "crates/protocol/src/messages.rs"
            | "crates/protocol/src/fault.rs"
            | "crates/protocol/src/config.rs"
            | "crates/protocol/src/executor.rs"
            | "crates/protocol/src/sched.rs"
            | "crates/mechanism/src/engine.rs"
            | "crates/mechanism/src/batch.rs"
            | "crates/bench/src/throughput.rs"
            | "crates/bench/src/sessions.rs"
            | "crates/protocol/src/service.rs"
            | "crates/protocol/src/supervisor.rs"
            | "crates/bench/src/service.rs"
            | "crates/dlt/src/multiload.rs"
            | "crates/mechanism/src/multiload.rs"
            | "crates/protocol/src/multiload.rs"
            | "crates/bench/src/multiload.rs"
    )
}

/// Lints one source file in isolation. `rel_path` selects the applicable
/// rules (per-file and cross-file passes alike); the returned diagnostics
/// are unsuppressed violations (suppressed ones are counted in
/// `suppressed_out`).
pub fn lint_source(rel_path: &str, source: &str, suppressed_out: &mut usize) -> Vec<Diagnostic> {
    let report = crate::analyze_sources(vec![(rel_path.to_string(), source.to_string())]);
    *suppressed_out += report.suppressed;
    report.diagnostics
}

/// Runs the per-file lexical rules over one prepared source file, pushing
/// raw (pre-suppression) diagnostics.
pub(crate) fn check_file(sf: &crate::SourceFile, out: &mut Vec<Diagnostic>) {
    let lines: Vec<&str> = sf.lines.iter().map(String::as_str).collect();
    if float_rule_applies(&sf.rel) {
        check_floats(&sf.rel, &sf.lexed.tokens, &sf.excluded, &lines, out);
    }
    if panic_rule_applies(&sf.rel) {
        check_panics(&sf.rel, &sf.lexed.tokens, &sf.excluded, &lines, out);
    }
}

/// `true` when a suppression for `rule` is meaningful in `rel_path` — i.e.
/// some rule or pass actually evaluates that rule there. Directives for
/// rules that are never evaluated in a file are left alone (notably
/// `crate-hygiene`, consumed by the manifest checker), while evaluated-but-
/// unused ones are reported as stale.
pub(crate) fn rule_evaluated_for(rule: &str, rel_path: &str) -> bool {
    (rule == NO_FLOAT_IN_EXACT && float_rule_applies(rel_path))
        || (rule == NO_PANIC_IN_PROTOCOL && panic_rule_applies(rel_path))
        || (rule == DETERMINISM && crate::passes::determinism::in_scope(rel_path))
        || (rule == STATE_MACHINE && crate::passes::state_machine::in_scope(rel_path))
        || (rule == LOCK_ORDER && crate::passes::lock_order::in_scope(rel_path))
        || (rule == UNCHECKED_ARITH && crate::passes::arith::in_scope(rel_path))
}

/// Returns a sorted list of `(start_line, end_line)` ranges (inclusive)
/// holding `#[cfg(test)]` modules and `#[test]` functions. Rules skip code
/// inside them: tests may unwrap and compare against floats freely.
pub(crate) fn test_code_lines(tokens: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !is_test_attr_at(tokens, i) {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Skip over this and any further attributes.
        let mut j = i;
        while j < tokens.len() && tokens[j].kind == TokenKind::Punct && tokens[j].text == "#" {
            j = skip_attr(tokens, j);
        }
        // Find the body: the first `{` before a terminating `;`.
        let mut k = j;
        let mut open = None;
        while k < tokens.len() {
            if tokens[k].kind == TokenKind::Punct {
                if tokens[k].text == "{" {
                    open = Some(k);
                    break;
                }
                if tokens[k].text == ";" {
                    break;
                }
            }
            k += 1;
        }
        let Some(open) = open else {
            i = j.max(i + 1);
            continue;
        };
        let close = match_brace(tokens, open);
        let end_line = tokens.get(close).map(|t| t.line).unwrap_or(usize::MAX);
        ranges.push((start_line, end_line));
        i = close.saturating_add(1);
    }
    ranges
}

/// Is `tokens[i..]` the start of `#[test]`, `#[cfg(test)]` or a
/// `#[cfg_attr(test, ...)]`-style attribute mentioning `test`?
fn is_test_attr_at(tokens: &[Token], i: usize) -> bool {
    if tokens.get(i).map(|t| t.text.as_str()) != Some("#") {
        return false;
    }
    if tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
        return false;
    }
    let end = skip_attr(tokens, i);
    let inner = &tokens[i + 2..end.saturating_sub(1).max(i + 2)];
    match inner.first() {
        Some(t) if t.text == "test" && inner.len() == 1 => true,
        // `cfg(test)` / `cfg(any(test, …))` are test code; `cfg(not(test))`
        // is the opposite and must stay in scope.
        Some(t) if t.text == "cfg" => {
            inner.iter().any(|t| t.text == "test") && !inner.iter().any(|t| t.text == "not")
        }
        _ => false,
    }
}

/// Given `tokens[i] == "#"` starting an attribute, returns the index just
/// past the closing `]`.
fn skip_attr(tokens: &[Token], i: usize) -> usize {
    let mut k = i + 1;
    if tokens.get(k).map(|t| t.text.as_str()) != Some("[") {
        return i + 1;
    }
    let mut depth = 0usize;
    while k < tokens.len() {
        if tokens[k].kind == TokenKind::Punct {
            match tokens[k].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
                _ => {}
            }
        }
        k += 1;
    }
    tokens.len()
}

/// Given `tokens[open] == "{"`, returns the index of the matching `}` (or
/// the last token on unbalanced input).
pub(crate) fn match_brace(tokens: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut k = open;
    while k < tokens.len() {
        if tokens[k].kind == TokenKind::Punct {
            match tokens[k].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return k;
                    }
                }
                _ => {}
            }
        }
        k += 1;
    }
    tokens.len().saturating_sub(1)
}

pub(crate) fn in_ranges(ranges: &[(usize, usize)], line: usize) -> bool {
    ranges.iter().any(|&(a, b)| a <= line && line <= b)
}

pub(crate) fn snippet(lines: &[&str], line: usize) -> String {
    lines
        .get(line.saturating_sub(1))
        .map(|l| l.trim().to_string())
        .unwrap_or_default()
}

// ---------------------------------------------------------------------------
// no-float-in-exact
// ---------------------------------------------------------------------------

fn check_floats(
    rel_path: &str,
    tokens: &[Token],
    excluded: &[(usize, usize)],
    lines: &[&str],
    out: &mut Vec<Diagnostic>,
) {
    for t in tokens {
        if in_ranges(excluded, t.line) {
            continue;
        }
        let message = match t.kind {
            TokenKind::Ident if t.text == "f32" || t.text == "f64" => {
                format!("`{}` used in exact-arithmetic code", t.text)
            }
            TokenKind::Number if t.is_float => {
                format!("float literal `{}` in exact-arithmetic code", t.text)
            }
            _ => continue,
        };
        out.push(Diagnostic {
            rule: NO_FLOAT_IN_EXACT,
            file: rel_path.to_string(),
            line: t.line,
            col: t.col,
            message,
            snippet: snippet(lines, t.line),
            help: "use dls_num::Rational / integer arithmetic, or annotate a \
                   conversion boundary with `// dls-lint: allow(no-float-in-exact) -- <reason>`"
                .to_string(),
        });
    }
}

// ---------------------------------------------------------------------------
// no-panic-in-protocol
// ---------------------------------------------------------------------------

/// Keywords that may legally precede `[` without it being an index
/// expression (array literals / patterns, `let [a, b] = …`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "mut", "if", "else", "match", "return", "in", "as", "ref", "move", "box", "break",
    "continue",
    "await", "yield", "where", "const", "static", "dyn", "impl", "for", "while", "loop", "fn",
    "pub", "use", "mod", "struct", "enum", "union", "trait", "type", "unsafe", "extern",
];

fn check_panics(
    rel_path: &str,
    tokens: &[Token],
    excluded: &[(usize, usize)],
    lines: &[&str],
    out: &mut Vec<Diagnostic>,
) {
    for (idx, t) in tokens.iter().enumerate() {
        if in_ranges(excluded, t.line) {
            continue;
        }
        let prev = idx.checked_sub(1).and_then(|p| tokens.get(p));
        let next = tokens.get(idx + 1);
        let message = match t.kind {
            TokenKind::Ident if t.text == "unwrap" || t.text == "expect" => {
                // `.unwrap(` / `.expect(` method calls only; idents like
                // `unwrap_or` lex as one token and never reach here.
                let is_method_call = prev.map(|p| p.text == ".").unwrap_or(false)
                    && next.map(|n| n.text == "(").unwrap_or(false);
                if !is_method_call {
                    continue;
                }
                format!("`.{}()` may panic on deviant input", t.text)
            }
            TokenKind::Ident
                if matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                ) =>
            {
                let is_macro = next.map(|n| n.text == "!").unwrap_or(false);
                // `core::panic` paths and shadowing idents are not calls.
                let after_path = prev.map(|p| p.text == ":").unwrap_or(false);
                if !is_macro || after_path {
                    continue;
                }
                format!("`{}!` aborts the session on a reachable path", t.text)
            }
            TokenKind::Punct if t.text == "[" => {
                let indexing = match prev {
                    Some(p) => match p.kind {
                        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
                        TokenKind::Punct => p.text == "]" || p.text == ")" || p.text == "?",
                        _ => false,
                    },
                    None => false,
                };
                if !indexing {
                    continue;
                }
                "slice indexing panics when out of bounds".to_string()
            }
            _ => continue,
        };
        out.push(Diagnostic {
            rule: NO_PANIC_IN_PROTOCOL,
            file: rel_path.to_string(),
            line: t.line,
            col: t.col,
            message,
            snippet: snippet(lines, t.line),
            help: "return a typed error (RunError/RefereeError) or use \
                   .get()/.get_mut(); if infallibility is provable, annotate with \
                   `// dls-lint: allow(no-panic-in-protocol) -- <proof>`"
                .to_string(),
        });
    }
}
