//! Diagnostics: rustc-style text rendering and the machine-readable
//! `--json` report.

use std::fmt::Write as _;

/// Analyzer pass a rule belongs to: the per-file lexical rules and the
/// suppression/manifest machinery report as `core`; each cross-file pass
/// reports under its own name.
pub fn pass_of(rule: &str) -> &'static str {
    match rule {
        crate::rules::DETERMINISM => "determinism",
        crate::rules::STATE_MACHINE => "state-machine",
        crate::rules::LOCK_ORDER => "lock-order",
        crate::rules::UNCHECKED_ARITH => "unchecked-arith",
        _ => "core",
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule that fired (e.g. `no-float-in-exact`).
    pub rule: &'static str,
    /// Workspace-relative file path (unix separators).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description of the violation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// Hint on how to fix or suppress.
    pub help: String,
}

impl Diagnostic {
    /// Renders the diagnostic in rustc's `error[...]` style.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "error[{}]: {}", self.rule, self.message);
        let _ = writeln!(s, "  --> {}:{}:{}", self.file, self.line, self.col);
        if !self.snippet.is_empty() {
            let gutter = self.line.to_string();
            let pad = " ".repeat(gutter.len());
            let _ = writeln!(s, "{pad} |");
            let _ = writeln!(s, "{gutter} | {}", self.snippet);
            let _ = writeln!(s, "{pad} |");
        }
        if !self.help.is_empty() {
            let _ = writeln!(s, "   = help: {}", self.help);
        }
        s
    }
}

/// Full report for one analyzer run.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations, in (file, line, col) order after [`Report::sort`].
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of manifests checked.
    pub manifests_checked: usize,
    /// Number of diagnostics silenced by suppression directives.
    pub suppressed: usize,
    /// Names of the cross-file passes that found their scope files and
    /// analyzed them in this run (empty for manually assembled reports).
    pub passes_run: Vec<&'static str>,
}

impl Report {
    /// Orders diagnostics by file, then line, then column, then rule.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| {
                (a.file.as_str(), a.line, a.col, a.rule)
                    .cmp(&(b.file.as_str(), b.line, b.col, b.rule))
            });
    }

    /// `true` when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders the whole report as rustc-style text plus a summary line.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for d in &self.diagnostics {
            s.push_str(&d.render());
            s.push('\n');
        }
        let _ = writeln!(
            s,
            "dls-lint: {} violation(s), {} suppressed, {} file(s) and {} manifest(s) checked",
            self.diagnostics.len(),
            self.suppressed,
            self.files_scanned,
            self.manifests_checked
        );
        s
    }

    /// Serializes the report as a stable JSON document (schema version 2:
    /// each diagnostic names its pass, the summary lists the passes run).
    pub fn render_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"version\": 2,\n  \"diagnostics\": [");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    {");
            let _ = write!(
                s,
                "\"rule\": {}, \"pass\": {}, \"file\": {}, \"line\": {}, \"col\": {}, \
                 \"message\": {}, \"snippet\": {}",
                json_str(d.rule),
                json_str(pass_of(d.rule)),
                json_str(&d.file),
                d.line,
                d.col,
                json_str(&d.message),
                json_str(&d.snippet),
            );
            s.push('}');
        }
        if !self.diagnostics.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("],\n");
        let passes = self
            .passes_run
            .iter()
            .map(|p| json_str(p))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = write!(
            s,
            "  \"summary\": {{\"violations\": {}, \"suppressed\": {}, \
             \"files_scanned\": {}, \"manifests_checked\": {}, \"passes\": [{}]}}\n",
            self.diagnostics.len(),
            self.suppressed,
            self.files_scanned,
            self.manifests_checked,
            passes
        );
        s.push_str("}\n");
        s
    }
}

/// Minimal JSON string encoder (std-only crate: no serde here).
fn json_str(v: &str) -> String {
    let mut out = String::with_capacity(v.len() + 2);
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
