//! The `// dls-lint: allow(<rule>) -- <reason>` suppression layer.
//!
//! Suppressions are deliberately explicit: each one names the rule(s) it
//! silences and must carry a human-readable reason after ` -- `, so every
//! accepted violation in the tree documents *why* it is acceptable.
//!
//! Scoping:
//! * a **trailing** directive (code before it on the same line) covers its
//!   own line;
//! * a directive **alone on a line** covers the next line;
//! * `allow-file(<rule>)` covers the whole file.
//!
//! A directive that silences nothing is itself reported
//! ([`crate::rules::UNUSED_SUPPRESSION`]), so stale allows cannot linger.

use crate::lexer::Comment;

/// Scope of one suppression directive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Covers a single source line.
    Line(usize),
    /// Covers the entire file.
    File,
}

/// One parsed suppression directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rules silenced by this directive.
    pub rules: Vec<String>,
    /// Mandatory justification (text after ` -- `).
    pub reason: String,
    /// Line the directive itself sits on.
    pub directive_line: usize,
    /// Which diagnostics it covers.
    pub scope: Scope,
    /// Set when the directive suppressed at least one diagnostic.
    pub used: bool,
}

/// A directive that could not be parsed (reported as `bad-suppression`).
#[derive(Debug, Clone)]
pub struct BadDirective {
    /// Line of the malformed directive.
    pub line: usize,
    /// What is wrong with it.
    pub problem: String,
}

/// Result of scanning a file's comments for directives.
#[derive(Debug, Default)]
pub struct Suppressions {
    /// Well-formed directives.
    pub entries: Vec<Suppression>,
    /// Malformed directives.
    pub bad: Vec<BadDirective>,
}

const MARKER: &str = "dls-lint:";

impl Suppressions {
    /// Extracts directives from the lexed comment stream.
    pub fn from_comments(comments: &[Comment]) -> Self {
        let mut out = Suppressions::default();
        for c in comments {
            let Some(rest) = directive_payload(&c.text) else {
                continue;
            };
            match parse_directive(rest) {
                Ok((rules, reason, file_scope)) => {
                    let scope = if file_scope {
                        Scope::File
                    } else if c.trailing {
                        Scope::Line(c.line)
                    } else {
                        Scope::Line(c.line + 1)
                    };
                    out.entries.push(Suppression {
                        rules,
                        reason,
                        directive_line: c.line,
                        scope,
                        used: false,
                    });
                }
                Err(problem) => out.bad.push(BadDirective {
                    line: c.line,
                    problem,
                }),
            }
        }
        out
    }

    /// Marks-and-returns whether a diagnostic for `rule` at `line` is
    /// suppressed.
    pub fn covers(&mut self, rule: &str, line: usize) -> bool {
        for s in &mut self.entries {
            let in_scope = match s.scope {
                Scope::File => true,
                Scope::Line(l) => l == line,
            };
            if in_scope && s.rules.iter().any(|r| r == rule) {
                s.used = true;
                return true;
            }
        }
        false
    }
}

/// Returns the text after the `dls-lint:` marker, if the comment is a
/// directive. Doc-comment markers (`/`, `!`) are tolerated.
fn directive_payload(text: &str) -> Option<&str> {
    let t = text.trim_start_matches(['/', '!']).trim_start();
    t.strip_prefix(MARKER).map(str::trim_start)
}

/// Parses `allow(rule-a, rule-b) -- reason` / `allow-file(rule) -- reason`.
fn parse_directive(rest: &str) -> Result<(Vec<String>, String, bool), String> {
    let (file_scope, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow") {
        (false, r)
    } else {
        return Err(format!(
            "unknown directive {:?}; expected `allow(<rule>) -- <reason>` \
             or `allow-file(<rule>) -- <reason>`",
            rest.split_whitespace().next().unwrap_or("")
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("missing `(<rule>)` after `allow`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("unclosed `(` in allow directive".to_string());
    };
    let (inside, after) = rest.split_at(close);
    let rules: Vec<String> = inside
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("allow directive names no rule".to_string());
    }
    for r in &rules {
        if !crate::rules::is_known_rule(r) {
            return Err(format!("unknown rule {r:?}"));
        }
    }
    let after = after[1..].trim_start(); // skip ')'
    let Some(reason) = after.strip_prefix("--") else {
        return Err("missing ` -- <reason>`: every suppression must say why".to_string());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("empty reason after ` -- `".to_string());
    }
    Ok((rules, reason.to_string(), file_scope))
}
