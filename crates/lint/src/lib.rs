//! # `dls-lint` — workspace invariant analyzer
//!
//! A std-only, offline static analyzer that machine-enforces the repo
//! invariants behind the paper's strategyproofness guarantees:
//!
//! * **no-float-in-exact** — the exact-arithmetic crates (`dls-num`,
//!   `dls-crypto`, `mechanism::exact`, `dlt::exact`) must not use `f32`/
//!   `f64` or float literals outside annotated conversion boundaries, so
//!   payments `Q_i = C_i + B_i` (Theorems 4.1/5.2) stay bit-exact.
//! * **no-panic-in-protocol** — `unwrap()`, `expect()`, `panic!`-family
//!   macros and slice indexing are forbidden in the protocol hot paths
//!   (`runtime`, `referee`, `ledger`, `messages`): a deviant peer must cost
//!   itself a fine (Lemma 5.1), never crash the session.
//! * **crate-hygiene** — every crate root carries `#![forbid(unsafe_code)]`
//!   and `#![warn(missing_docs)]`; member manifests resolve dependencies
//!   through `[workspace.dependencies]` and inherit `[workspace.lints]`.
//!
//! Violations are burned down explicitly with
//! `// dls-lint: allow(<rule>) -- <reason>`; the reason is mandatory and
//! unused suppressions are themselves violations.
//!
//! Run it three ways:
//!
//! ```text
//! cargo run -p dls-lint            # rustc-style diagnostics, exit 1 on hit
//! cargo run -p dls-lint -- --json  # machine-readable report
//! cargo test -q                    # tests/lint_gate.rs enforces it forever
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod suppress;
pub mod walk;

pub use diag::{Diagnostic, Report};

use std::path::Path;

/// Runs every rule over the workspace rooted at `root` and returns the
/// aggregated report (sorted, deterministic).
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    let members = walk::member_dirs(root)?;

    for member in &members {
        // Manifest hygiene.
        let manifest_path = member.join("Cargo.toml");
        if let Ok(content) = std::fs::read_to_string(&manifest_path) {
            report.manifests_checked += 1;
            let rel = walk::rel_unix(root, &manifest_path);
            report
                .diagnostics
                .extend(manifest::check_manifest(&rel, &content, &mut report.suppressed));
        }

        // Crate-root attributes.
        let lib = member.join("src/lib.rs");
        let main = member.join("src/main.rs");
        let crate_root = if lib.is_file() {
            Some(lib)
        } else if main.is_file() {
            Some(main)
        } else {
            None
        };
        if let Some(crate_root) = crate_root {
            if let Ok(src) = std::fs::read_to_string(&crate_root) {
                let rel = walk::rel_unix(root, &crate_root);
                report.diagnostics.extend(manifest::check_crate_root(
                    &rel,
                    &src,
                    &mut report.suppressed,
                ));
            }
        }

        // Source rules.
        for file in walk::rust_files(member) {
            let Ok(src) = std::fs::read_to_string(&file) else {
                continue;
            };
            report.files_scanned += 1;
            let rel = walk::rel_unix(root, &file);
            report
                .diagnostics
                .extend(rules::lint_source(&rel, &src, &mut report.suppressed));
        }
    }

    report.sort();
    Ok(report)
}
