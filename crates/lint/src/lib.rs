//! # `dls-lint` / dls-analyze — workspace invariant analyzer
//!
//! A std-only, offline static analyzer that machine-enforces the repo
//! invariants behind the paper's strategyproofness guarantees. The
//! per-file lexical rules from PR 1:
//!
//! * **no-float-in-exact** — the exact-arithmetic crates (`dls-num`,
//!   `dls-crypto`, `mechanism::exact`, `dlt::exact`) must not use `f32`/
//!   `f64` or float literals outside annotated conversion boundaries, so
//!   payments `Q_i = C_i + B_i` (Theorems 4.1/5.2) stay bit-exact.
//! * **no-panic-in-protocol** — `unwrap()`, `expect()`, `panic!`-family
//!   macros and slice indexing are forbidden in the protocol hot paths
//!   (`runtime`, `referee`, `ledger`, `messages`): a deviant peer must cost
//!   itself a fine (Lemma 5.1), never crash the session.
//! * **crate-hygiene** — every crate root carries `#![forbid(unsafe_code)]`
//!   and `#![warn(missing_docs)]`; member manifests resolve dependencies
//!   through `[workspace.dependencies]` and inherit `[workspace.lints]`.
//!
//! Plus four cross-file passes (see [`passes`]) guarding the dynamic
//! invariants the executor differential only samples:
//!
//! * **determinism** — no wall-clock reads, sleeps or unordered
//!   `HashMap`/`HashSet` in the declared virtual-time and
//!   canonical-encoding modules.
//! * **state-machine** — the executor's `ProcessorState`/`RefereeState`
//!   transition graphs must match the declared phase-order spec.
//! * **lock-order** — `Mutex`/`Condvar` acquisition nesting across the
//!   threaded runtime must be cycle-free.
//! * **unchecked-arith** — no bare `+ - * <<` on integer limbs in the
//!   bignum kernels outside wrapping/checked/widening forms.
//!
//! Violations are burned down explicitly with
//! `// dls-lint: allow(<rule>) -- <reason>`; the reason is mandatory and
//! unused suppressions are themselves violations.
//!
//! Run it three ways:
//!
//! ```text
//! cargo run -p dls-lint            # rustc-style diagnostics, exit 1 on hit
//! cargo run -p dls-lint -- --json  # machine-readable report (schema v2)
//! cargo test -q                    # tests/lint_gate.rs enforces it forever
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod diag;
pub mod lexer;
pub mod manifest;
pub mod passes;
pub mod rules;
pub mod suppress;
pub mod walk;

pub use diag::{Diagnostic, Report};

use std::path::Path;

/// One source file, read and lexed exactly once so the per-file rules and
/// every cross-file pass share the same token stream, test-code exclusion
/// ranges and suppression table.
pub(crate) struct SourceFile {
    /// Workspace-relative unix path (scope selector for every rule).
    pub(crate) rel: String,
    /// Source split into lines (for diagnostic snippets).
    pub(crate) lines: Vec<String>,
    /// Lexed tokens + comments.
    pub(crate) lexed: lexer::Lexed,
    /// `#[test]` / `#[cfg(test)]` line ranges, excluded from lexical rules.
    pub(crate) excluded: Vec<(usize, usize)>,
}

impl SourceFile {
    fn new(rel: String, source: &str) -> Self {
        let lexed = lexer::lex(source);
        let excluded = rules::test_code_lines(&lexed.tokens);
        SourceFile {
            rel,
            lines: source.lines().map(str::to_string).collect(),
            lexed,
            excluded,
        }
    }

    /// Diagnostic snippet for `line` (1-based).
    pub(crate) fn snippet(&self, line: usize) -> String {
        self.lines
            .get(line.saturating_sub(1))
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// Analyzes a set of in-memory sources (`(workspace-relative path, source)`)
/// with the full engine: per-file rules, cross-file passes, suppression
/// accounting. This is the core [`scan_workspace`] runs over the real tree
/// and the fixture tests run over synthetic ones.
pub fn analyze_sources(inputs: Vec<(String, String)>) -> Report {
    let mut files: Vec<SourceFile> = Vec::with_capacity(inputs.len());
    let mut sups: Vec<suppress::Suppressions> = Vec::with_capacity(inputs.len());
    for (rel, source) in inputs {
        let sf = SourceFile::new(rel, &source);
        sups.push(suppress::Suppressions::from_comments(&sf.lexed.comments));
        files.push(sf);
    }

    // Raw findings, tagged with the index of the file they belong to so
    // suppression filtering can use that file's directive table.
    let mut raw: Vec<(usize, Diagnostic)> = Vec::new();
    for (idx, sf) in files.iter().enumerate() {
        let mut per_file = Vec::new();
        rules::check_file(sf, &mut per_file);
        raw.extend(per_file.into_iter().map(|d| (idx, d)));
    }
    let passes_run = passes::run_all(&files, &mut raw);

    let mut report = Report {
        files_scanned: files.len(),
        passes_run,
        ..Report::default()
    };
    for (idx, d) in raw {
        if sups
            .get_mut(idx)
            .map(|s| s.covers(d.rule, d.line))
            .unwrap_or(false)
        {
            report.suppressed += 1;
        } else {
            report.diagnostics.push(d);
        }
    }

    // Directive hygiene: malformed directives are always violations; a
    // well-formed directive that silenced nothing is stale (evaluated
    // rules only — `crate-hygiene` allows belong to the manifest checker).
    for (sf, sup) in files.iter().zip(&sups) {
        for bad in &sup.bad {
            report.diagnostics.push(Diagnostic {
                rule: rules::BAD_SUPPRESSION,
                file: sf.rel.clone(),
                line: bad.line,
                col: 1,
                message: bad.problem.clone(),
                snippet: sf.snippet(bad.line),
                help: "write `// dls-lint: allow(<rule>) -- <reason>`".to_string(),
            });
        }
        for s in &sup.entries {
            if !s.used
                && s.rules
                    .iter()
                    .any(|r| rules::rule_evaluated_for(r, &sf.rel))
            {
                report.diagnostics.push(Diagnostic {
                    rule: rules::UNUSED_SUPPRESSION,
                    file: sf.rel.clone(),
                    line: s.directive_line,
                    col: 1,
                    message: format!(
                        "suppression of {} silences nothing and must be removed",
                        s.rules.join(", ")
                    ),
                    snippet: sf.snippet(s.directive_line),
                    help: String::new(),
                });
            }
        }
    }

    report.sort();
    report
}

/// Runs every rule and pass over the workspace rooted at `root` and returns
/// the aggregated report (sorted, deterministic).
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    let members = walk::member_dirs(root)?;
    let mut sources: Vec<(String, String)> = Vec::new();

    for member in &members {
        // Manifest hygiene.
        let manifest_path = member.join("Cargo.toml");
        if let Ok(content) = std::fs::read_to_string(&manifest_path) {
            report.manifests_checked += 1;
            let rel = walk::rel_unix(root, &manifest_path);
            report
                .diagnostics
                .extend(manifest::check_manifest(&rel, &content, &mut report.suppressed));
        }

        // Crate-root attributes.
        let lib = member.join("src/lib.rs");
        let main = member.join("src/main.rs");
        let crate_root = if lib.is_file() {
            Some(lib)
        } else if main.is_file() {
            Some(main)
        } else {
            None
        };
        if let Some(crate_root) = crate_root {
            if let Ok(src) = std::fs::read_to_string(&crate_root) {
                let rel = walk::rel_unix(root, &crate_root);
                report.diagnostics.extend(manifest::check_crate_root(
                    &rel,
                    &src,
                    &mut report.suppressed,
                ));
            }
        }

        // Source files, collected for the shared per-file + cross-file run.
        for file in walk::rust_files(member) {
            let Ok(src) = std::fs::read_to_string(&file) else {
                continue;
            };
            sources.push((walk::rel_unix(root, &file), src));
        }
    }

    let analyzed = analyze_sources(sources);
    report.files_scanned = analyzed.files_scanned;
    report.suppressed += analyzed.suppressed;
    report.passes_run = analyzed.passes_run;
    report.diagnostics.extend(analyzed.diagnostics);

    report.sort();
    Ok(report)
}
