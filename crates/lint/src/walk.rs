//! Workspace discovery: members from the root `Cargo.toml`, `.rs` files per
//! member.

use std::fs;
use std::path::{Path, PathBuf};

/// Finds the workspace root at or above `start` (the first directory whose
/// `Cargo.toml` contains a `[workspace]` table).
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(content) = fs::read_to_string(&manifest) {
            if content.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Expands the `members = [...]` globs of the root manifest into member
/// directories. Supports literal entries and a trailing `/*` component —
/// the only forms this workspace uses.
pub fn member_dirs(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut members: Vec<String> = Vec::new();
    let mut in_members = false;
    for line in manifest.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("members") {
            if rest.trim_start().starts_with('=') {
                in_members = true;
            }
        }
        if in_members {
            for piece in line.split('"').skip(1).step_by(2) {
                members.push(piece.to_string());
            }
            if line.contains(']') {
                in_members = false;
            }
        }
    }
    let mut dirs = Vec::new();
    for m in members {
        if let Some(prefix) = m.strip_suffix("/*") {
            let base = root.join(prefix);
            let Ok(entries) = fs::read_dir(&base) else {
                continue;
            };
            let mut subdirs: Vec<PathBuf> = entries
                .flatten()
                .map(|e| e.path())
                .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
                .collect();
            subdirs.sort();
            dirs.extend(subdirs);
        } else {
            let p = root.join(&m);
            if p.join("Cargo.toml").is_file() {
                dirs.push(p);
            }
        }
    }
    Ok(dirs)
}

/// Recursively collects `.rs` files under `dir`, skipping build output,
/// VCS metadata and lint fixtures (which contain violations on purpose).
pub fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    collect(dir, &mut out);
    out.sort();
    out
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let path = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Workspace-relative unix-style path.
pub fn rel_unix(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
