//! Determinism-pass false-positive guard: lookalikes that must stay clean.
//!
//! Mentions of Instant::now() in comments and "SystemTime" in strings are
//! not clock reads; storing or differencing an `Instant` someone else read
//! is allowed; `HashMap` in test code is excluded; BTreeMap is the blessed
//! ordered replacement.

use std::collections::BTreeMap;
use std::time::Instant;

/// Records a timestamp captured by the caller (who owns the suppression).
pub fn record(at: Instant, log: &mut Vec<Instant>) {
    log.push(at);
}

pub fn label() -> &'static str {
    "SystemTime is only a string here"
}

pub fn ordered() -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    m.insert(1, 2);
    m
}

pub fn pause(clock: &mut u64) {
    // A virtual clock advance, not thread::sleep.
    *clock += 1;
}

#[cfg(test)]
mod tests {
    #[test]
    fn hashmap_ok_in_tests() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u64, 2u64);
        assert_eq!(m.len(), 1);
    }
}
