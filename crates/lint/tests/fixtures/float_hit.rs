//! Fixture: unsuppressed float usage in exact-arithmetic scope.

pub fn lossy(v: f64) -> f32 {
    let scale = 2.5;
    (v * scale) as f32
}
