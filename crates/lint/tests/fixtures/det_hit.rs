//! Determinism-pass positive fixture: every detector fires once or twice.

use std::collections::HashMap;
use std::collections::HashSet;
use std::time::SystemTime;

pub fn snapshot() -> u64 {
    let t0 = std::time::Instant::now();
    let wall = SystemTime::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    let mut m: HashMap<u64, u64> = HashMap::new();
    let s: HashSet<u64> = HashSet::new();
    m.insert(1, 2);
    (m.len() + s.len()) as u64
}
