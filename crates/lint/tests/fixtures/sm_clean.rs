//! State-machine-pass clean fixture: a miniature executor whose observed
//! transition graph exactly matches the declared phase spec, with every
//! state reachable.

pub enum ProcessorState {
    Bidding,
    AwaitBidVerdict,
    Allocating,
    AwaitAllocationVerdict,
    Processing,
    AwaitMeters,
    Payments,
    AwaitSettlement,
    Crashed,
    Defaulted,
    Halted,
    Done,
}

pub enum RefereeState {
    Bidding,
    Allocating,
    Processing,
    Payments,
    Settled,
}

pub struct Proc {
    pub state: ProcessorState,
}

fn advance_referee(s: &mut RefereeState, from: RefereeState, to: RefereeState) {
    let _ = from;
    *s = to;
}

pub fn round(p: &mut Proc, crash: bool, default: bool) {
    let mut ref_state = RefereeState::Bidding;
    let mut w = ProcessorState::Bidding;
    if w == ProcessorState::Bidding {
        w = ProcessorState::AwaitBidVerdict;
    }
    if crash {
        w = ProcessorState::Halted;
    }
    w = ProcessorState::Allocating;
    w = ProcessorState::AwaitAllocationVerdict;
    if crash {
        w = ProcessorState::Halted;
    }
    w = ProcessorState::Processing;
    w = ProcessorState::AwaitMeters;
    w = ProcessorState::Payments;
    w = ProcessorState::AwaitSettlement;
    w = ProcessorState::Done;
    if crash {
        w = ProcessorState::Crashed;
    }
    if default {
        w = ProcessorState::Defaulted;
    }
    p.state = w;

    advance_referee(&mut ref_state, RefereeState::Bidding, RefereeState::Allocating);
    advance_referee(&mut ref_state, RefereeState::Bidding, RefereeState::Settled);
    advance_referee(&mut ref_state, RefereeState::Allocating, RefereeState::Processing);
    advance_referee(&mut ref_state, RefereeState::Allocating, RefereeState::Settled);
    advance_referee(&mut ref_state, RefereeState::Processing, RefereeState::Payments);
    advance_referee(&mut ref_state, RefereeState::Payments, RefereeState::Settled);
}
