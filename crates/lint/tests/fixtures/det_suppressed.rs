//! Determinism-pass suppressed fixture: each hit carries a reasoned allow.

use std::collections::HashMap; // dls-lint: allow(determinism) -- fixture: order never observed

pub fn deadline_probe() -> bool {
    // dls-lint: allow(determinism) -- fixture: real deadline for the threaded oracle
    let t0 = std::time::Instant::now();
    let m: HashMap<u64, u64> = HashMap::new(); // dls-lint: allow(determinism) -- fixture: order never observed
    t0.elapsed().as_nanos() as u64 >= m.len() as u64
}
