//! Fixture: malformed and stale directives are violations themselves.

// dls-lint: allow(no-float-in-exact)
pub fn missing_reason(v: f64) -> u64 {
    v as u64
}

// dls-lint: allow(no-such-rule) -- the rule name is wrong
pub fn unknown_rule() {}

// dls-lint: allow(no-float-in-exact) -- nothing on the next line uses floats
pub fn stale() {}
