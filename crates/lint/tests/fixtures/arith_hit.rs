//! Unchecked-arith-pass positive fixture: every bare operator form fires
//! once, and each exemption class is exercised and stays quiet.

const LIMB_MASK: u64 = 0xffff_ffff;

pub fn bare(a: u64, b: u64, c1: u32, c2: u32, tbl: &[u64], i: usize, j: usize) -> u64 {
    let s = a + b;
    let d = s - b;
    let p = d * b;
    let q = p << b;
    let mut acc = q;
    acc += p;
    acc -= d;
    acc *= s;
    acc <<= b;

    // Exempt: discipline evidence on the line.
    let w = a.wrapping_add(b);
    let c = a.checked_mul(b);
    let wide = (c1 as u64) * (c2 as u64);
    // Exempt: literal or named-constant operand.
    let step = w + 1;
    let masked = LIMB_MASK * step;
    // Exempt: index expressions are bounds-checked usize bookkeeping.
    let cell = tbl[i + j];
    let _ = c;
    acc ^ masked ^ wide ^ cell
}
