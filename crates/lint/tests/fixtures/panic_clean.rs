//! Fixture: panic-free code plus constructs that merely *look* like
//! violations — test-only code, array types/literals, unwrap_or family,
//! attributes, macro brackets.

pub fn good(v: Option<usize>, xs: &[usize]) -> usize {
    let a = v.unwrap_or(0);
    let b = v.unwrap_or_else(|| 1);
    let c = xs.first().copied().unwrap_or_default();
    let arr: [usize; 2] = [a, b];
    let lit = vec![1usize, 2, 3];
    let [x, y] = arr;
    // "xs[0] and .unwrap() in a comment do not count"
    let s = "neither does panic! or xs[1] in a string";
    x + y + c + lit.len() + s.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_and_index() {
        let xs = vec![1, 2, 3];
        assert_eq!(xs[0], Some(1).unwrap());
    }
}
