//! Lexer adversarial fixture: raw strings with `#` hashes, raw C strings,
//! nested block comments, and tuple-index chains. None of the lookalike
//! violations or directives inside literals/comments may be honored.

pub fn tricky() -> usize {
    let a = r#"Instant::now() // dls-lint: allow(determinism) -- not a directive"#;
    let b = r##"HashMap<f64, f64> holds 2.5 "# quotes" inside"##;
    let c = cr#"SystemTime::now() and thread::sleep"#;
    let d = c"std::thread::sleep(dur)";
    let e = br#"0.5f32"#;
    /* outer /* nested Instant::now() 3.5f64 */ still a comment:
       dls-lint: allow(no-float-in-exact) -- also not a directive */
    let pair = ((0u64, 1u64), 2u64);
    let tuple_index = pair.0.1;
    a.len() + b.len() + c.to_bytes().len() + d.to_bytes().len() + e.len()
        + tuple_index as usize
        + pair.1 as usize
}
