//! Fixture: every float use carries a justified suppression.

/// Boundary conversion kept for display only.
// dls-lint: allow(no-float-in-exact) -- display-only boundary conversion
pub fn to_display(v: f64) -> String {
    format!("{v}")
}

pub fn unit() -> f64 { // dls-lint: allow(no-float-in-exact) -- exercises trailing (same-line) scope
    1.0 // dls-lint: allow(no-float-in-exact) -- exercises trailing scope on a literal
}
