//! State-machine-pass positive fixture: an undeclared enum variant, an
//! illegal phase skip, an illegal referee edge, and a wildcard referee
//! construction. The reachable spine is otherwise identical to the clean
//! fixture so reachability stays quiet.

pub enum ProcessorState {
    Bidding,
    AwaitBidVerdict,
    Allocating,
    AwaitAllocationVerdict,
    Processing,
    AwaitMeters,
    Payments,
    AwaitSettlement,
    Crashed,
    Defaulted,
    Halted,
    Done,
    Zombie,
}

pub enum RefereeState {
    Bidding,
    Allocating,
    Processing,
    Payments,
    Settled,
}

fn advance_referee(s: &mut RefereeState, from: RefereeState, to: RefereeState) {
    let _ = from;
    *s = to;
}

pub fn round(crash: bool) {
    let mut ref_state = RefereeState::Bidding;
    let mut w = ProcessorState::Bidding;
    if w == ProcessorState::Bidding {
        w = ProcessorState::AwaitBidVerdict;
    }
    if crash {
        w = ProcessorState::Halted;
    }
    w = ProcessorState::Allocating;
    w = ProcessorState::AwaitAllocationVerdict;
    if crash {
        w = ProcessorState::Halted;
    }
    w = ProcessorState::Processing;
    w = ProcessorState::Done;
    w = ProcessorState::AwaitMeters;
    w = ProcessorState::Payments;
    w = ProcessorState::AwaitSettlement;
    w = ProcessorState::Done;
    w = ProcessorState::Crashed;
    w = ProcessorState::Defaulted;
    let _ = w;

    advance_referee(&mut ref_state, RefereeState::Bidding, RefereeState::Allocating);
    advance_referee(&mut ref_state, RefereeState::Bidding, RefereeState::Settled);
    advance_referee(&mut ref_state, RefereeState::Allocating, RefereeState::Processing);
    advance_referee(&mut ref_state, RefereeState::Allocating, RefereeState::Settled);
    advance_referee(&mut ref_state, RefereeState::Processing, RefereeState::Payments);
    advance_referee(&mut ref_state, RefereeState::Payments, RefereeState::Settled);
    advance_referee(&mut ref_state, RefereeState::Settled, RefereeState::Bidding);
    let stale = RefereeState::Settled;
    let _ = stale;
}
