//! Unchecked-arith-pass suppressed fixture: bare operators carrying
//! proof-style allow directives.

pub fn bounded(hi: u64, lo: u64) -> u64 {
    let span = hi - lo; // dls-lint: allow(unchecked-arith) -- fixture: caller guarantees hi >= lo
    // dls-lint: allow(unchecked-arith) -- fixture: span < 2^32 so the square fits u64
    let area = span * span;
    area
}
