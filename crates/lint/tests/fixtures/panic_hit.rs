//! Fixture: every forbidden panic construct, one per line.

pub fn bad(v: Option<usize>, xs: &[usize]) -> usize {
    let a = v.unwrap();
    let b = v.expect("present");
    let c = xs[0];
    if a + b + c == 0 {
        panic!("zero");
    }
    unreachable!()
}
