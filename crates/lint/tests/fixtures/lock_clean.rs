//! Lock-order-pass clean fixture: consistent nesting order, sequential
//! re-acquisition of one lock (the double-checked cache pattern), and a
//! condvar wait holding exactly its own mutex.

use parking_lot::{Condvar, Mutex};

pub struct Net {
    pub stats: Mutex<u64>,
    pub bcast: Mutex<u64>,
}

pub fn record(net: &Net) {
    let mut s = net.stats.lock();
    *s += 1;
}

pub fn broadcast(net: &Net) {
    let _b = net.bcast.lock();
    record(net);
}

pub struct Cache {
    pub slots: Mutex<u64>,
}

pub fn cached(c: &Cache) -> u64 {
    {
        let s = c.slots.lock();
        if *s != 0 {
            return *s;
        }
    }
    let mut s = c.slots.lock();
    *s = 7;
    *s
}

pub struct Barrier {
    pub state: Mutex<u64>,
    pub cvar: Condvar,
}

pub fn wait(b: &Barrier) {
    let mut st = b.state.lock();
    while *st != 0 {
        b.cvar.wait(&mut st);
    }
}
