//! Fixture: float-looking text in comments, strings and ranges must not
//! trip the lexer. Mentioning f64 or 3.14 in a doc comment is fine.

/* block comment with f32, f64 and 2.718 inside */
pub fn clean() -> usize {
    let s = "f64 and 1.5 live in a string";
    let r = r#"raw string with f32 and 0.25"#;
    let range: Vec<usize> = (0..10).collect();
    let fmt = format!("{}{}", s, r);
    let sum: usize = range.iter().sum::<usize>() + 1_000;
    fmt.len() + sum + 1u64 as usize
}
