//! Lock-order-pass positive fixture: a direct two-lock cycle, a cycle
//! closed through a callee, and a condvar wait holding two locks.

use parking_lot::{Condvar, Mutex};

pub struct Net {
    pub stats: Mutex<u64>,
    pub bcast: Mutex<u64>,
}

pub fn ab(net: &Net) {
    let _s = net.stats.lock();
    let _b = net.bcast.lock();
}

pub fn ba(net: &Net) {
    let _b = net.bcast.lock();
    let _s = net.stats.lock();
}

pub struct Shared {
    pub queue: Mutex<u64>,
    pub table: Mutex<u64>,
    pub cvar: Condvar,
}

pub fn outer(sh: &Shared) {
    let _q = sh.queue.lock();
    helper(sh);
}

fn helper(sh: &Shared) {
    let _t = sh.table.lock();
    inner(sh);
}

fn inner(sh: &Shared) {
    let _q = sh.queue.lock();
}

pub fn park(sh: &Shared) {
    let mut q = sh.queue.lock();
    let _t = sh.table.lock();
    sh.cvar.wait(&mut q);
}
