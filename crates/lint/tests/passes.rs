//! Fixture-driven tests for the four cross-file analysis passes
//! (determinism, state-machine, lock-order, unchecked-arith), the lexer's
//! adversarial corners they depend on, and a self-check that the analyzer
//! source itself scans clean.

use dls_lint::analyze_sources;
use dls_lint::diag::Report;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"))
}

/// Analyzes one fixture as if it lived at `rel_path` in the workspace.
fn run(rel_path: &str, name: &str) -> Report {
    analyze_sources(vec![(rel_path.to_string(), fixture(name))])
}

fn rules(report: &Report) -> Vec<&'static str> {
    report.diagnostics.iter().map(|d| d.rule).collect()
}

// ----------------------------- determinism -----------------------------

#[test]
fn determinism_flags_clock_sleep_and_unordered_in_scope() {
    let report = run("crates/protocol/src/sched.rs", "det_hit.rs");
    let r = rules(&report);
    assert_eq!(r.len(), 10, "4 time + 6 unordered hits: {:#?}", report.diagnostics);
    assert!(r.iter().all(|r| *r == "determinism"));
    let msgs: Vec<&str> = report.diagnostics.iter().map(|d| d.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("Instant::now")));
    assert!(msgs.iter().any(|m| m.contains("SystemTime")));
    assert!(msgs.iter().any(|m| m.contains("thread::sleep")));
    assert!(msgs.iter().any(|m| m.contains("HashMap")));
    assert!(msgs.iter().any(|m| m.contains("HashSet")));
}

#[test]
fn determinism_bench_scope_guards_unordered_but_allows_real_time() {
    // Regression for the committed-output audit: bench report assembly must
    // stay iteration-order deterministic, but benches legitimately measure
    // real time, so only the unordered-collection half applies there.
    let report = run("crates/bench/src/throughput.rs", "det_hit.rs");
    let r = rules(&report);
    assert_eq!(r.len(), 6, "unordered hits only: {:#?}", report.diagnostics);
    assert!(report
        .diagnostics
        .iter()
        .all(|d| d.message.contains("HashMap") || d.message.contains("HashSet")));
}

#[test]
fn determinism_ignores_out_of_scope_files() {
    let report = run("crates/netsim/src/driver.rs", "det_hit.rs");
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
}

#[test]
fn determinism_suppressions_cover_and_count() {
    let report = run("crates/protocol/src/sched.rs", "det_suppressed.rs");
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    assert_eq!(report.suppressed, 4, "use-HashMap, Instant, decl+ctor HashMap");
}

#[test]
fn determinism_lookalikes_stay_clean() {
    let report = run("crates/protocol/src/executor.rs", "det_clean.rs");
    let non_sm: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "determinism")
        .collect();
    assert!(non_sm.is_empty(), "{non_sm:#?}");
}

// ---------------------------- state-machine ----------------------------

#[test]
fn state_machine_accepts_the_declared_graph() {
    let report = run("crates/protocol/src/executor.rs", "sm_clean.rs");
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    assert!(report.passes_run.contains(&"state-machine"));
}

#[test]
fn state_machine_flags_undeclared_variant_edge_and_wildcard() {
    let report = run("crates/protocol/src/executor.rs", "sm_bad.rs");
    let msgs: Vec<&str> = report.diagnostics.iter().map(|d| d.message.as_str()).collect();
    assert_eq!(msgs.len(), 4, "{msgs:#?}");
    assert!(msgs.iter().any(|m| m.contains("`ProcessorState::Zombie` is not in the declared")));
    assert!(msgs.iter().any(|m| m.contains("Processing -> Done")));
    assert!(msgs.iter().any(|m| m.contains("Settled -> Bidding")));
    assert!(msgs.iter().any(|m| m.contains("<statically unknown> -> Settled")));
    assert!(report.diagnostics.iter().all(|d| d.rule == "state-machine"));
}

#[test]
fn state_machine_suppressions_cover_and_count() {
    let report = run("crates/protocol/src/executor.rs", "sm_suppressed.rs");
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    assert_eq!(report.suppressed, 4);
}

#[test]
fn state_machine_flags_missing_enum() {
    // A file at the executor path without the declared enums is a spec
    // violation, not a silent skip.
    let report = analyze_sources(vec![(
        "crates/protocol/src/executor.rs".to_string(),
        "pub fn nothing_here() {}\n".to_string(),
    )]);
    let msgs: Vec<&str> = report.diagnostics.iter().map(|d| d.message.as_str()).collect();
    assert!(
        msgs.iter().any(|m| m.contains("`ProcessorState` not found")),
        "{msgs:#?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("`RefereeState` not found")),
        "{msgs:#?}"
    );
}

// ------------------------------ lock-order -----------------------------

#[test]
fn lock_order_flags_cycles_and_multi_hold_waits() {
    let report = run("crates/protocol/src/runtime.rs", "lock_cycle.rs");
    let msgs: Vec<&str> = report.diagnostics.iter().map(|d| d.message.as_str()).collect();
    assert_eq!(msgs.len(), 3, "{msgs:#?}");
    assert!(
        msgs.iter().any(|m| m.contains("lock-order cycle")
            && m.contains("bcast")
            && m.contains("stats")),
        "{msgs:#?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("lock-order cycle")
            && m.contains("queue")
            && m.contains("table")),
        "direct-call cycle via helper/inner: {msgs:#?}"
    );
    assert!(
        msgs.iter().any(|m| m.contains("condvar wait") && m.contains("2 locks")),
        "{msgs:#?}"
    );
}

#[test]
fn lock_order_accepts_ordered_nesting_and_reacquisition() {
    let report = run("crates/protocol/src/runtime.rs", "lock_clean.rs");
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    assert!(report.passes_run.contains(&"lock-order"));
}

// ---------------------------- unchecked-arith --------------------------

#[test]
fn arith_flags_every_bare_operator_form() {
    let report = run("crates/num/src/biguint.rs", "arith_hit.rs");
    let r = rules(&report);
    assert_eq!(r.len(), 8, "+ - * << += -= *= <<=: {:#?}", report.diagnostics);
    assert!(r.iter().all(|r| *r == "unchecked-arith"));
    for op in ["`+`", "`-`", "`*`", "`<<`", "`+=`", "`-=`", "`*=`", "`<<=`"] {
        assert!(
            report.diagnostics.iter().any(|d| d.message.contains(op)),
            "missing {op}"
        );
    }
}

#[test]
fn arith_ignores_out_of_scope_files() {
    let report = run("crates/mechanism/src/payments.rs", "arith_hit.rs");
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
}

#[test]
fn arith_suppressions_cover_and_count() {
    let report = run("crates/num/src/biguint.rs", "arith_suppressed.rs");
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    assert_eq!(report.suppressed, 2);
}

// ------------------------- lexer adversarial ---------------------------

#[test]
fn lexer_survives_raw_strings_nested_comments_and_tuple_indices() {
    // Scoped so every rule that could misfire (floats, determinism) is
    // active; all the lookalikes live inside literals/comments or are
    // tuple-index chains, so the file must scan clean — and the fake
    // directives inside literals must not count as suppressions.
    let report = run("crates/num/src/kernel.rs", "lexer_adversarial.rs");
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
    assert_eq!(report.suppressed, 0, "directives inside literals must not parse");
}

// ------------------------------ self-check -----------------------------

#[test]
fn analyzer_source_scans_clean() {
    let src_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("src");
    let mut inputs = Vec::new();
    let mut stack = vec![src_dir.clone()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir).expect("src dir readable") {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                let rel = format!(
                    "crates/lint/src/{}",
                    path.strip_prefix(&src_dir)
                        .expect("under src")
                        .display()
                );
                inputs.push((
                    rel.replace('\\', "/"),
                    std::fs::read_to_string(&path).expect("source readable"),
                ));
            }
        }
    }
    assert!(inputs.len() >= 10, "lint sources discovered: {}", inputs.len());
    let report = analyze_sources(inputs);
    assert!(report.diagnostics.is_empty(), "{:#?}", report.diagnostics);
}

// --------------------------- report plumbing ---------------------------

#[test]
fn pass_findings_carry_pass_names_in_json() {
    let report = run("crates/num/src/biguint.rs", "arith_hit.rs");
    let json = report.render_json();
    assert!(json.contains("\"pass\": \"unchecked-arith\""), "{json}");
    // biguint.rs is also in the determinism pass scope, so both report.
    assert!(
        json.contains("\"passes\": [\"determinism\", \"unchecked-arith\"]"),
        "{json}"
    );
}
