//! Fixture-driven tests for the `dls-lint` engine: one fixture per rule
//! aspect (positive hit, suppressed hit, false-positive guard), manifest
//! hygiene cases, and a golden test of the `--json` shape.

use dls_lint::diag::Report;
use dls_lint::manifest::{check_manifest, check_crate_root};
use dls_lint::rules::lint_source;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"))
}

/// Runs a fixture as if it lived at `rel_path` inside the workspace.
fn run(rel_path: &str, name: &str) -> (Vec<&'static str>, usize) {
    let src = fixture(name);
    let mut suppressed = 0usize;
    let diags = lint_source(rel_path, &src, &mut suppressed);
    (diags.iter().map(|d| d.rule).collect(), suppressed)
}

// ------------------------- no-float-in-exact -------------------------

#[test]
fn float_rule_fires_on_types_and_literals() {
    let (rules, suppressed) = run("crates/num/src/fixture.rs", "float_hit.rs");
    assert_eq!(suppressed, 0);
    assert_eq!(rules.len(), 4, "f64, f32 x2, literal 2.5: {rules:?}");
    assert!(rules.iter().all(|r| *r == "no-float-in-exact"));
}

#[test]
fn float_rule_only_in_scoped_paths() {
    let (rules, _) = run("crates/netsim/src/fixture.rs", "float_hit.rs");
    assert!(rules.is_empty(), "netsim may use floats: {rules:?}");
}

#[test]
fn float_suppressions_cover_and_count() {
    let (rules, suppressed) = run("crates/num/src/fixture.rs", "float_suppressed.rs");
    assert!(rules.is_empty(), "all hits suppressed: {rules:?}");
    assert_eq!(suppressed, 3, "f64 (next-line), f64 + 1.0 (trailing)");
}

#[test]
fn float_rule_ignores_comments_strings_ranges() {
    let (rules, _) = run("crates/num/src/fixture.rs", "float_false_positives.rs");
    assert!(rules.is_empty(), "{rules:?}");
}

// ------------------------- no-panic-in-protocol -------------------------

#[test]
fn panic_rule_fires_on_each_construct() {
    let (rules, _) = run("crates/protocol/src/runtime.rs", "panic_hit.rs");
    assert_eq!(
        rules.len(),
        5,
        "unwrap, expect, indexing, panic!, unreachable!: {rules:?}"
    );
    assert!(rules.iter().all(|r| *r == "no-panic-in-protocol"));
}

#[test]
fn panic_rule_skips_tests_and_lookalikes() {
    let (rules, _) = run("crates/protocol/src/runtime.rs", "panic_clean.rs");
    assert!(rules.is_empty(), "{rules:?}");
}

#[test]
fn panic_rule_only_in_protocol_hot_paths() {
    let (rules, _) = run("crates/protocol/src/blocks.rs", "panic_hit.rs");
    assert!(rules.is_empty(), "blocks.rs is not a hot-path file: {rules:?}");
}

// ------------------------- suppression hygiene -------------------------

#[test]
fn malformed_and_stale_directives_are_violations() {
    let src = fixture("suppression_errors.rs");
    let mut suppressed = 0usize;
    let diags = lint_source("crates/num/src/fixture.rs", &src, &mut suppressed);
    let rules: Vec<&str> = diags.iter().map(|d| d.rule).collect();
    assert!(
        rules.contains(&"bad-suppression"),
        "missing-reason + unknown-rule: {rules:?}"
    );
    assert!(rules.contains(&"unused-suppression"), "{rules:?}");
    // The directive without a reason does NOT suppress its target.
    assert!(rules.contains(&"no-float-in-exact"), "{rules:?}");
    assert_eq!(
        rules.iter().filter(|r| **r == "bad-suppression").count(),
        2
    );
}

// ------------------------- crate-hygiene -------------------------

#[test]
fn manifest_flags_non_workspace_deps() {
    let toml = "[package]\nname = \"x\"\n\n[dependencies]\nrand = \"0.8\"\n\
                good = { workspace = true }\ndotted.workspace = true\n\n[lints]\nworkspace = true\n";
    let mut suppressed = 0usize;
    let diags = check_manifest("crates/x/Cargo.toml", toml, &mut suppressed);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("`rand`"));
}

#[test]
fn manifest_requires_lints_inheritance() {
    let toml = "[package]\nname = \"x\"\n\n[dependencies]\n";
    let mut suppressed = 0usize;
    let diags = check_manifest("crates/x/Cargo.toml", toml, &mut suppressed);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("workspace lints"));
}

#[test]
fn manifest_suppression_via_toml_comment() {
    let toml = "[package]\nname = \"x\"\n\n[dependencies]\n\
                # dls-lint: allow(crate-hygiene) -- pinned on purpose for the fixture\n\
                rand = \"0.8\"\n\n[lints]\nworkspace = true\n";
    let mut suppressed = 0usize;
    let diags = check_manifest("crates/x/Cargo.toml", toml, &mut suppressed);
    assert!(diags.is_empty(), "{diags:?}");
    assert_eq!(suppressed, 1);
}

#[test]
fn crate_root_attribute_check() {
    let good = "//! Docs.\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n";
    let mut s = 0usize;
    assert!(check_crate_root("crates/x/src/lib.rs", good, &mut s).is_empty());

    let bad = "//! Docs.\npub fn f() {}\n";
    let diags = check_crate_root("crates/x/src/lib.rs", bad, &mut s);
    assert_eq!(diags.len(), 2, "{diags:?}");

    let cfg_attr =
        "//! Docs.\n#![forbid(unsafe_code)]\n#![cfg_attr(not(test), warn(missing_docs))]\n";
    assert!(check_crate_root("crates/x/src/lib.rs", cfg_attr, &mut s).is_empty());
}

// ------------------------- JSON golden -------------------------

#[test]
fn json_report_shape_is_stable() {
    let src = fixture("float_hit.rs");
    let mut report = Report::default();
    let mut suppressed = 0usize;
    report
        .diagnostics
        .extend(lint_source("crates/num/src/fixture.rs", &src, &mut suppressed));
    report.files_scanned = 1;
    report.suppressed = suppressed;
    report.sort();
    let json = report.render_json();

    // Structural golden: exact keys, deterministic ordering.
    assert!(json.starts_with("{\n  \"version\": 2,\n  \"diagnostics\": ["));
    for key in [
        "\"rule\": \"no-float-in-exact\"",
        "\"pass\": \"core\"",
        "\"file\": \"crates/num/src/fixture.rs\"",
        "\"line\": ",
        "\"col\": ",
        "\"message\": ",
        "\"snippet\": ",
        "\"summary\": {\"violations\": 4, \"suppressed\": 0, \"files_scanned\": 1, \"manifests_checked\": 0, \"passes\": []}",
    ] {
        assert!(json.contains(key), "missing {key} in:\n{json}");
    }
    // Diagnostics are sorted by position.
    let lines: Vec<usize> = json
        .match_indices("\"line\": ")
        .map(|(i, _)| {
            json[i + 8..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap_or(0)
        })
        .collect();
    let mut sorted = lines.clone();
    sorted.sort_unstable();
    assert_eq!(lines, sorted);
}

// ------------------------- end-to-end over this workspace ----------------

#[test]
fn workspace_scan_runs_and_reports_shape() {
    // The real gate lives in tests/tests/lint_gate.rs; here we only assert
    // the scanner walks the tree it is pointed at without erroring.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root");
    let report = dls_lint::scan_workspace(root).expect("scan succeeds");
    assert!(report.files_scanned > 50, "walks the member crates");
    assert!(report.manifests_checked >= 10);
}
