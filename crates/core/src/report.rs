//! Human-readable session reports.
//!
//! Renders a [`SessionOutcome`] as a plain-text
//! briefing: status, per-processor table (bid, blocks, payment split,
//! fines/rewards, utility), message accounting, and — when processing ran
//! — the realized Gantt chart.

use crate::SessionOutcome;
use crate::SessionStatus;
use std::fmt::Write as _;

/// Renders a full plain-text report for `outcome`.
pub fn render(outcome: &SessionOutcome) -> String {
    let mut s = String::new();
    let status = match &outcome.status {
        SessionStatus::Completed => "completed".to_string(),
        SessionStatus::CompletedWithFines => "completed with fines".to_string(),
        SessionStatus::Aborted { phase } => format!("aborted during {phase:?}"),
    };
    let _ = writeln!(s, "session: {status}   fine F = {:.4}", outcome.fine);
    let _ = writeln!(
        s,
        "messages: {} ({} bytes)   ledger conservation error: {:.1e}",
        outcome.messages.total_messages(),
        outcome.messages.total_bytes(),
        outcome.ledger.conservation_error()
    );
    let _ = writeln!(
        s,
        "{:<5} {:<22} {:>8} {:>7} {:>9} {:>9} {:>8} {:>8} {:>9}",
        "proc", "behaviour", "bid", "blocks", "comp", "bonus", "fined", "reward", "utility"
    );
    for (i, p) in outcome.processors.iter().enumerate() {
        let (comp, bonus) = p
            .payment
            .map(|q| (format!("{:.4}", q.compensation), format!("{:.4}", q.bonus)))
            .unwrap_or_else(|| ("-".into(), "-".into()));
        let _ = writeln!(
            s,
            "{:<5} {:<22} {:>8} {:>7} {:>9} {:>9} {:>8.3} {:>8.3} {:>9.4}",
            format!("P{}", i + 1),
            p.config.behavior.to_string(),
            p.bid.map(|b| format!("{b:.3}")).unwrap_or_else(|| "-".into()),
            p.blocks_granted,
            comp,
            bonus,
            p.fined,
            p.rewarded,
            p.utility
        );
    }
    if let (Some(tl), Some(mk)) = (&outcome.timeline, outcome.makespan) {
        let _ = writeln!(s, "realized makespan: {mk:.4}");
        let _ = write!(s, "{}", crate::netsim::gantt::render_default(tl));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Behavior, Session};

    #[test]
    fn report_for_completed_session() {
        let out = Session::ncp_fe(0.2)
            .worker(1.0)
            .worker(2.0)
            .worker(3.0)
            .seed(1)
            .run()
            .unwrap();
        let r = render(&out);
        assert!(r.contains("session: completed"));
        assert!(r.contains("P1"));
        assert!(r.contains("P3"));
        assert!(r.contains("realized makespan"));
        assert!(r.contains("Comm"));
        // One header + 3 processors at minimum.
        assert!(r.lines().count() >= 8);
    }

    #[test]
    fn report_for_aborted_session() {
        let out = Session::ncp_fe(0.2)
            .worker(1.0)
            .worker_with(2.0, Behavior::EquivocateBids { factor: 2.0 })
            .worker(3.0)
            .seed(1)
            .run()
            .unwrap();
        let r = render(&out);
        assert!(r.contains("aborted during Bidding"));
        assert!(!r.contains("realized makespan"), "no timeline after abort");
        assert!(r.contains("equivocate"));
    }
}
