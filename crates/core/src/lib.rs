//! # `dls` — strategyproof divisible-load scheduling for bus networks
//!
//! A faithful, from-scratch reproduction of Carroll & Grosu,
//! *A Strategyproof Mechanism for Scheduling Divisible Loads in Bus
//! Networks without Control Processor* (IPPS 2006), as a production-style
//! Rust workspace. This crate is the public facade: it re-exports the
//! substrate crates and offers a compact [`Session`] API for the common
//! case — "run a DLS-BL-NCP session with these processors and tell me what
//! happened".
//!
//! ## The stack
//!
//! | Layer | Crate | Paper section |
//! |-------|-------|---------------|
//! | [`num`] | exact integers/rationals | (substrate) |
//! | [`crypto`] | SHA-256, RSA-style signatures, PKI | §4 assumptions |
//! | [`dlt`] | bus models + optimal allocations | §2 |
//! | [`mechanism`] | DLS-BL compensation-and-bonus payments | §3 |
//! | [`netsim`] | discrete-event bus executor + Gantt | Figures 1–3 |
//! | [`protocol`] | DLS-BL-NCP with referee, fines, finking | §4–5 |
//!
//! ## Quickstart
//!
//! ```
//! use dls::{Behavior, Session};
//!
//! let outcome = Session::ncp_fe(0.2)
//!     .worker(1.0)
//!     .worker(2.0)
//!     .worker_with(3.0, Behavior::Misreport { factor: 1.5 })
//!     .seed(42)
//!     .run()
//!     .unwrap();
//!
//! // Misreporting is legal — the session completes without fines…
//! assert!(outcome.fined_processors().is_empty());
//! // …the mechanism simply makes it unprofitable (Theorem 5.2).
//! println!("P3 utility: {}", outcome.utility(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

pub use dls_crypto as crypto;
pub use dls_dlt as dlt;
pub use dls_mechanism as mechanism;
pub use dls_netsim as netsim;
pub use dls_num as num;
pub use dls_protocol as protocol;

pub use dls_dlt::SystemModel;
pub use dls_mechanism::AgentSpec;
pub use dls_protocol::config::{Behavior, ConfigError, ProcessorConfig};
pub use dls_protocol::runtime::{RunError, SessionOutcome, SessionStatus};

use dls_protocol::config::SessionConfig;

/// Errors from the facade [`Session`].
#[derive(Debug)]
pub enum SessionError {
    /// Invalid configuration.
    Config(ConfigError),
    /// Failure while executing the session.
    Run(RunError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Config(e) => write!(f, "{e}"),
            SessionError::Run(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Fluent builder for a DLS-BL-NCP session.
///
/// A thin veneer over [`protocol::config::SessionConfig`]; use that type
/// directly for full control (block counts, key sizes, explicit fines).
#[derive(Debug, Clone)]
pub struct Session {
    model: SystemModel,
    z: f64,
    processors: Vec<ProcessorConfig>,
    fine: Option<f64>,
    blocks: Option<usize>,
    seed: u64,
}

impl Session {
    /// A session on a bus without control processor where the originator
    /// has a front end (`P_1` holds the load).
    pub fn ncp_fe(z: f64) -> Self {
        Session::new(SystemModel::NcpFe, z)
    }

    /// A session where the originator has no front end (`P_m` holds the
    /// load).
    pub fn ncp_nfe(z: f64) -> Self {
        Session::new(SystemModel::NcpNfe, z)
    }

    /// A session on an explicit model.
    pub fn new(model: SystemModel, z: f64) -> Self {
        Session {
            model,
            z,
            processors: Vec::new(),
            fine: None,
            blocks: None,
            seed: 0,
        }
    }

    /// Adds a truthful, compliant processor with true rate `w`.
    pub fn worker(mut self, w: f64) -> Self {
        self.processors
            .push(ProcessorConfig::new(w, Behavior::Compliant));
        self
    }

    /// Adds a processor with an explicit strategy.
    pub fn worker_with(mut self, w: f64, behavior: Behavior) -> Self {
        self.processors.push(ProcessorConfig::new(w, behavior));
        self
    }

    /// Overrides the fine `F` (must satisfy `F ≥ Σ α_j·w_j`).
    pub fn fine(mut self, fine: f64) -> Self {
        self.fine = Some(fine);
        self
    }

    /// Overrides the block count the user splits the load into.
    pub fn blocks(mut self, blocks: usize) -> Self {
        self.blocks = Some(blocks);
        self
    }

    /// Sets the deterministic seed (key generation).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the underlying [`SessionConfig`] without running it.
    pub fn config(&self) -> Result<SessionConfig, ConfigError> {
        let mut b = SessionConfig::builder(self.model, self.z)
            .processors(self.processors.iter().copied())
            .seed(self.seed);
        if let Some(f) = self.fine {
            b = b.fine(f);
        }
        if let Some(n) = self.blocks {
            b = b.blocks(n);
        }
        b.build()
    }

    /// Runs the full DLS-BL-NCP protocol and returns the outcome.
    pub fn run(&self) -> Result<SessionOutcome, SessionError> {
        let cfg = self.config().map_err(SessionError::Config)?;
        dls_protocol::runtime::run_session(&cfg).map_err(SessionError::Run)
    }
}

/// One-call helpers for the DLT layer, for users who only want schedules.
pub mod quick {
    use super::SystemModel;
    use dls_dlt::{optimal, BusParams, ParamError};

    /// Optimal load fractions for processors with rates `w` on a bus with
    /// communication rate `z`.
    pub fn allocate(model: SystemModel, z: f64, w: &[f64]) -> Result<Vec<f64>, ParamError> {
        let params = BusParams::new(z, w.to_vec())?;
        Ok(optimal::fractions(model, &params))
    }

    /// Optimal makespan for the same inputs.
    pub fn makespan(model: SystemModel, z: f64, w: &[f64]) -> Result<f64, ParamError> {
        let params = BusParams::new(z, w.to_vec())?;
        Ok(optimal::optimal_makespan(model, &params))
    }

    /// ASCII Gantt chart of the optimal schedule (Figures 1–3 style).
    pub fn gantt(model: SystemModel, z: f64, w: &[f64]) -> Result<String, ParamError> {
        let params = BusParams::new(z, w.to_vec())?;
        let alloc = optimal::fractions(model, &params);
        let tl = dls_netsim::simulate(&dls_netsim::SessionSpec::new(model, params, alloc));
        Ok(dls_netsim::gantt::render_default(&tl))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_allocate_matches_dlt() {
        let a = quick::allocate(SystemModel::NcpFe, 0.2, &[1.0, 2.0]).unwrap();
        assert_eq!(a.len(), 2);
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(quick::allocate(SystemModel::Cp, 0.2, &[]).is_err());
    }

    #[test]
    fn quick_gantt_renders() {
        let g = quick::gantt(SystemModel::NcpNfe, 0.3, &[1.0, 2.0, 3.0]).unwrap();
        assert!(g.contains("P1"));
        assert!(g.contains("Comm"));
    }

    #[test]
    fn quick_makespan_sane() {
        let t = quick::makespan(SystemModel::NcpFe, 0.2, &[1.0, 2.0, 3.0]).unwrap();
        assert!(t > 0.0 && t < 1.0); // three processors beat the fastest solo (1.0)
    }

    #[test]
    fn session_builder_produces_valid_config() {
        let cfg = Session::ncp_fe(0.2)
            .worker(1.0)
            .worker(2.0)
            .blocks(30)
            .seed(5)
            .config()
            .unwrap();
        assert_eq!(cfg.m(), 2);
        assert_eq!(cfg.blocks, 30);
    }

    #[test]
    fn session_builder_propagates_config_errors() {
        let err = Session::ncp_fe(0.2).worker(1.0).config().unwrap_err();
        assert!(matches!(err, ConfigError::TooFewProcessors));
    }
}
