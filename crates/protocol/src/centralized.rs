//! Centralized DLS-BL baseline: the bus **with** a trusted control
//! processor (`P_0`), i.e. the system of the authors' earlier ISPDC 2005
//! paper that DLS-BL-NCP removes the trust assumption from.
//!
//! `P_0` collects the signed bids, computes the allocation and the
//! payments itself, and distributes load and money. No referee, no
//! finking, no payment-vector cross-checking — and therefore only **Θ(m)**
//! messages instead of Θ(m²). Running both flavours on the same market is
//! experiment E12 ("the cost of decentralization").

use crate::blocks::{integer_allocation, DataSet, USER_IDENTITY};
use crate::config::{ProcessorConfig, SessionConfig};
use crate::messages::{BidBody, GrantBody, Msg, PaymentEntry, PaymentVectorBody};
use crate::runtime::{MessageStats, RunError};
use dls_crypto::pki::{KeyPair, Registry};
use dls_dlt::{BusParams, SystemModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Outcome of a centralized (trusted `P_0`) DLS-BL session.
#[derive(Debug, Clone)]
pub struct CentralizedOutcome {
    /// Allocation computed by `P_0`.
    pub alloc: Vec<f64>,
    /// Blocks granted per processor.
    pub blocks_granted: Vec<usize>,
    /// Payments computed by `P_0`.
    pub payments: Vec<PaymentEntry>,
    /// Per-agent utilities (identical in expectation to the distributed
    /// protocol on compliant markets).
    pub utilities: Vec<f64>,
    /// Message accounting — Θ(m), the baseline for Theorem 5.4.
    pub messages: MessageStats,
}

/// Runs the DLS-BL mechanism with a trusted control processor on the same
/// configuration format as [`crate::runtime::run_session`].
///
/// Only the CP system model applies; the configuration's behaviours are
/// honoured for bids and execution speed (protocol offences like
/// equivocation are impossible against a trusted center and are treated as
/// plain truthful participation).
pub fn run_centralized(cfg: &SessionConfig) -> Result<CentralizedOutcome, RunError> {
    if cfg.model != SystemModel::Cp {
        return Err(RunError::UnsupportedModel);
    }
    let m = cfg.m();
    let mut stats = MessageStats::default();

    // PKI setup: processors and P_0's user key.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let keys: Vec<KeyPair> = (0..m)
        .map(|i| {
            KeyPair::generate(format!("P{}", i + 1), cfg.key_bits, &mut rng)
                .map_err(|e| RunError::Crypto(e.to_string()))
        })
        .collect::<Result<_, _>>()?;
    let user = KeyPair::generate(USER_IDENTITY, cfg.key_bits, &mut rng)
        .map_err(|e| RunError::Crypto(e.to_string()))?;
    let registry = Registry::from_keypairs(keys.iter().chain(std::iter::once(&user)));
    let dataset = DataSet::prepare(&user, cfg.blocks, 32)
        .map_err(|e| RunError::Crypto(e.to_string()))?;

    // 1) Bids: each processor sends ONE signed bid to P_0 (m messages).
    let mut bids = Vec::with_capacity(m);
    for (i, p) in cfg.processors.iter().enumerate() {
        let bid = p.bid().unwrap_or(p.true_w);
        let msg = Msg::Bid(
            keys[i]
                .sign(BidBody { processor: i, bid })
                .map_err(|e| RunError::Crypto(e.to_string()))?,
        );
        record(&mut stats, &msg);
        // P_0 verifies before use.
        if let Msg::Bid(signed) = &msg {
            let body = signed
                .verify(&registry)
                .map_err(|e| RunError::Crypto(e.to_string()))?;
            bids.push(body.bid);
        }
    }

    // 2) P_0 computes the allocation and distributes blocks (m messages).
    let params = BusParams::new(cfg.z, bids.clone()).expect("validated bids");
    let alloc = dls_dlt::optimal::fractions(SystemModel::Cp, &params);
    let counts = integer_allocation(&alloc, cfg.blocks);
    let grants = dataset.split(&counts);
    for (i, blocks) in grants.iter().enumerate() {
        let msg = Msg::Grant(
            user.sign(GrantBody {
                to: i,
                blocks: blocks.clone(),
            })
            .map_err(|e| RunError::Crypto(e.to_string()))?,
        );
        record(&mut stats, &msg);
    }

    // 3) Execution: P_0 observes each processor's time (the verification
    //    step); one meter report per processor (m messages).
    let observed: Vec<f64> = cfg.processors.iter().map(ProcessorConfig::exec_w).collect();
    for (i, (&phi_rate, &a)) in observed.iter().zip(&alloc).enumerate() {
        record(
            &mut stats,
            &Msg::Meter {
                of: i,
                phi: a * phi_rate,
            },
        );
    }

    // 4) P_0 computes payments and sends each processor ITS entry — O(1)
    //    per processor, m messages total (the distributed protocol needs a
    //    full m-entry vector from every processor instead).
    let payments: Vec<PaymentEntry> =
        dls_mechanism::compute_payments(SystemModel::Cp, &params, &alloc, &observed)
            .into_iter()
            .map(|p| PaymentEntry {
                compensation: p.compensation,
                bonus: p.bonus,
            })
            .collect();
    for (i, entry) in payments.iter().enumerate() {
        let msg = Msg::PaymentVector(
            keys[i] // modelled as a single-entry signed receipt
                .sign(PaymentVectorBody {
                    processor: i,
                    q: vec![*entry],
                })
                .map_err(|e| RunError::Crypto(e.to_string()))?,
        );
        record(&mut stats, &msg);
    }

    let utilities: Vec<f64> = (0..m)
        .map(|i| payments[i].total() - alloc[i] * observed[i])
        .collect();

    Ok(CentralizedOutcome {
        alloc,
        blocks_granted: counts,
        payments,
        utilities,
        messages: stats,
    })
}

fn record(stats: &mut MessageStats, msg: &Msg) {
    stats.record_public(msg.category(), 1, msg.wire_size() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Behavior;

    fn cfg(m: usize) -> SessionConfig {
        SessionConfig::builder(SystemModel::Cp, 0.2)
            .processors((0..m).map(|i| {
                ProcessorConfig::new(1.0 + i as f64 * 0.5, Behavior::Compliant)
            }))
            .seed(4)
            .blocks(3 * m)
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_ncp_models() {
        let bad = SessionConfig::builder(SystemModel::NcpFe, 0.2)
            .processors([1.0, 2.0].map(|w| ProcessorConfig::new(w, Behavior::Compliant)))
            .build()
            .unwrap();
        assert!(matches!(
            run_centralized(&bad),
            Err(RunError::UnsupportedModel)
        ));
    }

    #[test]
    fn produces_optimal_allocation_and_positive_utilities() {
        let out = run_centralized(&cfg(4)).unwrap();
        assert!((out.alloc.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(out.blocks_granted.iter().sum::<usize>(), 12);
        // CP has no structural originator: all truthful agents gain.
        assert!(out.utilities.iter().all(|&u| u >= -1e-9));
    }

    #[test]
    fn message_count_is_linear() {
        for m in [2usize, 4, 8] {
            let out = run_centralized(&cfg(m)).unwrap();
            // 4 message classes × m messages each.
            assert_eq!(out.messages.total_messages(), 4 * m as u64, "m={m}");
        }
    }

    #[test]
    fn payments_match_trusted_market() {
        use dls_mechanism::{AgentSpec, Market};
        let out = run_centralized(&cfg(3)).unwrap();
        let market = Market::new(
            SystemModel::Cp,
            0.2,
            (0..3)
                .map(|i| AgentSpec::truthful(1.0 + i as f64 * 0.5))
                .collect(),
        )
        .unwrap()
        .run();
        for i in 0..3 {
            assert!((out.payments[i].total() - market.payments[i].total()).abs() < 1e-12);
            assert!((out.utilities[i] - market.utility(i)).abs() < 1e-12);
        }
    }
}
