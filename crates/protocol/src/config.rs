//! Session and per-processor configuration, including the catalogue of
//! deviant behaviours used by the compliance experiments (E8/E9) and the
//! orthogonal liveness-fault plans used by the chaos suite.

use crate::fault::FaultPlan;
use dls_dlt::{BusParams, ParamError, SystemModel};
use std::fmt;

/// Default per-phase wall-clock budget (milliseconds): generous enough
/// that signing, block splitting and honest stragglers never trip it,
/// small enough that a crashed participant is detected promptly.
pub const DEFAULT_PHASE_BUDGET_MS: u64 = 5_000;

/// How the session accounts for signature-verification work.
///
/// Verification is deterministic (hash-then-modexp over fixed bytes under a
/// fixed registry), so both profiles produce bit-identical session outcomes;
/// they differ only in how many modexps they spend getting there. The
/// per-receiver profile exists as an honest measurement baseline for the
/// sessions benchmark, re-verifying every envelope at every receiver the way
/// the pre-cache runtime did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CryptoProfile {
    /// Verify each distinct envelope once per session and share the verdict
    /// across receivers through the session's verification cache.
    #[default]
    Amortized,
    /// Verify every envelope independently at every receiver with the plain
    /// `pow_mod` path — the pre-Montgomery, pre-cache cost model.
    PerReceiverNaive,
}

impl fmt::Display for CryptoProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoProfile::Amortized => write!(f, "amortized"),
            CryptoProfile::PerReceiverNaive => write!(f, "per-receiver"),
        }
    }
}

/// How a strategic processor plays the protocol. Every variant other than
/// [`Behavior::Compliant`] models one of the offences enumerated at the end
/// of §4 (or a strategic-but-legal manipulation of the §3 mechanism).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Behavior {
    /// Truthful bid, full-speed execution, honest protocol execution.
    Compliant,
    /// Bids `factor·w` instead of `w` (legal but strategically useless by
    /// Theorem 5.2). Executes at true speed.
    Misreport {
        /// Multiplier applied to the true rate (`> 1` feigns slowness).
        factor: f64,
    },
    /// Bids truthfully but executes `factor ≥ 1` slower than bid — the case
    /// the *verification* part of the mechanism punishes via the bonus.
    Slack {
        /// Slow-down multiplier (`≥ 1`).
        factor: f64,
    },
    /// Offence (i): broadcasts two different authenticated bids
    /// (`w` and `factor·w`) during the Bidding phase.
    EquivocateBids {
        /// Multiplier for the second, contradictory bid.
        factor: f64,
    },
    /// Offence (ii), under-allocation: as the load originator, withholds
    /// `shortfall` blocks from the victim processor's grant.
    ShortAllocate {
        /// Index of the victim processor.
        victim: usize,
        /// Number of blocks withheld.
        shortfall: usize,
    },
    /// Offence (ii), over-allocation: as the load originator, pads the
    /// victim's grant with `excess` duplicated blocks (caught by comparing
    /// with the user-signed original data set).
    OverAllocate {
        /// Index of the victim processor.
        victim: usize,
        /// Number of extra blocks.
        excess: usize,
    },
    /// Offence (iii): submits a payment vector with entry `target` scaled
    /// by `factor` during the Computing Payments phase.
    CorruptPayments {
        /// Whose payment to inflate/deflate.
        target: usize,
        /// Multiplier applied to that entry.
        factor: f64,
    },
    /// Offence (v): reports a perfectly correct load grant as wrong
    /// (an unsubstantiated claim — the *accuser* is fined).
    FalselyAccuseAllocation,
    /// Broadcasts its own valid bid **plus** a bid forged under another
    /// processor's identity (random signature bytes). The paper's rule —
    /// "if the message fails verification, it is discarded" — means the
    /// forgery is silently dropped and must neither disrupt the session
    /// nor frame the impersonated processor (Lemma 5.2).
    ForgeExtraBid {
        /// Identity to impersonate.
        impersonate: usize,
    },
    /// Does not broadcast a bid; sits the session out with utility 0.
    NonParticipant,
}

impl Behavior {
    /// `true` for behaviours the referee should end up fining.
    pub fn is_finable_offence(&self) -> bool {
        matches!(
            self,
            Behavior::EquivocateBids { .. }
                | Behavior::ShortAllocate { .. }
                | Behavior::OverAllocate { .. }
                | Behavior::CorruptPayments { .. }
                | Behavior::FalselyAccuseAllocation
        )
    }
}

impl fmt::Display for Behavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Behavior::Compliant => write!(f, "compliant"),
            Behavior::Misreport { factor } => write!(f, "misreport x{factor}"),
            Behavior::Slack { factor } => write!(f, "slack x{factor}"),
            Behavior::EquivocateBids { factor } => write!(f, "equivocate x{factor}"),
            Behavior::ShortAllocate { victim, shortfall } => {
                write!(f, "short-allocate P{} by {shortfall}", victim + 1)
            }
            Behavior::OverAllocate { victim, excess } => {
                write!(f, "over-allocate P{} by {excess}", victim + 1)
            }
            Behavior::CorruptPayments { target, factor } => {
                write!(f, "corrupt Q[{}] x{factor}", target + 1)
            }
            Behavior::FalselyAccuseAllocation => write!(f, "false accusation"),
            Behavior::ForgeExtraBid { impersonate } => {
                write!(f, "forge bid as P{}", impersonate + 1)
            }
            Behavior::NonParticipant => write!(f, "non-participant"),
        }
    }
}

/// One processor: its private type, its strategy, and its liveness-fault
/// plan (orthogonal axes — a processor can be strategically compliant yet
/// crash, or deviant yet perfectly live).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessorConfig {
    /// True unit-processing time `w_i`.
    pub true_w: f64,
    /// Strategy.
    pub behavior: Behavior,
    /// Liveness-fault injection plan ([`FaultPlan::None`] for a live
    /// processor).
    pub fault: FaultPlan,
}

impl ProcessorConfig {
    /// Convenience constructor (no fault).
    pub fn new(true_w: f64, behavior: Behavior) -> Self {
        ProcessorConfig {
            true_w,
            behavior,
            fault: FaultPlan::None,
        }
    }

    /// Attaches a liveness-fault plan.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// The bid this processor will (first) broadcast, or `None` if it does
    /// not participate.
    pub fn bid(&self) -> Option<f64> {
        match self.behavior {
            Behavior::NonParticipant => None,
            Behavior::Misreport { factor } => Some(self.true_w * factor),
            Behavior::EquivocateBids { .. } => Some(self.true_w),
            _ => Some(self.true_w),
        }
    }

    /// The rate the processor actually executes at (`w̃_i ≥ w_i`).
    pub fn exec_w(&self) -> f64 {
        match self.behavior {
            Behavior::Slack { factor } => self.true_w * factor.max(1.0),
            _ => self.true_w,
        }
    }
}

/// Errors building a [`SessionConfig`].
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Fewer than two processors (the NCP protocol needs peers to monitor
    /// one another).
    TooFewProcessors,
    /// Underlying DLT parameter problem.
    Params(ParamError),
    /// The fine does not satisfy the deterrence bound `F ≥ Σ_j α_j·w_j`
    /// (paper, Bidding phase). The bound is evaluated at the bids.
    FineTooSmall {
        /// Configured fine.
        fine: f64,
        /// Minimum admissible fine.
        bound: f64,
    },
    /// A behaviour references a processor index that does not exist.
    BadIndex {
        /// Offending processor.
        processor: usize,
    },
    /// Invalid strategy parameter (NaN, non-positive factor, slack < 1…).
    BadStrategy {
        /// Offending processor.
        processor: usize,
    },
    /// Zero blocks configured.
    NoBlocks,
    /// The per-phase wall-clock budget is zero — every barrier wait
    /// would instantly expire.
    ZeroPhaseBudget,
    /// A [`FaultPlan::DelayAt`] sleeps past the phase budget, which
    /// makes the "tolerated straggler" plan indistinguishable from a
    /// crash; configure a crash if that is the intent.
    DelayExceedsBudget {
        /// Offending processor.
        processor: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooFewProcessors => {
                write!(f, "DLS-BL-NCP requires at least 2 processors")
            }
            ConfigError::Params(e) => write!(f, "{e}"),
            ConfigError::FineTooSmall { fine, bound } => write!(
                f,
                "fine {fine} violates the deterrence bound F >= sum(alpha_j w_j) = {bound}"
            ),
            ConfigError::BadIndex { processor } => {
                write!(f, "processor {processor}: behaviour references missing index")
            }
            ConfigError::BadStrategy { processor } => {
                write!(f, "processor {processor}: invalid strategy parameter")
            }
            ConfigError::NoBlocks => write!(f, "the load must have at least one block"),
            ConfigError::ZeroPhaseBudget => {
                write!(f, "the phase budget must be at least one millisecond")
            }
            ConfigError::DelayExceedsBudget { processor } => write!(
                f,
                "processor {processor}: DelayAt sleeps past the phase budget (use CrashAt)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<ParamError> for ConfigError {
    fn from(e: ParamError) -> Self {
        ConfigError::Params(e)
    }
}

/// A complete session specification.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// System model (NCP-FE or NCP-NFE for the paper's protocol; CP is
    /// accepted for baseline comparisons — the "originator" is then an
    /// external trusted P_0 and originator offences are unavailable).
    pub model: SystemModel,
    /// Bus communication rate.
    pub z: f64,
    /// The processors.
    pub processors: Vec<ProcessorConfig>,
    /// The fine `F`.
    pub fine: f64,
    /// Number of equal-sized blocks the user splits the load into.
    pub blocks: usize,
    /// RSA modulus size for participant keys.
    pub key_bits: usize,
    /// Deterministic seed for key generation and any tie-breaking.
    pub seed: u64,
    /// Wall-clock budget per protocol phase, in milliseconds. The
    /// referee's barrier waits are bounded by this budget; a processor
    /// that has not arrived when it expires is declared defaulted
    /// instead of hanging the session. Delays below the budget are
    /// tolerated stragglers.
    pub phase_budget_ms: u64,
    /// Signature-verification cost model (outcome-neutral; see
    /// [`CryptoProfile`]).
    pub crypto_profile: CryptoProfile,
}

impl SessionConfig {
    /// Starts a builder with required parameters and sensible defaults
    /// (`blocks = 60`, minimal keys, automatic fine at 4× the bound).
    pub fn builder(model: SystemModel, z: f64) -> SessionConfigBuilder {
        SessionConfigBuilder {
            model,
            z,
            processors: Vec::new(),
            fine: None,
            blocks: 60,
            key_bits: dls_crypto::rsa::MIN_MODULUS_BITS,
            seed: 0,
            phase_budget_ms: DEFAULT_PHASE_BUDGET_MS,
            crypto_profile: CryptoProfile::default(),
        }
    }

    /// Number of processors `m`.
    pub fn m(&self) -> usize {
        self.processors.len()
    }

    /// Index of the load-originating processor.
    pub fn originator(&self) -> Option<usize> {
        self.model.originator(self.m())
    }

    /// The bid vector assuming everyone participates with its first bid.
    pub fn bids(&self) -> Vec<f64> {
        self.processors
            .iter()
            .map(|p| p.bid().unwrap_or(p.true_w))
            .collect()
    }

    /// The deterrence lower bound on the fine: `Σ_j α_j(b)·b_j` evaluated
    /// at the bids (the paper states `F ≥ Σ α_j w_j`; only bids are public
    /// when `F` is announced). Built configs always carry a valid bid
    /// vector; a hand-assembled one with degenerate bids gets `+∞` — no
    /// fine is admissible for a market that cannot be solved.
    pub fn fine_bound(&self) -> f64 {
        let Ok(params) = BusParams::new(self.z, self.bids()) else {
            return f64::INFINITY;
        };
        let alpha = dls_dlt::optimal::fractions(self.model, &params);
        alpha
            .iter()
            .zip(params.w())
            .map(|(a, w)| a * w)
            .sum()
    }
}

/// Builder for [`SessionConfig`].
#[derive(Debug, Clone)]
pub struct SessionConfigBuilder {
    model: SystemModel,
    z: f64,
    processors: Vec<ProcessorConfig>,
    fine: Option<f64>,
    blocks: usize,
    key_bits: usize,
    seed: u64,
    phase_budget_ms: u64,
    crypto_profile: CryptoProfile,
}

impl SessionConfigBuilder {
    /// Adds a processor.
    pub fn processor(mut self, p: ProcessorConfig) -> Self {
        self.processors.push(p);
        self
    }

    /// Adds many processors.
    pub fn processors(mut self, ps: impl IntoIterator<Item = ProcessorConfig>) -> Self {
        self.processors.extend(ps);
        self
    }

    /// Sets the fine `F` explicitly (validated against the deterrence
    /// bound at `build`).
    pub fn fine(mut self, fine: f64) -> Self {
        self.fine = Some(fine);
        self
    }

    /// Sets the block count.
    pub fn blocks(mut self, blocks: usize) -> Self {
        self.blocks = blocks;
        self
    }

    /// Sets the RSA modulus size.
    pub fn key_bits(mut self, bits: usize) -> Self {
        self.key_bits = bits;
        self
    }

    /// Sets the deterministic seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the per-phase wall-clock budget in milliseconds (validated
    /// non-zero at `build`).
    pub fn phase_budget_ms(mut self, ms: u64) -> Self {
        self.phase_budget_ms = ms;
        self
    }

    /// Sets the signature-verification cost model (default
    /// [`CryptoProfile::Amortized`]; outcome-neutral either way).
    pub fn crypto_profile(mut self, profile: CryptoProfile) -> Self {
        self.crypto_profile = profile;
        self
    }

    /// Validates and builds.
    pub fn build(self) -> Result<SessionConfig, ConfigError> {
        let m = self.processors.len();
        if m < 2 {
            return Err(ConfigError::TooFewProcessors);
        }
        if self.blocks == 0 {
            return Err(ConfigError::NoBlocks);
        }
        if self.phase_budget_ms == 0 {
            return Err(ConfigError::ZeroPhaseBudget);
        }
        for (processor, p) in self.processors.iter().enumerate() {
            if let FaultPlan::DelayAt(_, ms) = p.fault {
                if ms >= self.phase_budget_ms {
                    return Err(ConfigError::DelayExceedsBudget { processor });
                }
            }
            if !p.true_w.is_finite() || p.true_w <= 0.0 {
                return Err(ConfigError::BadStrategy { processor });
            }
            match p.behavior {
                Behavior::Misreport { factor } | Behavior::EquivocateBids { factor } => {
                    if !factor.is_finite() || factor <= 0.0 {
                        return Err(ConfigError::BadStrategy { processor });
                    }
                }
                Behavior::Slack { factor } => {
                    if !factor.is_finite() || factor < 1.0 {
                        return Err(ConfigError::BadStrategy { processor });
                    }
                }
                Behavior::CorruptPayments { target, factor } => {
                    if target >= m {
                        return Err(ConfigError::BadIndex { processor });
                    }
                    if !factor.is_finite() || factor == 1.0 {
                        return Err(ConfigError::BadStrategy { processor });
                    }
                }
                Behavior::ShortAllocate { victim, shortfall } => {
                    if victim >= m {
                        return Err(ConfigError::BadIndex { processor });
                    }
                    if shortfall == 0 {
                        return Err(ConfigError::BadStrategy { processor });
                    }
                }
                Behavior::OverAllocate { victim, excess } => {
                    if victim >= m {
                        return Err(ConfigError::BadIndex { processor });
                    }
                    if excess == 0 {
                        return Err(ConfigError::BadStrategy { processor });
                    }
                }
                Behavior::ForgeExtraBid { impersonate } => {
                    if impersonate >= m {
                        return Err(ConfigError::BadIndex { processor });
                    }
                }
                Behavior::Compliant
                | Behavior::FalselyAccuseAllocation
                | Behavior::NonParticipant => {}
            }
        }

        let cfg = SessionConfig {
            model: self.model,
            z: self.z,
            processors: self.processors,
            fine: 0.0, // placeholder, set below
            blocks: self.blocks,
            key_bits: self.key_bits,
            seed: self.seed,
            phase_budget_ms: self.phase_budget_ms,
            crypto_profile: self.crypto_profile,
        };
        // Validate the bid vector as DLT parameters.
        let _ = BusParams::new(cfg.z, cfg.bids())?;
        let bound = cfg.fine_bound();
        let fine = self.fine.unwrap_or(4.0 * bound.max(f64::MIN_POSITIVE));
        if fine < bound {
            return Err(ConfigError::FineTooSmall { fine, bound });
        }
        Ok(SessionConfig { fine, ..cfg })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_compliant() -> Vec<ProcessorConfig> {
        vec![
            ProcessorConfig::new(1.0, Behavior::Compliant),
            ProcessorConfig::new(2.0, Behavior::Compliant),
            ProcessorConfig::new(3.0, Behavior::Compliant),
        ]
    }

    #[test]
    fn builder_defaults() {
        let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.2)
            .processors(three_compliant())
            .build()
            .unwrap();
        assert_eq!(cfg.m(), 3);
        assert!(cfg.fine >= cfg.fine_bound());
        assert_eq!(cfg.blocks, 60);
        assert_eq!(cfg.originator(), Some(0));
    }

    #[test]
    fn rejects_single_processor() {
        let err = SessionConfig::builder(SystemModel::NcpFe, 0.2)
            .processor(ProcessorConfig::new(1.0, Behavior::Compliant))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::TooFewProcessors);
    }

    #[test]
    fn rejects_small_fine() {
        let err = SessionConfig::builder(SystemModel::NcpFe, 0.2)
            .processors(three_compliant())
            .fine(1e-6)
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::FineTooSmall { .. }));
    }

    #[test]
    fn accepts_fine_at_bound() {
        let probe = SessionConfig::builder(SystemModel::NcpFe, 0.2)
            .processors(three_compliant())
            .build()
            .unwrap();
        let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.2)
            .processors(three_compliant())
            .fine(probe.fine_bound())
            .build()
            .unwrap();
        assert_eq!(cfg.fine, probe.fine_bound());
    }

    #[test]
    fn rejects_bad_strategy_parameters() {
        for bad in [
            Behavior::Misreport { factor: 0.0 },
            Behavior::Slack { factor: 0.5 },
            Behavior::CorruptPayments { target: 9, factor: 2.0 },
            Behavior::CorruptPayments { target: 0, factor: 1.0 },
            Behavior::ShortAllocate { victim: 9, shortfall: 1 },
            Behavior::OverAllocate { victim: 0, excess: 0 },
        ] {
            let err = SessionConfig::builder(SystemModel::NcpFe, 0.2)
                .processor(ProcessorConfig::new(1.0, bad))
                .processor(ProcessorConfig::new(2.0, Behavior::Compliant))
                .build()
                .unwrap_err();
            assert!(
                matches!(err, ConfigError::BadStrategy { .. } | ConfigError::BadIndex { .. }),
                "{bad:?} -> {err:?}"
            );
        }
    }

    #[test]
    fn bids_and_exec_rates() {
        let p = ProcessorConfig::new(2.0, Behavior::Misreport { factor: 1.5 });
        assert_eq!(p.bid(), Some(3.0));
        assert_eq!(p.exec_w(), 2.0);
        let s = ProcessorConfig::new(2.0, Behavior::Slack { factor: 2.0 });
        assert_eq!(s.bid(), Some(2.0));
        assert_eq!(s.exec_w(), 4.0);
        let n = ProcessorConfig::new(2.0, Behavior::NonParticipant);
        assert_eq!(n.bid(), None);
    }

    #[test]
    fn finable_offences_classified() {
        assert!(!Behavior::Compliant.is_finable_offence());
        assert!(!Behavior::Misreport { factor: 2.0 }.is_finable_offence());
        assert!(!Behavior::Slack { factor: 2.0 }.is_finable_offence());
        assert!(Behavior::EquivocateBids { factor: 2.0 }.is_finable_offence());
        assert!(Behavior::FalselyAccuseAllocation.is_finable_offence());
    }

    #[test]
    fn fault_plans_validated_against_budget() {
        use crate::referee::Phase;
        let err = SessionConfig::builder(SystemModel::NcpFe, 0.2)
            .processors(three_compliant())
            .phase_budget_ms(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroPhaseBudget);

        let mut slow = three_compliant();
        slow[1] = slow[1].with_fault(FaultPlan::DelayAt(Phase::Bidding, 500));
        let err = SessionConfig::builder(SystemModel::NcpFe, 0.2)
            .processors(slow.clone())
            .phase_budget_ms(500)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::DelayExceedsBudget { processor: 1 });
        // A delay strictly below the budget is a tolerated straggler.
        let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.2)
            .processors(slow)
            .phase_budget_ms(501)
            .build()
            .unwrap();
        assert_eq!(cfg.phase_budget_ms, 501);
        assert_eq!(
            cfg.processors[1].fault,
            FaultPlan::DelayAt(Phase::Bidding, 500)
        );
        // Defaults: no fault, the documented budget.
        assert_eq!(cfg.processors[0].fault, FaultPlan::None);
        let plain = SessionConfig::builder(SystemModel::NcpFe, 0.2)
            .processors(three_compliant())
            .build()
            .unwrap();
        assert_eq!(plain.phase_budget_ms, DEFAULT_PHASE_BUDGET_MS);
    }

    #[test]
    fn crypto_profile_defaults_to_amortized() {
        let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.2)
            .processors(three_compliant())
            .build()
            .unwrap();
        assert_eq!(cfg.crypto_profile, CryptoProfile::Amortized);
        let naive = SessionConfig::builder(SystemModel::NcpFe, 0.2)
            .processors(three_compliant())
            .crypto_profile(CryptoProfile::PerReceiverNaive)
            .build()
            .unwrap();
        assert_eq!(naive.crypto_profile, CryptoProfile::PerReceiverNaive);
        assert_eq!(naive.crypto_profile.to_string(), "per-receiver");
    }

    #[test]
    fn fine_bound_is_weighted_makespan_sum() {
        let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.2)
            .processors(three_compliant())
            .build()
            .unwrap();
        let params = BusParams::new(0.2, vec![1.0, 2.0, 3.0]).unwrap();
        let alpha = dls_dlt::optimal::fractions(SystemModel::NcpFe, &params);
        let expected: f64 = alpha.iter().zip(params.w()).map(|(a, w)| a * w).sum();
        assert!((cfg.fine_bound() - expected).abs() < 1e-12);
    }
}
