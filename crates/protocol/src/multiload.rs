//! Multi-load sessions: one processor market, `k` loads, every
//! execution path through the shared session driver.
//!
//! A [`MultiLoadSession`] is `k` per-load [`SessionConfig`]s over the
//! *same* processor market (same participants, same keys, same seed —
//! one PKI registration amortized across every load, mirroring how the
//! auction layer amortizes one bid vector across `k` chains;
//! `dls_mechanism::MultiLoadEngine`). Each load may differ in bus
//! intensity `z` and block count (the protocol-level notion of load
//! volume).
//!
//! The runners deliberately add **no third execution path**: all three
//! route through the same `drive_session` seam the single-load paths
//! use, so a multi-load session inherits every existing guarantee —
//! fault degradation, ledger conservation, service supervision — with
//! zero new protocol code:
//!
//! * [`MultiLoadSession::run_vm`] — loads in order on one event-driven
//!   executor, sharing a single `VmScratch` (per-load results bit-exact
//!   with [`crate::executor::run_session_vm`] on each config).
//! * [`MultiLoadSession::run_pooled`] — loads across the deterministic
//!   worker pool ([`crate::executor::run_session_pooled_with`]).
//! * [`MultiLoadSession::run_service`] — loads submitted to a running
//!   supervised service ([`ServiceHandle`]); admission control, retry
//!   and quarantine apply per load unchanged.

use crate::config::{
    ConfigError, CryptoProfile, ProcessorConfig, SessionConfig, SessionConfigBuilder,
};
use crate::executor::{drive_session, run_session_pooled_with, VmScratch};
use crate::runtime::{RunError, SessionOutcome, SessionStatus};
use crate::service::{Completed, ServiceHandle, SubmitError};
use dls_dlt::SystemModel;
use std::fmt;

/// Rejected multi-load session specification.
#[derive(Debug, Clone, PartialEq)]
pub enum MultiSessionError {
    /// A session must carry at least one load.
    NoLoads,
    /// A per-load session config failed validation.
    Config {
        /// Offending load (0-based).
        load: usize,
        /// The underlying error.
        source: ConfigError,
    },
}

impl fmt::Display for MultiSessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiSessionError::NoLoads => {
                write!(f, "a multi-load session needs at least one load")
            }
            MultiSessionError::Config { load, source } => {
                write!(f, "load {load}: {source}")
            }
        }
    }
}

impl std::error::Error for MultiSessionError {}

/// A validated k-load session over one processor market.
#[derive(Debug, Clone)]
pub struct MultiLoadSession {
    sessions: Vec<SessionConfig>,
}

/// Builder for [`MultiLoadSession`]. Market-level settings (processors,
/// seed, keys, crypto profile, phase budget) are shared by every load;
/// each [`MultiLoadSessionBuilder::load`] call adds one load.
#[derive(Debug, Clone)]
pub struct MultiLoadSessionBuilder {
    model: SystemModel,
    processors: Vec<ProcessorConfig>,
    loads: Vec<(f64, usize)>,
    seed: u64,
    key_bits: Option<usize>,
    fine: Option<f64>,
    phase_budget_ms: Option<u64>,
    crypto_profile: Option<CryptoProfile>,
}

impl MultiLoadSession {
    /// Starts a builder for `model`.
    pub fn builder(model: SystemModel) -> MultiLoadSessionBuilder {
        MultiLoadSessionBuilder {
            model,
            processors: Vec::new(),
            loads: Vec::new(),
            seed: 0,
            key_bits: None,
            fine: None,
            phase_budget_ms: None,
            crypto_profile: None,
        }
    }

    /// Number of loads `k`.
    pub fn k(&self) -> usize {
        self.sessions.len()
    }

    /// The validated per-load session configs, in load order.
    pub fn sessions(&self) -> &[SessionConfig] {
        &self.sessions
    }

    /// Runs the loads in order on one event-driven executor with a shared
    /// scratch. Per-load results are bit-exact with
    /// [`crate::executor::run_session_vm`] on [`MultiLoadSession::sessions`].
    pub fn run_vm(&self) -> MultiSessionOutcome {
        let mut scratch = VmScratch::new();
        let per_load = self
            .sessions
            .iter()
            .map(|cfg| drive_session(cfg, &mut scratch))
            .collect();
        MultiSessionOutcome { per_load }
    }

    /// Runs the loads across the deterministic worker pool.
    pub fn run_pooled(&self, workers: usize) -> MultiSessionOutcome {
        MultiSessionOutcome {
            per_load: run_session_pooled_with(&self.sessions, workers),
        }
    }

    /// Submits every load to a running supervised service and waits for
    /// all of them, returning completions in load order. A submit
    /// rejection (admission control) fails the whole call — the session
    /// is one unit of work. A ticket the service drops entirely is
    /// reported as `None` in its slot.
    pub fn run_service(
        &self,
        svc: &ServiceHandle,
    ) -> Result<Vec<Option<Completed>>, SubmitError> {
        let mut tickets = Vec::with_capacity(self.sessions.len());
        for cfg in &self.sessions {
            tickets.push(svc.submit(cfg.clone())?);
        }
        Ok(tickets.into_iter().map(|t| svc.wait(t)).collect())
    }
}

impl MultiLoadSessionBuilder {
    /// Adds one processor (shared by every load).
    pub fn processor(mut self, p: ProcessorConfig) -> Self {
        self.processors.push(p);
        self
    }

    /// Adds processors in bulk.
    pub fn processors(mut self, ps: impl IntoIterator<Item = ProcessorConfig>) -> Self {
        self.processors.extend(ps);
        self
    }

    /// Adds one load with bus rate `z` and `blocks` blocks.
    pub fn load(mut self, z: f64, blocks: usize) -> Self {
        self.loads.push((z, blocks));
        self
    }

    /// Deterministic seed (shared: every load runs over the same keys).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// RSA modulus size for participant keys.
    pub fn key_bits(mut self, bits: usize) -> Self {
        self.key_bits = Some(bits);
        self
    }

    /// Explicit fine `F` applied to every load (defaults to each load's
    /// automatic fine otherwise).
    pub fn fine(mut self, fine: f64) -> Self {
        self.fine = Some(fine);
        self
    }

    /// Per-phase wall-clock budget in milliseconds (shared).
    pub fn phase_budget_ms(mut self, ms: u64) -> Self {
        self.phase_budget_ms = Some(ms);
        self
    }

    /// Signature-verification cost model (shared).
    pub fn crypto_profile(mut self, profile: CryptoProfile) -> Self {
        self.crypto_profile = Some(profile);
        self
    }

    /// Validates every per-load config through the standard
    /// [`SessionConfig::builder`] path.
    pub fn build(self) -> Result<MultiLoadSession, MultiSessionError> {
        if self.loads.is_empty() {
            return Err(MultiSessionError::NoLoads);
        }
        let mut sessions = Vec::with_capacity(self.loads.len());
        for (load, &(z, blocks)) in self.loads.iter().enumerate() {
            let mut b: SessionConfigBuilder = SessionConfig::builder(self.model, z)
                .processors(self.processors.iter().cloned())
                .blocks(blocks)
                .seed(self.seed);
            if let Some(bits) = self.key_bits {
                b = b.key_bits(bits);
            }
            if let Some(fine) = self.fine {
                b = b.fine(fine);
            }
            if let Some(ms) = self.phase_budget_ms {
                b = b.phase_budget_ms(ms);
            }
            if let Some(profile) = self.crypto_profile {
                b = b.crypto_profile(profile);
            }
            sessions.push(
                b.build()
                    .map_err(|source| MultiSessionError::Config { load, source })?,
            );
        }
        Ok(MultiLoadSession { sessions })
    }
}

/// Per-load outcomes of a multi-load session run, in load order.
#[derive(Debug)]
pub struct MultiSessionOutcome {
    /// One session result per load.
    pub per_load: Vec<Result<SessionOutcome, RunError>>,
}

impl MultiSessionOutcome {
    /// Number of loads `k`.
    pub fn k(&self) -> usize {
        self.per_load.len()
    }

    /// `true` iff every load ran to completion (with or without fines).
    pub fn all_completed(&self) -> bool {
        self.per_load.iter().all(|r| {
            matches!(
                r.as_ref().map(|o| &o.status),
                Ok(SessionStatus::Completed) | Ok(SessionStatus::CompletedWithFines)
            )
        })
    }

    /// Processor `i`'s session utility: sum of its per-load utilities
    /// over the loads that produced an outcome. `None` if `i` is out of
    /// range for any completed load.
    pub fn total_utility(&self, i: usize) -> Option<f64> {
        let mut total = 0.0;
        for r in &self.per_load {
            if let Ok(out) = r {
                let _ = out.processors.get(i)?;
                total += out.utility(i);
            }
        }
        Some(total)
    }

    /// Realized makespans of the completed loads, `None` where a load
    /// aborted before processing or failed to run.
    pub fn makespans(&self) -> Vec<Option<f64>> {
        self.per_load
            .iter()
            .map(|r| r.as_ref().ok().and_then(|o| o.makespan))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Behavior;
    use crate::executor::run_session_vm;
    use crate::service::ServiceConfig;

    fn session() -> MultiLoadSession {
        MultiLoadSession::builder(SystemModel::NcpFe)
            .processor(ProcessorConfig::new(1.0, Behavior::Compliant))
            .processor(ProcessorConfig::new(2.0, Behavior::Compliant))
            .processor(ProcessorConfig::new(3.0, Behavior::Compliant))
            .load(0.2, 24)
            .load(0.1, 12)
            .seed(7)
            .build()
            .unwrap()
    }

    #[test]
    fn vm_path_is_bit_exact_with_single_load_runs() {
        let ml = session();
        let out = ml.run_vm();
        assert!(out.all_completed());
        assert_eq!(out.k(), 2);
        for (cfg, got) in ml.sessions().iter().zip(&out.per_load) {
            let single = run_session_vm(cfg).unwrap();
            let got = got.as_ref().unwrap();
            assert_eq!(got.makespan.map(f64::to_bits), single.makespan.map(f64::to_bits));
            for i in 0..cfg.m() {
                assert_eq!(got.utility(i).to_bits(), single.utility(i).to_bits());
            }
        }
        // Cross-load utility is the plain sum.
        let manual: f64 = out
            .per_load
            .iter()
            .map(|r| r.as_ref().unwrap().utility(0))
            .sum();
        assert_eq!(out.total_utility(0).unwrap().to_bits(), manual.to_bits());
        assert!(out.total_utility(99).is_none());
        assert!(out.makespans().iter().all(|m| m.is_some()));
    }

    #[test]
    fn pooled_path_matches_vm_path() {
        let ml = session();
        let vm = ml.run_vm();
        let pooled = ml.run_pooled(2);
        assert!(pooled.all_completed());
        for (a, b) in vm.per_load.iter().zip(&pooled.per_load) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.makespan.map(f64::to_bits), b.makespan.map(f64::to_bits));
            assert_eq!(
                a.ledger.conservation_error().to_bits(),
                b.ledger.conservation_error().to_bits()
            );
        }
    }

    #[test]
    fn service_path_runs_every_load_supervised() {
        let ml = session();
        let svc = ServiceHandle::start(ServiceConfig::stealing(2)).unwrap();
        let completed = ml.run_service(&svc).unwrap();
        svc.shutdown();
        let vm = ml.run_vm();
        assert_eq!(completed.len(), 2);
        for (c, v) in completed.iter().zip(&vm.per_load) {
            let c = c.as_ref().unwrap();
            let got = c.outcome.as_ref().unwrap();
            let want = v.as_ref().unwrap();
            assert_eq!(got.makespan.map(f64::to_bits), want.makespan.map(f64::to_bits));
        }
    }

    #[test]
    fn builder_rejects_bad_specs() {
        assert!(matches!(
            MultiLoadSession::builder(SystemModel::NcpFe)
                .processor(ProcessorConfig::new(1.0, Behavior::Compliant))
                .build(),
            Err(MultiSessionError::NoLoads)
        ));
        // Too few participants for the NCP protocol.
        assert!(matches!(
            MultiLoadSession::builder(SystemModel::NcpFe)
                .processor(ProcessorConfig::new(1.0, Behavior::Compliant))
                .load(0.2, 12)
                .build(),
            Err(MultiSessionError::Config { load: 0, .. })
        ));
    }
}
