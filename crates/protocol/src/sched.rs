//! Deterministic scheduling primitives for the event-driven session
//! executor ([`crate::executor`]).
//!
//! The threaded runtime spends real wall-clock time in two places: parties
//! park on a condvar barrier at every phase boundary, and injected
//! `DelayAt` faults call `thread::sleep`. The executor replaces both with
//! **virtual time**: a per-session millisecond clock that only ever jumps
//! forward to the completion time of the next phase barrier. A barrier is
//! resolved by a tiny discrete-event loop — every party posts an *arrival*
//! event (its injected delay past the phase start), the referee posts the
//! *deadline* event (phase start + budget), and events are popped in
//! `(time, sequence)` order. Parties whose arrival pops at or after the
//! deadline are removed exactly like the threaded referee removes parties
//! still missing when `wait_deadline_as` expires. The whole chaos matrix
//! therefore resolves in microseconds of real time while reporting the
//! same faults, verdicts and degradation as the threaded oracle.
//!
//! Also here: the fixed-pool *sharding* rule — session `s` belongs to
//! worker `s mod workers`, no work stealing — so a batch of N sessions is
//! deterministically partitioned no matter how many workers run. The
//! work-stealing alternative for continuously arriving sessions lives in
//! [`crate::service`]; both route through the same per-session driver, so
//! placement never changes an outcome.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A session's virtual clock, in milliseconds. Starts at zero and advances
/// only when a phase barrier completes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VirtualClock {
    now_ms: u64,
}

impl VirtualClock {
    /// A clock at virtual time zero (session start).
    pub fn new() -> Self {
        VirtualClock { now_ms: 0 }
    }

    /// Current virtual time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Jumps the clock forward to `t` (never backward: a barrier completes
    /// at or after the time it started).
    pub fn advance_to(&mut self, t: u64) {
        self.now_ms = self.now_ms.max(t);
    }
}

/// What a scheduled event represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Party `id` arrives at the current barrier.
    Arrive(usize),
    /// The referee's phase deadline expires.
    Deadline,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time_ms: u64,
    // Encoded so `Ord` can be derived: arrivals before the deadline at the
    // same timestamp would be a tie the threaded barrier resolves as
    // "removed" (the deadline check runs `now >= deadline`), so the
    // deadline must win ties — `kind_rank` (0 = Deadline, 1 = Arrive)
    // therefore sorts before the insertion sequence.
    kind_rank: u8,
    seq: u64,
    party: usize,
}

impl Event {
    fn kind(&self) -> EventKind {
        if self.kind_rank == 0 {
            EventKind::Deadline
        } else {
            EventKind::Arrive(self.party)
        }
    }
}

/// A deterministic min-heap of timed events. Ties on the timestamp are
/// broken by kind (deadline first, matching the threaded barrier's
/// `now >= deadline` removal check) and then by insertion order, so a
/// replay of the same pushes always pops the same sequence.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `kind` at `time_ms`.
    pub fn push(&mut self, time_ms: u64, kind: EventKind) {
        let (kind_rank, party) = match kind {
            EventKind::Deadline => (0, usize::MAX),
            EventKind::Arrive(id) => (1, id),
        };
        self.heap.push(Reverse(Event {
            time_ms,
            seq: self.seq,
            kind_rank,
            party,
        }));
        self.seq = self.seq.wrapping_add(1);
    }

    /// Pops the earliest event, if any.
    pub fn pop(&mut self) -> Option<(u64, EventKind)> {
        self.heap.pop().map(|Reverse(e)| (e.time_ms, e.kind()))
    }

    /// Discards all pending events (reused across barriers and sessions so
    /// a worker allocates its heap once).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// The outcome of one resolved phase barrier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierOutcome {
    /// Virtual time at which the barrier completed: the latest surviving
    /// arrival, or the deadline when parties were removed.
    pub completed_at_ms: u64,
    /// Parties removed because their arrival missed the deadline, in
    /// ascending id order (the threaded barrier also reports its missing
    /// set in id order).
    pub removed: Vec<usize>,
}

/// Resolves one phase barrier in virtual time.
///
/// `arrivals` lists `(party, delay_ms)` for every party expected at the
/// barrier; `delay_ms` is the party's injected delay past the phase start
/// (zero for everyone without a matching `DelayAt` fault). The referee's
/// deadline sits at `now_ms + budget_ms`. A party whose arrival would pop
/// at or after the deadline event is removed — mirroring the threaded
/// semantics where the sleeping thread is still absent when the referee's
/// `wait_deadline_as` expires and is dropped from the barrier.
pub fn resolve_barrier(
    queue: &mut EventQueue,
    now_ms: u64,
    budget_ms: u64,
    arrivals: &[(usize, u64)],
) -> BarrierOutcome {
    queue.clear();
    let deadline = now_ms.saturating_add(budget_ms);
    queue.push(deadline, EventKind::Deadline);
    for &(party, delay_ms) in arrivals {
        queue.push(now_ms.saturating_add(delay_ms), EventKind::Arrive(party));
    }
    let mut arrived: Vec<usize> = Vec::with_capacity(arrivals.len());
    let mut latest_arrival = now_ms;
    let mut removed: Vec<usize> = Vec::new();
    let mut deadline_hit = false;
    while let Some((t, kind)) = queue.pop() {
        match kind {
            EventKind::Arrive(id) if !deadline_hit => {
                arrived.push(id);
                latest_arrival = latest_arrival.max(t);
            }
            EventKind::Arrive(id) => removed.push(id),
            EventKind::Deadline => {
                if arrived.len() == arrivals.len() {
                    // Everyone made it before the deadline popped; the
                    // remaining event would only have been the deadline.
                    break;
                }
                deadline_hit = true;
            }
        }
    }
    removed.sort_unstable();
    BarrierOutcome {
        completed_at_ms: if deadline_hit { deadline } else { latest_arrival },
        removed,
    }
}

/// The indices of worker `worker` under the fixed sharding rule: session
/// `s` belongs to worker `s mod workers`. Returns an empty iterator for a
/// worker id at or beyond `workers` (callers never spawn those).
pub fn shard(sessions: usize, workers: usize, worker: usize) -> impl Iterator<Item = usize> {
    let stride = workers.max(1);
    let valid = worker < stride;
    (worker.min(sessions)..sessions)
        .step_by(stride)
        .filter(move |_| valid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_never_moves_backward() {
        let mut c = VirtualClock::new();
        c.advance_to(10);
        c.advance_to(5);
        assert_eq!(c.now_ms(), 10);
    }

    #[test]
    fn queue_pops_in_time_then_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::Arrive(2));
        q.push(3, EventKind::Arrive(0));
        q.push(5, EventKind::Arrive(1));
        assert_eq!(q.pop(), Some((3, EventKind::Arrive(0))));
        assert_eq!(q.pop(), Some((5, EventKind::Arrive(2))));
        assert_eq!(q.pop(), Some((5, EventKind::Arrive(1))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn deadline_wins_timestamp_ties() {
        let mut q = EventQueue::new();
        q.push(7, EventKind::Arrive(0));
        q.push(7, EventKind::Deadline);
        assert_eq!(q.pop(), Some((7, EventKind::Deadline)));
    }

    #[test]
    fn equal_timestamp_arrivals_pop_in_exact_insertion_order() {
        // All events share one timestamp: the only remaining order is the
        // insertion sequence, including across interleaved party ids and
        // after the heap has been partially drained.
        let mut q = EventQueue::new();
        for id in [9, 1, 7, 3, 5] {
            q.push(11, EventKind::Arrive(id));
        }
        assert_eq!(q.pop(), Some((11, EventKind::Arrive(9))));
        assert_eq!(q.pop(), Some((11, EventKind::Arrive(1))));
        // Pushing more equal-timestamp events mid-drain continues the
        // global sequence; they sort after everything already queued.
        q.push(11, EventKind::Arrive(2));
        assert_eq!(q.pop(), Some((11, EventKind::Arrive(7))));
        assert_eq!(q.pop(), Some((11, EventKind::Arrive(3))));
        assert_eq!(q.pop(), Some((11, EventKind::Arrive(5))));
        assert_eq!(q.pop(), Some((11, EventKind::Arrive(2))));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn deadline_outranks_every_tied_arrival_regardless_of_push_order() {
        // The deadline wins the timestamp tie even when pushed last, after
        // many arrivals with lower sequence numbers — kind_rank dominates
        // the insertion sequence.
        let mut q = EventQueue::new();
        for id in 0..4 {
            q.push(30, EventKind::Arrive(id));
        }
        q.push(30, EventKind::Deadline);
        assert_eq!(q.pop(), Some((30, EventKind::Deadline)));
        // The tied arrivals still drain in insertion order afterwards.
        for id in 0..4 {
            assert_eq!(q.pop(), Some((30, EventKind::Arrive(id))));
        }
    }

    #[test]
    fn clear_resets_pending_events_but_ordering_survives_reuse() {
        let mut q = EventQueue::new();
        q.push(5, EventKind::Arrive(0));
        q.push(1, EventKind::Deadline);
        q.clear();
        assert_eq!(q.pop(), None);
        // Reused queue (one heap per worker, per-barrier clears): ordering
        // rules are unchanged after a clear.
        q.push(8, EventKind::Arrive(1));
        q.push(8, EventKind::Deadline);
        assert_eq!(q.pop(), Some((8, EventKind::Deadline)));
        assert_eq!(q.pop(), Some((8, EventKind::Arrive(1))));
    }

    #[test]
    fn barrier_ties_remove_every_at_deadline_arrival() {
        // Three parties arrive exactly at the deadline, one before it; the
        // deadline event outranks all three ties, so all three are removed
        // and reported in ascending id order (ids pushed out of order).
        let mut q = EventQueue::new();
        let out = resolve_barrier(&mut q, 10, 40, &[(3, 40), (0, 5), (2, 40), (1, 40)]);
        assert_eq!(out.removed, vec![1, 2, 3]);
        assert_eq!(out.completed_at_ms, 50);
    }

    #[test]
    fn barrier_survivor_tie_with_other_survivors_keeps_latest_arrival_time() {
        // Two survivors tie just *below* the deadline: both survive, and
        // the barrier completes at their (shared) arrival time, not at the
        // deadline.
        let mut q = EventQueue::new();
        let out = resolve_barrier(&mut q, 0, 50, &[(0, 49), (1, 49)]);
        assert!(out.removed.is_empty());
        assert_eq!(out.completed_at_ms, 49);
    }

    #[test]
    fn barrier_all_on_time() {
        let mut q = EventQueue::new();
        let out = resolve_barrier(&mut q, 100, 50, &[(0, 0), (1, 5), (2, 0)]);
        assert_eq!(out.removed, Vec::<usize>::new());
        assert_eq!(out.completed_at_ms, 105);
    }

    #[test]
    fn barrier_removes_over_budget_party() {
        let mut q = EventQueue::new();
        let out = resolve_barrier(&mut q, 0, 50, &[(0, 0), (1, 60), (2, 10)]);
        assert_eq!(out.removed, vec![1]);
        assert_eq!(out.completed_at_ms, 50);
    }

    #[test]
    fn barrier_removes_exactly_at_deadline() {
        // delay == budget: the deadline event outranks the tied arrival,
        // mirroring the threaded `now >= deadline` removal check.
        let mut q = EventQueue::new();
        let out = resolve_barrier(&mut q, 0, 50, &[(0, 0), (1, 50)]);
        assert_eq!(out.removed, vec![1]);
        assert_eq!(out.completed_at_ms, 50);
    }

    #[test]
    fn barrier_with_no_delays_completes_at_now() {
        let mut q = EventQueue::new();
        let out = resolve_barrier(&mut q, 42, 50, &[(0, 0), (1, 0)]);
        assert_eq!(out.completed_at_ms, 42);
        assert!(out.removed.is_empty());
    }

    #[test]
    fn shard_partitions_exactly() {
        // 5 sessions over 4 workers: the uneven-shard shape from the PR-3
        // batch-sizing bug. Every session appears exactly once.
        let mut seen = vec![0usize; 5];
        for w in 0..4 {
            for s in shard(5, 4, w) {
                seen[s] += 1;
            }
        }
        assert_eq!(seen, vec![1; 5]);
        assert_eq!(shard(5, 4, 0).collect::<Vec<_>>(), vec![0, 4]);
        assert_eq!(shard(5, 4, 3).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn shard_degenerate_worker_counts() {
        assert_eq!(shard(3, 1, 0).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(shard(0, 4, 1).count(), 0);
        assert_eq!(shard(2, 8, 7).count(), 0);
    }
}
