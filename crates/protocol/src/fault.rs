//! Liveness faults: injection plans, detected fault records, and the
//! per-session degradation report.
//!
//! The paper's protocol (§4) assumes every processor shows up at every
//! phase; the referee/fine machinery adjudicates *evidence*, and a silent
//! processor produces none. This module makes that failure mode a
//! first-class input (a [`FaultPlan`] per processor, orthogonal to the
//! strategic [`crate::config::Behavior`] catalogue) and a first-class
//! output (a [`DegradationReport`] on every [`crate::SessionOutcome`]).
//!
//! ## Fault semantics
//!
//! Each plan names a [`Phase`] and affects the processor's **entire
//! output for that phase** (its broadcast/unicast payload *and* its
//! referee-facing report/meter/vector — a dead or wedged node does not
//! selectively deliver):
//!
//! * [`FaultPlan::CrashAt`] — the thread exits at the start of the phase
//!   and never arrives at another barrier. Detected by the referee's
//!   deadline-bounded barrier wait.
//! * [`FaultPlan::MuteAt`] — omission: the thread stays alive and keeps
//!   pacing the barriers, but withholds every message of the phase.
//!   Detected by the referee as a missing end-of-phase message.
//! * [`FaultPlan::DelayAt`] — a straggler: the thread sleeps before
//!   acting, then behaves normally. A delay below the session's phase
//!   budget must **not** trip the deadline; the session completes
//!   fault-free.
//! * [`FaultPlan::GarbageAt`] — every message of the phase is replaced by
//!   a syntactically invalid payload, dropped at receipt exactly like a
//!   bad signature (§4: "if the message fails verification, it is
//!   discarded"). Observationally an omission, but the referee records
//!   the garbage frames it received and classifies the fault as
//!   [`FaultKind::Garbage`].
//!
//! ## Degradation policy
//!
//! A fault detected **before Processing** has done no work yet: the
//! referee declares the absentee defaulted, fines its escrow `F` per the
//! §4 fine schedule (the pot goes to the survivors, exactly like any
//! other offence), and the survivors re-run the session over the
//! remaining bid set. A fault detected **during or after Processing**
//! cannot be rolled back — work was done — so the session completes
//! degraded: the absentee's meter reads 0, its missing payment vector is
//! fined by the ordinary §4 payment adjudication, its payment is
//! withheld, and the report records the fault instead of the session
//! erroring out.

use crate::referee::Phase;
use std::fmt;

/// A liveness-fault injection plan for one processor, orthogonal to its
/// strategic [`crate::config::Behavior`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FaultPlan {
    /// No fault: the processor is live in every phase.
    #[default]
    None,
    /// Thread exits at the start of the phase; never heard from again.
    CrashAt(Phase),
    /// Omission: alive and pacing barriers, but every message of the
    /// phase is withheld.
    MuteAt(Phase),
    /// Straggler: sleeps this many milliseconds at the start of the
    /// phase, then behaves normally.
    DelayAt(Phase, u64),
    /// Every message of the phase is replaced by an invalid payload that
    /// receivers drop like a failed signature.
    GarbageAt(Phase),
}

impl FaultPlan {
    /// The phase the plan targets, if any.
    pub fn phase(&self) -> Option<Phase> {
        match self {
            FaultPlan::None => None,
            FaultPlan::CrashAt(p)
            | FaultPlan::MuteAt(p)
            | FaultPlan::DelayAt(p, _)
            | FaultPlan::GarbageAt(p) => Some(*p),
        }
    }

    /// `true` when the plan suppresses (or corrupts) the processor's
    /// output in `phase` while keeping the thread alive.
    pub(crate) fn silences(&self, phase: Phase) -> bool {
        matches!(
            self,
            FaultPlan::MuteAt(p) | FaultPlan::GarbageAt(p) if *p == phase
        )
    }

    /// `true` when the plan replaces the phase's messages with garbage
    /// frames instead of plain silence.
    pub(crate) fn garbles(&self, phase: Phase) -> bool {
        matches!(self, FaultPlan::GarbageAt(p) if *p == phase)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlan::None => write!(f, "no fault"),
            FaultPlan::CrashAt(p) => write!(f, "crash at {p:?}"),
            FaultPlan::MuteAt(p) => write!(f, "mute at {p:?}"),
            FaultPlan::DelayAt(p, ms) => write!(f, "delay {ms}ms at {p:?}"),
            FaultPlan::GarbageAt(p) => write!(f, "garbage at {p:?}"),
        }
    }
}

/// How a detected liveness fault manifested on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The processor never arrived at a phase barrier: the deadline
    /// expired with the party missing.
    Crash,
    /// The processor paced the barriers but an expected message never
    /// arrived.
    Omission,
    /// The processor delivered a payload that failed validation and was
    /// dropped at receipt.
    Garbage,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Crash => write!(f, "crash"),
            FaultKind::Omission => write!(f, "omission"),
            FaultKind::Garbage => write!(f, "garbage"),
        }
    }
}

/// One detected liveness fault, in the session's **original** processor
/// indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LivenessFault {
    /// Phase at which the fault was detected.
    pub phase: Phase,
    /// The faulty processor (original index).
    pub processor: usize,
    /// How the fault manifested.
    pub kind: FaultKind,
}

impl fmt::Display for LivenessFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} by P{} at {:?}",
            self.kind,
            self.processor + 1,
            self.phase
        )
    }
}

/// Everything a session observed and did about liveness faults. Returned
/// on **every** [`crate::SessionOutcome`] so downstream tests can assert
/// exact degradation behavior; a fault-free session returns
/// [`DegradationReport::is_clean`] `= true`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationReport {
    /// Faults observed, in detection order, original indexing.
    pub faults: Vec<LivenessFault>,
    /// Processors excluded before Processing and re-solved around
    /// (original indexing, ascending).
    pub excluded: Vec<usize>,
    /// Number of protocol rounds executed (1 for a fault-free session;
    /// +1 for every pre-Processing default that forced a survivor
    /// re-run).
    pub rounds: usize,
    /// Fines levied for liveness defaults `(processor, amount)`,
    /// original indexing. Strategic fines are *not* listed here; they
    /// appear in the ledger as always.
    pub default_fines: Vec<(usize, f64)>,
    /// Processors whose payment entry was withheld because they
    /// defaulted during/after Processing (no delivered receipt).
    pub withheld_payments: Vec<usize>,
}

impl DegradationReport {
    /// A report for a session that observed no faults.
    pub fn clean() -> Self {
        DegradationReport {
            rounds: 1,
            ..DegradationReport::default()
        }
    }

    /// `true` when the session saw no liveness fault at all.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty() && self.excluded.is_empty() && self.withheld_payments.is_empty()
    }

    /// Faults detected at `phase`.
    pub fn faults_at(&self, phase: Phase) -> Vec<LivenessFault> {
        self.faults.iter().filter(|f| f.phase == phase).copied().collect()
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(f, "clean ({} round)", self.rounds);
        }
        write!(f, "{} round(s);", self.rounds)?;
        for fault in &self.faults {
            write!(f, " [{fault}]")?;
        }
        if !self.excluded.is_empty() {
            write!(f, " excluded {:?}", self.excluded)?;
        }
        if !self.withheld_payments.is_empty() {
            write!(f, " withheld {:?}", self.withheld_payments)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_phase_and_silencing() {
        assert_eq!(FaultPlan::None.phase(), None);
        assert_eq!(
            FaultPlan::CrashAt(Phase::Bidding).phase(),
            Some(Phase::Bidding)
        );
        assert!(FaultPlan::MuteAt(Phase::Payments).silences(Phase::Payments));
        assert!(!FaultPlan::MuteAt(Phase::Payments).silences(Phase::Bidding));
        assert!(FaultPlan::GarbageAt(Phase::Bidding).silences(Phase::Bidding));
        assert!(FaultPlan::GarbageAt(Phase::Bidding).garbles(Phase::Bidding));
        assert!(!FaultPlan::MuteAt(Phase::Bidding).garbles(Phase::Bidding));
        assert!(!FaultPlan::DelayAt(Phase::Bidding, 5).silences(Phase::Bidding));
    }

    #[test]
    fn clean_report() {
        let r = DegradationReport::clean();
        assert!(r.is_clean());
        assert_eq!(r.rounds, 1);
        assert_eq!(r.to_string(), "clean (1 round)");
    }

    #[test]
    fn report_accessors() {
        let mut r = DegradationReport::clean();
        r.faults.push(LivenessFault {
            phase: Phase::Bidding,
            processor: 1,
            kind: FaultKind::Crash,
        });
        r.faults.push(LivenessFault {
            phase: Phase::Payments,
            processor: 2,
            kind: FaultKind::Omission,
        });
        r.excluded.push(1);
        r.rounds = 2;
        assert!(!r.is_clean());
        assert_eq!(r.faults_at(Phase::Bidding).len(), 1);
        assert_eq!(r.faults_at(Phase::Payments).len(), 1);
        assert_eq!(r.faults_at(Phase::Allocating).len(), 0);
        let text = r.to_string();
        assert!(text.contains("crash by P2 at Bidding"), "{text}");
        assert!(text.contains("excluded [1]"), "{text}");
    }

    #[test]
    fn displays() {
        assert_eq!(FaultPlan::None.to_string(), "no fault");
        assert_eq!(
            FaultPlan::DelayAt(Phase::Processing, 30).to_string(),
            "delay 30ms at Processing"
        );
        assert_eq!(FaultKind::Garbage.to_string(), "garbage");
    }
}
