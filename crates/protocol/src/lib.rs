//! # `dls-protocol` — the DLS-BL-NCP mechanism
//!
//! The paper's primary contribution (Carroll & Grosu, IPPS 2006, §4–5): a
//! strategyproof mechanism for scheduling divisible loads on bus networks
//! **without** a trusted control processor. Every strategic processor runs
//! the DLS-BL mechanism itself; compliance is enforced by mutual monitoring
//! ("finking"), a minimally-trusted **referee** that adjudicates evidence,
//! and fines large enough to deter deviation (`F ≥ Σ_j α_j·w_j`).
//!
//! ## Protocol phases (§4)
//!
//! 1. **Initialization** — every participant registers a public key with
//!    the PKI; the user splits the load into signed, uniquely identified
//!    blocks `S_user(B, I_B)`.
//! 2. **Bidding** — all-to-all broadcast of digitally signed bids
//!    `S_{P_i}(b_i, P_i)`. Equivocation (different bids to different peers)
//!    is reported with the two signed messages as evidence; the deviant is
//!    fined `F` and each informer receives `F/(m−1)`.
//! 3. **Allocating load** — every processor computes `α(b)` locally
//!    (Algorithm 2.1/2.2); the load-originating processor transmits each
//!    `P_i`'s blocks. Wrong assignments (`α'_i ≠ α_i`) are reported and
//!    adjudicated from the signed bid vectors and the signed grant.
//! 4. **Processing** — processors execute; a tamper-proof meter reports the
//!    execution time `φ_i` to the referee, which broadcasts `(φ_1…φ_m)`.
//! 5. **Computing payments** — every processor independently computes the
//!    DLS-BL payment vector `Q` and submits `S_{P_i}(P_i, Q)` to the
//!    referee, which checks all vectors for equality, fines the `x`
//!    processors with wrong vectors and rewards the rest `x·F/(m−x)`, then
//!    forwards `Q` to the payment infrastructure.
//!
//! ## What this crate provides
//!
//! * [`config`] — session and per-processor configuration, including the
//!   [`config::Behavior`] catalogue of deviant strategies (equivocators,
//!   misreporters, slackers, cheating originators, payment corrupters,
//!   false accusers).
//! * [`runtime`] — a threaded message-passing execution: one OS thread per
//!   processor plus the referee, connected by channels that model the
//!   tamper-proof network with atomic broadcast; every message is counted
//!   (experiment E10, Theorem 5.4 Θ(m²)).
//! * [`referee`] — evidence types and adjudication, fines and reward
//!   distribution (Lemmas 5.1–5.2, Theorem 5.1).
//! * [`ledger`] — conservation-checked accounting of payments, fines and
//!   rewards.
//! * [`fault`] — liveness faults the paper assumes away: per-processor
//!   crash/omission/delay/garbage injection plans, deadline-bounded phase
//!   detection, and the per-session [`fault::DegradationReport`]. A
//!   defaulted participant is fined and re-solved around instead of
//!   stranding its peers at a phase barrier.
//!
//! ```no_run
//! use dls_protocol::config::{Behavior, ProcessorConfig, SessionConfig};
//! use dls_dlt::SystemModel;
//!
//! let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.2)
//!     .processor(ProcessorConfig::new(1.0, Behavior::Compliant))
//!     .processor(ProcessorConfig::new(2.0, Behavior::Misreport { factor: 1.5 }))
//!     .processor(ProcessorConfig::new(3.0, Behavior::Compliant))
//!     .seed(42)
//!     .build()
//!     .unwrap();
//! let outcome = dls_protocol::runtime::run_session(&cfg).unwrap();
//! println!("status: {:?}", outcome.status);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blocks;
pub mod centralized;
pub mod config;
pub mod executor;
pub mod fault;
pub mod ledger;
pub mod messages;
pub mod multiload;
pub mod referee;
pub mod runtime;
pub mod sched;
pub mod service;
pub mod supervisor;

pub use config::{Behavior, ProcessorConfig, SessionConfig};
pub use executor::{run_session_pooled, run_session_pooled_with, run_session_vm, ProcessorState};
pub use multiload::{
    MultiLoadSession, MultiLoadSessionBuilder, MultiSessionError, MultiSessionOutcome,
};
pub use service::{
    AdmissionPolicy, Completed, Placement, ServiceConfig, ServiceError, ServiceHandle, StartError,
    SubmitError,
};
pub use supervisor::{ServiceFault, ServiceFaultPlan, ServiceStats};
pub use fault::{DegradationReport, FaultKind, FaultPlan, LivenessFault};
pub use runtime::{
    run_session, ActorRole, ProtocolViolation, RunError, SessionOutcome, SessionStatus,
    ViolationKind,
};
