//! Protocol messages. Every body that crosses the (simulated) network is
//! wrapped in a [`Signed`] envelope, matching the paper's `S_β(m)` notation.

use crate::blocks::SignedBlock;
use dls_crypto::Signed;
use serde::Serialize;

/// A processor's signed bid `S_{P_i}(b_i, P_i)` (Bidding phase).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BidBody {
    /// 0-based processor index `i`.
    pub processor: usize,
    /// The reported unit-processing time `b_i`.
    pub bid: f64,
}

/// The load grant the originator sends to one processor (Allocating phase).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GrantBody {
    /// Recipient processor index.
    pub to: usize,
    /// The user-signed blocks assigned to the recipient.
    pub blocks: Vec<SignedBlock>,
}

/// One entry of the payment vector `Q`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct PaymentEntry {
    /// Compensation `C_i`.
    pub compensation: f64,
    /// Bonus `B_i`.
    pub bonus: f64,
}

impl PaymentEntry {
    /// Total payment `Q_i`.
    pub fn total(&self) -> f64 {
        self.compensation + self.bonus
    }
}

/// A processor's signed payment vector `S_{P_i}(P_i, Q)` (Computing
/// Payments phase).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PaymentVectorBody {
    /// Sender index.
    pub processor: usize,
    /// The full vector `Q = (Q_1 … Q_m)`.
    pub q: Vec<PaymentEntry>,
}

/// Evidence attached to a referee report.
#[derive(Debug, Clone)]
pub enum Evidence {
    /// Two authenticated, contradictory bids from the same processor
    /// (Bidding-phase offence).
    Equivocation {
        /// First signed bid.
        first: Signed<BidBody>,
        /// Second, different signed bid from the same signer.
        second: Signed<BidBody>,
    },
    /// The reporter's grant disagrees with the allocation it computed.
    /// Both parties' signed bid vectors allow the referee to recompute
    /// `α(b)`; the signed grant proves what the originator actually sent.
    WrongAllocation {
        /// The signed grant the reporter received.
        grant: Signed<GrantBody>,
        /// The signed bids the reporter collected (its view of `b`).
        bid_view: Vec<Signed<BidBody>>,
        /// Blocks the reporter expected (from its own α computation).
        expected_blocks: usize,
    },
}

/// A processor's end-of-phase message to the referee: either "no problem"
/// or an accusation with evidence.
#[derive(Debug, Clone)]
pub enum PhaseReport {
    /// Nothing to report.
    Ok,
    /// Accusation with evidence.
    Accuse {
        /// The accused processor.
        accused: usize,
        /// Supporting evidence.
        evidence: Evidence,
    },
}

/// Everything a processor can put on the wire.
#[derive(Debug, Clone)]
pub enum Msg {
    /// Broadcast signed bid.
    Bid(Signed<BidBody>),
    /// Unicast load grant from the originator.
    Grant(Signed<GrantBody>),
    /// Tamper-proof meter reading `φ_i` forwarded to the referee. This
    /// message is emitted by the *meter hardware*, not the strategic
    /// processor, so its value is outside the agent's control (§4,
    /// Processing phase).
    Meter {
        /// Metered processor.
        of: usize,
        /// Measured execution time `φ_i`.
        phi: f64,
    },
    /// Referee: per-processor measured execution times `(φ_1…φ_m)`.
    Meters(Vec<f64>),
    /// Signed payment vector to the referee.
    PaymentVector(Signed<PaymentVectorBody>),
    /// Referee → all: payment vectors disagreed; submit your signed bid
    /// views (§4: "the bids are provided to the referee which computes the
    /// payments").
    BidRequest,
    /// Processor → referee: its collected signed bid vector.
    BidView {
        /// Submitting processor.
        from: usize,
        /// The signed bids it collected during the Bidding phase.
        view: Vec<Signed<BidBody>>,
    },
    /// End-of-phase report to the referee.
    Report {
        /// Reporting processor.
        from: usize,
        /// The report.
        report: PhaseReport,
    },
    /// Referee verdict broadcast after each phase.
    Verdict(Verdict),
    /// A syntactically invalid payload (failed deserialization / garbage
    /// signature envelope). Receivers drop it at receipt, exactly like a
    /// message that fails verification (§4); the referee additionally
    /// remembers who sent it so a garbage fault is classified as such
    /// rather than as plain silence.
    Garbage {
        /// Claimed sender.
        from: usize,
    },
}

impl Msg {
    /// Rough wire size in bytes: canonical body bytes + signature, or a
    /// fixed overhead for unsigned control messages. Used by the
    /// communication-complexity accounting (Theorem 5.4).
    pub fn wire_size(&self) -> usize {
        fn signed_size<T: Serialize>(s: &Signed<T>) -> usize {
            dls_crypto::canon::to_bytes(s.body_unverified())
                .map(|b| b.len())
                .unwrap_or(0)
                + s.signature().0.len()
        }
        match self {
            Msg::Bid(s) => signed_size(s),
            Msg::Grant(s) => signed_size(s),
            Msg::Meter { .. } => 16,
            Msg::Meters(v) => 8 * v.len() + 8,
            Msg::PaymentVector(s) => signed_size(s),
            Msg::BidRequest => 8,
            Msg::BidView { view, .. } => {
                8 + view.iter().map(signed_size).sum::<usize>()
            }
            Msg::Report { report, .. } => match report {
                PhaseReport::Ok => 16,
                PhaseReport::Accuse { evidence, .. } => match evidence {
                    Evidence::Equivocation { first, second } => {
                        16 + signed_size(first) + signed_size(second)
                    }
                    Evidence::WrongAllocation {
                        grant, bid_view, ..
                    } => {
                        16 + signed_size(grant)
                            + bid_view.iter().map(signed_size).sum::<usize>()
                    }
                },
            },
            Msg::Verdict(v) => 16 + 16 * (v.fined.len() + v.rewards.len()),
            // An opaque blob the size of a small signed frame.
            Msg::Garbage { .. } => 48,
        }
    }

    /// Category for the per-phase communication accounting.
    pub fn category(&self) -> MsgCategory {
        match self {
            Msg::Bid(_) => MsgCategory::Bid,
            Msg::Grant(_) => MsgCategory::Grant,
            Msg::Meter { .. } | Msg::Meters(_) => MsgCategory::Control,
            Msg::PaymentVector(_) => MsgCategory::PaymentVector,
            Msg::BidRequest | Msg::BidView { .. } => MsgCategory::Control,
            Msg::Report { .. } => MsgCategory::Control,
            Msg::Verdict(_) => MsgCategory::Control,
            Msg::Garbage { .. } => MsgCategory::Control,
        }
    }
}

/// Coarse message classes used by experiment E10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MsgCategory {
    /// Bidding-phase broadcasts (Θ(m²) deliveries).
    Bid,
    /// Load grants (Θ(m) messages, payload ∝ blocks).
    Grant,
    /// Payment vectors (Θ(m) messages × Θ(m) size = Θ(m²) cost — the
    /// dominant term of Theorem 5.4).
    PaymentVector,
    /// Referee coordination (reports, verdicts, meters).
    Control,
}

/// The referee's decision at a phase boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Verdict {
    /// Whether the protocol continues to the next phase.
    pub proceed: bool,
    /// Processors fined in this phase and the amount each pays.
    pub fined: Vec<(usize, f64)>,
    /// Rewards/compensation paid out of the fine pool `(processor,
    /// amount)`.
    pub rewards: Vec<(usize, f64)>,
}

impl Verdict {
    /// The all-clear verdict.
    pub fn ok() -> Self {
        Verdict {
            proceed: true,
            fined: Vec::new(),
            rewards: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payment_entry_total() {
        let e = PaymentEntry {
            compensation: 1.5,
            bonus: -0.25,
        };
        assert_eq!(e.total(), 1.25);
    }

    #[test]
    fn verdict_ok_proceeds() {
        let v = Verdict::ok();
        assert!(v.proceed);
        assert!(v.fined.is_empty());
    }

    #[test]
    fn wire_sizes_positive_and_ordered() {
        let meters = Msg::Meters(vec![1.0; 8]);
        assert!(meters.wire_size() > 0);
        let big = Msg::Meters(vec![1.0; 64]);
        assert!(big.wire_size() > meters.wire_size());
    }

    #[test]
    fn categories() {
        assert_eq!(Msg::Meters(vec![]).category(), MsgCategory::Control);
        assert_eq!(
            Msg::Report {
                from: 0,
                report: PhaseReport::Ok
            }
            .category(),
            MsgCategory::Control
        );
    }
}
