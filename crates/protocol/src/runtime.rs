//! Threaded message-passing execution of DLS-BL-NCP.
//!
//! One OS thread per strategic processor plus one for the referee,
//! connected by channels that model the paper's network assumptions:
//!
//! * **tamper-proof network / protocols** — transport is provided by the
//!   runtime; agents can choose *what* to send, never to alter delivery;
//! * **reliable atomic broadcast** — a broadcast is delivered to every peer
//!   under a lock, so all receivers observe broadcasts in a consistent
//!   order and a sender cannot transmit different values within one
//!   broadcast (equivocation requires *two* broadcasts, which peers detect
//!   exactly as in §4);
//! * **lock-step phases** — threads synchronize on a barrier at each phase
//!   boundary, modelling the known communication rounds of the protocol.
//!
//! Every message is counted by category and (approximate) wire size, which
//! is the measurement behind experiment E10 (Theorem 5.4: Θ(m²)).
//!
//! ## Deviations faithfully represented
//!
//! The [`Behavior`] catalogue drives the strategic hooks: what to bid
//! (twice, for equivocators), how many blocks to grant, what payment
//! vector to submit, and whether to raise false accusations. Everything
//! else — signatures, meters, transport — is outside agent control.

use crate::blocks::{integer_allocation, DataSet, USER_IDENTITY};
use crate::config::{Behavior, ProcessorConfig, SessionConfig};
use crate::ledger::{Account, Ledger, TransferReason};
use crate::messages::{
    BidBody, Evidence, GrantBody, Msg, MsgCategory, PaymentEntry, PaymentVectorBody, PhaseReport,
    Verdict,
};
use crate::referee::{Phase, Referee};
use crossbeam::channel::{unbounded, Receiver, Sender};
use dls_crypto::pki::{KeyPair, Registry};
use dls_crypto::Signed;
use dls_dlt::{BusParams, SystemModel};
use dls_netsim::{simulate, SessionSpec as NetSessionSpec, Timeline};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors when running a session.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The protocol needs at least two *participating* processors.
    TooFewParticipants,
    /// The CP model has a trusted external originator and is not subject to
    /// the NCP protocol; use `dls-mechanism` directly for CP baselines.
    UnsupportedModel,
    /// Key generation failed (modulus too small).
    Crypto(String),
    /// A lock-step invariant broke at runtime: an expected message was
    /// missing at a phase boundary, an internal index was out of range, or
    /// an actor thread failed. Sessions surface this instead of panicking
    /// (a panicking actor would strand its peers at the next barrier).
    Protocol(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::TooFewParticipants => {
                write!(f, "fewer than two processors participate")
            }
            RunError::UnsupportedModel => write!(
                f,
                "the NCP protocol runs on NCP-FE / NCP-NFE; CP has a trusted control processor"
            ),
            RunError::Crypto(e) => write!(f, "crypto setup failed: {e}"),
            RunError::Protocol(e) => write!(f, "protocol runtime failure: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// A missing-message error at a lock-step phase boundary.
fn missing(what: &str) -> RunError {
    RunError::Protocol(format!("expected {what} missing at phase boundary"))
}

/// Per-category message accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MessageStats {
    counts: BTreeMap<&'static str, (u64, u64)>,
}

impl MessageStats {
    fn record(&mut self, category: MsgCategory, copies: u64, bytes_each: u64) {
        let key = match category {
            MsgCategory::Bid => "bid",
            MsgCategory::Grant => "grant",
            MsgCategory::PaymentVector => "payment-vector",
            MsgCategory::Control => "control",
        };
        let e = self.counts.entry(key).or_insert((0, 0));
        e.0 += copies;
        e.1 += copies * bytes_each;
    }

    /// Records `copies` deliveries of a message (public entry point for
    /// alternative transports, e.g. the centralized baseline).
    pub fn record_public(&mut self, category: MsgCategory, copies: u64, bytes_each: u64) {
        self.record(category, copies, bytes_each);
    }

    /// `(message count, total bytes)` for a category key
    /// (`"bid"`, `"grant"`, `"payment-vector"`, `"control"`).
    pub fn category(&self, key: &str) -> (u64, u64) {
        self.counts.get(key).copied().unwrap_or((0, 0))
    }

    /// Total messages delivered.
    pub fn total_messages(&self) -> u64 {
        self.counts.values().map(|(c, _)| c).sum()
    }

    /// Total bytes delivered.
    pub fn total_bytes(&self) -> u64 {
        self.counts.values().map(|(_, b)| b).sum()
    }
}

/// Outcome status of a session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionStatus {
    /// All phases completed, no fines.
    Completed,
    /// The work completed but payment-phase deviants were fined.
    CompletedWithFines,
    /// The protocol terminated early at `phase` because fines were raised.
    Aborted {
        /// Phase at which the verdict terminated the session.
        phase: Phase,
    },
}

/// Per-processor results, indexed like the *original* configuration.
#[derive(Debug, Clone)]
pub struct ProcessorOutcome {
    /// The configuration this processor played.
    pub config: ProcessorConfig,
    /// `false` for [`Behavior::NonParticipant`].
    pub participated: bool,
    /// First broadcast bid, if any.
    pub bid: Option<f64>,
    /// Real-valued allocation fraction `α_i(b)` (0 if the session aborted
    /// during bidding or the processor did not participate).
    pub alloc_fraction: f64,
    /// Blocks actually granted.
    pub blocks_granted: usize,
    /// Tamper-proof meter reading `φ_i` (0 unless processing ran).
    pub meter: f64,
    /// Final payment entry from the forwarded vector `Q`, if the session
    /// reached payments.
    pub payment: Option<PaymentEntry>,
    /// Total fines paid.
    pub fined: f64,
    /// Total rewards received from the fine pool.
    pub rewarded: f64,
    /// Cost incurred (computation time actually spent).
    pub cost: f64,
    /// Net utility: ledger balance − cost.
    pub utility: f64,
}

/// Everything a session produced.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Completion status.
    pub status: SessionStatus,
    /// Per-processor outcomes (original indexing).
    pub processors: Vec<ProcessorOutcome>,
    /// The fine `F` in force.
    pub fine: f64,
    /// Message accounting.
    pub messages: MessageStats,
    /// Conservation-checked money movements.
    pub ledger: Ledger,
    /// Realized execution timeline (only when processing ran).
    pub timeline: Option<Timeline>,
    /// Realized makespan (only when processing ran).
    pub makespan: Option<f64>,
}

impl SessionOutcome {
    /// Utility of processor `i` (original indexing).
    ///
    /// # Panics
    /// Panics if `i` is not an original processor index, like any slice
    /// access with a caller-supplied index.
    pub fn utility(&self, i: usize) -> f64 {
        // dls-lint: allow(no-panic-in-protocol) -- public accessor with a documented index contract; callers pass indices from the configs they built
        self.processors[i].utility
    }

    /// Indices fined during the session.
    pub fn fined_processors(&self) -> Vec<usize> {
        self.processors
            .iter()
            .enumerate()
            .filter(|(_, p)| p.fined > 0.0)
            .map(|(i, _)| i)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

struct Net {
    proc_txs: Vec<Sender<Msg>>,
    referee_tx: Sender<(usize, Msg)>,
    stats: Mutex<MessageStats>,
    bcast: Mutex<()>,
}

impl Net {
    fn record(&self, msg: &Msg, copies: u64) {
        self.stats
            .lock()
            .record(msg.category(), copies, msg.wire_size() as u64);
    }

    /// Atomic broadcast from processor `from` to all other processors.
    fn broadcast(&self, from: usize, msg: Msg) {
        let _g = self.bcast.lock();
        let copies = self.proc_txs.len().saturating_sub(1) as u64;
        self.record(&msg, copies);
        for (j, tx) in self.proc_txs.iter().enumerate() {
            if j != from {
                let _ = tx.send(msg.clone());
            }
        }
    }

    /// Referee broadcast to all processors.
    fn broadcast_referee(&self, msg: Msg) {
        let _g = self.bcast.lock();
        self.record(&msg, self.proc_txs.len() as u64);
        for tx in &self.proc_txs {
            let _ = tx.send(msg.clone());
        }
    }

    /// Unicast between processors. A message addressed outside the active
    /// set is dropped, exactly like a frame sent to an absent station.
    fn unicast(&self, to: usize, msg: Msg) {
        self.record(&msg, 1);
        if let Some(tx) = self.proc_txs.get(to) {
            let _ = tx.send(msg);
        }
    }

    /// Processor (or meter) → referee.
    fn to_referee(&self, from: usize, msg: Msg) {
        self.record(&msg, 1);
        let _ = self.referee_tx.send((from, msg));
    }
}

/// A reusable phase barrier that can be aborted.
///
/// `std::sync::Barrier` deadlocks the whole session if one actor exits
/// early (error or panic): everyone else parks at the next boundary with
/// one party missing, forever. This barrier adds [`PhaseBarrier::abort`],
/// which wakes every current and future waiter with the abort reason so
/// all actors unwind cleanly instead.
struct PhaseBarrier {
    state: Mutex<BarrierState>,
    cvar: Condvar,
    parties: usize,
}

struct BarrierState {
    arrived: usize,
    generation: u64,
    aborted: Option<String>,
}

impl PhaseBarrier {
    fn new(parties: usize) -> Self {
        PhaseBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                aborted: None,
            }),
            cvar: Condvar::new(),
            parties,
        }
    }

    /// Blocks until all parties arrive (Ok) or the session is aborted
    /// (Err carrying the first abort reason).
    fn wait(&self) -> Result<(), RunError> {
        let mut st = self.state.lock();
        if let Some(reason) = &st.aborted {
            return Err(RunError::Protocol(reason.clone()));
        }
        st.arrived += 1;
        if st.arrived == self.parties {
            st.arrived = 0;
            st.generation += 1;
            self.cvar.notify_all();
            return Ok(());
        }
        let generation = st.generation;
        while st.generation == generation && st.aborted.is_none() {
            self.cvar.wait(&mut st);
        }
        match &st.aborted {
            Some(reason) => Err(RunError::Protocol(reason.clone())),
            None => Ok(()),
        }
    }

    /// Marks the session aborted (first reason wins) and wakes all waiters.
    fn abort(&self, reason: &str) {
        let mut st = self.state.lock();
        if st.aborted.is_none() {
            st.aborted = Some(reason.to_string());
        }
        self.cvar.notify_all();
    }
}

/// Drop guard: if an actor unwinds by panic (e.g. from a dependency), the
/// barrier is aborted so the remaining actors do not hang.
struct AbortOnPanic(Arc<PhaseBarrier>);

impl Drop for AbortOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort("an actor thread panicked");
        }
    }
}

/// A processor's inbox with a hold-back buffer: draining for one kind of
/// message must not discard messages that belong to a later step (e.g. a
/// fast originator's grant can land while a slow peer is still consuming
/// the bidding verdict).
struct ProcInbox {
    rx: Receiver<Msg>,
    pending: std::collections::VecDeque<Msg>,
}

impl ProcInbox {
    fn new(rx: Receiver<Msg>) -> Self {
        ProcInbox {
            rx,
            pending: std::collections::VecDeque::new(),
        }
    }

    /// All currently available messages (pending buffer first).
    fn drain(&mut self) -> Vec<Msg> {
        let mut out: Vec<Msg> = self.pending.drain(..).collect();
        out.extend(self.rx.try_iter());
        out
    }

    /// Consumes and returns the first message matched by `take`, holding
    /// every other available message back for later drains. Returns `None`
    /// when no available message matches; the lock-step phase structure
    /// guarantees the expected message has been sent before the barrier
    /// this is called behind, so callers treat `None` as a protocol error.
    fn take_first<T>(&mut self, mut take: impl FnMut(&Msg) -> Option<T>) -> Option<T> {
        // Check held-back messages first.
        let held = self
            .pending
            .iter()
            .enumerate()
            .find_map(|(idx, msg)| take(msg).map(|v| (idx, v)));
        if let Some((idx, v)) = held {
            self.pending.remove(idx);
            return Some(v);
        }
        for msg in self.rx.try_iter() {
            match take(&msg) {
                Some(v) => return Some(v),
                None => self.pending.push_back(msg),
            }
        }
        None
    }

    /// Consumes every available message matched by `take`, holding the
    /// rest back.
    fn take_all<T>(&mut self, mut take: impl FnMut(&Msg) -> Option<T>) -> Vec<T> {
        let msgs = self.drain();
        let mut out = Vec::new();
        for msg in msgs {
            match take(&msg) {
                Some(v) => out.push(v),
                None => self.pending.push_back(msg),
            }
        }
        out
    }

    fn take_verdict(&mut self) -> Option<Verdict> {
        self.take_first(|m| match m {
            Msg::Verdict(v) => Some(v.clone()),
            _ => None,
        })
    }
}

fn drain_referee(rx: &Receiver<(usize, Msg)>) -> Vec<(usize, Msg)> {
    rx.try_iter().collect()
}

// ---------------------------------------------------------------------------
// The session runner
// ---------------------------------------------------------------------------

/// Runs one DLS-BL-NCP session end to end.
///
/// Non-participants are excluded from the active market (they receive
/// utility 0, per §4); behaviours whose `victim`/`target` indices point at
/// non-participants degrade to [`Behavior::Compliant`].
pub fn run_session(cfg: &SessionConfig) -> Result<SessionOutcome, RunError> {
    if cfg.model == SystemModel::Cp {
        return Err(RunError::UnsupportedModel);
    }
    // Active set and index remapping (original -> active position).
    let active: Vec<usize> = cfg
        .processors
        .iter()
        .enumerate()
        .filter(|(_, p)| p.behavior != Behavior::NonParticipant)
        .map(|(i, _)| i)
        .collect();
    let m = active.len();
    if m < 2 {
        return Err(RunError::TooFewParticipants);
    }
    let to_active: BTreeMap<usize, usize> = active
        .iter()
        .enumerate()
        .map(|(pos, &orig)| (orig, pos))
        .collect();

    // Remap index-bearing behaviours into active coordinates. This filter
    // selects exactly the configs whose indices populate `active`, in the
    // same order.
    let procs: Vec<ProcessorConfig> = cfg
        .processors
        .iter()
        .filter(|p| p.behavior != Behavior::NonParticipant)
        .map(|p| {
            let behavior = match p.behavior {
                Behavior::ShortAllocate { victim, shortfall } => to_active
                    .get(&victim)
                    .map(|&v| Behavior::ShortAllocate {
                        victim: v,
                        shortfall,
                    })
                    .unwrap_or(Behavior::Compliant),
                Behavior::OverAllocate { victim, excess } => to_active
                    .get(&victim)
                    .map(|&v| Behavior::OverAllocate { victim: v, excess })
                    .unwrap_or(Behavior::Compliant),
                Behavior::CorruptPayments { target, factor } => to_active
                    .get(&target)
                    .map(|&t| Behavior::CorruptPayments { target: t, factor })
                    .unwrap_or(Behavior::Compliant),
                Behavior::ForgeExtraBid { impersonate } => to_active
                    .get(&impersonate)
                    .map(|&t| Behavior::ForgeExtraBid { impersonate: t })
                    .unwrap_or(Behavior::Compliant),
                other => other,
            };
            ProcessorConfig {
                true_w: p.true_w,
                behavior,
            }
        })
        .collect();

    // --- Initialization phase: PKI + user-signed data set -----------------
    // Key generation is by far the most expensive setup step; identities
    // are independent, so generate them in parallel from per-identity
    // seeds, with a process-wide cache so repeated sessions (tests,
    // benches, experiment sweeps) reuse key pairs deterministically.
    let mut identities: Vec<String> = (1..=m).map(|i| format!("P{i}")).collect();
    identities.push(USER_IDENTITY.to_string());
    let mut keys = generate_keys_cached(&identities, cfg.key_bits, cfg.seed)?;
    let user = keys
        .pop()
        .ok_or_else(|| RunError::Crypto("key generation returned no user key".into()))?;
    let registry = Registry::from_keypairs(keys.iter().chain(std::iter::once(&user)));
    let dataset = Arc::new(
        DataSet::prepare(&user, cfg.blocks, 32).map_err(|e| RunError::Crypto(e.to_string()))?,
    );

    // Only the CP model lacks an originator, and it was rejected above.
    let originator = cfg.model.originator(m).ok_or(RunError::UnsupportedModel)?;
    let referee = Referee::new(
        registry.clone(),
        cfg.model,
        cfg.z,
        m,
        cfg.fine,
        cfg.blocks,
    );

    // --- Channels, barrier, transport -------------------------------------
    let mut proc_txs = Vec::with_capacity(m);
    let mut proc_rxs = Vec::with_capacity(m);
    for _ in 0..m {
        let (tx, rx) = unbounded();
        proc_txs.push(tx);
        proc_rxs.push(rx);
    }
    let (ref_tx, ref_rx) = unbounded();
    let net = Arc::new(Net {
        proc_txs,
        referee_tx: ref_tx,
        stats: Mutex::new(MessageStats::default()),
        bcast: Mutex::new(()),
    });
    let barrier = Arc::new(PhaseBarrier::new(m + 1));

    let model = cfg.model;
    let z = cfg.z;
    let blocks_total = cfg.blocks;

    // --- Run the actors ----------------------------------------------------
    // Each actor returns a Result; a failing actor aborts the barrier so
    // the rest unwind instead of deadlocking, and `join` never panics the
    // runner (a panicked actor surfaces as `None`).
    let mut proc_joined: Vec<Option<Result<ProcResult, RunError>>> = Vec::with_capacity(m);
    let mut referee_joined: Option<Result<RefResult, RunError>> = None;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(m);
        for (i, (rx, pcfg)) in proc_rxs.into_iter().zip(&procs).enumerate() {
            let key = match keys.get(i) {
                Some(k) => k.clone(),
                None => {
                    // Unreachable (one key per identity), but if it ever
                    // happened the barrier must not wait on a thread that
                    // was never spawned.
                    barrier.abort("missing processor key");
                    proc_joined.push(Some(Err(RunError::Crypto(format!(
                        "no key generated for processor {i}"
                    )))));
                    continue;
                }
            };
            let ctx = ProcCtx {
                i,
                m,
                model,
                z,
                blocks_total,
                originator,
                cfg: *pcfg,
                key,
                registry: registry.clone(),
                net: Arc::clone(&net),
                barrier: Arc::clone(&barrier),
                rx,
                dataset: (i == originator).then(|| Arc::clone(&dataset)),
            };
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || {
                let _guard = AbortOnPanic(Arc::clone(&barrier));
                let r = processor_main(ctx);
                if let Err(e) = &r {
                    barrier.abort(&e.to_string());
                }
                r
            }));
        }
        let ref_handle = {
            let net = Arc::clone(&net);
            let barrier = Arc::clone(&barrier);
            let dataset = Arc::clone(&dataset);
            let referee = referee.clone();
            scope.spawn(move || {
                let _guard = AbortOnPanic(Arc::clone(&barrier));
                let r = referee_main(referee, m, net, Arc::clone(&barrier), ref_rx, dataset);
                if let Err(e) = &r {
                    barrier.abort(&e.to_string());
                }
                r
            })
        };
        for h in handles {
            proc_joined.push(h.join().ok());
        }
        referee_joined = ref_handle.join().ok();
    });

    let mut proc_results: Vec<ProcResult> = Vec::with_capacity(m);
    for joined in proc_joined {
        match joined {
            Some(Ok(r)) => proc_results.push(r),
            Some(Err(e)) => return Err(e),
            None => return Err(RunError::Protocol("a processor thread panicked".into())),
        }
    }
    let rr = match referee_joined {
        Some(Ok(rr)) => rr,
        Some(Err(e)) => return Err(e),
        None => return Err(RunError::Protocol("the referee thread panicked".into())),
    };

    // --- Money -------------------------------------------------------------
    // Ledger and outcomes are assembled in ORIGINAL indexing.
    let mut ledger = Ledger::new();
    // Verdict and payment indices come from `verdict_for` / the payment
    // vector, both of which only emit active positions `0..m`; a position
    // outside the active set maps to itself as a last resort so a money
    // movement is never silently dropped.
    let orig_index = |active_pos: usize| active.get(active_pos).copied().unwrap_or(active_pos);

    for (phase, verdict) in &rr.verdicts {
        let _ = phase;
        for &(i, amount) in &verdict.fined {
            ledger.transfer(
                Account::Processor(orig_index(i)),
                Account::FinePool,
                amount,
                TransferReason::Fine,
            );
        }
        for &(i, amount) in &verdict.rewards {
            ledger.transfer(
                Account::FinePool,
                Account::Processor(orig_index(i)),
                amount,
                TransferReason::Reward,
            );
        }
    }
    if let Some(q) = &rr.final_q {
        for (i, entry) in q.iter().enumerate() {
            let total = entry.total();
            if total >= 0.0 {
                ledger.transfer(
                    Account::User,
                    Account::Processor(orig_index(i)),
                    total,
                    TransferReason::Payment,
                );
            } else {
                ledger.transfer(
                    Account::Processor(orig_index(i)),
                    Account::User,
                    -total,
                    TransferReason::Payment,
                );
            }
        }
    }

    // --- Realized timeline (only when processing ran) ----------------------
    let (timeline, makespan) = if rr.meters.is_some() {
        let exec: Vec<f64> = procs.iter().map(|p| p.exec_w()).collect();
        let alloc: Vec<f64> = proc_results.iter().map(|r| r.alloc_fraction).collect();
        // Realized rates come from validated configs (finite, positive).
        let params = BusParams::new(z, exec)
            .map_err(|_| RunError::Protocol("realized execution rates invalid".into()))?;
        let tl = simulate(&NetSessionSpec::new(model, params, alloc));
        let mk = tl.makespan;
        (Some(tl), Some(mk))
    } else {
        (None, None)
    };

    // --- Per-processor outcomes in original indexing ------------------------
    let mut processors = Vec::with_capacity(cfg.m());
    for (orig, &config) in cfg.processors.iter().enumerate() {
        let outcome = match to_active.get(&orig) {
            None => ProcessorOutcome {
                config,
                participated: false,
                bid: None,
                alloc_fraction: 0.0,
                blocks_granted: 0,
                meter: 0.0,
                payment: None,
                fined: 0.0,
                rewarded: 0.0,
                cost: 0.0,
                utility: 0.0,
            },
            Some(&pos) => {
                let Some(r) = proc_results.get(pos) else {
                    return Err(RunError::Protocol(format!(
                        "active position {pos} has no processor result"
                    )));
                };
                let account = Account::Processor(orig);
                let fined: f64 = ledger
                    .journal()
                    .iter()
                    .filter(|t| t.reason == TransferReason::Fine && t.from == account)
                    .map(|t| t.amount)
                    .sum();
                let rewarded: f64 = ledger
                    .journal()
                    .iter()
                    .filter(|t| t.reason == TransferReason::Reward && t.to == account)
                    .map(|t| t.amount)
                    .sum();
                let cost = r.meter;
                let utility = ledger.balance(&account) - cost;
                ProcessorOutcome {
                    config,
                    participated: true,
                    bid: r.bid,
                    alloc_fraction: r.alloc_fraction,
                    blocks_granted: r.blocks_granted,
                    meter: r.meter,
                    payment: rr.final_q.as_ref().and_then(|q| q.get(pos).copied()),
                    fined,
                    rewarded,
                    cost,
                    utility,
                }
            }
        };
        processors.push(outcome);
    }

    let status = match rr.aborted {
        Some(phase) => SessionStatus::Aborted { phase },
        None if rr.any_fines => SessionStatus::CompletedWithFines,
        None => SessionStatus::Completed,
    };

    let messages = net.stats.lock().clone();
    Ok(SessionOutcome {
        status,
        processors,
        fine: cfg.fine,
        messages,
        ledger,
        timeline,
        makespan,
    })
}

/// Parallel, cached deterministic key generation. Each `(identity, seed,
/// bits)` triple always yields the same key pair within a process.
fn generate_keys_cached(
    identities: &[String],
    bits: usize,
    seed: u64,
) -> Result<Vec<KeyPair>, RunError> {
    type Cache = BTreeMap<(String, usize, u64), KeyPair>;
    static CACHE: Mutex<Option<Cache>> = Mutex::new(None);

    let mut misses: Vec<(usize, String)> = Vec::new();
    let mut out: Vec<Option<KeyPair>> = vec![None; identities.len()];
    {
        let mut guard = CACHE.lock();
        let cache = guard.get_or_insert_with(Cache::new);
        for (idx, (slot, id)) in out.iter_mut().zip(identities).enumerate() {
            match cache.get(&(id.clone(), bits, seed)) {
                Some(kp) => *slot = Some(kp.clone()),
                None => misses.push((idx, id.clone())),
            }
        }
    }
    if !misses.is_empty() {
        let generated: Result<Vec<(usize, Result<KeyPair, RunError>)>, RunError> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = misses
                    .iter()
                    .map(|(idx, id)| {
                        let idx = *idx;
                        let id = id.clone();
                        scope.spawn(move || {
                            // Distinct deterministic stream per identity.
                            let mut h = dls_crypto::sha256::Sha256::new();
                            h.update(&seed.to_le_bytes());
                            h.update(id.as_bytes());
                            let digest = h.finalize();
                            // Little-endian fold of the first 8 digest
                            // bytes (equals u64::from_le_bytes without the
                            // panicking slice-to-array conversion).
                            let sub_seed = digest
                                .iter()
                                .take(8)
                                .rev()
                                .fold(0u64, |acc, &b| (acc << 8) | u64::from(b));
                            let mut rng = StdRng::seed_from_u64(sub_seed);
                            let kp = KeyPair::generate(id, bits, &mut rng)
                                .map_err(|e| RunError::Crypto(e.to_string()));
                            (idx, kp)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .map_err(|_| RunError::Crypto("keygen thread panicked".into()))
                    })
                    .collect()
            });
        let mut guard = CACHE.lock();
        let cache = guard.get_or_insert_with(Cache::new);
        for (idx, kp) in generated? {
            let kp = kp?;
            cache.insert((kp.identity().to_string(), bits, seed), kp.clone());
            if let Some(slot) = out.get_mut(idx) {
                *slot = Some(kp);
            }
        }
    }
    out.into_iter()
        .map(|kp| kp.ok_or_else(|| RunError::Crypto("missing generated key".into())))
        .collect()
}

// ---------------------------------------------------------------------------
// Processor actor
// ---------------------------------------------------------------------------

struct ProcCtx {
    i: usize,
    m: usize,
    model: SystemModel,
    z: f64,
    blocks_total: usize,
    originator: usize,
    cfg: ProcessorConfig,
    key: KeyPair,
    registry: Registry,
    net: Arc<Net>,
    barrier: Arc<PhaseBarrier>,
    rx: Receiver<Msg>,
    /// The user's data set — held only by the originating processor.
    dataset: Option<Arc<DataSet>>,
}

#[derive(Debug, Clone)]
struct ProcResult {
    bid: Option<f64>,
    alloc_fraction: f64,
    blocks_granted: usize,
    meter: f64,
}

fn processor_main(ctx: ProcCtx) -> Result<ProcResult, RunError> {
    let ProcCtx {
        i,
        m,
        model,
        z,
        blocks_total,
        originator,
        cfg,
        key,
        registry,
        net,
        barrier,
        rx,
        dataset,
    } = ctx;
    let sign_err = |e: dls_crypto::pki::SignatureError| RunError::Crypto(e.to_string());
    let mut inbox = ProcInbox::new(rx);
    let mut result = ProcResult {
        bid: None,
        alloc_fraction: 0.0,
        blocks_granted: 0,
        meter: 0.0,
    };

    // ---- Phase 1: Bidding --------------------------------------------------
    let my_bid = cfg
        .bid()
        .ok_or_else(|| RunError::Protocol("a non-participant reached the bidding phase".into()))?;
    result.bid = Some(my_bid);
    let first = key
        .sign(BidBody {
            processor: i,
            bid: my_bid,
        })
        .map_err(sign_err)?;
    net.broadcast(i, Msg::Bid(first.clone()));
    match cfg.behavior {
        Behavior::EquivocateBids { factor } => {
            let second = key
                .sign(BidBody {
                    processor: i,
                    bid: my_bid * factor,
                })
                .map_err(sign_err)?;
            net.broadcast(i, Msg::Bid(second));
        }
        Behavior::ForgeExtraBid { impersonate } => {
            // A bid claiming to come from someone else, with garbage
            // signature bytes (signature forgery is assumed impossible,
            // Lemma 5.2). Receivers must discard it.
            let forged = Signed::forge(
                BidBody {
                    processor: impersonate,
                    bid: 0.01,
                },
                format!("P{}", impersonate + 1),
                vec![0x5a; 48],
            );
            net.broadcast(i, Msg::Bid(forged));
        }
        _ => {}
    }
    barrier.wait()?; // B1: all bids delivered

    // Collect bids; note equivocators.
    let mut bid_view: Vec<Option<Signed<BidBody>>> = vec![None; m];
    if let Some(slot) = bid_view.get_mut(i) {
        *slot = Some(first);
    }
    let mut equivocation: Option<(usize, Signed<BidBody>, Signed<BidBody>)> = None;
    let incoming_bids = inbox.take_all(|m| match m {
        Msg::Bid(signed) => Some(signed.clone()),
        _ => None,
    });
    for signed in incoming_bids {
        let Ok(body) = signed.verify(&registry) else {
            continue; // failed verification: discarded (§4)
        };
        let sender = body.processor;
        if signed.signer() != format!("P{}", sender + 1) {
            continue;
        }
        // Validate the bid value at receipt: only finite positive rates
        // form valid bus parameters, so everything downstream (α, counts,
        // payments) is infallible on the agreed vector. An invalid value
        // is discarded like a failed signature.
        if !(body.bid.is_finite() && body.bid > 0.0) {
            continue;
        }
        // `get_mut` also rejects out-of-range sender indices.
        let Some(slot) = bid_view.get_mut(sender) else {
            continue;
        };
        if let Some(existing) = slot {
            if existing.body_unverified() != signed.body_unverified() {
                equivocation = Some((sender, existing.clone(), signed));
            }
        } else {
            *slot = Some(signed);
        }
    }
    let report = match &equivocation {
        Some((who, a, b)) => PhaseReport::Accuse {
            accused: *who,
            evidence: Evidence::Equivocation {
                first: a.clone(),
                second: b.clone(),
            },
        },
        None => PhaseReport::Ok,
    };
    net.to_referee(i, Msg::Report { from: i, report });
    barrier.wait()?; // B2: reports in
    barrier.wait()?; // B3: verdict broadcast
    let verdict = inbox.take_verdict().ok_or_else(|| missing("bidding verdict"))?;
    if !verdict.proceed {
        return Ok(result);
    }

    // Everyone has exactly one bid per peer now (otherwise the session
    // would have aborted); assemble the agreed bid vector.
    let mut signed_bids: Vec<Signed<BidBody>> = Vec::with_capacity(m);
    for b in bid_view {
        signed_bids.push(b.ok_or_else(|| missing("peer bid after clean bidding phase"))?);
    }
    let bids: Vec<f64> = signed_bids
        .iter()
        .map(|s| s.body_unverified().bid)
        .collect();
    // Infallible: every collected bid was validated finite-positive above.
    let params = BusParams::new(z, bids.clone())
        .map_err(|_| RunError::Protocol("agreed bids do not form valid bus parameters".into()))?;
    let alpha = dls_dlt::optimal::fractions(model, &params);
    let counts = integer_allocation(&alpha, blocks_total);
    result.alloc_fraction = alpha.get(i).copied().unwrap_or(0.0);

    // ---- Phase 2: Allocating load -------------------------------------------
    let mut my_blocks: Vec<crate::blocks::SignedBlock> = Vec::new();
    if i == originator {
        // The originator holds the data set (it received it from the user
        // out of band). Deviant originators tamper with the counts here.
        let dataset = dataset
            .as_ref()
            .ok_or_else(|| RunError::Protocol("originator is missing the data set".into()))?;
        let grants = dataset.split(&counts);
        for (to, blocks) in grants.into_iter().enumerate() {
            if to == i {
                my_blocks = blocks;
                continue;
            }
            let mut blocks = blocks;
            match cfg.behavior {
                Behavior::ShortAllocate { victim, shortfall } if victim == to => {
                    let keep = blocks.len().saturating_sub(shortfall);
                    blocks.truncate(keep);
                }
                Behavior::OverAllocate { victim, excess } if victim == to => {
                    // Pad with duplicates of the victim's first block (or
                    // block 0 of the data set when the grant is empty).
                    if let Some(pad) = blocks.first().or_else(|| dataset.blocks().first()).cloned()
                    {
                        for _ in 0..excess {
                            blocks.push(pad.clone());
                        }
                    }
                }
                _ => {}
            }
            let grant = key.sign(GrantBody { to, blocks }).map_err(sign_err)?;
            net.unicast(to, Msg::Grant(grant));
        }
        result.blocks_granted = my_blocks.len();
    }
    barrier.wait()?; // B4: grants delivered

    let mut alloc_report = PhaseReport::Ok;
    if i != originator {
        let granted: Option<Signed<GrantBody>> = inbox
            .take_all(|m| match m {
                Msg::Grant(g) => Some(g.clone()),
                _ => None,
            })
            .pop();
        match granted {
            Some(grant) => {
                let valid_blocks = grant
                    .verify(&registry)
                    .map(|body| {
                        body.blocks
                            .iter()
                            .filter(|b| b.verify(&registry).is_ok())
                            .count()
                    })
                    .unwrap_or(0);
                result.blocks_granted = valid_blocks;
                my_blocks = grant.body_unverified().blocks.clone();
                let expected = counts.get(i).copied().unwrap_or(0);
                let mismatch = valid_blocks != expected;
                let false_accusation =
                    cfg.behavior == Behavior::FalselyAccuseAllocation && !mismatch;
                if mismatch || false_accusation {
                    alloc_report = PhaseReport::Accuse {
                        accused: originator,
                        evidence: Evidence::WrongAllocation {
                            grant: grant.clone(),
                            bid_view: signed_bids.clone(),
                            expected_blocks: expected,
                        },
                    };
                }
            }
            None => {
                // No grant at all: report with an empty grant is impossible
                // (nothing signed to show); in the paper the referee mediates
                // load-unit delivery. We model it as a mismatch report with
                // the bid view only — representable as expected > 0 granted 0
                // via a self-signed empty grant placeholder is NOT valid
                // evidence, so instead the processor stays silent and the
                // originator's other victims carry the accusation. With at
                // least one block per processor this branch is unreachable
                // for the behaviours in the catalogue.
            }
        }
    }
    net.to_referee(
        i,
        Msg::Report {
            from: i,
            report: alloc_report,
        },
    );
    barrier.wait()?; // B5: allocation reports in
    barrier.wait()?; // B6: verdict broadcast
    let verdict = inbox
        .take_verdict()
        .ok_or_else(|| missing("allocation verdict"))?;
    if !verdict.proceed {
        return Ok(result);
    }

    // ---- Phase 3: Processing -------------------------------------------------
    // The tamper-proof meter measures the time actually spent computing:
    // φ_i = (granted blocks / total) · w̃_i. The agent cannot influence this
    // message (the runtime emits it from the configuration, not from any
    // strategy hook).
    let real_fraction = my_blocks.len() as f64 / blocks_total as f64;
    let phi = real_fraction * cfg.exec_w();
    result.meter = phi;
    net.to_referee(i, Msg::Meter { of: i, phi });
    barrier.wait()?; // B7: meters in
    barrier.wait()?; // B8: meters broadcast
    let meters: Vec<f64> = inbox
        .take_first(|m| match m {
            Msg::Meters(v) => Some(v.clone()),
            _ => None,
        })
        .ok_or_else(|| missing("meter vector"))?;

    // ---- Phase 4: Computing payments ------------------------------------------
    // w̃_j = φ_j / α_j (per §4, Computing Payments).
    let observed: Vec<f64> = meters
        .iter()
        .zip(&alpha)
        .map(|(phi, a)| if *a > 0.0 { phi / a } else { 0.0 })
        .collect();
    // Guard degenerate observed rates (zero-block processors) with the bid.
    let observed: Vec<f64> = observed
        .iter()
        .zip(&bids)
        .map(|(o, b)| if *o > 0.0 { *o } else { *b })
        .collect();
    let mut q: Vec<PaymentEntry> =
        dls_mechanism::compute_payments(model, &params, &alpha, &observed)
            .into_iter()
            .map(|p| PaymentEntry {
                compensation: p.compensation,
                bonus: p.bonus,
            })
            .collect();
    if let Behavior::CorruptPayments { target, factor } = cfg.behavior {
        if let Some(entry) = q.get_mut(target) {
            entry.compensation *= factor;
        }
    }
    let pv = key
        .sign(PaymentVectorBody { processor: i, q })
        .map_err(sign_err)?;
    net.to_referee(i, Msg::PaymentVector(pv));
    barrier.wait()?; // B9: vectors in
    barrier.wait()?; // B10: equality verdict or bid request
    let bid_request = !inbox
        .take_all(|m| matches!(m, Msg::BidRequest).then_some(()))
        .is_empty();
    if bid_request {
        net.to_referee(
            i,
            Msg::BidView {
                from: i,
                view: signed_bids.clone(),
            },
        );
    }
    barrier.wait()?; // B11: bid views in (possibly none)
    barrier.wait()?; // B12: final verdict
    let _ = inbox.take_verdict();
    Ok(result)
}

// ---------------------------------------------------------------------------
// Referee actor
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct RefResult {
    aborted: Option<Phase>,
    any_fines: bool,
    verdicts: Vec<(Phase, Verdict)>,
    meters: Option<Vec<f64>>,
    final_q: Option<Vec<PaymentEntry>>,
}

fn referee_main(
    referee: Referee,
    m: usize,
    net: Arc<Net>,
    barrier: Arc<PhaseBarrier>,
    rx: Receiver<(usize, Msg)>,
    dataset: Arc<DataSet>,
) -> Result<RefResult, RunError> {
    let mut result = RefResult {
        aborted: None,
        any_fines: false,
        verdicts: Vec::new(),
        meters: None,
        final_q: None,
    };

    // ---- Bidding ----
    barrier.wait()?; // B1
    barrier.wait()?; // B2: reports are in
    let reports = collect_reports(&rx);
    let verdict = referee.adjudicate_bidding(&reports);
    record_verdict(&mut result, Phase::Bidding, &verdict);
    net.broadcast_referee(Msg::Verdict(verdict.clone()));
    barrier.wait()?; // B3
    if !verdict.proceed {
        result.aborted = Some(Phase::Bidding);
        return Ok(result);
    }

    // ---- Allocating ----
    barrier.wait()?; // B4
    barrier.wait()?; // B5: allocation reports in
    let reports = collect_reports(&rx);
    let verdict = referee.adjudicate_allocation(&reports, &dataset);
    record_verdict(&mut result, Phase::Allocating, &verdict);
    net.broadcast_referee(Msg::Verdict(verdict.clone()));
    barrier.wait()?; // B6
    if !verdict.proceed {
        result.aborted = Some(Phase::Allocating);
        return Ok(result);
    }

    // ---- Processing ----
    barrier.wait()?; // B7: meters in
    let mut meters = vec![0.0; m];
    for (_, msg) in drain_referee(&rx) {
        if let Msg::Meter { of, phi } = msg {
            // `get_mut` discards meter readings with an out-of-range
            // subject instead of tearing the session down; the runtime
            // emits these from validated indices.
            if let Some(slot) = meters.get_mut(of) {
                *slot = phi;
            }
        }
    }
    result.meters = Some(meters.clone());
    net.broadcast_referee(Msg::Meters(meters.clone()));
    barrier.wait()?; // B8

    // ---- Payments ----
    barrier.wait()?; // B9: payment vectors in
    let mut vectors = Vec::new();
    for (_, msg) in drain_referee(&rx) {
        if let Msg::PaymentVector(v) = msg {
            vectors.push(v);
        }
    }
    // First, the cheap equality check (no processor parameters needed).
    let agreed = if vectors_all_equal(&vectors, m, &referee) {
        vectors.first()
    } else {
        None
    };
    if let Some(first) = agreed {
        // Forward the agreed vector.
        let q = first.body_unverified().q.clone();
        result.final_q = Some(q);
        net.broadcast_referee(Msg::Verdict(Verdict::ok()));
        record_verdict(&mut result, Phase::Payments, &Verdict::ok());
        barrier.wait()?; // B10
        barrier.wait()?; // B11 (no bid views)
        net.broadcast_referee(Msg::Verdict(Verdict::ok()));
        barrier.wait()?; // B12
        return Ok(result);
    }

    // Vectors disagree: request the bids (§4).
    net.broadcast_referee(Msg::BidRequest);
    barrier.wait()?; // B10
    barrier.wait()?; // B11: bid views in
    let mut bids: Option<Vec<f64>> = None;
    for (_, msg) in drain_referee(&rx) {
        let Msg::BidView { view, .. } = msg else {
            continue;
        };
        if bids.is_some() {
            continue;
        }
        if let Some(b) = verify_bid_view(&view, m, &referee) {
            bids = Some(b);
        }
    }
    // At least one honest processor exists under the fault model (§5);
    // if every submitted view is unverifiable the session cannot be
    // adjudicated and errors out instead of panicking the referee.
    let bids = bids.ok_or_else(|| {
        RunError::Protocol("no verifiable bid view received for payment adjudication".into())
    })?;
    let params = BusParams::new(referee_z(&referee), bids.clone())
        .map_err(|_| RunError::Protocol("verified bid view has invalid rates".into()))?;
    let alpha = dls_dlt::optimal::fractions(referee_model(&referee), &params);
    let observed: Vec<f64> = meters
        .iter()
        .zip(alpha.iter())
        .zip(bids.iter())
        .map(|((phi, a), b)| if *a > 0.0 && *phi > 0.0 { phi / a } else { *b })
        .collect();
    let (verdict, correct) = referee
        .adjudicate_payments(&vectors, &bids, &observed)
        .map_err(|e| RunError::Protocol(e.to_string()))?;
    result.final_q = Some(correct);
    record_verdict(&mut result, Phase::Payments, &verdict);
    net.broadcast_referee(Msg::Verdict(verdict));
    barrier.wait()?; // B12
    Ok(result)
}

fn collect_reports(rx: &Receiver<(usize, Msg)>) -> Vec<(usize, PhaseReport)> {
    let mut out = Vec::new();
    for (from, msg) in drain_referee(rx) {
        if let Msg::Report { report, .. } = msg {
            out.push((from, report));
        }
    }
    out.sort_by_key(|(from, _)| *from);
    out
}

fn record_verdict(result: &mut RefResult, phase: Phase, verdict: &Verdict) {
    if !verdict.fined.is_empty() {
        result.any_fines = true;
    }
    result.verdicts.push((phase, verdict.clone()));
}

/// Equality check across submitted payment vectors: requires a verified
/// vector from each of the `m` processors, all numerically equal.
fn vectors_all_equal(
    vectors: &[Signed<PaymentVectorBody>],
    m: usize,
    referee: &Referee,
) -> bool {
    use crate::referee::PAYMENT_TOLERANCE;
    let mut per_proc: Vec<Option<&PaymentVectorBody>> = vec![None; m];
    for sv in vectors {
        let Ok(body) = sv.verify(referee_registry(referee)) else {
            return false;
        };
        // `get_mut` rejects out-of-range indices; duplicates also fail.
        let Some(slot) = per_proc.get_mut(body.processor) else {
            return false;
        };
        if slot.is_some() {
            return false;
        }
        *slot = Some(body);
    }
    let Some(first) = per_proc.first().and_then(|b| *b) else {
        return false;
    };
    per_proc.iter().all(|b| match b {
        Some(body) => {
            body.q.len() == first.q.len()
                && body.q.iter().zip(&first.q).all(|(a, b)| {
                    (a.compensation - b.compensation).abs() <= PAYMENT_TOLERANCE
                        && (a.bonus - b.bonus).abs() <= PAYMENT_TOLERANCE
                })
        }
        None => false,
    })
}

fn verify_bid_view(
    view: &[Signed<BidBody>],
    m: usize,
    referee: &Referee,
) -> Option<Vec<f64>> {
    if view.len() != m {
        return None;
    }
    let mut bids = vec![f64::NAN; m];
    for sb in view {
        let body = sb.verify(referee_registry(referee)).ok()?;
        if sb.signer() != format!("P{}", body.processor + 1) {
            return None;
        }
        // Only finite positive rates form valid bus parameters; a view
        // carrying anything else is rejected like a bad signature.
        if !(body.bid.is_finite() && body.bid > 0.0) {
            return None;
        }
        // `get_mut` also rejects out-of-range indices; a non-NaN slot is
        // a duplicate.
        let slot = bids.get_mut(body.processor)?;
        if !slot.is_nan() {
            return None;
        }
        *slot = body.bid;
    }
    Some(bids)
}

// Small accessors so the referee actor can reuse the referee's public
// session facts without widening Referee's API surface.
fn referee_registry(r: &Referee) -> &Registry {
    r.registry()
}

fn referee_model(r: &Referee) -> SystemModel {
    r.model()
}

fn referee_z(r: &Referee) -> f64 {
    r.z()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn bid_msg(processor: usize, bid: f64) -> Msg {
        // A syntactically valid (unverifiable) bid message for transport
        // tests; the inbox does not verify, only routes.
        Msg::Bid(Signed::forge(
            BidBody { processor, bid },
            format!("P{}", processor + 1),
            vec![0u8; 8],
        ))
    }

    #[test]
    fn inbox_drain_returns_pending_first() {
        let (tx, rx) = unbounded();
        let mut inbox = ProcInbox::new(rx);
        tx.send(bid_msg(0, 1.0)).unwrap();
        tx.send(Msg::Verdict(Verdict::ok())).unwrap();
        // Take the verdict; the bid must be held back...
        let v = inbox.take_verdict().unwrap();
        assert!(v.proceed);
        // ...and surface on the next drain, ahead of newer messages.
        tx.send(bid_msg(1, 2.0)).unwrap();
        let drained = inbox.drain();
        assert_eq!(drained.len(), 2);
        assert!(matches!(&drained[0], Msg::Bid(b) if b.body_unverified().processor == 0));
        assert!(matches!(&drained[1], Msg::Bid(b) if b.body_unverified().processor == 1));
    }

    #[test]
    fn inbox_take_first_scans_pending_before_channel() {
        let (tx, rx) = unbounded();
        let mut inbox = ProcInbox::new(rx);
        tx.send(Msg::Verdict(Verdict::ok())).unwrap();
        tx.send(bid_msg(3, 4.0)).unwrap();
        // First take stashes nothing (verdict is first).
        let _ = inbox.take_verdict();
        tx.send(Msg::Verdict(Verdict {
            proceed: false,
            fined: vec![(1, 5.0)],
            rewards: vec![],
        }))
        .unwrap();
        let v = inbox.take_verdict().unwrap();
        assert!(!v.proceed);
        // The bid survived two verdict takes.
        let bids = inbox.take_all(|m| match m {
            Msg::Bid(b) => Some(b.body_unverified().processor),
            _ => None,
        });
        assert_eq!(bids, vec![3]);
    }

    #[test]
    fn inbox_take_first_none_when_absent() {
        let (_tx, rx) = unbounded::<Msg>();
        let mut inbox = ProcInbox::new(rx);
        assert!(inbox.take_verdict().is_none());
    }

    #[test]
    fn phase_barrier_abort_releases_waiters() {
        let barrier = Arc::new(PhaseBarrier::new(2));
        let waiter = {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || barrier.wait())
        };
        barrier.abort("fixture failure");
        let err = waiter.join().unwrap().unwrap_err();
        assert!(matches!(err, RunError::Protocol(ref s) if s == "fixture failure"));
        // Late arrivals observe the sticky abort immediately.
        assert!(barrier.wait().is_err());
    }

    #[test]
    fn phase_barrier_releases_all_parties_per_generation() {
        let barrier = Arc::new(PhaseBarrier::new(3));
        let spawn_waiter = |b: &Arc<PhaseBarrier>| {
            let b = Arc::clone(b);
            std::thread::spawn(move || b.wait().and_then(|()| b.wait()))
        };
        let a = spawn_waiter(&barrier);
        let b = spawn_waiter(&barrier);
        assert!(barrier.wait().is_ok());
        assert!(barrier.wait().is_ok());
        assert!(a.join().unwrap().is_ok());
        assert!(b.join().unwrap().is_ok());
    }

    #[test]
    fn message_stats_accumulate_by_category() {
        let mut s = MessageStats::default();
        s.record(MsgCategory::Bid, 3, 100);
        s.record(MsgCategory::Bid, 1, 50);
        s.record(MsgCategory::PaymentVector, 2, 400);
        assert_eq!(s.category("bid"), (4, 350));
        assert_eq!(s.category("payment-vector"), (2, 800));
        assert_eq!(s.category("grant"), (0, 0));
        assert_eq!(s.total_messages(), 6);
        assert_eq!(s.total_bytes(), 1150);
    }

    #[test]
    fn key_cache_is_deterministic_and_identity_scoped() {
        let ids = vec!["P1".to_string(), "P2".to_string()];
        let a = generate_keys_cached(&ids, 384, 99).unwrap();
        let b = generate_keys_cached(&ids, 384, 99).unwrap();
        assert_eq!(a[0].public(), b[0].public());
        assert_eq!(a[1].public(), b[1].public());
        assert_ne!(a[0].public(), a[1].public(), "identities get distinct keys");
        let c = generate_keys_cached(&ids, 384, 100).unwrap();
        assert_ne!(a[0].public(), c[0].public(), "seeds get distinct keys");
    }
}
