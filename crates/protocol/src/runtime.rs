//! Threaded message-passing execution of DLS-BL-NCP.
//!
//! One OS thread per strategic processor plus one for the referee,
//! connected by channels that model the paper's network assumptions:
//!
//! * **tamper-proof network / protocols** — transport is provided by the
//!   runtime; agents can choose *what* to send, never to alter delivery;
//! * **reliable atomic broadcast** — a broadcast is delivered to every peer
//!   under a lock, so all receivers observe broadcasts in a consistent
//!   order and a sender cannot transmit different values within one
//!   broadcast (equivocation requires *two* broadcasts, which peers detect
//!   exactly as in §4);
//! * **lock-step phases** — threads synchronize on a barrier at each phase
//!   boundary, modelling the known communication rounds of the protocol.
//!
//! Every message is counted by category and (approximate) wire size, which
//! is the measurement behind experiment E10 (Theorem 5.4: Θ(m²)).
//!
//! ## Deviations faithfully represented
//!
//! The [`Behavior`] catalogue drives the strategic hooks: what to bid
//! (twice, for equivocators), how many blocks to grant, what payment
//! vector to submit, and whether to raise false accusations. Everything
//! else — signatures, meters, transport — is outside agent control.
//!
//! ## Liveness faults and degradation
//!
//! The paper assumes every processor shows up at every phase. This runtime
//! drops that assumption: each processor carries a [`FaultPlan`]
//! (crash/mute/delay/garbage, orthogonal to its strategy), and only the
//! **referee** waits at barriers with a wall-clock deadline
//! ([`crate::config::SessionConfig::phase_budget_ms`]). A party missing at
//! the deadline is removed from the barrier — the survivors advance
//! instead of hanging — and recorded as a [`LivenessFault`]. Faults
//! detected before Processing default the absentee (fined `F` per the §4
//! schedule) and the survivors re-run the session over the remaining bid
//! set; faults during/after Processing complete degraded (meter hole,
//! missing payment vector fined by the ordinary payment adjudication,
//! payment withheld). Every session reports what happened in
//! [`SessionOutcome::degradation`].

use crate::blocks::{integer_allocation, DataSet, USER_IDENTITY};
use crate::config::{Behavior, CryptoProfile, ProcessorConfig, SessionConfig};
use crate::fault::{DegradationReport, FaultKind, FaultPlan, LivenessFault};
use crate::ledger::{Account, Ledger, TransferReason};
use crate::messages::{
    BidBody, Evidence, GrantBody, Msg, MsgCategory, PaymentEntry, PaymentVectorBody, PhaseReport,
    Verdict,
};
use crate::referee::{Phase, Referee};
use crossbeam::channel::{unbounded, Receiver, Sender};
use dls_crypto::pki::{KeyPair, Registry, SignatureError};
use dls_crypto::{Signed, VerifyCache};
use dls_dlt::{BusParams, SystemModel};
use dls_netsim::{simulate, SessionSpec as NetSessionSpec, Timeline};
use parking_lot::{Condvar, Mutex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which actor a failure is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorRole {
    /// An unidentified actor (failure observed by a drop guard).
    Actor,
    /// A strategic processor thread.
    Processor,
    /// The referee thread.
    Referee,
}

/// What kind of lock-step invariant broke.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// An expected message was missing at a phase boundary.
    MissingMessage(&'static str),
    /// An actor thread panicked (e.g. in a dependency).
    ActorPanicked(ActorRole),
    /// A runtime invariant broke: an internal index was out of range, a
    /// value that was validated upstream turned out invalid, or an
    /// adjudication step could not run.
    InvalidState(String),
    /// The party was declared defaulted at a deadline and must stop
    /// participating (surfaced only inside actor threads; a defaulted
    /// party's session result is a partial outcome, not this error).
    Defaulted,
    /// Liveness defaults left fewer than the two live processors the
    /// protocol needs.
    QuorumLost {
        /// How many live processors remained.
        survivors: usize,
    },
}

/// A structured protocol-runtime violation: *what* broke
/// ([`ViolationKind`]), and — when known — *where* ([`Phase`]) and *who*
/// (processor index).
///
/// [`fmt::Display`] prints only the kind's message (identical to the
/// historical stringly-typed errors); phase and processor are structured
/// context for programmatic matching.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolViolation {
    /// Phase at which the violation surfaced, if known.
    pub phase: Option<Phase>,
    /// Processor the violation is attributed to, if any.
    pub processor: Option<usize>,
    /// What broke.
    pub kind: ViolationKind,
}

impl ProtocolViolation {
    /// An invalid-state violation with a free-form description.
    pub fn invalid_state(msg: impl Into<String>) -> Self {
        ProtocolViolation {
            phase: None,
            processor: None,
            kind: ViolationKind::InvalidState(msg.into()),
        }
    }

    /// A missing-message violation (`what` names the expected message).
    pub fn missing_message(what: &'static str) -> Self {
        ProtocolViolation {
            phase: None,
            processor: None,
            kind: ViolationKind::MissingMessage(what),
        }
    }

    /// A panicked-actor violation.
    pub fn panicked(role: ActorRole) -> Self {
        ProtocolViolation {
            phase: None,
            processor: None,
            kind: ViolationKind::ActorPanicked(role),
        }
    }

    /// A quorum-lost violation.
    pub fn quorum_lost(survivors: usize) -> Self {
        ProtocolViolation {
            phase: None,
            processor: None,
            kind: ViolationKind::QuorumLost { survivors },
        }
    }

    /// Attaches the phase the violation surfaced at.
    pub fn at_phase(mut self, phase: Phase) -> Self {
        self.phase = Some(phase);
        self
    }

    /// Attaches the processor the violation is attributed to.
    pub fn by_processor(mut self, processor: usize) -> Self {
        self.processor = Some(processor);
        self
    }
}

impl fmt::Display for ProtocolViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ViolationKind::MissingMessage(what) => {
                write!(f, "expected {what} missing at phase boundary")
            }
            ViolationKind::ActorPanicked(ActorRole::Actor) => {
                write!(f, "an actor thread panicked")
            }
            ViolationKind::ActorPanicked(ActorRole::Processor) => {
                write!(f, "a processor thread panicked")
            }
            ViolationKind::ActorPanicked(ActorRole::Referee) => {
                write!(f, "the referee thread panicked")
            }
            ViolationKind::InvalidState(msg) => write!(f, "{msg}"),
            ViolationKind::Defaulted => {
                write!(f, "party declared defaulted at a phase deadline")
            }
            ViolationKind::QuorumLost { survivors } => write!(
                f,
                "liveness defaults left {survivors} live processor(s), below the required two"
            ),
        }
    }
}

/// Errors when running a session.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The protocol needs at least two *participating* processors.
    TooFewParticipants,
    /// The CP model has a trusted external originator and is not subject to
    /// the NCP protocol; use `dls-mechanism` directly for CP baselines.
    UnsupportedModel,
    /// Key generation failed (modulus too small).
    Crypto(String),
    /// A lock-step invariant broke at runtime: an expected message was
    /// missing at a phase boundary, an internal index was out of range, or
    /// an actor thread failed. Sessions surface this instead of panicking
    /// (a panicking actor would strand its peers at the next barrier).
    Protocol(ProtocolViolation),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::TooFewParticipants => {
                write!(f, "fewer than two processors participate")
            }
            RunError::UnsupportedModel => write!(
                f,
                "the NCP protocol runs on NCP-FE / NCP-NFE; CP has a trusted control processor"
            ),
            RunError::Crypto(e) => write!(f, "crypto setup failed: {e}"),
            RunError::Protocol(v) => write!(f, "protocol runtime failure: {v}"),
        }
    }
}

impl std::error::Error for RunError {}

/// A missing-message error at a lock-step phase boundary.
pub(crate) fn missing(what: &'static str, phase: Phase) -> RunError {
    RunError::Protocol(ProtocolViolation::missing_message(what).at_phase(phase))
}

/// The violation carried by an error, for propagating through a barrier
/// abort (non-protocol errors degrade to an invalid-state description).
fn violation_of(e: &RunError) -> ProtocolViolation {
    match e {
        RunError::Protocol(v) => v.clone(),
        other => ProtocolViolation::invalid_state(other.to_string()),
    }
}

/// `true` when the error is the defaulted-party signal a removed zombie
/// thread receives; it terminates that thread without failing the round.
fn is_defaulted(e: &RunError) -> bool {
    matches!(e, RunError::Protocol(v) if v.kind == ViolationKind::Defaulted)
}

/// Per-category message accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MessageStats {
    counts: BTreeMap<&'static str, (u64, u64)>,
}

impl MessageStats {
    pub(crate) fn record(&mut self, category: MsgCategory, copies: u64, bytes_each: u64) {
        let key = match category {
            MsgCategory::Bid => "bid",
            MsgCategory::Grant => "grant",
            MsgCategory::PaymentVector => "payment-vector",
            MsgCategory::Control => "control",
        };
        let e = self.counts.entry(key).or_insert((0, 0));
        e.0 += copies;
        e.1 += copies * bytes_each;
    }

    /// Records `copies` deliveries of a message (public entry point for
    /// alternative transports, e.g. the centralized baseline).
    pub fn record_public(&mut self, category: MsgCategory, copies: u64, bytes_each: u64) {
        self.record(category, copies, bytes_each);
    }

    /// Accumulates another stats block into this one (used to total the
    /// traffic of a multi-round degraded session).
    pub(crate) fn merge(&mut self, other: &MessageStats) {
        for (key, (copies, bytes)) in &other.counts {
            let e = self.counts.entry(key).or_insert((0, 0));
            e.0 += copies;
            e.1 += bytes;
        }
    }

    /// `(message count, total bytes)` for a category key
    /// (`"bid"`, `"grant"`, `"payment-vector"`, `"control"`).
    pub fn category(&self, key: &str) -> (u64, u64) {
        self.counts.get(key).copied().unwrap_or((0, 0))
    }

    /// Total messages delivered.
    pub fn total_messages(&self) -> u64 {
        self.counts.values().map(|(c, _)| c).sum()
    }

    /// Total bytes delivered.
    pub fn total_bytes(&self) -> u64 {
        self.counts.values().map(|(_, b)| b).sum()
    }
}

/// Outcome status of a session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionStatus {
    /// All phases completed, no fines.
    Completed,
    /// The work completed but deviants (or liveness defaulters) were fined
    /// along the way.
    CompletedWithFines,
    /// The protocol terminated early at `phase` because fines were raised.
    Aborted {
        /// Phase at which the verdict terminated the session.
        phase: Phase,
    },
}

/// Per-processor results, indexed like the *original* configuration.
#[derive(Debug, Clone)]
pub struct ProcessorOutcome {
    /// The configuration this processor played.
    pub config: ProcessorConfig,
    /// `false` for [`Behavior::NonParticipant`].
    pub participated: bool,
    /// First broadcast bid, if any.
    pub bid: Option<f64>,
    /// Real-valued allocation fraction `α_i(b)` (0 if the session aborted
    /// during bidding or the processor did not participate).
    pub alloc_fraction: f64,
    /// Blocks actually granted.
    pub blocks_granted: usize,
    /// Tamper-proof meter reading `φ_i` (0 unless processing ran).
    pub meter: f64,
    /// Final payment entry from the forwarded vector `Q`, if the session
    /// reached payments and the entry was not withheld for a
    /// during-/after-Processing liveness default.
    pub payment: Option<PaymentEntry>,
    /// Total fines paid.
    pub fined: f64,
    /// Total rewards received from the fine pool.
    pub rewarded: f64,
    /// Cost incurred (computation time actually spent).
    pub cost: f64,
    /// Net utility: ledger balance − cost.
    pub utility: f64,
}

/// Everything a session produced.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Completion status.
    pub status: SessionStatus,
    /// Per-processor outcomes (original indexing).
    pub processors: Vec<ProcessorOutcome>,
    /// The fine `F` in force.
    pub fine: f64,
    /// Message accounting (totalled across every round of a degraded
    /// session).
    pub messages: MessageStats,
    /// Conservation-checked money movements.
    pub ledger: Ledger,
    /// Realized execution timeline (only when processing ran).
    pub timeline: Option<Timeline>,
    /// Realized makespan (only when processing ran).
    pub makespan: Option<f64>,
    /// Liveness faults observed and how the session degraded around them
    /// ([`DegradationReport::is_clean`] for a fault-free session).
    pub degradation: DegradationReport,
}

impl SessionOutcome {
    /// Utility of processor `i` (original indexing).
    ///
    /// # Panics
    /// Panics if `i` is not an original processor index, like any slice
    /// access with a caller-supplied index.
    pub fn utility(&self, i: usize) -> f64 {
        // dls-lint: allow(no-panic-in-protocol) -- public accessor with a documented index contract; callers pass indices from the configs they built
        self.processors[i].utility
    }

    /// Indices fined during the session.
    pub fn fined_processors(&self) -> Vec<usize> {
        self.processors
            .iter()
            .enumerate()
            .filter(|(_, p)| p.fined > 0.0)
            .map(|(i, _)| i)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

struct Net {
    proc_txs: Vec<Sender<Msg>>,
    referee_tx: Sender<(usize, Msg)>,
    stats: Mutex<MessageStats>,
    bcast: Mutex<()>,
}

impl Net {
    fn record(&self, msg: &Msg, copies: u64) {
        self.stats
            .lock()
            .record(msg.category(), copies, msg.wire_size() as u64);
    }

    /// Atomic broadcast from processor `from` to all other processors.
    fn broadcast(&self, from: usize, msg: Msg) {
        let _g = self.bcast.lock();
        let copies = self.proc_txs.len().saturating_sub(1) as u64;
        self.record(&msg, copies);
        for (j, tx) in self.proc_txs.iter().enumerate() {
            if j != from {
                let _ = tx.send(msg.clone());
            }
        }
    }

    /// Referee broadcast to all processors.
    fn broadcast_referee(&self, msg: Msg) {
        let _g = self.bcast.lock();
        self.record(&msg, self.proc_txs.len() as u64);
        for tx in &self.proc_txs {
            let _ = tx.send(msg.clone());
        }
    }

    /// Unicast between processors. A message addressed outside the active
    /// set is dropped, exactly like a frame sent to an absent station.
    fn unicast(&self, to: usize, msg: Msg) {
        self.record(&msg, 1);
        if let Some(tx) = self.proc_txs.get(to) {
            let _ = tx.send(msg);
        }
    }

    /// Processor (or meter) → referee.
    fn to_referee(&self, from: usize, msg: Msg) {
        self.record(&msg, 1);
        let _ = self.referee_tx.send((from, msg));
    }
}

/// A reusable phase barrier with per-party identity, abort, and
/// deadline-bounded waits.
///
/// `std::sync::Barrier` deadlocks the whole session if one actor exits
/// early (error, panic, or injected crash): everyone else parks at the
/// next boundary with one party missing, forever. This barrier adds:
///
/// * [`PhaseBarrier::abort`] — wakes every current and future waiter with
///   the abort violation so all actors unwind cleanly;
/// * [`PhaseBarrier::wait_deadline_as`] — a wall-clock-bounded wait that,
///   on expiry, **removes** every still-missing party from the barrier
///   and reports them, so survivors advance instead of hanging. Only the
///   referee waits with a deadline; processors wait indefinitely and are
///   released when the referee removes the dead.
struct PhaseBarrier {
    state: Mutex<BarrierState>,
    cvar: Condvar,
}

struct BarrierState {
    /// Parties still participating in the barrier.
    active: Vec<bool>,
    /// Arrival flags for the current generation.
    arrived: Vec<bool>,
    generation: u64,
    aborted: Option<ProtocolViolation>,
}

impl PhaseBarrier {
    fn new(parties: usize) -> Self {
        PhaseBarrier {
            state: Mutex::new(BarrierState {
                active: vec![true; parties],
                arrived: vec![false; parties],
                generation: 0,
                aborted: None,
            }),
            cvar: Condvar::new(),
        }
    }

    /// Completes the current generation if every active party has arrived:
    /// resets arrival flags, bumps the generation, wakes all waiters.
    fn release_if_complete(st: &mut BarrierState, cvar: &Condvar) -> bool {
        let complete = st
            .active
            .iter()
            .zip(&st.arrived)
            .all(|(active, arrived)| !*active || *arrived);
        if complete {
            for a in &mut st.arrived {
                *a = false;
            }
            st.generation = st.generation.wrapping_add(1);
            cvar.notify_all();
        }
        complete
    }

    /// Blocks until all active parties arrive (Ok) or the session is
    /// aborted (Err carrying the first abort violation). A party that was
    /// removed at a deadline gets [`ViolationKind::Defaulted`], which its
    /// thread treats as "stop participating", not as a session failure.
    fn wait_as(&self, id: usize) -> Result<(), RunError> {
        let mut st = self.state.lock();
        if let Some(v) = &st.aborted {
            return Err(RunError::Protocol(v.clone()));
        }
        if !st.active.get(id).copied().unwrap_or(false) {
            return Err(RunError::Protocol(ProtocolViolation {
                phase: None,
                processor: Some(id),
                kind: ViolationKind::Defaulted,
            }));
        }
        if let Some(slot) = st.arrived.get_mut(id) {
            *slot = true;
        }
        if Self::release_if_complete(&mut st, &self.cvar) {
            return Ok(());
        }
        let generation = st.generation;
        while st.generation == generation && st.aborted.is_none() {
            self.cvar.wait(&mut st);
        }
        match &st.aborted {
            Some(v) => Err(RunError::Protocol(v.clone())),
            None => Ok(()),
        }
    }

    /// Deadline-bounded wait. Returns the (possibly empty) list of parties
    /// that were **removed** because they had not arrived when the budget
    /// expired. Removal happens under the same lock acquisition that
    /// computed the missing set, so a party arriving concurrently with the
    /// timeout can never be removed retroactively: either it arrived
    /// (and is not missing) or it is removed (and its next `wait_as`
    /// reports it defaulted).
    fn wait_deadline_as(&self, id: usize, budget: Duration) -> Result<Vec<usize>, RunError> {
        // The threaded oracle enforces real wall-clock budgets; the virtual
        // executor mirrors them in VirtualClock.
        // dls-lint: allow(determinism) -- real phase deadline in the threaded oracle
        let deadline = Instant::now() + budget;
        let mut st = self.state.lock();
        if let Some(v) = &st.aborted {
            return Err(RunError::Protocol(v.clone()));
        }
        if let Some(slot) = st.arrived.get_mut(id) {
            *slot = true;
        }
        if Self::release_if_complete(&mut st, &self.cvar) {
            return Ok(Vec::new());
        }
        let generation = st.generation;
        loop {
            if st.generation != generation {
                return Ok(Vec::new());
            }
            if let Some(v) = &st.aborted {
                return Err(RunError::Protocol(v.clone()));
            }
            // dls-lint: allow(determinism) -- re-read of the same real deadline clock
            let now = Instant::now();
            if now >= deadline {
                let missing: Vec<usize> = st
                    .active
                    .iter()
                    .zip(&st.arrived)
                    .enumerate()
                    .filter(|(_, (active, arrived))| **active && !**arrived)
                    .map(|(idx, _)| idx)
                    .collect();
                for &idx in &missing {
                    if let Some(a) = st.active.get_mut(idx) {
                        *a = false;
                    }
                }
                Self::release_if_complete(&mut st, &self.cvar);
                return Ok(missing);
            }
            let _ = self.cvar.wait_for(&mut st, deadline - now);
        }
    }

    /// Marks the session aborted (first violation wins) and wakes all
    /// waiters.
    fn abort(&self, violation: ProtocolViolation) {
        let mut st = self.state.lock();
        if st.aborted.is_none() {
            st.aborted = Some(violation);
        }
        self.cvar.notify_all();
    }
}

/// Drop guard: if an actor unwinds by panic (e.g. from a dependency), the
/// barrier is aborted so the remaining actors do not hang.
struct AbortOnPanic(Arc<PhaseBarrier>);

impl Drop for AbortOnPanic {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort(ProtocolViolation::panicked(ActorRole::Actor));
        }
    }
}

/// A processor's inbox with a hold-back buffer: draining for one kind of
/// message must not discard messages that belong to a later step (e.g. a
/// fast originator's grant can land while a slow peer is still consuming
/// the bidding verdict). Garbage frames are dropped at receipt, exactly
/// like a payload that fails signature verification (§4).
struct ProcInbox {
    rx: Receiver<Msg>,
    pending: std::collections::VecDeque<Msg>,
}

impl ProcInbox {
    fn new(rx: Receiver<Msg>) -> Self {
        ProcInbox {
            rx,
            pending: std::collections::VecDeque::new(),
        }
    }

    /// All currently available messages (pending buffer first).
    fn drain(&mut self) -> Vec<Msg> {
        let mut out: Vec<Msg> = self.pending.drain(..).collect();
        out.extend(
            self.rx
                .try_iter()
                .filter(|m| !matches!(m, Msg::Garbage { .. })),
        );
        out
    }

    /// Consumes and returns the first message matched by `take`, holding
    /// every other available message back for later drains. Returns `None`
    /// when no available message matches; the lock-step phase structure
    /// guarantees the expected message has been sent before the barrier
    /// this is called behind, so callers treat `None` as a protocol error.
    fn take_first<T>(&mut self, mut take: impl FnMut(&Msg) -> Option<T>) -> Option<T> {
        // Check held-back messages first.
        let held = self
            .pending
            .iter()
            .enumerate()
            .find_map(|(idx, msg)| take(msg).map(|v| (idx, v)));
        if let Some((idx, v)) = held {
            self.pending.remove(idx);
            return Some(v);
        }
        for msg in self.rx.try_iter() {
            if matches!(msg, Msg::Garbage { .. }) {
                continue;
            }
            match take(&msg) {
                Some(v) => return Some(v),
                None => self.pending.push_back(msg),
            }
        }
        None
    }

    /// Consumes every available message matched by `take`, holding the
    /// rest back.
    fn take_all<T>(&mut self, mut take: impl FnMut(&Msg) -> Option<T>) -> Vec<T> {
        let msgs = self.drain();
        let mut out = Vec::new();
        for msg in msgs {
            match take(&msg) {
                Some(v) => out.push(v),
                None => self.pending.push_back(msg),
            }
        }
        out
    }

    fn take_verdict(&mut self) -> Option<Verdict> {
        self.take_first(|m| match m {
            Msg::Verdict(v) => Some(v.clone()),
            _ => None,
        })
    }
}

fn drain_referee(rx: &Receiver<(usize, Msg)>) -> Vec<(usize, Msg)> {
    rx.try_iter().collect()
}

// ---------------------------------------------------------------------------
// The session runner
// ---------------------------------------------------------------------------

/// Original index of an active-position, falling back to the position
/// itself so a money movement is never silently dropped.
fn orig_of(active: &[usize], pos: usize) -> usize {
    active.get(pos).copied().unwrap_or(pos)
}

/// Total fines paid / rewards received by `orig` per the ledger journal.
fn ledger_sums(ledger: &Ledger, orig: usize) -> (f64, f64) {
    let account = Account::Processor(orig);
    let fined: f64 = ledger
        .journal()
        .iter()
        .filter(|t| t.reason == TransferReason::Fine && t.from == account)
        .map(|t| t.amount)
        .sum();
    let rewarded: f64 = ledger
        .journal()
        .iter()
        .filter(|t| t.reason == TransferReason::Reward && t.to == account)
        .map(|t| t.amount)
        .sum();
    (fined, rewarded)
}

/// Runs one DLS-BL-NCP session end to end.
///
/// Non-participants are excluded from the active market (they receive
/// utility 0, per §4); behaviours whose `victim`/`target` indices point at
/// non-participants degrade to [`Behavior::Compliant`].
///
/// A liveness fault detected before Processing defaults the absentee:
/// it is fined `F`, excluded, and the survivors re-run the protocol over
/// the remaining bid set (allocations and payments over the survivor set
/// are identical to a from-scratch session without the defaulter, because
/// each round re-derives keys, blocks and bids from the same seed). A
/// fault during/after Processing completes the session degraded instead.
/// If exclusions leave fewer than two live processors the session errors
/// with [`ViolationKind::QuorumLost`].
pub fn run_session(cfg: &SessionConfig) -> Result<SessionOutcome, RunError> {
    run_session_with(cfg, run_round)
}

/// The session loop shared by the threaded runtime and the event-driven
/// executor: degradation bookkeeping, ledger movements, withheld payments,
/// the realized timeline and outcome assembly are literally the same code
/// for both paths — only the round runner differs. This is the structural
/// half of the executor's bit-exactness argument.
pub(crate) fn run_session_with(
    cfg: &SessionConfig,
    mut round_fn: impl FnMut(&SessionConfig, &[usize]) -> Result<RoundOutput, RunError>,
) -> Result<SessionOutcome, RunError> {
    if cfg.model == SystemModel::Cp {
        return Err(RunError::UnsupportedModel);
    }
    // Active set in original indices; shrinks as defaulters are excluded.
    let mut active: Vec<usize> = cfg
        .processors
        .iter()
        .enumerate()
        .filter(|(_, p)| p.behavior != Behavior::NonParticipant)
        .map(|(i, _)| i)
        .collect();
    if active.len() < 2 {
        return Err(RunError::TooFewParticipants);
    }

    let mut degradation = DegradationReport::default();
    let mut ledger = Ledger::new();
    let mut messages = MessageStats::default();
    // Partial results of defaulted processors, keyed by original index.
    let mut halted: BTreeMap<usize, ProcResult> = BTreeMap::new();
    let mut any_fines = false;

    let (round_active, round) = loop {
        degradation.rounds += 1;
        let round_active = active.clone();
        let round = round_fn(cfg, &round_active)?;
        any_fines |= round.rr.any_fines;
        messages.merge(&round.messages);

        // Verdict fines/rewards land on the ledger in original indexing,
        // no matter how the session ends.
        for (_, verdict) in &round.rr.verdicts {
            for &(i, amount) in &verdict.fined {
                ledger.transfer(
                    Account::Processor(orig_of(&round_active, i)),
                    Account::FinePool,
                    amount,
                    TransferReason::Fine,
                );
            }
            for &(i, amount) in &verdict.rewards {
                ledger.transfer(
                    Account::FinePool,
                    Account::Processor(orig_of(&round_active, i)),
                    amount,
                    TransferReason::Reward,
                );
            }
        }
        for f in &round.rr.faults {
            degradation.faults.push(LivenessFault {
                phase: f.phase,
                processor: orig_of(&round_active, f.processor),
                kind: f.kind,
            });
        }

        let defaulted: Vec<usize> = round
            .rr
            .defaulted_pre
            .iter()
            .map(|&pos| orig_of(&round_active, pos))
            .collect();
        let liveness_only_abort =
            round.rr.aborted.is_some() && !round.rr.strategic_abort && !defaulted.is_empty();
        if liveness_only_abort {
            // Default the absentees (their fines are already on the
            // ledger via the merged verdict) and re-solve around them.
            for &orig in &defaulted {
                degradation.default_fines.push((orig, cfg.fine));
                degradation.excluded.push(orig);
                if let Some(pos) = round_active.iter().position(|&o| o == orig) {
                    halted.insert(
                        orig,
                        round.proc_results.get(pos).cloned().unwrap_or_default(),
                    );
                }
            }
            active.retain(|orig| !defaulted.contains(orig));
            if active.len() < 2 {
                return Err(RunError::Protocol(ProtocolViolation::quorum_lost(
                    active.len(),
                )));
            }
            continue;
        }
        break (round_active, round);
    };
    let RoundOutput {
        procs,
        proc_results,
        rr,
        messages: _,
    } = round;
    degradation.excluded.sort_unstable();

    // Payments for processors that defaulted during/after Processing are
    // withheld: they delivered no verified payment vector of their own and
    // cannot be paid through the forwarded `Q`.
    let withheld_pos: BTreeSet<usize> = rr
        .faults
        .iter()
        .filter(|f| f.phase >= Phase::Processing && !rr.delivered_vectors.contains(&f.processor))
        .map(|f| f.processor)
        .collect();
    degradation.withheld_payments = withheld_pos
        .iter()
        .map(|&pos| orig_of(&round_active, pos))
        .collect();

    if let Some(q) = &rr.final_q {
        for (i, entry) in q.iter().enumerate() {
            if withheld_pos.contains(&i) {
                continue;
            }
            let total = entry.total();
            if total >= 0.0 {
                ledger.transfer(
                    Account::User,
                    Account::Processor(orig_of(&round_active, i)),
                    total,
                    TransferReason::Payment,
                );
            } else {
                ledger.transfer(
                    Account::Processor(orig_of(&round_active, i)),
                    Account::User,
                    -total,
                    TransferReason::Payment,
                );
            }
        }
    }

    // --- Realized timeline (only when processing ran) ----------------------
    let (timeline, makespan) = if rr.meters.is_some() {
        let exec: Vec<f64> = procs.iter().map(|p| p.exec_w()).collect();
        let alloc: Vec<f64> = proc_results.iter().map(|r| r.alloc_fraction).collect();
        // Realized rates come from validated configs (finite, positive).
        let params = BusParams::new(cfg.z, exec).map_err(|_| {
            RunError::Protocol(ProtocolViolation::invalid_state(
                "realized execution rates invalid",
            ))
        })?;
        let tl = simulate(&NetSessionSpec::new(cfg.model, params, alloc));
        let mk = tl.makespan;
        (Some(tl), Some(mk))
    } else {
        (None, None)
    };

    // --- Per-processor outcomes in original indexing ------------------------
    let to_final: BTreeMap<usize, usize> = round_active
        .iter()
        .enumerate()
        .map(|(pos, &orig)| (orig, pos))
        .collect();
    let mut processors = Vec::with_capacity(cfg.m());
    for (orig, &config) in cfg.processors.iter().enumerate() {
        let outcome = if config.behavior == Behavior::NonParticipant {
            ProcessorOutcome {
                config,
                participated: false,
                bid: None,
                alloc_fraction: 0.0,
                blocks_granted: 0,
                meter: 0.0,
                payment: None,
                fined: 0.0,
                rewarded: 0.0,
                cost: 0.0,
                utility: 0.0,
            }
        } else if let Some(&pos) = to_final.get(&orig) {
            let Some(r) = proc_results.get(pos) else {
                return Err(RunError::Protocol(ProtocolViolation::invalid_state(
                    format!("active position {pos} has no processor result"),
                )));
            };
            let (fined, rewarded) = ledger_sums(&ledger, orig);
            let cost = r.meter;
            let utility = ledger.balance(&Account::Processor(orig)) - cost;
            ProcessorOutcome {
                config,
                participated: true,
                bid: r.bid,
                alloc_fraction: r.alloc_fraction,
                blocks_granted: r.blocks_granted,
                meter: r.meter,
                payment: if withheld_pos.contains(&pos) {
                    None
                } else {
                    rr.final_q.as_ref().and_then(|q| q.get(pos).copied())
                },
                fined,
                rewarded,
                cost,
                utility,
            }
        } else {
            // Excluded mid-session: partial results from the round it
            // defaulted in, payment withheld by construction.
            let r = halted.get(&orig).cloned().unwrap_or_default();
            let (fined, rewarded) = ledger_sums(&ledger, orig);
            let cost = r.meter;
            let utility = ledger.balance(&Account::Processor(orig)) - cost;
            ProcessorOutcome {
                config,
                participated: true,
                bid: r.bid,
                alloc_fraction: r.alloc_fraction,
                blocks_granted: r.blocks_granted,
                meter: r.meter,
                payment: None,
                fined,
                rewarded,
                cost,
                utility,
            }
        };
        processors.push(outcome);
    }

    let status = match rr.aborted {
        Some(phase) => SessionStatus::Aborted { phase },
        None if any_fines => SessionStatus::CompletedWithFines,
        None => SessionStatus::Completed,
    };

    Ok(SessionOutcome {
        status,
        processors,
        fine: cfg.fine,
        messages,
        ledger,
        timeline,
        makespan,
        degradation,
    })
}

/// Everything one protocol round produced (active-set indexing).
pub(crate) struct RoundOutput {
    /// The remapped configs the round's processors played, active order.
    pub(crate) procs: Vec<ProcessorConfig>,
    /// Per-processor partial results, active order.
    pub(crate) proc_results: Vec<ProcResult>,
    /// The referee's round result.
    pub(crate) rr: RefResult,
    /// Traffic of this round alone.
    pub(crate) messages: MessageStats,
}

/// Remaps index-bearing behaviours into active coordinates. A behaviour
/// whose victim/target is not active degrades to Compliant. Shared by the
/// threaded round runner and the event-driven executor so both paths play
/// exactly the same remapped strategies.
pub(crate) fn remap_active_configs(
    cfg: &SessionConfig,
    active: &[usize],
) -> Vec<ProcessorConfig> {
    let to_active: BTreeMap<usize, usize> = active
        .iter()
        .enumerate()
        .map(|(pos, &orig)| (orig, pos))
        .collect();
    active
        .iter()
        .filter_map(|&orig| cfg.processors.get(orig))
        .map(|p| {
            let behavior = match p.behavior {
                Behavior::ShortAllocate { victim, shortfall } => to_active
                    .get(&victim)
                    .map(|&v| Behavior::ShortAllocate {
                        victim: v,
                        shortfall,
                    })
                    .unwrap_or(Behavior::Compliant),
                Behavior::OverAllocate { victim, excess } => to_active
                    .get(&victim)
                    .map(|&v| Behavior::OverAllocate { victim: v, excess })
                    .unwrap_or(Behavior::Compliant),
                Behavior::CorruptPayments { target, factor } => to_active
                    .get(&target)
                    .map(|&t| Behavior::CorruptPayments { target: t, factor })
                    .unwrap_or(Behavior::Compliant),
                Behavior::ForgeExtraBid { impersonate } => to_active
                    .get(&impersonate)
                    .map(|&t| Behavior::ForgeExtraBid { impersonate: t })
                    .unwrap_or(Behavior::Compliant),
                other => other,
            };
            ProcessorConfig {
                true_w: p.true_w,
                behavior,
                fault: p.fault,
            }
        })
        .collect()
}

/// Runs one protocol round over `active` (original indices). Each round
/// is self-contained: identities `P1..Pk`, keys, registry and data set are
/// re-derived from the session seed, so a survivor re-run is bit-identical
/// to a from-scratch session over the same participant set.
fn run_round(cfg: &SessionConfig, active: &[usize]) -> Result<RoundOutput, RunError> {
    let m = active.len();
    if m < 2 {
        return Err(RunError::TooFewParticipants);
    }
    let procs: Vec<ProcessorConfig> = remap_active_configs(cfg, active);

    // --- Initialization phase: PKI + user-signed data set -----------------
    // Key generation is by far the most expensive setup step; identities
    // are independent, so generate them in parallel from per-identity
    // seeds, with a process-wide cache so repeated sessions (tests,
    // benches, experiment sweeps, survivor re-runs) reuse key pairs
    // deterministically.
    let mut identities: Vec<String> = (1..=m).map(|i| format!("P{i}")).collect();
    identities.push(USER_IDENTITY.to_string());
    let mut keys = generate_keys_cached(&identities, cfg.key_bits, cfg.seed)?;
    let user = keys
        .pop()
        .ok_or_else(|| RunError::Crypto("key generation returned no user key".into()))?;
    let registry = Registry::from_keypairs(keys.iter().chain(std::iter::once(&user)));
    let dataset = crate::executor::dataset_cached(cfg.seed, cfg.key_bits, cfg.blocks, &user)?;

    // Only the CP model lacks an originator, and it was rejected above.
    let originator = cfg.model.originator(m).ok_or(RunError::UnsupportedModel)?;
    let referee = Referee::new(
        registry.clone(),
        cfg.model,
        cfg.z,
        m,
        cfg.fine,
        cfg.blocks,
    );
    // Per-ROUND verification cache (never per-session): survivor re-runs
    // rebind identities `P1..Pk` to different original processors, so the
    // same (signer, body, signature) triple can verify under a *different*
    // public key next round. A fresh cache per round keeps memoized
    // verdicts sound.
    let verify_cache = VerifyCache::new();
    let profile = cfg.crypto_profile;

    // --- Channels, barrier, transport -------------------------------------
    let mut proc_txs = Vec::with_capacity(m);
    let mut proc_rxs = Vec::with_capacity(m);
    for _ in 0..m {
        let (tx, rx) = unbounded();
        proc_txs.push(tx);
        proc_rxs.push(rx);
    }
    let (ref_tx, ref_rx) = unbounded();
    let net = Arc::new(Net {
        proc_txs,
        referee_tx: ref_tx,
        stats: Mutex::new(MessageStats::default()),
        bcast: Mutex::new(()),
    });
    // Parties 0..m are processors; party m is the referee. Only the
    // referee's waits carry the phase deadline.
    let barrier = Arc::new(PhaseBarrier::new(m + 1));
    let budget = Duration::from_millis(cfg.phase_budget_ms);

    let model = cfg.model;
    let z = cfg.z;
    let blocks_total = cfg.blocks;

    // --- Run the actors ----------------------------------------------------
    // Each actor returns a Result; a failing actor aborts the barrier so
    // the rest unwind instead of deadlocking, and `join` never panics the
    // runner (a panicked actor surfaces as `None`). The defaulted-party
    // signal is the one actor error that does NOT abort the round: it only
    // terminates a zombie thread the referee already removed.
    let mut proc_joined: Vec<Option<Result<ProcResult, RunError>>> = Vec::with_capacity(m);
    let mut referee_joined: Option<Result<RefResult, RunError>> = None;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(m);
        for (i, (rx, pcfg)) in proc_rxs.into_iter().zip(&procs).enumerate() {
            let key = match keys.get(i) {
                Some(k) => k.clone(),
                None => {
                    // Unreachable (one key per identity), but if it ever
                    // happened the barrier must not wait on a thread that
                    // was never spawned.
                    barrier.abort(ProtocolViolation::invalid_state("missing processor key"));
                    proc_joined.push(Some(Err(RunError::Crypto(format!(
                        "no key generated for processor {i}"
                    )))));
                    continue;
                }
            };
            let ctx = ProcCtx {
                i,
                budget_ms: cfg.phase_budget_ms,
                m,
                model,
                z,
                blocks_total,
                originator,
                cfg: *pcfg,
                key,
                registry: registry.clone(),
                verify_cache: verify_cache.clone(),
                profile,
                net: Arc::clone(&net),
                barrier: Arc::clone(&barrier),
                rx,
                dataset: (i == originator).then(|| Arc::clone(&dataset)),
            };
            let barrier = Arc::clone(&barrier);
            handles.push(scope.spawn(move || {
                let _guard = AbortOnPanic(Arc::clone(&barrier));
                let r = processor_main(ctx);
                if let Err(e) = &r {
                    if !is_defaulted(e) {
                        barrier.abort(violation_of(e));
                    }
                }
                r
            }));
        }
        let ref_handle = {
            let net = Arc::clone(&net);
            let barrier = Arc::clone(&barrier);
            let dataset = Arc::clone(&dataset);
            let referee = referee.clone();
            let verify_cache = verify_cache.clone();
            scope.spawn(move || {
                let _guard = AbortOnPanic(Arc::clone(&barrier));
                let r = referee_main(
                    referee,
                    m,
                    net,
                    Arc::clone(&barrier),
                    ref_rx,
                    dataset,
                    budget,
                    verify_cache,
                    profile,
                );
                if let Err(e) = &r {
                    barrier.abort(violation_of(e));
                }
                r
            })
        };
        for h in handles {
            proc_joined.push(h.join().ok());
        }
        referee_joined = ref_handle.join().ok();
    });

    let mut proc_results: Vec<ProcResult> = Vec::with_capacity(m);
    for joined in proc_joined {
        match joined {
            Some(Ok(r)) => proc_results.push(r),
            // A removed zombie: keep what little it produced (nothing).
            Some(Err(e)) if is_defaulted(&e) => proc_results.push(ProcResult::default()),
            Some(Err(e)) => return Err(e),
            None => {
                return Err(RunError::Protocol(ProtocolViolation::panicked(
                    ActorRole::Processor,
                )))
            }
        }
    }
    let rr = match referee_joined {
        Some(Ok(rr)) => rr,
        Some(Err(e)) => return Err(e),
        None => {
            return Err(RunError::Protocol(ProtocolViolation::panicked(
                ActorRole::Referee,
            )))
        }
    };

    let messages = net.stats.lock().clone();
    Ok(RoundOutput {
        procs,
        proc_results,
        rr,
        messages,
    })
}

/// Parallel, cached deterministic key generation. Each `(identity, seed,
/// bits)` triple always yields the same key pair within a process.
pub(crate) fn generate_keys_cached(
    identities: &[String],
    bits: usize,
    seed: u64,
) -> Result<Vec<KeyPair>, RunError> {
    type Cache = BTreeMap<(String, usize, u64), KeyPair>;
    static CACHE: Mutex<Option<Cache>> = Mutex::new(None);

    let mut misses: Vec<(usize, String)> = Vec::new();
    let mut out: Vec<Option<KeyPair>> = vec![None; identities.len()];
    {
        let mut guard = CACHE.lock();
        let cache = guard.get_or_insert_with(Cache::new);
        for (idx, (slot, id)) in out.iter_mut().zip(identities).enumerate() {
            match cache.get(&(id.clone(), bits, seed)) {
                Some(kp) => *slot = Some(kp.clone()),
                None => misses.push((idx, id.clone())),
            }
        }
    }
    if !misses.is_empty() {
        let generated: Result<Vec<(usize, Result<KeyPair, RunError>)>, RunError> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = misses
                    .iter()
                    .map(|(idx, id)| {
                        let idx = *idx;
                        let id = id.clone();
                        scope.spawn(move || {
                            // Distinct deterministic stream per identity.
                            let mut h = dls_crypto::sha256::Sha256::new();
                            h.update(&seed.to_le_bytes());
                            h.update(id.as_bytes());
                            let digest = h.finalize();
                            // Little-endian fold of the first 8 digest
                            // bytes (equals u64::from_le_bytes without the
                            // panicking slice-to-array conversion).
                            let sub_seed = digest
                                .iter()
                                .take(8)
                                .rev()
                                .fold(0u64, |acc, &b| (acc << 8) | u64::from(b));
                            let mut rng = StdRng::seed_from_u64(sub_seed);
                            let kp = KeyPair::generate(id, bits, &mut rng)
                                .map_err(|e| RunError::Crypto(e.to_string()));
                            (idx, kp)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join()
                            .map_err(|_| RunError::Crypto("keygen thread panicked".into()))
                    })
                    .collect()
            });
        let mut guard = CACHE.lock();
        let cache = guard.get_or_insert_with(Cache::new);
        for (idx, kp) in generated? {
            let kp = kp?;
            cache.insert((kp.identity().to_string(), bits, seed), kp.clone());
            if let Some(slot) = out.get_mut(idx) {
                *slot = Some(kp);
            }
        }
    }
    out.into_iter()
        .map(|kp| kp.ok_or_else(|| RunError::Crypto("missing generated key".into())))
        .collect()
}

// ---------------------------------------------------------------------------
// Fault-injection hooks
// ---------------------------------------------------------------------------

/// Phase-entry hook: `true` means the thread must exit now (crash fault).
/// A delay fault sleeps here and then proceeds normally. The sleep is
/// bounded by the phase budget: the config builder already rejects
/// `DelayAt` delays at or above `phase_budget_ms`, but a hand-assembled
/// config must not be able to stall a test run past the deadline the
/// referee is already enforcing (the pooled executor advances a virtual
/// clock instead and never sleeps at all).
fn fault_entry(fault: &FaultPlan, phase: Phase, budget_ms: u64) -> bool {
    match fault {
        FaultPlan::CrashAt(p) if *p == phase => true,
        FaultPlan::DelayAt(p, ms) if *p == phase => {
            // dls-lint: allow(determinism) -- injected delay fault must burn real time
            std::thread::sleep(Duration::from_millis((*ms).min(budget_ms)));
            false
        }
        _ => false,
    }
}

/// Outbound-message hook: `None` drops the message (mute), a garbage
/// frame replaces it for a garbling fault, otherwise it passes through.
pub(crate) fn faulted_send(fault: &FaultPlan, phase: Phase, from: usize, msg: Msg) -> Option<Msg> {
    if fault.garbles(phase) {
        Some(Msg::Garbage { from })
    } else if fault.silences(phase) {
        None
    } else {
        Some(msg)
    }
}

// ---------------------------------------------------------------------------
// Processor actor
// ---------------------------------------------------------------------------

struct ProcCtx {
    i: usize,
    /// Phase budget in milliseconds; bounds injected delay sleeps.
    budget_ms: u64,
    m: usize,
    model: SystemModel,
    z: f64,
    blocks_total: usize,
    originator: usize,
    cfg: ProcessorConfig,
    key: KeyPair,
    registry: Registry,
    /// Round-scoped memo of signature verdicts, shared by every receiver.
    verify_cache: VerifyCache,
    profile: CryptoProfile,
    net: Arc<Net>,
    barrier: Arc<PhaseBarrier>,
    rx: Receiver<Msg>,
    /// The user's data set — held only by the originating processor.
    dataset: Option<Arc<DataSet>>,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct ProcResult {
    pub(crate) bid: Option<f64>,
    pub(crate) alloc_fraction: f64,
    pub(crate) blocks_granted: usize,
    pub(crate) meter: f64,
}

fn processor_main(ctx: ProcCtx) -> Result<ProcResult, RunError> {
    let ProcCtx {
        i,
        budget_ms,
        m,
        model,
        z,
        blocks_total,
        originator,
        cfg,
        key,
        registry,
        verify_cache,
        profile,
        net,
        barrier,
        rx,
        dataset,
    } = ctx;
    let sign_err = |e: dls_crypto::pki::SignatureError| RunError::Crypto(e.to_string());
    let fault = cfg.fault;
    let mut inbox = ProcInbox::new(rx);
    let mut result = ProcResult::default();

    // ---- Phase 1: Bidding --------------------------------------------------
    if fault_entry(&fault, Phase::Bidding, budget_ms) {
        return Ok(result); // crash: never arrives at a barrier
    }
    let my_bid = cfg.bid().ok_or_else(|| {
        RunError::Protocol(
            ProtocolViolation::invalid_state("a non-participant reached the bidding phase")
                .at_phase(Phase::Bidding),
        )
    })?;
    let first = key
        .sign(BidBody {
            processor: i,
            bid: my_bid,
        })
        .map_err(sign_err)?;
    match faulted_send(&fault, Phase::Bidding, i, Msg::Bid(first.clone())) {
        Some(garbage @ Msg::Garbage { .. }) => net.broadcast(i, garbage),
        Some(msg) => {
            result.bid = Some(my_bid);
            net.broadcast(i, msg);
            match cfg.behavior {
                Behavior::EquivocateBids { factor } => {
                    let second = key
                        .sign(BidBody {
                            processor: i,
                            bid: my_bid * factor,
                        })
                        .map_err(sign_err)?;
                    net.broadcast(i, Msg::Bid(second));
                }
                Behavior::ForgeExtraBid { impersonate } => {
                    // A bid claiming to come from someone else, with garbage
                    // signature bytes (signature forgery is assumed impossible,
                    // Lemma 5.2). Receivers must discard it.
                    let forged = Signed::forge(
                        BidBody {
                            processor: impersonate,
                            bid: 0.01,
                        },
                        format!("P{}", impersonate + 1),
                        vec![0x5a; 48],
                    );
                    net.broadcast(i, Msg::Bid(forged));
                }
                _ => {}
            }
        }
        None => {} // mute: the bid is withheld
    }
    barrier.wait_as(i)?; // B1: all bids delivered

    // Collect bids; note equivocators.
    let mut bid_view: Vec<Option<Signed<BidBody>>> = vec![None; m];
    if let Some(slot) = bid_view.get_mut(i) {
        *slot = Some(first);
    }
    let mut equivocation: Option<(usize, Signed<BidBody>, Signed<BidBody>)> = None;
    let incoming_bids = inbox.take_all(|m| match m {
        Msg::Bid(signed) => Some(signed.clone()),
        _ => None,
    });
    for signed in incoming_bids {
        // The all-to-all broadcast is the verification hot spot: m·(m−1)
        // envelope checks per round. Under the amortized profile the
        // round-shared cache collapses that to one modexp per distinct
        // envelope; the naive profile verifies per receiver as a baseline.
        let Ok(body) = verify_profiled(&signed, &registry, &verify_cache, profile) else {
            continue; // failed verification: discarded (§4)
        };
        let sender = body.processor;
        if signed.signer() != format!("P{}", sender + 1) {
            continue;
        }
        // Validate the bid value at receipt: only finite positive rates
        // form valid bus parameters, so everything downstream (α, counts,
        // payments) is infallible on the agreed vector. An invalid value
        // is discarded like a failed signature.
        if !(body.bid.is_finite() && body.bid > 0.0) {
            continue;
        }
        // `get_mut` also rejects out-of-range sender indices.
        let Some(slot) = bid_view.get_mut(sender) else {
            continue;
        };
        if let Some(existing) = slot {
            if existing.body_unverified() != signed.body_unverified() {
                equivocation = Some((sender, existing.clone(), signed));
            }
        } else {
            *slot = Some(signed);
        }
    }
    let report = match &equivocation {
        Some((who, a, b)) => PhaseReport::Accuse {
            accused: *who,
            evidence: Evidence::Equivocation {
                first: a.clone(),
                second: b.clone(),
            },
        },
        None => PhaseReport::Ok,
    };
    if let Some(msg) = faulted_send(&fault, Phase::Bidding, i, Msg::Report { from: i, report }) {
        net.to_referee(i, msg);
    }
    barrier.wait_as(i)?; // B2: reports in
    barrier.wait_as(i)?; // B3: verdict broadcast
    let verdict = inbox
        .take_verdict()
        .ok_or_else(|| missing("bidding verdict", Phase::Bidding))?;
    if !verdict.proceed {
        return Ok(result);
    }

    // ---- Phase 2: Allocating load -------------------------------------------
    if fault_entry(&fault, Phase::Allocating, budget_ms) {
        return Ok(result);
    }
    // Everyone has exactly one bid per peer now (otherwise the session
    // would have aborted); assemble the agreed bid vector.
    let mut signed_bids: Vec<Signed<BidBody>> = Vec::with_capacity(m);
    for b in bid_view {
        signed_bids.push(b.ok_or_else(|| missing("peer bid after clean bidding phase", Phase::Bidding))?);
    }
    let bids: Vec<f64> = signed_bids
        .iter()
        .map(|s| s.body_unverified().bid)
        .collect();
    // Infallible: every collected bid was validated finite-positive above.
    let params = BusParams::new(z, bids.clone()).map_err(|_| {
        RunError::Protocol(
            ProtocolViolation::invalid_state("agreed bids do not form valid bus parameters")
                .at_phase(Phase::Allocating),
        )
    })?;
    let alpha = dls_dlt::optimal::fractions(model, &params);
    let counts = integer_allocation(&alpha, blocks_total);
    result.alloc_fraction = alpha.get(i).copied().unwrap_or(0.0);

    let mut my_blocks: Vec<crate::blocks::SignedBlock> = Vec::new();
    if i == originator {
        // The originator holds the data set (it received it from the user
        // out of band). Deviant originators tamper with the counts here.
        let dataset = dataset.as_ref().ok_or_else(|| {
            RunError::Protocol(
                ProtocolViolation::invalid_state("originator is missing the data set")
                    .at_phase(Phase::Allocating),
            )
        })?;
        let grants = dataset.split(&counts);
        for (to, blocks) in grants.into_iter().enumerate() {
            if to == i {
                my_blocks = blocks;
                continue;
            }
            let mut blocks = blocks;
            match cfg.behavior {
                Behavior::ShortAllocate { victim, shortfall } if victim == to => {
                    let keep = blocks.len().saturating_sub(shortfall);
                    blocks.truncate(keep);
                }
                Behavior::OverAllocate { victim, excess } if victim == to => {
                    // Pad with duplicates of the victim's first block (or
                    // block 0 of the data set when the grant is empty).
                    if let Some(pad) = blocks.first().or_else(|| dataset.blocks().first()).cloned()
                    {
                        for _ in 0..excess {
                            blocks.push(pad.clone());
                        }
                    }
                }
                _ => {}
            }
            let grant = key.sign(GrantBody { to, blocks }).map_err(sign_err)?;
            if let Some(msg) = faulted_send(&fault, Phase::Allocating, i, Msg::Grant(grant)) {
                net.unicast(to, msg);
            }
        }
        result.blocks_granted = my_blocks.len();
    }
    barrier.wait_as(i)?; // B4: grants delivered

    let mut alloc_report = PhaseReport::Ok;
    if i != originator {
        let granted: Option<Signed<GrantBody>> = inbox
            .take_all(|m| match m {
                Msg::Grant(g) => Some(g.clone()),
                _ => None,
            })
            .pop();
        match granted {
            Some(grant) => {
                let valid_blocks = verify_profiled(&grant, &registry, &verify_cache, profile)
                    .map(|body| {
                        body.blocks
                            .iter()
                            .filter(|b| {
                                verify_profiled(b, &registry, &verify_cache, profile).is_ok()
                            })
                            .count()
                    })
                    .unwrap_or(0);
                result.blocks_granted = valid_blocks;
                my_blocks = grant.body_unverified().blocks.clone();
                let expected = counts.get(i).copied().unwrap_or(0);
                let mismatch = valid_blocks != expected;
                let false_accusation =
                    cfg.behavior == Behavior::FalselyAccuseAllocation && !mismatch;
                if mismatch || false_accusation {
                    alloc_report = PhaseReport::Accuse {
                        accused: originator,
                        evidence: Evidence::WrongAllocation {
                            grant: grant.clone(),
                            bid_view: signed_bids.clone(),
                            expected_blocks: expected,
                        },
                    };
                }
            }
            None => {
                // No grant at all — either the originator deviated silently
                // or it defaulted (crash/mute). Nothing signed exists to
                // accuse with, so the processor stays silent; a defaulted
                // originator is detected by the referee's own deadline and
                // message sweeps instead.
            }
        }
    }
    if let Some(msg) = faulted_send(
        &fault,
        Phase::Allocating,
        i,
        Msg::Report {
            from: i,
            report: alloc_report,
        },
    ) {
        net.to_referee(i, msg);
    }
    barrier.wait_as(i)?; // B5: allocation reports in
    barrier.wait_as(i)?; // B6: verdict broadcast
    let verdict = inbox
        .take_verdict()
        .ok_or_else(|| missing("allocation verdict", Phase::Allocating))?;
    if !verdict.proceed {
        return Ok(result);
    }

    // ---- Phase 3: Processing -------------------------------------------------
    if fault_entry(&fault, Phase::Processing, budget_ms) {
        return Ok(result); // crash: the blocks are never processed
    }
    // The tamper-proof meter measures the time actually spent computing:
    // φ_i = (granted blocks / total) · w̃_i. The agent cannot influence this
    // message (the runtime emits it from the configuration, not from any
    // strategy hook) — but a dead or wedged node's meter frame can still be
    // absent or corrupted, which is what the fault hook models.
    let real_fraction = my_blocks.len() as f64 / blocks_total as f64;
    let phi = real_fraction * cfg.exec_w();
    result.meter = phi;
    if let Some(msg) = faulted_send(&fault, Phase::Processing, i, Msg::Meter { of: i, phi }) {
        net.to_referee(i, msg);
    }
    barrier.wait_as(i)?; // B7: meters in
    barrier.wait_as(i)?; // B8: meters broadcast
    let meters: Vec<f64> = inbox
        .take_first(|m| match m {
            Msg::Meters(v) => Some(v.clone()),
            _ => None,
        })
        .ok_or_else(|| missing("meter vector", Phase::Processing))?;

    // ---- Phase 4: Computing payments ------------------------------------------
    if fault_entry(&fault, Phase::Payments, budget_ms) {
        return Ok(result);
    }
    // w̃_j = φ_j / α_j (per §4, Computing Payments).
    let observed: Vec<f64> = meters
        .iter()
        .zip(&alpha)
        .map(|(phi, a)| if *a > 0.0 { phi / a } else { 0.0 })
        .collect();
    // Guard degenerate observed rates (zero-block processors and absent
    // meter readings from defaulted peers) with the bid.
    let observed: Vec<f64> = observed
        .iter()
        .zip(&bids)
        .map(|(o, b)| if *o > 0.0 { *o } else { *b })
        .collect();
    let mut q: Vec<PaymentEntry> =
        dls_mechanism::compute_payments(model, &params, &alpha, &observed)
            .into_iter()
            .map(|p| PaymentEntry {
                compensation: p.compensation,
                bonus: p.bonus,
            })
            .collect();
    if let Behavior::CorruptPayments { target, factor } = cfg.behavior {
        if let Some(entry) = q.get_mut(target) {
            entry.compensation *= factor;
        }
    }
    let pv = key
        .sign(PaymentVectorBody { processor: i, q })
        .map_err(sign_err)?;
    if let Some(msg) = faulted_send(&fault, Phase::Payments, i, Msg::PaymentVector(pv)) {
        net.to_referee(i, msg);
    }
    barrier.wait_as(i)?; // B9: vectors in
    barrier.wait_as(i)?; // B10: equality verdict or bid request
    let bid_request = !inbox
        .take_all(|m| matches!(m, Msg::BidRequest).then_some(()))
        .is_empty();
    if bid_request {
        if let Some(msg) = faulted_send(
            &fault,
            Phase::Payments,
            i,
            Msg::BidView {
                from: i,
                view: signed_bids.clone(),
            },
        ) {
            net.to_referee(i, msg);
        }
    }
    barrier.wait_as(i)?; // B11: bid views in (possibly none)
    barrier.wait_as(i)?; // B12: final verdict
    let _ = inbox.take_verdict();
    Ok(result)
}

// ---------------------------------------------------------------------------
// Referee actor
// ---------------------------------------------------------------------------

#[derive(Debug)]
pub(crate) struct RefResult {
    pub(crate) aborted: Option<Phase>,
    pub(crate) any_fines: bool,
    pub(crate) verdicts: Vec<(Phase, Verdict)>,
    pub(crate) meters: Option<Vec<f64>>,
    pub(crate) final_q: Option<Vec<PaymentEntry>>,
    /// Liveness faults detected this round (active-set indexing).
    pub(crate) faults: Vec<LivenessFault>,
    /// Parties defaulted by the verdict that aborted the round
    /// (pre-Processing liveness faults, active-set indexing).
    pub(crate) defaulted_pre: Vec<usize>,
    /// Processors that delivered a verified payment vector of their own.
    pub(crate) delivered_vectors: BTreeSet<usize>,
    /// `true` when the aborting verdict also fined a *strategic* deviant
    /// (evidence-based offence); such a session ends aborted instead of
    /// re-running, exactly as before faults existed.
    pub(crate) strategic_abort: bool,
}

/// The referee's liveness bookkeeping for one round: which parties are
/// still alive, who sent garbage, and every fault detected so far. The
/// referee is the only actor whose barrier waits carry the phase deadline;
/// a party it removes is declared crashed, and expected-sender sweeps at
/// each collection point classify silent-but-alive parties as omission
/// (or garbage) faults.
struct RoundWatch {
    barrier: Arc<PhaseBarrier>,
    budget: Duration,
    referee_id: usize,
    alive: Vec<bool>,
    garbage: BTreeSet<usize>,
    faults: Vec<LivenessFault>,
}

impl RoundWatch {
    fn new(barrier: Arc<PhaseBarrier>, budget: Duration, m: usize) -> Self {
        RoundWatch {
            barrier,
            budget,
            referee_id: m,
            alive: vec![true; m],
            garbage: BTreeSet::new(),
            faults: Vec::new(),
        }
    }

    /// One deadline-bounded barrier wait. Parties missing at the deadline
    /// are removed from the barrier and recorded as crashed at `phase`.
    fn checkpoint(&mut self, phase: Phase) -> Result<(), RunError> {
        let removed = self.barrier.wait_deadline_as(self.referee_id, self.budget)?;
        for id in removed {
            if let Some(slot) = self.alive.get_mut(id) {
                if *slot {
                    *slot = false;
                    self.faults.push(LivenessFault {
                        phase,
                        processor: id,
                        kind: FaultKind::Crash,
                    });
                }
            }
        }
        Ok(())
    }

    /// Remembers that `from` delivered a garbage frame, so its silence is
    /// classified as a garbage fault rather than a plain omission.
    fn note_garbage(&mut self, from: usize) {
        if from < self.alive.len() {
            self.garbage.insert(from);
        }
    }

    /// Expected-sender sweep at a collection point: every alive party not
    /// in `senders` is recorded as an omission (or garbage) fault at
    /// `phase`. Dead parties were already recorded by [`Self::checkpoint`].
    fn sweep(&mut self, phase: Phase, senders: &BTreeSet<usize>) {
        let missing: Vec<usize> = self
            .alive
            .iter()
            .enumerate()
            .filter(|(id, alive)| **alive && !senders.contains(id))
            .map(|(id, _)| id)
            .collect();
        for id in missing {
            let kind = if self.garbage.contains(&id) {
                FaultKind::Garbage
            } else {
                FaultKind::Omission
            };
            self.faults.push(LivenessFault {
                phase,
                processor: id,
                kind,
            });
        }
    }

    /// Parties with a fault detected at `phase`.
    fn defaulted_at(&self, phase: Phase) -> BTreeSet<usize> {
        self.faults
            .iter()
            .filter(|f| f.phase == phase)
            .map(|f| f.processor)
            .collect()
    }
}

/// Folds liveness defaulters into a strategic verdict: the merged deviant
/// set is fined per the §4 schedule (`F` each, pot split among survivors)
/// and the verdict aborts iff `abort`. Returns the merged verdict and
/// whether the *strategic* verdict alone already fined someone.
pub(crate) fn merge_defaults(
    referee: &Referee,
    strategic: Verdict,
    defaulted: &BTreeSet<usize>,
    abort: bool,
) -> (Verdict, bool) {
    let strategic_fines = !strategic.fined.is_empty();
    if defaulted.is_empty() {
        return (strategic, strategic_fines);
    }
    let mut deviants: BTreeSet<usize> = strategic.fined.iter().map(|&(i, _)| i).collect();
    deviants.extend(defaulted.iter().copied());
    (referee.verdict_for(&deviants, abort), strategic_fines)
}

#[allow(clippy::too_many_arguments)]
fn referee_main(
    referee: Referee,
    m: usize,
    net: Arc<Net>,
    barrier: Arc<PhaseBarrier>,
    rx: Receiver<(usize, Msg)>,
    dataset: Arc<DataSet>,
    budget: Duration,
    verify_cache: VerifyCache,
    profile: CryptoProfile,
) -> Result<RefResult, RunError> {
    let mut result = RefResult {
        aborted: None,
        any_fines: false,
        verdicts: Vec::new(),
        meters: None,
        final_q: None,
        faults: Vec::new(),
        defaulted_pre: Vec::new(),
        delivered_vectors: BTreeSet::new(),
        strategic_abort: false,
    };
    let mut watch = RoundWatch::new(barrier, budget, m);

    // ---- Bidding ----
    watch.checkpoint(Phase::Bidding)?; // B1
    watch.checkpoint(Phase::Bidding)?; // B2: reports are in
    let (reports, garbage) = collect_reports(&rx);
    for from in garbage {
        watch.note_garbage(from);
    }
    let senders: BTreeSet<usize> = reports.iter().map(|(from, _)| *from).collect();
    watch.sweep(Phase::Bidding, &senders);
    let strategic = referee.adjudicate_bidding(&reports);
    let defaulted = watch.defaulted_at(Phase::Bidding);
    let (verdict, strategic_fines) = merge_defaults(&referee, strategic, &defaulted, true);
    record_verdict(&mut result, Phase::Bidding, &verdict);
    net.broadcast_referee(Msg::Verdict(verdict.clone()));
    watch.checkpoint(Phase::Bidding)?; // B3
    if !verdict.proceed {
        result.aborted = Some(Phase::Bidding);
        result.strategic_abort = strategic_fines;
        result.defaulted_pre = defaulted.into_iter().collect();
        result.faults = watch.faults;
        return Ok(result);
    }

    // ---- Allocating ----
    watch.checkpoint(Phase::Allocating)?; // B4
    watch.checkpoint(Phase::Allocating)?; // B5: allocation reports in
    let (reports, garbage) = collect_reports(&rx);
    for from in garbage {
        watch.note_garbage(from);
    }
    let senders: BTreeSet<usize> = reports.iter().map(|(from, _)| *from).collect();
    watch.sweep(Phase::Allocating, &senders);
    let strategic = referee.adjudicate_allocation(&reports, &dataset);
    let defaulted = watch.defaulted_at(Phase::Allocating);
    let (verdict, strategic_fines) = merge_defaults(&referee, strategic, &defaulted, true);
    record_verdict(&mut result, Phase::Allocating, &verdict);
    net.broadcast_referee(Msg::Verdict(verdict.clone()));
    watch.checkpoint(Phase::Allocating)?; // B6
    if !verdict.proceed {
        result.aborted = Some(Phase::Allocating);
        result.strategic_abort = strategic_fines;
        result.defaulted_pre = defaulted.into_iter().collect();
        result.faults = watch.faults;
        return Ok(result);
    }

    // ---- Processing ----
    // Liveness faults from here on cannot abort the round: work is (being)
    // done. A missing meter reads 0 and the observed rate falls back to the
    // bid; a missing payment vector is fined by the ordinary payment
    // adjudication below.
    watch.checkpoint(Phase::Processing)?; // B7: meters in
    let mut meter_slots: Vec<Option<f64>> = vec![None; m];
    for (from, msg) in drain_referee(&rx) {
        match msg {
            Msg::Meter { of, phi } => {
                // `get_mut` discards meter readings with an out-of-range
                // subject instead of tearing the session down; the runtime
                // emits these from validated indices.
                if let Some(slot) = meter_slots.get_mut(of) {
                    *slot = Some(phi);
                }
            }
            Msg::Garbage { .. } => watch.note_garbage(from),
            _ => {}
        }
    }
    let senders: BTreeSet<usize> = meter_slots
        .iter()
        .enumerate()
        .filter_map(|(id, s)| s.map(|_| id))
        .collect();
    watch.sweep(Phase::Processing, &senders);
    let meters: Vec<f64> = meter_slots.iter().map(|s| s.unwrap_or(0.0)).collect();
    result.meters = Some(meters.clone());
    net.broadcast_referee(Msg::Meters(meters.clone()));
    watch.checkpoint(Phase::Processing)?; // B8

    // ---- Payments ----
    watch.checkpoint(Phase::Payments)?; // B9: payment vectors in
    let mut vectors = Vec::new();
    for (from, msg) in drain_referee(&rx) {
        match msg {
            Msg::PaymentVector(v) => vectors.push(v),
            Msg::Garbage { .. } => watch.note_garbage(from),
            _ => {}
        }
    }
    // Phase-level batch sweep: settle every envelope's verdict once, up
    // front. The delivered sweep below, the equality check, and (on
    // dispute) the adjudication path all re-examine the same vectors, so
    // under the amortized profile they hit memoized verdicts instead of
    // repeating the modexp.
    if profile == CryptoProfile::Amortized {
        for sv in &vectors {
            let _ = sv.verify_cached(referee_registry(&referee), &verify_cache);
        }
    }
    let mut delivered = BTreeSet::new();
    for sv in &vectors {
        if let Ok(body) = verify_profiled(sv, referee_registry(&referee), &verify_cache, profile) {
            if sv.signer() == format!("P{}", body.processor + 1) && body.processor < m {
                delivered.insert(body.processor);
            }
        }
    }
    watch.sweep(Phase::Payments, &delivered);
    result.delivered_vectors = delivered;

    // First, the cheap equality check (no processor parameters needed).
    let agreed = if vectors_all_equal(&vectors, m, &referee, &verify_cache, profile) {
        vectors.first()
    } else {
        None
    };
    if let Some(first) = agreed {
        // Forward the agreed vector.
        let q = first.body_unverified().q.clone();
        result.final_q = Some(q);
        net.broadcast_referee(Msg::Verdict(Verdict::ok()));
        record_verdict(&mut result, Phase::Payments, &Verdict::ok());
        watch.checkpoint(Phase::Payments)?; // B10
        watch.checkpoint(Phase::Payments)?; // B11 (no bid views)
        net.broadcast_referee(Msg::Verdict(Verdict::ok()));
        watch.checkpoint(Phase::Payments)?; // B12
        result.faults = watch.faults;
        return Ok(result);
    }

    // Vectors disagree (or a defaulter's is missing): request the bids (§4).
    net.broadcast_referee(Msg::BidRequest);
    watch.checkpoint(Phase::Payments)?; // B10
    watch.checkpoint(Phase::Payments)?; // B11: bid views in
    let mut bids: Option<Vec<f64>> = None;
    for (from, msg) in drain_referee(&rx) {
        match msg {
            Msg::BidView { view, .. } => {
                if bids.is_none() {
                    if let Some(b) = verify_bid_view(&view, m, &referee, &verify_cache, profile) {
                        bids = Some(b);
                    }
                }
            }
            Msg::Garbage { .. } => watch.note_garbage(from),
            _ => {}
        }
    }
    // At least one honest processor exists under the fault model (§5);
    // if every submitted view is unverifiable the session cannot be
    // adjudicated and errors out instead of panicking the referee.
    let bids = bids.ok_or_else(|| {
        RunError::Protocol(
            ProtocolViolation::invalid_state(
                "no verifiable bid view received for payment adjudication",
            )
            .at_phase(Phase::Payments),
        )
    })?;
    let params = BusParams::new(referee_z(&referee), bids.clone()).map_err(|_| {
        RunError::Protocol(
            ProtocolViolation::invalid_state("verified bid view has invalid rates")
                .at_phase(Phase::Payments),
        )
    })?;
    let alpha = dls_dlt::optimal::fractions(referee_model(&referee), &params);
    let observed: Vec<f64> = meters
        .iter()
        .zip(alpha.iter())
        .zip(bids.iter())
        .map(|((phi, a), b)| if *a > 0.0 && *phi > 0.0 { phi / a } else { *b })
        .collect();
    let (verdict, correct) = referee
        .adjudicate_payments(&vectors, &bids, &observed)
        .map_err(|e| {
            RunError::Protocol(
                ProtocolViolation::invalid_state(e.to_string()).at_phase(Phase::Payments),
            )
        })?;
    result.final_q = Some(correct);
    record_verdict(&mut result, Phase::Payments, &verdict);
    net.broadcast_referee(Msg::Verdict(verdict));
    watch.checkpoint(Phase::Payments)?; // B12
    result.faults = watch.faults;
    Ok(result)
}

/// Reports (sorted by sender) plus the transport-level senders of garbage
/// frames observed at this collection point.
fn collect_reports(rx: &Receiver<(usize, Msg)>) -> (Vec<(usize, PhaseReport)>, Vec<usize>) {
    let mut out = Vec::new();
    let mut garbage = Vec::new();
    for (from, msg) in drain_referee(rx) {
        match msg {
            Msg::Report { report, .. } => out.push((from, report)),
            Msg::Garbage { .. } => garbage.push(from),
            _ => {}
        }
    }
    out.sort_by_key(|(from, _)| *from);
    (out, garbage)
}

pub(crate) fn record_verdict(result: &mut RefResult, phase: Phase, verdict: &Verdict) {
    if !verdict.fined.is_empty() {
        result.any_fines = true;
    }
    result.verdicts.push((phase, verdict.clone()));
}

/// Routes one envelope verification through the session's crypto profile:
/// `Amortized` memoizes the verdict in the round-shared [`VerifyCache`]
/// (one modexp per distinct envelope, every later receiver hits the
/// cache); `PerReceiverNaive` re-verifies via plain `pow_mod` every time,
/// modelling the pre-Montgomery per-receiver cost. Verification is
/// deterministic, so both routes return identical verdicts — the profile
/// changes only how many modexps are spent, never the outcome.
pub(crate) fn verify_profiled<'a, T: serde::Serialize>(
    signed: &'a Signed<T>,
    registry: &Registry,
    cache: &VerifyCache,
    profile: CryptoProfile,
) -> Result<&'a T, SignatureError> {
    match profile {
        CryptoProfile::Amortized => signed.verify_cached(registry, cache),
        CryptoProfile::PerReceiverNaive => signed.verify_naive(registry),
    }
}

/// Equality check across submitted payment vectors: requires a verified
/// vector from each of the `m` processors, all numerically equal.
pub(crate) fn vectors_all_equal(
    vectors: &[Signed<PaymentVectorBody>],
    m: usize,
    referee: &Referee,
    cache: &VerifyCache,
    profile: CryptoProfile,
) -> bool {
    use crate::referee::payments_agree;
    let mut per_proc: Vec<Option<&PaymentVectorBody>> = vec![None; m];
    for sv in vectors {
        let Ok(body) = verify_profiled(sv, referee_registry(referee), cache, profile) else {
            return false;
        };
        // `get_mut` rejects out-of-range indices; duplicates also fail.
        let Some(slot) = per_proc.get_mut(body.processor) else {
            return false;
        };
        if slot.is_some() {
            return false;
        }
        *slot = Some(body);
    }
    let Some(first) = per_proc.first().and_then(|b| *b) else {
        return false;
    };
    per_proc.iter().all(|b| match b {
        Some(body) => {
            body.q.len() == first.q.len()
                && body.q.iter().zip(&first.q).all(|(a, b)| {
                    payments_agree(a.compensation, b.compensation)
                        && payments_agree(a.bonus, b.bonus)
                })
        }
        None => false,
    })
}

pub(crate) fn verify_bid_view(
    view: &[Signed<BidBody>],
    m: usize,
    referee: &Referee,
    cache: &VerifyCache,
    profile: CryptoProfile,
) -> Option<Vec<f64>> {
    if view.len() != m {
        return None;
    }
    let mut bids = vec![f64::NAN; m];
    for sb in view {
        let body = verify_profiled(sb, referee_registry(referee), cache, profile).ok()?;
        if sb.signer() != format!("P{}", body.processor + 1) {
            return None;
        }
        // Only finite positive rates form valid bus parameters; a view
        // carrying anything else is rejected like a bad signature.
        if !(body.bid.is_finite() && body.bid > 0.0) {
            return None;
        }
        // `get_mut` also rejects out-of-range indices; a non-NaN slot is
        // a duplicate.
        let slot = bids.get_mut(body.processor)?;
        if !slot.is_nan() {
            return None;
        }
        *slot = body.bid;
    }
    Some(bids)
}

// Small accessors so the referee actor can reuse the referee's public
// session facts without widening Referee's API surface.
pub(crate) fn referee_registry(r: &Referee) -> &Registry {
    r.registry()
}

pub(crate) fn referee_model(r: &Referee) -> SystemModel {
    r.model()
}

pub(crate) fn referee_z(r: &Referee) -> f64 {
    r.z()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn bid_msg(processor: usize, bid: f64) -> Msg {
        // A syntactically valid (unverifiable) bid message for transport
        // tests; the inbox does not verify, only routes.
        Msg::Bid(Signed::forge(
            BidBody { processor, bid },
            format!("P{}", processor + 1),
            vec![0u8; 8],
        ))
    }

    #[test]
    fn inbox_drain_returns_pending_first() {
        let (tx, rx) = unbounded();
        let mut inbox = ProcInbox::new(rx);
        tx.send(bid_msg(0, 1.0)).unwrap();
        tx.send(Msg::Verdict(Verdict::ok())).unwrap();
        // Take the verdict; the bid must be held back...
        let v = inbox.take_verdict().unwrap();
        assert!(v.proceed);
        // ...and surface on the next drain, ahead of newer messages.
        tx.send(bid_msg(1, 2.0)).unwrap();
        let drained = inbox.drain();
        assert_eq!(drained.len(), 2);
        assert!(matches!(&drained[0], Msg::Bid(b) if b.body_unverified().processor == 0));
        assert!(matches!(&drained[1], Msg::Bid(b) if b.body_unverified().processor == 1));
    }

    #[test]
    fn inbox_take_first_scans_pending_before_channel() {
        let (tx, rx) = unbounded();
        let mut inbox = ProcInbox::new(rx);
        tx.send(Msg::Verdict(Verdict::ok())).unwrap();
        tx.send(bid_msg(3, 4.0)).unwrap();
        // First take stashes nothing (verdict is first).
        let _ = inbox.take_verdict();
        tx.send(Msg::Verdict(Verdict {
            proceed: false,
            fined: vec![(1, 5.0)],
            rewards: vec![],
        }))
        .unwrap();
        let v = inbox.take_verdict().unwrap();
        assert!(!v.proceed);
        // The bid survived two verdict takes.
        let bids = inbox.take_all(|m| match m {
            Msg::Bid(b) => Some(b.body_unverified().processor),
            _ => None,
        });
        assert_eq!(bids, vec![3]);
    }

    #[test]
    fn inbox_take_first_none_when_absent() {
        let (_tx, rx) = unbounded::<Msg>();
        let mut inbox = ProcInbox::new(rx);
        assert!(inbox.take_verdict().is_none());
    }

    #[test]
    fn inbox_drops_garbage_at_receipt() {
        let (tx, rx) = unbounded();
        let mut inbox = ProcInbox::new(rx);
        tx.send(Msg::Garbage { from: 1 }).unwrap();
        tx.send(bid_msg(0, 1.0)).unwrap();
        tx.send(Msg::Garbage { from: 2 }).unwrap();
        let drained = inbox.drain();
        assert_eq!(drained.len(), 1);
        assert!(matches!(&drained[0], Msg::Bid(_)));
        // take_first also never surfaces or stashes garbage.
        tx.send(Msg::Garbage { from: 1 }).unwrap();
        tx.send(Msg::Verdict(Verdict::ok())).unwrap();
        assert!(inbox.take_verdict().is_some());
        assert!(inbox.drain().is_empty());
    }

    #[test]
    fn violation_display_matches_legacy_text() {
        // Satellite contract: the structured errors render exactly the
        // strings the stringly-typed RunError::Protocol(String) produced.
        let cases = [
            (
                RunError::Protocol(ProtocolViolation::missing_message("bidding verdict")),
                "protocol runtime failure: expected bidding verdict missing at phase boundary",
            ),
            (
                RunError::Protocol(ProtocolViolation::panicked(ActorRole::Processor)),
                "protocol runtime failure: a processor thread panicked",
            ),
            (
                RunError::Protocol(ProtocolViolation::panicked(ActorRole::Referee)),
                "protocol runtime failure: the referee thread panicked",
            ),
            (
                RunError::Protocol(ProtocolViolation::panicked(ActorRole::Actor)),
                "protocol runtime failure: an actor thread panicked",
            ),
            (
                RunError::Protocol(ProtocolViolation::invalid_state(
                    "realized execution rates invalid",
                )),
                "protocol runtime failure: realized execution rates invalid",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
        // Structured context is attached without changing the rendering.
        let v = ProtocolViolation::missing_message("meter vector")
            .at_phase(Phase::Processing)
            .by_processor(2);
        assert_eq!(v.phase, Some(Phase::Processing));
        assert_eq!(v.processor, Some(2));
        assert_eq!(
            v.to_string(),
            "expected meter vector missing at phase boundary"
        );
    }

    #[test]
    fn phase_barrier_abort_releases_waiters() {
        let barrier = Arc::new(PhaseBarrier::new(2));
        let waiter = {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || barrier.wait_as(0))
        };
        barrier.abort(ProtocolViolation::invalid_state("fixture failure"));
        let err = waiter.join().unwrap().unwrap_err();
        assert!(matches!(err, RunError::Protocol(ref v) if v.to_string() == "fixture failure"));
        // Late arrivals observe the sticky abort immediately.
        assert!(barrier.wait_as(1).is_err());
    }

    #[test]
    fn phase_barrier_releases_all_parties_per_generation() {
        let barrier = Arc::new(PhaseBarrier::new(3));
        let spawn_waiter = |b: &Arc<PhaseBarrier>, id: usize| {
            let b = Arc::clone(b);
            std::thread::spawn(move || b.wait_as(id).and_then(|()| b.wait_as(id)))
        };
        let a = spawn_waiter(&barrier, 0);
        let b = spawn_waiter(&barrier, 1);
        assert!(barrier.wait_as(2).is_ok());
        assert!(barrier.wait_as(2).is_ok());
        assert!(a.join().unwrap().is_ok());
        assert!(b.join().unwrap().is_ok());
    }

    #[test]
    fn phase_barrier_deadline_removes_missing_parties() {
        // Three parties; party 1 never shows up. The deadline waiter (2)
        // removes it, and both live parties keep synchronizing afterwards.
        let barrier = Arc::new(PhaseBarrier::new(3));
        let live = {
            let b = Arc::clone(&barrier);
            std::thread::spawn(move || b.wait_as(0).and_then(|()| b.wait_as(0)))
        };
        let removed = barrier
            .wait_deadline_as(2, Duration::from_millis(50))
            .unwrap();
        assert_eq!(removed, vec![1]);
        // Next generation completes without the removed party, well before
        // this generous deadline.
        let removed = barrier
            .wait_deadline_as(2, Duration::from_secs(5))
            .unwrap();
        assert!(removed.is_empty());
        assert!(live.join().unwrap().is_ok());
        // The removed party's thread, were it alive, would be told it
        // defaulted rather than being allowed to rejoin.
        let err = barrier.wait_as(1).unwrap_err();
        assert!(matches!(
            err,
            RunError::Protocol(ref v) if v.kind == ViolationKind::Defaulted
        ));
    }

    #[test]
    fn message_stats_accumulate_by_category() {
        let mut s = MessageStats::default();
        s.record(MsgCategory::Bid, 3, 100);
        s.record(MsgCategory::Bid, 1, 50);
        s.record(MsgCategory::PaymentVector, 2, 400);
        assert_eq!(s.category("bid"), (4, 350));
        assert_eq!(s.category("payment-vector"), (2, 800));
        assert_eq!(s.category("grant"), (0, 0));
        assert_eq!(s.total_messages(), 6);
        assert_eq!(s.total_bytes(), 1150);
    }

    #[test]
    fn message_stats_merge_sums_rounds() {
        let mut a = MessageStats::default();
        a.record(MsgCategory::Bid, 2, 10);
        a.record(MsgCategory::Control, 5, 8);
        let mut b = MessageStats::default();
        b.record(MsgCategory::Bid, 3, 10);
        b.record(MsgCategory::Grant, 1, 100);
        a.merge(&b);
        assert_eq!(a.category("bid"), (5, 50));
        assert_eq!(a.category("grant"), (1, 100));
        assert_eq!(a.category("control"), (5, 40));
    }

    #[test]
    fn key_cache_is_deterministic_and_identity_scoped() {
        let ids = vec!["P1".to_string(), "P2".to_string()];
        let a = generate_keys_cached(&ids, 384, 99).unwrap();
        let b = generate_keys_cached(&ids, 384, 99).unwrap();
        assert_eq!(a[0].public(), b[0].public());
        assert_eq!(a[1].public(), b[1].public());
        assert_ne!(a[0].public(), a[1].public(), "identities get distinct keys");
        let c = generate_keys_cached(&ids, 384, 100).unwrap();
        assert_ne!(a[0].public(), c[0].public(), "seeds get distinct keys");
    }
}
