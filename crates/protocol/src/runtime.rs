//! Threaded message-passing execution of DLS-BL-NCP.
//!
//! One OS thread per strategic processor plus one for the referee,
//! connected by channels that model the paper's network assumptions:
//!
//! * **tamper-proof network / protocols** — transport is provided by the
//!   runtime; agents can choose *what* to send, never to alter delivery;
//! * **reliable atomic broadcast** — a broadcast is delivered to every peer
//!   under a lock, so all receivers observe broadcasts in a consistent
//!   order and a sender cannot transmit different values within one
//!   broadcast (equivocation requires *two* broadcasts, which peers detect
//!   exactly as in §4);
//! * **lock-step phases** — threads synchronize on a barrier at each phase
//!   boundary, modelling the known communication rounds of the protocol.
//!
//! Every message is counted by category and (approximate) wire size, which
//! is the measurement behind experiment E10 (Theorem 5.4: Θ(m²)).
//!
//! ## Deviations faithfully represented
//!
//! The [`Behavior`] catalogue drives the strategic hooks: what to bid
//! (twice, for equivocators), how many blocks to grant, what payment
//! vector to submit, and whether to raise false accusations. Everything
//! else — signatures, meters, transport — is outside agent control.

use crate::blocks::{integer_allocation, DataSet, USER_IDENTITY};
use crate::config::{Behavior, ProcessorConfig, SessionConfig};
use crate::ledger::{Account, Ledger, TransferReason};
use crate::messages::{
    BidBody, Evidence, GrantBody, Msg, MsgCategory, PaymentEntry, PaymentVectorBody, PhaseReport,
    Verdict,
};
use crate::referee::{Phase, Referee};
use crossbeam::channel::{unbounded, Receiver, Sender};
use dls_crypto::pki::{KeyPair, Registry};
use dls_crypto::Signed;
use dls_dlt::{BusParams, SystemModel};
use dls_netsim::{simulate, SessionSpec as NetSessionSpec, Timeline};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Barrier};

/// Errors when running a session.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The protocol needs at least two *participating* processors.
    TooFewParticipants,
    /// The CP model has a trusted external originator and is not subject to
    /// the NCP protocol; use `dls-mechanism` directly for CP baselines.
    UnsupportedModel,
    /// Key generation failed (modulus too small).
    Crypto(String),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::TooFewParticipants => {
                write!(f, "fewer than two processors participate")
            }
            RunError::UnsupportedModel => write!(
                f,
                "the NCP protocol runs on NCP-FE / NCP-NFE; CP has a trusted control processor"
            ),
            RunError::Crypto(e) => write!(f, "crypto setup failed: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

/// Per-category message accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MessageStats {
    counts: BTreeMap<&'static str, (u64, u64)>,
}

impl MessageStats {
    fn record(&mut self, category: MsgCategory, copies: u64, bytes_each: u64) {
        let key = match category {
            MsgCategory::Bid => "bid",
            MsgCategory::Grant => "grant",
            MsgCategory::PaymentVector => "payment-vector",
            MsgCategory::Control => "control",
        };
        let e = self.counts.entry(key).or_insert((0, 0));
        e.0 += copies;
        e.1 += copies * bytes_each;
    }

    /// Records `copies` deliveries of a message (public entry point for
    /// alternative transports, e.g. the centralized baseline).
    pub fn record_public(&mut self, category: MsgCategory, copies: u64, bytes_each: u64) {
        self.record(category, copies, bytes_each);
    }

    /// `(message count, total bytes)` for a category key
    /// (`"bid"`, `"grant"`, `"payment-vector"`, `"control"`).
    pub fn category(&self, key: &str) -> (u64, u64) {
        self.counts.get(key).copied().unwrap_or((0, 0))
    }

    /// Total messages delivered.
    pub fn total_messages(&self) -> u64 {
        self.counts.values().map(|(c, _)| c).sum()
    }

    /// Total bytes delivered.
    pub fn total_bytes(&self) -> u64 {
        self.counts.values().map(|(_, b)| b).sum()
    }
}

/// Outcome status of a session.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionStatus {
    /// All phases completed, no fines.
    Completed,
    /// The work completed but payment-phase deviants were fined.
    CompletedWithFines,
    /// The protocol terminated early at `phase` because fines were raised.
    Aborted {
        /// Phase at which the verdict terminated the session.
        phase: Phase,
    },
}

/// Per-processor results, indexed like the *original* configuration.
#[derive(Debug, Clone)]
pub struct ProcessorOutcome {
    /// The configuration this processor played.
    pub config: ProcessorConfig,
    /// `false` for [`Behavior::NonParticipant`].
    pub participated: bool,
    /// First broadcast bid, if any.
    pub bid: Option<f64>,
    /// Real-valued allocation fraction `α_i(b)` (0 if the session aborted
    /// during bidding or the processor did not participate).
    pub alloc_fraction: f64,
    /// Blocks actually granted.
    pub blocks_granted: usize,
    /// Tamper-proof meter reading `φ_i` (0 unless processing ran).
    pub meter: f64,
    /// Final payment entry from the forwarded vector `Q`, if the session
    /// reached payments.
    pub payment: Option<PaymentEntry>,
    /// Total fines paid.
    pub fined: f64,
    /// Total rewards received from the fine pool.
    pub rewarded: f64,
    /// Cost incurred (computation time actually spent).
    pub cost: f64,
    /// Net utility: ledger balance − cost.
    pub utility: f64,
}

/// Everything a session produced.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Completion status.
    pub status: SessionStatus,
    /// Per-processor outcomes (original indexing).
    pub processors: Vec<ProcessorOutcome>,
    /// The fine `F` in force.
    pub fine: f64,
    /// Message accounting.
    pub messages: MessageStats,
    /// Conservation-checked money movements.
    pub ledger: Ledger,
    /// Realized execution timeline (only when processing ran).
    pub timeline: Option<Timeline>,
    /// Realized makespan (only when processing ran).
    pub makespan: Option<f64>,
}

impl SessionOutcome {
    /// Utility of processor `i` (original indexing).
    pub fn utility(&self, i: usize) -> f64 {
        self.processors[i].utility
    }

    /// Indices fined during the session.
    pub fn fined_processors(&self) -> Vec<usize> {
        self.processors
            .iter()
            .enumerate()
            .filter(|(_, p)| p.fined > 0.0)
            .map(|(i, _)| i)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Transport
// ---------------------------------------------------------------------------

struct Net {
    proc_txs: Vec<Sender<Msg>>,
    referee_tx: Sender<(usize, Msg)>,
    stats: Mutex<MessageStats>,
    bcast: Mutex<()>,
}

impl Net {
    fn record(&self, msg: &Msg, copies: u64) {
        self.stats
            .lock()
            .record(msg.category(), copies, msg.wire_size() as u64);
    }

    /// Atomic broadcast from processor `from` to all other processors.
    fn broadcast(&self, from: usize, msg: Msg) {
        let _g = self.bcast.lock();
        let copies = self.proc_txs.len().saturating_sub(1) as u64;
        self.record(&msg, copies);
        for (j, tx) in self.proc_txs.iter().enumerate() {
            if j != from {
                let _ = tx.send(msg.clone());
            }
        }
    }

    /// Referee broadcast to all processors.
    fn broadcast_referee(&self, msg: Msg) {
        let _g = self.bcast.lock();
        self.record(&msg, self.proc_txs.len() as u64);
        for tx in &self.proc_txs {
            let _ = tx.send(msg.clone());
        }
    }

    /// Unicast between processors.
    fn unicast(&self, to: usize, msg: Msg) {
        self.record(&msg, 1);
        let _ = self.proc_txs[to].send(msg);
    }

    /// Processor (or meter) → referee.
    fn to_referee(&self, from: usize, msg: Msg) {
        self.record(&msg, 1);
        let _ = self.referee_tx.send((from, msg));
    }
}

/// A processor's inbox with a hold-back buffer: draining for one kind of
/// message must not discard messages that belong to a later step (e.g. a
/// fast originator's grant can land while a slow peer is still consuming
/// the bidding verdict).
struct ProcInbox {
    rx: Receiver<Msg>,
    pending: std::collections::VecDeque<Msg>,
}

impl ProcInbox {
    fn new(rx: Receiver<Msg>) -> Self {
        ProcInbox {
            rx,
            pending: std::collections::VecDeque::new(),
        }
    }

    /// All currently available messages (pending buffer first).
    fn drain(&mut self) -> Vec<Msg> {
        let mut out: Vec<Msg> = self.pending.drain(..).collect();
        out.extend(self.rx.try_iter());
        out
    }

    /// Consumes and returns the first message matched by `take`, holding
    /// every other available message back for later drains.
    ///
    /// # Panics
    /// Panics if no available message matches — the lock-step phase
    /// structure guarantees the expected message has been sent before the
    /// barrier this is called behind.
    fn take_first<T>(&mut self, mut take: impl FnMut(&Msg) -> Option<T>) -> T {
        // Check held-back messages first.
        for idx in 0..self.pending.len() {
            if let Some(v) = take(&self.pending[idx]) {
                self.pending.remove(idx);
                return v;
            }
        }
        for msg in self.rx.try_iter() {
            match take(&msg) {
                Some(v) => return v,
                None => self.pending.push_back(msg),
            }
        }
        panic!("expected message missing at phase boundary");
    }

    /// Consumes every available message matched by `take`, holding the
    /// rest back.
    fn take_all<T>(&mut self, mut take: impl FnMut(&Msg) -> Option<T>) -> Vec<T> {
        let msgs = self.drain();
        let mut out = Vec::new();
        for msg in msgs {
            match take(&msg) {
                Some(v) => out.push(v),
                None => self.pending.push_back(msg),
            }
        }
        out
    }

    fn take_verdict(&mut self) -> Verdict {
        self.take_first(|m| match m {
            Msg::Verdict(v) => Some(v.clone()),
            _ => None,
        })
    }
}

fn drain_referee(rx: &Receiver<(usize, Msg)>) -> Vec<(usize, Msg)> {
    rx.try_iter().collect()
}

// ---------------------------------------------------------------------------
// The session runner
// ---------------------------------------------------------------------------

/// Runs one DLS-BL-NCP session end to end.
///
/// Non-participants are excluded from the active market (they receive
/// utility 0, per §4); behaviours whose `victim`/`target` indices point at
/// non-participants degrade to [`Behavior::Compliant`].
pub fn run_session(cfg: &SessionConfig) -> Result<SessionOutcome, RunError> {
    if cfg.model == SystemModel::Cp {
        return Err(RunError::UnsupportedModel);
    }
    // Active set and index remapping (original -> active position).
    let active: Vec<usize> = (0..cfg.m())
        .filter(|&i| cfg.processors[i].behavior != Behavior::NonParticipant)
        .collect();
    let m = active.len();
    if m < 2 {
        return Err(RunError::TooFewParticipants);
    }
    let to_active: BTreeMap<usize, usize> = active
        .iter()
        .enumerate()
        .map(|(pos, &orig)| (orig, pos))
        .collect();

    // Remap index-bearing behaviours into active coordinates.
    let procs: Vec<ProcessorConfig> = active
        .iter()
        .map(|&orig| {
            let p = cfg.processors[orig];
            let behavior = match p.behavior {
                Behavior::ShortAllocate { victim, shortfall } => to_active
                    .get(&victim)
                    .map(|&v| Behavior::ShortAllocate {
                        victim: v,
                        shortfall,
                    })
                    .unwrap_or(Behavior::Compliant),
                Behavior::OverAllocate { victim, excess } => to_active
                    .get(&victim)
                    .map(|&v| Behavior::OverAllocate { victim: v, excess })
                    .unwrap_or(Behavior::Compliant),
                Behavior::CorruptPayments { target, factor } => to_active
                    .get(&target)
                    .map(|&t| Behavior::CorruptPayments { target: t, factor })
                    .unwrap_or(Behavior::Compliant),
                Behavior::ForgeExtraBid { impersonate } => to_active
                    .get(&impersonate)
                    .map(|&t| Behavior::ForgeExtraBid { impersonate: t })
                    .unwrap_or(Behavior::Compliant),
                other => other,
            };
            ProcessorConfig {
                true_w: p.true_w,
                behavior,
            }
        })
        .collect();

    // --- Initialization phase: PKI + user-signed data set -----------------
    // Key generation is by far the most expensive setup step; identities
    // are independent, so generate them in parallel from per-identity
    // seeds, with a process-wide cache so repeated sessions (tests,
    // benches, experiment sweeps) reuse key pairs deterministically.
    let mut identities: Vec<String> = (1..=m).map(|i| format!("P{i}")).collect();
    identities.push(USER_IDENTITY.to_string());
    let mut keys = generate_keys_cached(&identities, cfg.key_bits, cfg.seed)?;
    let user = keys.pop().expect("user key generated");
    let registry = Registry::from_keypairs(keys.iter().chain(std::iter::once(&user)));
    let dataset = Arc::new(
        DataSet::prepare(&user, cfg.blocks, 32).map_err(|e| RunError::Crypto(e.to_string()))?,
    );

    let originator = cfg
        .model
        .originator(m)
        .expect("NCP models always have an originator");
    let referee = Referee::new(
        registry.clone(),
        cfg.model,
        cfg.z,
        m,
        cfg.fine,
        cfg.blocks,
    );

    // --- Channels, barrier, transport -------------------------------------
    let mut proc_txs = Vec::with_capacity(m);
    let mut proc_rxs = Vec::with_capacity(m);
    for _ in 0..m {
        let (tx, rx) = unbounded();
        proc_txs.push(tx);
        proc_rxs.push(rx);
    }
    let (ref_tx, ref_rx) = unbounded();
    let net = Arc::new(Net {
        proc_txs,
        referee_tx: ref_tx,
        stats: Mutex::new(MessageStats::default()),
        bcast: Mutex::new(()),
    });
    let barrier = Arc::new(Barrier::new(m + 1));

    let model = cfg.model;
    let z = cfg.z;
    let blocks_total = cfg.blocks;

    // --- Run the actors ----------------------------------------------------
    let mut proc_results: Vec<Option<ProcResult>> = (0..m).map(|_| None).collect();
    let mut referee_result: Option<RefResult> = None;

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(m);
        for (i, rx) in proc_rxs.into_iter().enumerate() {
            let ctx = ProcCtx {
                i,
                m,
                model,
                z,
                blocks_total,
                originator,
                cfg: procs[i],
                key: keys[i].clone(),
                registry: registry.clone(),
                net: Arc::clone(&net),
                barrier: Arc::clone(&barrier),
                rx,
                dataset: (i == originator).then(|| Arc::clone(&dataset)),
            };
            handles.push(scope.spawn(move || processor_main(ctx)));
        }
        let ref_handle = {
            let net = Arc::clone(&net);
            let barrier = Arc::clone(&barrier);
            let dataset = Arc::clone(&dataset);
            let referee = referee.clone();
            scope.spawn(move || referee_main(referee, m, net, barrier, ref_rx, dataset))
        };
        for (i, h) in handles.into_iter().enumerate() {
            proc_results[i] = Some(h.join().expect("processor thread panicked"));
        }
        referee_result = Some(ref_handle.join().expect("referee thread panicked"));
    });

    let proc_results: Vec<ProcResult> = proc_results.into_iter().map(Option::unwrap).collect();
    let rr = referee_result.expect("referee result present");

    // --- Money -------------------------------------------------------------
    // Ledger and outcomes are assembled in ORIGINAL indexing.
    let mut ledger = Ledger::new();
    let orig_index = |active_pos: usize| active[active_pos];

    for (phase, verdict) in &rr.verdicts {
        let _ = phase;
        for &(i, amount) in &verdict.fined {
            ledger.transfer(
                Account::Processor(orig_index(i)),
                Account::FinePool,
                amount,
                TransferReason::Fine,
            );
        }
        for &(i, amount) in &verdict.rewards {
            ledger.transfer(
                Account::FinePool,
                Account::Processor(orig_index(i)),
                amount,
                TransferReason::Reward,
            );
        }
    }
    if let Some(q) = &rr.final_q {
        for (i, entry) in q.iter().enumerate() {
            let total = entry.total();
            if total >= 0.0 {
                ledger.transfer(
                    Account::User,
                    Account::Processor(orig_index(i)),
                    total,
                    TransferReason::Payment,
                );
            } else {
                ledger.transfer(
                    Account::Processor(orig_index(i)),
                    Account::User,
                    -total,
                    TransferReason::Payment,
                );
            }
        }
    }

    // --- Realized timeline (only when processing ran) ----------------------
    let (timeline, makespan) = if rr.meters.is_some() {
        let exec: Vec<f64> = procs.iter().map(|p| p.exec_w()).collect();
        let alloc: Vec<f64> = proc_results.iter().map(|r| r.alloc_fraction).collect();
        let params = BusParams::new(z, exec).expect("validated rates");
        let tl = simulate(&NetSessionSpec::new(model, params, alloc));
        let mk = tl.makespan;
        (Some(tl), Some(mk))
    } else {
        (None, None)
    };

    // --- Per-processor outcomes in original indexing ------------------------
    let mut processors = Vec::with_capacity(cfg.m());
    for orig in 0..cfg.m() {
        let outcome = match to_active.get(&orig) {
            None => ProcessorOutcome {
                config: cfg.processors[orig],
                participated: false,
                bid: None,
                alloc_fraction: 0.0,
                blocks_granted: 0,
                meter: 0.0,
                payment: None,
                fined: 0.0,
                rewarded: 0.0,
                cost: 0.0,
                utility: 0.0,
            },
            Some(&pos) => {
                let r = &proc_results[pos];
                let account = Account::Processor(orig);
                let fined: f64 = ledger
                    .journal()
                    .iter()
                    .filter(|t| t.reason == TransferReason::Fine && t.from == account)
                    .map(|t| t.amount)
                    .sum();
                let rewarded: f64 = ledger
                    .journal()
                    .iter()
                    .filter(|t| t.reason == TransferReason::Reward && t.to == account)
                    .map(|t| t.amount)
                    .sum();
                let cost = r.meter;
                let utility = ledger.balance(&account) - cost;
                ProcessorOutcome {
                    config: cfg.processors[orig],
                    participated: true,
                    bid: r.bid,
                    alloc_fraction: r.alloc_fraction,
                    blocks_granted: r.blocks_granted,
                    meter: r.meter,
                    payment: rr.final_q.as_ref().map(|q| q[pos]),
                    fined,
                    rewarded,
                    cost,
                    utility,
                }
            }
        };
        processors.push(outcome);
    }

    let status = match rr.aborted {
        Some(phase) => SessionStatus::Aborted { phase },
        None if rr.any_fines => SessionStatus::CompletedWithFines,
        None => SessionStatus::Completed,
    };

    let messages = net.stats.lock().clone();
    Ok(SessionOutcome {
        status,
        processors,
        fine: cfg.fine,
        messages,
        ledger,
        timeline,
        makespan,
    })
}

/// Parallel, cached deterministic key generation. Each `(identity, seed,
/// bits)` triple always yields the same key pair within a process.
fn generate_keys_cached(
    identities: &[String],
    bits: usize,
    seed: u64,
) -> Result<Vec<KeyPair>, RunError> {
    type Cache = BTreeMap<(String, usize, u64), KeyPair>;
    static CACHE: Mutex<Option<Cache>> = Mutex::new(None);

    let mut misses: Vec<(usize, String)> = Vec::new();
    let mut out: Vec<Option<KeyPair>> = vec![None; identities.len()];
    {
        let mut guard = CACHE.lock();
        let cache = guard.get_or_insert_with(Cache::new);
        for (idx, id) in identities.iter().enumerate() {
            match cache.get(&(id.clone(), bits, seed)) {
                Some(kp) => out[idx] = Some(kp.clone()),
                None => misses.push((idx, id.clone())),
            }
        }
    }
    if !misses.is_empty() {
        let generated: Vec<(usize, Result<KeyPair, RunError>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = misses
                .iter()
                .map(|(idx, id)| {
                    let idx = *idx;
                    let id = id.clone();
                    scope.spawn(move || {
                        // Distinct deterministic stream per identity.
                        let mut h = dls_crypto::sha256::Sha256::new();
                        h.update(&seed.to_le_bytes());
                        h.update(id.as_bytes());
                        let digest = h.finalize();
                        let sub_seed = u64::from_le_bytes(digest[..8].try_into().unwrap());
                        let mut rng = StdRng::seed_from_u64(sub_seed);
                        let kp = KeyPair::generate(id, bits, &mut rng)
                            .map_err(|e| RunError::Crypto(e.to_string()));
                        (idx, kp)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("keygen thread panicked"))
                .collect()
        });
        let mut guard = CACHE.lock();
        let cache = guard.get_or_insert_with(Cache::new);
        for (idx, kp) in generated {
            let kp = kp?;
            cache.insert((kp.identity().to_string(), bits, seed), kp.clone());
            out[idx] = Some(kp);
        }
    }
    Ok(out.into_iter().map(Option::unwrap).collect())
}

// ---------------------------------------------------------------------------
// Processor actor
// ---------------------------------------------------------------------------

struct ProcCtx {
    i: usize,
    m: usize,
    model: SystemModel,
    z: f64,
    blocks_total: usize,
    originator: usize,
    cfg: ProcessorConfig,
    key: KeyPair,
    registry: Registry,
    net: Arc<Net>,
    barrier: Arc<Barrier>,
    rx: Receiver<Msg>,
    /// The user's data set — held only by the originating processor.
    dataset: Option<Arc<DataSet>>,
}

#[derive(Debug, Clone)]
struct ProcResult {
    bid: Option<f64>,
    alloc_fraction: f64,
    blocks_granted: usize,
    meter: f64,
}

fn processor_main(ctx: ProcCtx) -> ProcResult {
    let ProcCtx {
        i,
        m,
        model,
        z,
        blocks_total,
        originator,
        cfg,
        key,
        registry,
        net,
        barrier,
        rx,
        dataset,
    } = ctx;
    let mut inbox = ProcInbox::new(rx);
    let mut result = ProcResult {
        bid: None,
        alloc_fraction: 0.0,
        blocks_granted: 0,
        meter: 0.0,
    };

    // ---- Phase 1: Bidding --------------------------------------------------
    let my_bid = cfg.bid().expect("non-participants are filtered out");
    result.bid = Some(my_bid);
    let first = key
        .sign(BidBody {
            processor: i,
            bid: my_bid,
        })
        .expect("bid signs");
    net.broadcast(i, Msg::Bid(first.clone()));
    match cfg.behavior {
        Behavior::EquivocateBids { factor } => {
            let second = key
                .sign(BidBody {
                    processor: i,
                    bid: my_bid * factor,
                })
                .expect("bid signs");
            net.broadcast(i, Msg::Bid(second));
        }
        Behavior::ForgeExtraBid { impersonate } => {
            // A bid claiming to come from someone else, with garbage
            // signature bytes (signature forgery is assumed impossible,
            // Lemma 5.2). Receivers must discard it.
            let forged = Signed::forge(
                BidBody {
                    processor: impersonate,
                    bid: 0.01,
                },
                format!("P{}", impersonate + 1),
                vec![0x5a; 48],
            );
            net.broadcast(i, Msg::Bid(forged));
        }
        _ => {}
    }
    barrier.wait(); // B1: all bids delivered

    // Collect bids; note equivocators.
    let mut bid_view: Vec<Option<Signed<BidBody>>> = vec![None; m];
    bid_view[i] = Some(first);
    let mut equivocation: Option<(usize, Signed<BidBody>, Signed<BidBody>)> = None;
    let incoming_bids = inbox.take_all(|m| match m {
        Msg::Bid(signed) => Some(signed.clone()),
        _ => None,
    });
    for signed in incoming_bids {
        let Ok(body) = signed.verify(&registry) else {
            continue; // failed verification: discarded (§4)
        };
        let sender = body.processor;
        if sender >= m || signed.signer() != format!("P{}", sender + 1) {
            continue;
        }
        match &bid_view[sender] {
            None => bid_view[sender] = Some(signed),
            Some(existing) => {
                if existing.body_unverified() != signed.body_unverified() {
                    equivocation = Some((sender, existing.clone(), signed));
                }
            }
        }
    }
    let report = match &equivocation {
        Some((who, a, b)) => PhaseReport::Accuse {
            accused: *who,
            evidence: Evidence::Equivocation {
                first: a.clone(),
                second: b.clone(),
            },
        },
        None => PhaseReport::Ok,
    };
    net.to_referee(i, Msg::Report { from: i, report });
    barrier.wait(); // B2: reports in
    barrier.wait(); // B3: verdict broadcast
    let verdict = inbox.take_verdict();
    if !verdict.proceed {
        return result;
    }

    // Everyone has exactly one bid per peer now (otherwise the session
    // would have aborted); assemble the agreed bid vector.
    let signed_bids: Vec<Signed<BidBody>> = bid_view
        .into_iter()
        .map(|b| b.expect("bid present after clean bidding phase"))
        .collect();
    let bids: Vec<f64> = signed_bids
        .iter()
        .map(|s| s.body_unverified().bid)
        .collect();
    let params = BusParams::new(z, bids.clone()).expect("bids validated");
    let alpha = dls_dlt::optimal::fractions(model, &params);
    let counts = integer_allocation(&alpha, blocks_total);
    result.alloc_fraction = alpha[i];

    // ---- Phase 2: Allocating load -------------------------------------------
    let mut my_blocks: Vec<crate::blocks::SignedBlock> = Vec::new();
    if i == originator {
        // The originator holds the data set (it received it from the user
        // out of band). Deviant originators tamper with the counts here.
        let dataset = dataset.as_ref().expect("originator holds the data set");
        let grants = dataset.split(&counts);
        for (to, blocks) in grants.into_iter().enumerate() {
            if to == i {
                my_blocks = blocks;
                continue;
            }
            let mut blocks = blocks;
            match cfg.behavior {
                Behavior::ShortAllocate { victim, shortfall } if victim == to => {
                    let keep = blocks.len().saturating_sub(shortfall);
                    blocks.truncate(keep);
                }
                Behavior::OverAllocate { victim, excess } if victim == to => {
                    // Pad with duplicates of the victim's first block (or
                    // block 0 of the data set when the grant is empty).
                    let pad = blocks
                        .first()
                        .cloned()
                        .unwrap_or_else(|| dataset.blocks()[0].clone());
                    for _ in 0..excess {
                        blocks.push(pad.clone());
                    }
                }
                _ => {}
            }
            let grant = key
                .sign(GrantBody { to, blocks })
                .expect("grant signs");
            net.unicast(to, Msg::Grant(grant));
        }
        result.blocks_granted = my_blocks.len();
    }
    barrier.wait(); // B4: grants delivered

    let mut alloc_report = PhaseReport::Ok;
    if i != originator {
        let granted: Option<Signed<GrantBody>> = inbox
            .take_all(|m| match m {
                Msg::Grant(g) => Some(g.clone()),
                _ => None,
            })
            .pop();
        match granted {
            Some(grant) => {
                let valid_blocks = grant
                    .verify(&registry)
                    .map(|body| {
                        body.blocks
                            .iter()
                            .filter(|b| b.verify(&registry).is_ok())
                            .count()
                    })
                    .unwrap_or(0);
                result.blocks_granted = valid_blocks;
                my_blocks = grant.body_unverified().blocks.clone();
                let expected = counts[i];
                let mismatch = valid_blocks != expected;
                let false_accusation =
                    cfg.behavior == Behavior::FalselyAccuseAllocation && !mismatch;
                if mismatch || false_accusation {
                    alloc_report = PhaseReport::Accuse {
                        accused: originator,
                        evidence: Evidence::WrongAllocation {
                            grant: grant.clone(),
                            bid_view: signed_bids.clone(),
                            expected_blocks: expected,
                        },
                    };
                }
            }
            None => {
                // No grant at all: report with an empty grant is impossible
                // (nothing signed to show); in the paper the referee mediates
                // load-unit delivery. We model it as a mismatch report with
                // the bid view only — representable as expected > 0 granted 0
                // via a self-signed empty grant placeholder is NOT valid
                // evidence, so instead the processor stays silent and the
                // originator's other victims carry the accusation. With at
                // least one block per processor this branch is unreachable
                // for the behaviours in the catalogue.
            }
        }
    }
    net.to_referee(
        i,
        Msg::Report {
            from: i,
            report: alloc_report,
        },
    );
    barrier.wait(); // B5: allocation reports in
    barrier.wait(); // B6: verdict broadcast
    let verdict = inbox.take_verdict();
    if !verdict.proceed {
        return result;
    }

    // ---- Phase 3: Processing -------------------------------------------------
    // The tamper-proof meter measures the time actually spent computing:
    // φ_i = (granted blocks / total) · w̃_i. The agent cannot influence this
    // message (the runtime emits it from the configuration, not from any
    // strategy hook).
    let real_fraction = my_blocks.len() as f64 / blocks_total as f64;
    let phi = real_fraction * cfg.exec_w();
    result.meter = phi;
    net.to_referee(i, Msg::Meter { of: i, phi });
    barrier.wait(); // B7: meters in
    barrier.wait(); // B8: meters broadcast
    let meters: Vec<f64> = inbox
        .take_first(|m| match m {
            Msg::Meters(v) => Some(v.clone()),
            _ => None,
        });

    // ---- Phase 4: Computing payments ------------------------------------------
    // w̃_j = φ_j / α_j (per §4, Computing Payments).
    let observed: Vec<f64> = meters
        .iter()
        .zip(&alpha)
        .map(|(phi, a)| if *a > 0.0 { phi / a } else { 0.0 })
        .collect();
    // Guard degenerate observed rates (zero-block processors) with the bid.
    let observed: Vec<f64> = observed
        .iter()
        .zip(&bids)
        .map(|(o, b)| if *o > 0.0 { *o } else { *b })
        .collect();
    let mut q: Vec<PaymentEntry> =
        dls_mechanism::compute_payments(model, &params, &alpha, &observed)
            .into_iter()
            .map(|p| PaymentEntry {
                compensation: p.compensation,
                bonus: p.bonus,
            })
            .collect();
    if let Behavior::CorruptPayments { target, factor } = cfg.behavior {
        q[target].compensation *= factor;
    }
    let pv = key
        .sign(PaymentVectorBody { processor: i, q })
        .expect("payment vector signs");
    net.to_referee(i, Msg::PaymentVector(pv));
    barrier.wait(); // B9: vectors in
    barrier.wait(); // B10: equality verdict or bid request
    let bid_request = !inbox
        .take_all(|m| matches!(m, Msg::BidRequest).then_some(()))
        .is_empty();
    if bid_request {
        net.to_referee(
            i,
            Msg::BidView {
                from: i,
                view: signed_bids.clone(),
            },
        );
    }
    barrier.wait(); // B11: bid views in (possibly none)
    barrier.wait(); // B12: final verdict
    let _ = inbox.take_verdict();
    result
}

// ---------------------------------------------------------------------------
// Referee actor
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct RefResult {
    aborted: Option<Phase>,
    any_fines: bool,
    verdicts: Vec<(Phase, Verdict)>,
    meters: Option<Vec<f64>>,
    final_q: Option<Vec<PaymentEntry>>,
}

fn referee_main(
    referee: Referee,
    m: usize,
    net: Arc<Net>,
    barrier: Arc<Barrier>,
    rx: Receiver<(usize, Msg)>,
    dataset: Arc<DataSet>,
) -> RefResult {
    let mut result = RefResult {
        aborted: None,
        any_fines: false,
        verdicts: Vec::new(),
        meters: None,
        final_q: None,
    };

    // ---- Bidding ----
    barrier.wait(); // B1
    barrier.wait(); // B2: reports are in
    let reports = collect_reports(&rx);
    let verdict = referee.adjudicate_bidding(&reports);
    record_verdict(&mut result, Phase::Bidding, &verdict);
    net.broadcast_referee(Msg::Verdict(verdict.clone()));
    barrier.wait(); // B3
    if !verdict.proceed {
        result.aborted = Some(Phase::Bidding);
        return result;
    }

    // ---- Allocating ----
    barrier.wait(); // B4
    barrier.wait(); // B5: allocation reports in
    let reports = collect_reports(&rx);
    let verdict = referee.adjudicate_allocation(&reports, &dataset);
    record_verdict(&mut result, Phase::Allocating, &verdict);
    net.broadcast_referee(Msg::Verdict(verdict.clone()));
    barrier.wait(); // B6
    if !verdict.proceed {
        result.aborted = Some(Phase::Allocating);
        return result;
    }

    // ---- Processing ----
    barrier.wait(); // B7: meters in
    let mut meters = vec![0.0; m];
    for (_, msg) in drain_referee(&rx) {
        if let Msg::Meter { of, phi } = msg {
            meters[of] = phi;
        }
    }
    result.meters = Some(meters.clone());
    net.broadcast_referee(Msg::Meters(meters.clone()));
    barrier.wait(); // B8

    // ---- Payments ----
    barrier.wait(); // B9: payment vectors in
    let mut vectors = Vec::new();
    for (_, msg) in drain_referee(&rx) {
        if let Msg::PaymentVector(v) = msg {
            vectors.push(v);
        }
    }
    // First, the cheap equality check (no processor parameters needed).
    let all_equal = vectors_all_equal(&vectors, m, &referee);
    if all_equal {
        // Forward the agreed vector.
        let q = vectors[0].body_unverified().q.clone();
        result.final_q = Some(q);
        net.broadcast_referee(Msg::Verdict(Verdict::ok()));
        record_verdict(&mut result, Phase::Payments, &Verdict::ok());
        barrier.wait(); // B10
        barrier.wait(); // B11 (no bid views)
        net.broadcast_referee(Msg::Verdict(Verdict::ok()));
        barrier.wait(); // B12
        return result;
    }

    // Vectors disagree: request the bids (§4).
    net.broadcast_referee(Msg::BidRequest);
    barrier.wait(); // B10
    barrier.wait(); // B11: bid views in
    let mut bids: Option<Vec<f64>> = None;
    for (_, msg) in drain_referee(&rx) {
        let Msg::BidView { view, .. } = msg else {
            continue;
        };
        if bids.is_some() {
            continue;
        }
        if let Some(b) = verify_bid_view(&view, m, &referee) {
            bids = Some(b);
        }
    }
    let bids = bids.expect("at least one honest bid view");
    let meters = result.meters.clone().expect("meters recorded");
    let params = BusParams::new(referee_z(&referee), bids.clone()).expect("valid bids");
    let alpha = dls_dlt::optimal::fractions(referee_model(&referee), &params);
    let observed: Vec<f64> = meters
        .iter()
        .zip(alpha.iter())
        .zip(bids.iter())
        .map(|((phi, a), b)| if *a > 0.0 && *phi > 0.0 { phi / a } else { *b })
        .collect();
    let (verdict, correct) = referee.adjudicate_payments(&vectors, &bids, &observed);
    result.final_q = Some(correct);
    record_verdict(&mut result, Phase::Payments, &verdict);
    net.broadcast_referee(Msg::Verdict(verdict));
    barrier.wait(); // B12
    result
}

fn collect_reports(rx: &Receiver<(usize, Msg)>) -> Vec<(usize, PhaseReport)> {
    let mut out = Vec::new();
    for (from, msg) in drain_referee(rx) {
        if let Msg::Report { report, .. } = msg {
            out.push((from, report));
        }
    }
    out.sort_by_key(|(from, _)| *from);
    out
}

fn record_verdict(result: &mut RefResult, phase: Phase, verdict: &Verdict) {
    if !verdict.fined.is_empty() {
        result.any_fines = true;
    }
    result.verdicts.push((phase, verdict.clone()));
}

/// Equality check across submitted payment vectors: requires a verified
/// vector from each of the `m` processors, all numerically equal.
fn vectors_all_equal(
    vectors: &[Signed<PaymentVectorBody>],
    m: usize,
    referee: &Referee,
) -> bool {
    use crate::referee::PAYMENT_TOLERANCE;
    let mut per_proc: Vec<Option<&PaymentVectorBody>> = vec![None; m];
    for sv in vectors {
        let Ok(body) = sv.verify(referee_registry(referee)) else {
            return false;
        };
        if body.processor >= m || per_proc[body.processor].is_some() {
            return false;
        }
        per_proc[body.processor] = Some(body);
    }
    let Some(first) = per_proc.first().and_then(|b| *b) else {
        return false;
    };
    per_proc.iter().all(|b| match b {
        Some(body) => {
            body.q.len() == first.q.len()
                && body.q.iter().zip(&first.q).all(|(a, b)| {
                    (a.compensation - b.compensation).abs() <= PAYMENT_TOLERANCE
                        && (a.bonus - b.bonus).abs() <= PAYMENT_TOLERANCE
                })
        }
        None => false,
    })
}

fn verify_bid_view(
    view: &[Signed<BidBody>],
    m: usize,
    referee: &Referee,
) -> Option<Vec<f64>> {
    if view.len() != m {
        return None;
    }
    let mut bids = vec![f64::NAN; m];
    for sb in view {
        let body = sb.verify(referee_registry(referee)).ok()?;
        if body.processor >= m
            || sb.signer() != format!("P{}", body.processor + 1)
            || !bids[body.processor].is_nan()
        {
            return None;
        }
        bids[body.processor] = body.bid;
    }
    Some(bids)
}

// Small accessors so the referee actor can reuse the referee's public
// session facts without widening Referee's API surface.
fn referee_registry(r: &Referee) -> &Registry {
    r.registry()
}

fn referee_model(r: &Referee) -> SystemModel {
    r.model()
}

fn referee_z(r: &Referee) -> f64 {
    r.z()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn bid_msg(processor: usize, bid: f64) -> Msg {
        // A syntactically valid (unverifiable) bid message for transport
        // tests; the inbox does not verify, only routes.
        Msg::Bid(Signed::forge(
            BidBody { processor, bid },
            format!("P{}", processor + 1),
            vec![0u8; 8],
        ))
    }

    #[test]
    fn inbox_drain_returns_pending_first() {
        let (tx, rx) = unbounded();
        let mut inbox = ProcInbox::new(rx);
        tx.send(bid_msg(0, 1.0)).unwrap();
        tx.send(Msg::Verdict(Verdict::ok())).unwrap();
        // Take the verdict; the bid must be held back...
        let v = inbox.take_verdict();
        assert!(v.proceed);
        // ...and surface on the next drain, ahead of newer messages.
        tx.send(bid_msg(1, 2.0)).unwrap();
        let drained = inbox.drain();
        assert_eq!(drained.len(), 2);
        assert!(matches!(&drained[0], Msg::Bid(b) if b.body_unverified().processor == 0));
        assert!(matches!(&drained[1], Msg::Bid(b) if b.body_unverified().processor == 1));
    }

    #[test]
    fn inbox_take_first_scans_pending_before_channel() {
        let (tx, rx) = unbounded();
        let mut inbox = ProcInbox::new(rx);
        tx.send(Msg::Verdict(Verdict::ok())).unwrap();
        tx.send(bid_msg(3, 4.0)).unwrap();
        // First take stashes nothing (verdict is first).
        let _ = inbox.take_verdict();
        tx.send(Msg::Verdict(Verdict {
            proceed: false,
            fined: vec![(1, 5.0)],
            rewards: vec![],
        }))
        .unwrap();
        let v = inbox.take_verdict();
        assert!(!v.proceed);
        // The bid survived two verdict takes.
        let bids = inbox.take_all(|m| match m {
            Msg::Bid(b) => Some(b.body_unverified().processor),
            _ => None,
        });
        assert_eq!(bids, vec![3]);
    }

    #[test]
    #[should_panic(expected = "expected message missing")]
    fn inbox_take_first_panics_when_absent() {
        let (_tx, rx) = unbounded::<Msg>();
        let mut inbox = ProcInbox::new(rx);
        let _ = inbox.take_verdict();
    }

    #[test]
    fn message_stats_accumulate_by_category() {
        let mut s = MessageStats::default();
        s.record(MsgCategory::Bid, 3, 100);
        s.record(MsgCategory::Bid, 1, 50);
        s.record(MsgCategory::PaymentVector, 2, 400);
        assert_eq!(s.category("bid"), (4, 350));
        assert_eq!(s.category("payment-vector"), (2, 800));
        assert_eq!(s.category("grant"), (0, 0));
        assert_eq!(s.total_messages(), 6);
        assert_eq!(s.total_bytes(), 1150);
    }

    #[test]
    fn key_cache_is_deterministic_and_identity_scoped() {
        let ids = vec!["P1".to_string(), "P2".to_string()];
        let a = generate_keys_cached(&ids, 384, 99).unwrap();
        let b = generate_keys_cached(&ids, 384, 99).unwrap();
        assert_eq!(a[0].public(), b[0].public());
        assert_eq!(a[1].public(), b[1].public());
        assert_ne!(a[0].public(), a[1].public(), "identities get distinct keys");
        let c = generate_keys_cached(&ids, 384, 100).unwrap();
        assert_ne!(a[0].public(), c[0].public(), "seeds get distinct keys");
    }
}
