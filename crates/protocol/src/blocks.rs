//! The user's load: equal-sized, uniquely identified, user-signed blocks
//! `S_user(B, I_B)` (Initialization phase), plus the integer block
//! allocation derived from the real-valued fractions.

use dls_crypto::pki::{KeyPair, Registry, SignatureError};
use dls_crypto::Signed;
use serde::Serialize;

/// Identity under which the user registers its signing key.
pub const USER_IDENTITY: &str = "user";

/// One block of the divisible load: a unique identifier plus payload bytes.
///
/// The payload is synthetic (the computation itself is simulated) but real
/// bytes flow through the signature machinery, so integrity failures are
/// detectable exactly as in the paper.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Block {
    /// Unique block identifier `I_B`.
    pub id: u64,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// A user-signed block.
pub type SignedBlock = Signed<Block>;

/// The prepared data set: all signed blocks, in identifier order.
#[derive(Debug, Clone)]
pub struct DataSet {
    blocks: Vec<SignedBlock>,
    block_payload: usize,
}

impl DataSet {
    /// Splits the (synthetic) load into `count` signed blocks of
    /// `payload_len` bytes each.
    pub fn prepare(
        user: &KeyPair,
        count: usize,
        payload_len: usize,
    ) -> Result<Self, SignatureError> {
        // Signing is the dominant cost; blocks are independent, so fan the
        // work out across a bounded number of threads.
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(count.max(1));
        let chunk = count.div_ceil(workers);
        let signed: Vec<Result<Vec<SignedBlock>, SignatureError>> =
            std::thread::scope(|scope| {
                (0..workers)
                    .map(|w| {
                        let lo = w * chunk;
                        let hi = ((w + 1) * chunk).min(count);
                        scope.spawn(move || {
                            (lo..hi)
                                .map(|id| {
                                    // Deterministic synthetic payload,
                                    // distinct per block.
                                    let payload: Vec<u8> = (0..payload_len)
                                        .map(|k| (id * 131 + k * 7 + 13) as u8)
                                        .collect();
                                    user.sign(Block {
                                        id: id as u64,
                                        payload,
                                    })
                                })
                                .collect()
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().expect("signing thread panicked"))
                    .collect()
            });
        let mut blocks = Vec::with_capacity(count);
        for part in signed {
            blocks.extend(part?);
        }
        Ok(DataSet {
            blocks,
            block_payload: payload_len,
        })
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` iff the data set has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Payload size per block.
    pub fn block_payload(&self) -> usize {
        self.block_payload
    }

    /// The signed blocks.
    pub fn blocks(&self) -> &[SignedBlock] {
        &self.blocks
    }

    /// Slices the data set into per-processor grants of the given block
    /// counts (consecutive ranges in identifier order).
    ///
    /// # Panics
    /// Panics if the counts do not sum to `len()`.
    pub fn split(&self, counts: &[usize]) -> Vec<Vec<SignedBlock>> {
        assert_eq!(
            counts.iter().sum::<usize>(),
            self.blocks.len(),
            "block counts must cover the data set exactly"
        );
        let mut out = Vec::with_capacity(counts.len());
        let mut start = 0;
        for &c in counts {
            out.push(self.blocks[start..start + c].to_vec());
            start += c;
        }
        out
    }

    /// `true` iff `block` is a genuine, untampered member of this data set
    /// (signature verifies and the payload matches the original).
    pub fn contains(&self, block: &SignedBlock, registry: &Registry) -> bool {
        let Ok(body) = block.verify(registry) else {
            return false;
        };
        self.blocks
            .get(body.id as usize)
            .is_some_and(|orig| orig.body_unverified() == body)
    }
}

/// Converts real-valued fractions into integer block counts summing to
/// `total`, by the largest-remainder (Hamilton) method. Deterministic;
/// ties break toward lower indices.
pub fn integer_allocation(fractions: &[f64], total: usize) -> Vec<usize> {
    assert!(!fractions.is_empty(), "empty allocation");
    let sum: f64 = fractions.iter().sum();
    assert!(sum > 0.0, "fractions must have positive mass");
    let ideal: Vec<f64> = fractions
        .iter()
        .map(|f| f / sum * total as f64)
        .collect();
    let mut counts: Vec<usize> = ideal.iter().map(|x| x.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    let mut order: Vec<usize> = (0..fractions.len()).collect();
    // Largest fractional remainder first; index ascending on ties.
    order.sort_by(|&a, &b| {
        let ra = ideal[a] - ideal[a].floor();
        let rb = ideal[b] - ideal[b].floor();
        rb.total_cmp(&ra).then(a.cmp(&b))
    });
    for &i in order.iter().take(total - assigned) {
        counts[i] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use dls_crypto::rsa::MIN_MODULUS_BITS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn user() -> (KeyPair, Registry) {
        let mut rng = StdRng::seed_from_u64(5);
        let kp = KeyPair::generate(USER_IDENTITY, MIN_MODULUS_BITS, &mut rng).unwrap();
        let reg = Registry::from_keypairs([&kp]);
        (kp, reg)
    }

    #[test]
    fn prepare_signs_every_block() {
        let (kp, reg) = user();
        let ds = DataSet::prepare(&kp, 10, 16).unwrap();
        assert_eq!(ds.len(), 10);
        for (i, b) in ds.blocks().iter().enumerate() {
            let body = b.verify(&reg).unwrap();
            assert_eq!(body.id, i as u64);
            assert_eq!(body.payload.len(), 16);
        }
    }

    #[test]
    fn payloads_distinct() {
        let (kp, _) = user();
        let ds = DataSet::prepare(&kp, 4, 16).unwrap();
        let p0 = &ds.blocks()[0].body_unverified().payload;
        let p1 = &ds.blocks()[1].body_unverified().payload;
        assert_ne!(p0, p1);
    }

    #[test]
    fn split_covers_exactly() {
        let (kp, _) = user();
        let ds = DataSet::prepare(&kp, 10, 8).unwrap();
        let grants = ds.split(&[3, 0, 7]);
        assert_eq!(grants[0].len(), 3);
        assert_eq!(grants[1].len(), 0);
        assert_eq!(grants[2].len(), 7);
        assert_eq!(grants[2][0].body_unverified().id, 3);
    }

    #[test]
    #[should_panic(expected = "cover the data set")]
    fn split_rejects_bad_counts() {
        let (kp, _) = user();
        let ds = DataSet::prepare(&kp, 10, 8).unwrap();
        let _ = ds.split(&[3, 3]);
    }

    #[test]
    fn contains_accepts_genuine_rejects_foreign() {
        let (kp, reg) = user();
        let ds = DataSet::prepare(&kp, 5, 8).unwrap();
        assert!(ds.contains(&ds.blocks()[2], &reg));
        // A block signed by someone else.
        let mut rng = StdRng::seed_from_u64(77);
        let imposter = KeyPair::generate(USER_IDENTITY, MIN_MODULUS_BITS, &mut rng).unwrap();
        let fake = imposter
            .sign(Block {
                id: 2,
                payload: vec![0; 8],
            })
            .unwrap();
        assert!(!ds.contains(&fake, &reg));
        // A tampered genuine block.
        let tampered = ds.blocks()[2].clone().tamper(|mut b| {
            b.payload[0] ^= 1;
            b
        });
        assert!(!ds.contains(&tampered, &reg));
    }

    #[test]
    fn integer_allocation_sums_to_total() {
        let fr = [0.4, 0.35, 0.25];
        for total in [1usize, 7, 60, 1000] {
            let c = integer_allocation(&fr, total);
            assert_eq!(c.iter().sum::<usize>(), total, "total {total}");
        }
    }

    #[test]
    fn integer_allocation_proportional() {
        let c = integer_allocation(&[0.5, 0.3, 0.2], 100);
        assert_eq!(c, vec![50, 30, 20]);
    }

    #[test]
    fn integer_allocation_largest_remainder() {
        // ideal = (1.5, 1.5): one unit left over goes to the lower index.
        let c = integer_allocation(&[0.5, 0.5], 3);
        assert_eq!(c, vec![2, 1]);
    }

    #[test]
    fn integer_allocation_handles_zero_fraction() {
        let c = integer_allocation(&[0.0, 1.0], 10);
        assert_eq!(c, vec![0, 10]);
    }
}
