//! Conservation-checked accounting: every payment, fine and reward is a
//! transfer between two accounts, so the ledger always sums to zero. This
//! models the paper's assumed "payment infrastructure".

use std::collections::BTreeMap;
use std::fmt;

/// An account in the payment infrastructure.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Account {
    /// The job-submitting user paying for the computation.
    User,
    /// Computing processor `i` (0-based).
    Processor(usize),
    /// The referee's escrow for collected fines awaiting distribution.
    FinePool,
}

impl fmt::Display for Account {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Account::User => write!(f, "user"),
            Account::Processor(i) => write!(f, "P{}", i + 1),
            Account::FinePool => write!(f, "fine-pool"),
        }
    }
}

/// Why a transfer happened — kept on every entry so experiments can slice
/// the flows (payments vs fines vs rewards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferReason {
    /// Mechanism payment `Q_i` from the user.
    Payment,
    /// Fine `F` levied on a deviant.
    Fine,
    /// Distribution of collected fines to informers/non-deviants.
    Reward,
    /// Compensation `α_i·w̃_i` to processors that worked before an abort.
    AbortCompensation,
}

/// One transfer.
#[derive(Debug, Clone, PartialEq)]
pub struct Transfer {
    /// Paying account.
    pub from: Account,
    /// Receiving account.
    pub to: Account,
    /// Amount (always ≥ 0; direction carries the sign).
    pub amount: f64,
    /// Why.
    pub reason: TransferReason,
}

/// The ledger: a journal of transfers plus derived balances.
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    journal: Vec<Transfer>,
    balances: BTreeMap<Account, f64>,
}

impl Ledger {
    /// Empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Records a transfer.
    ///
    /// # Panics
    /// Panics on negative or non-finite amounts (amounts carry no sign) and
    /// self-transfers.
    pub fn transfer(&mut self, from: Account, to: Account, amount: f64, reason: TransferReason) {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "invalid transfer amount {amount}"
        );
        assert_ne!(from, to, "self-transfer");
        if amount == 0.0 {
            return;
        }
        *self.balances.entry(from.clone()).or_insert(0.0) -= amount;
        *self.balances.entry(to.clone()).or_insert(0.0) += amount;
        self.journal.push(Transfer {
            from,
            to,
            amount,
            reason,
        });
    }

    /// Balance of `account` (0 if never touched). Positive means the
    /// account received more than it paid.
    pub fn balance(&self, account: &Account) -> f64 {
        self.balances.get(account).copied().unwrap_or(0.0)
    }

    /// The journal, in order.
    pub fn journal(&self) -> &[Transfer] {
        &self.journal
    }

    /// Sum of all balances — must always be ~0 (money is only moved,
    /// never created).
    pub fn conservation_error(&self) -> f64 {
        self.balances.values().sum()
    }

    /// Total volume moved for a given reason.
    pub fn volume(&self, reason: TransferReason) -> f64 {
        self.journal
            .iter()
            .filter(|t| t.reason == reason)
            .map(|t| t.amount)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balances_track_transfers() {
        let mut l = Ledger::new();
        l.transfer(Account::User, Account::Processor(0), 2.5, TransferReason::Payment);
        l.transfer(Account::User, Account::Processor(1), 1.5, TransferReason::Payment);
        assert_eq!(l.balance(&Account::User), -4.0);
        assert_eq!(l.balance(&Account::Processor(0)), 2.5);
        assert_eq!(l.balance(&Account::Processor(2)), 0.0);
        assert_eq!(l.journal().len(), 2);
    }

    #[test]
    fn conservation_always_zero() {
        let mut l = Ledger::new();
        l.transfer(Account::Processor(3), Account::FinePool, 10.0, TransferReason::Fine);
        l.transfer(Account::FinePool, Account::Processor(0), 5.0, TransferReason::Reward);
        l.transfer(Account::FinePool, Account::Processor(1), 5.0, TransferReason::Reward);
        assert!(l.conservation_error().abs() < 1e-12);
    }

    #[test]
    fn volume_by_reason() {
        let mut l = Ledger::new();
        l.transfer(Account::Processor(0), Account::FinePool, 7.0, TransferReason::Fine);
        l.transfer(Account::User, Account::Processor(1), 3.0, TransferReason::Payment);
        assert_eq!(l.volume(TransferReason::Fine), 7.0);
        assert_eq!(l.volume(TransferReason::Payment), 3.0);
        assert_eq!(l.volume(TransferReason::Reward), 0.0);
    }

    #[test]
    fn zero_transfers_skipped() {
        let mut l = Ledger::new();
        l.transfer(Account::User, Account::Processor(0), 0.0, TransferReason::Payment);
        assert!(l.journal().is_empty());
    }

    #[test]
    #[should_panic(expected = "invalid transfer amount")]
    fn rejects_negative() {
        let mut l = Ledger::new();
        l.transfer(Account::User, Account::Processor(0), -1.0, TransferReason::Payment);
    }

    #[test]
    #[should_panic(expected = "self-transfer")]
    fn rejects_self_transfer() {
        let mut l = Ledger::new();
        l.transfer(Account::User, Account::User, 1.0, TransferReason::Payment);
    }
}
