//! Event-driven session executor: the DLS-BL-NCP round as explicit state
//! machines stepped by one deterministic loop, multiplexed over a fixed
//! worker pool.
//!
//! The threaded runtime ([`crate::runtime::run_session`]) spends its time
//! on OS machinery — m+1 thread spawns, condvar parks at twelve phase
//! barriers, real `thread::sleep` for injected delays — none of which is
//! the mechanism's arithmetic. This module re-expresses one round as data:
//!
//! * every processor is a [`ProcessorState`] machine ([`ProcMachine`])
//!   advanced through the protocol phases by the engine;
//! * the referee is a [`RefereeState`] machine embedded in the engine
//!   loop, running the *same* adjudication code as the threaded referee
//!   (`adjudicate_*`, sweeps, verdict merging are shared functions);
//! * the twelve lock-step barriers become calls to
//!   [`crate::sched::resolve_barrier`] on a per-session virtual
//!   millisecond clock: `DelayAt` faults post late arrival events and the
//!   phase budget posts a deadline event, so a party whose arrival misses
//!   the deadline is removed exactly like the threaded referee's
//!   `wait_deadline_as` removal — in microseconds of real time instead of
//!   a real-time budget wait.
//!
//! [`run_session_pooled`] shards N independent sessions across a fixed
//! `std::thread::scope` pool (session `s` → worker `s mod workers`, no
//! work stealing) with one event loop per worker.
//!
//! ## Bit-exactness contract
//!
//! The threaded path stays the oracle. For every builder-validated
//! configuration, the event-driven path produces a [`SessionOutcome`]
//! bit-identical to [`crate::runtime::run_session`] — allocations,
//! payments, fines, message accounting, and fault-plan degradation
//! reports. This holds by construction:
//!
//! * the outer session loop (round retries, ledger, degradation policy,
//!   timeline) is literally shared: both paths run
//!   `run_session_with`, differing only in the round function;
//! * all float computation (α, counts, observed rates, payments) is the
//!   same code on the same inputs, so results are bit-equal; values every
//!   processor would derive identically from broadcast data (the agreed
//!   bid vector, α, the base payment vector) are computed once and
//!   shared, which cannot change a single bit of any output;
//! * RSA signing is deterministic in (key, message), so the per-setup
//!   signature cache reconstructs byte-identical envelopes, and the
//!   user-signed data set is deterministic in `(seed, key_bits, blocks)`
//!   so it is prepared once per setup and shared.
//!
//! Two documented divergences, both outside builder-valid configurations:
//! a `DelayAt` at or beyond the phase budget (the builder rejects it) has
//! its pre-barrier sends suppressed differently than a racing threaded
//! zombie, and with *multiple* equivocators the threaded runtime's
//! last-received conflict is scheduler-dependent while this executor picks
//! the deterministic sender-index order (the differential suite pins the
//! single-equivocator case, where both agree).

use crate::blocks::{integer_allocation, DataSet, SignedBlock, USER_IDENTITY};
use crate::config::{Behavior, CryptoProfile, ProcessorConfig, SessionConfig};
use crate::fault::{FaultKind, FaultPlan, LivenessFault};
use crate::messages::{
    BidBody, Evidence, GrantBody, Msg, PaymentEntry, PaymentVectorBody, PhaseReport, Verdict,
};
use crate::referee::{Phase, Referee};
use crate::runtime::{
    faulted_send, generate_keys_cached, merge_defaults, missing, record_verdict, referee_model,
    referee_registry, referee_z, remap_active_configs, run_session_with, vectors_all_equal,
    verify_bid_view, verify_profiled, MessageStats, ProcResult, ProtocolViolation, RefResult,
    RoundOutput, RunError, SessionOutcome,
};
use crate::sched::{resolve_barrier, shard, EventQueue, VirtualClock};
use dls_crypto::pki::{KeyPair, Registry};
use dls_crypto::{Signed, VerifyCache};
use dls_dlt::BusParams;
use parking_lot::Mutex;
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Deterministic per-setup caches
// ---------------------------------------------------------------------------

/// Entries kept in the signature cache before it is wholesale cleared (a
/// bound, not an LRU: the working set of a scenario sweep is far smaller).
const SIG_CACHE_CAP: usize = 1 << 16;

/// Process-wide cache of user-signed data sets keyed by
/// `(seed, key_bits, blocks)`. [`DataSet::prepare`] is deterministic in
/// the user key (itself deterministic in `(seed, key_bits)`) and the block
/// count, so rounds and sessions sharing a setup share the prepared set —
/// the multiround analogue of the seeded RSA key cache.
pub(crate) fn dataset_cached(
    seed: u64,
    key_bits: usize,
    blocks: usize,
    user: &KeyPair,
) -> Result<Arc<DataSet>, RunError> {
    type Cache = BTreeMap<(u64, usize, usize), Arc<DataSet>>;
    static CACHE: Mutex<Option<Cache>> = Mutex::new(None);
    if let Some(ds) = CACHE
        .lock()
        .get_or_insert_with(Cache::new)
        .get(&(seed, key_bits, blocks))
    {
        return Ok(Arc::clone(ds));
    }
    // Prepared outside the lock: concurrent workers may race to build the
    // same set, but preparation is deterministic so the duplicates are
    // identical and last-write-wins is harmless.
    let ds = Arc::new(
        DataSet::prepare(user, blocks, 32).map_err(|e| RunError::Crypto(e.to_string()))?,
    );
    CACHE
        .lock()
        .get_or_insert_with(Cache::new)
        .insert((seed, key_bits, blocks), Arc::clone(&ds));
    Ok(ds)
}

/// Deterministic cached signing. RSA signing here is hash-then-modexp with
/// a fixed exponent — no randomized padding — so the signature over a given
/// canonical body under a given key is a pure function. The cache maps
/// `(identity, key_bits, seed, sha256(canonical body))` to the raw
/// signature bytes; a hit reconstructs the envelope via [`Signed::forge`]
/// with the *genuine* bytes, which is bit-identical to re-signing and
/// verifies like any honestly signed message.
fn sign_cached<T: Serialize>(
    key: &KeyPair,
    key_bits: usize,
    seed: u64,
    body: T,
) -> Result<Signed<T>, RunError> {
    type SigCache = BTreeMap<(String, usize, u64, [u8; 32]), Vec<u8>>;
    static SIGS: Mutex<Option<SigCache>> = Mutex::new(None);

    let bytes =
        dls_crypto::canon::to_bytes(&body).map_err(|e| RunError::Crypto(e.to_string()))?;
    let digest = dls_crypto::sha256::digest(&bytes);
    let cache_key = (key.identity().to_string(), key_bits, seed, digest);
    if let Some(sig) = SIGS
        .lock()
        .get_or_insert_with(SigCache::new)
        .get(&cache_key)
    {
        return Ok(Signed::forge(body, key.identity().to_string(), sig.clone()));
    }
    let signed = key.sign(body).map_err(|e| RunError::Crypto(e.to_string()))?;
    let mut guard = SIGS.lock();
    let cache = guard.get_or_insert_with(SigCache::new);
    if cache.len() >= SIG_CACHE_CAP {
        cache.clear();
    }
    cache.insert(cache_key, signed.signature().0.clone());
    Ok(signed)
}

// ---------------------------------------------------------------------------
// Virtual transport
// ---------------------------------------------------------------------------

/// The in-memory stand-in for the threaded `Net`: same recording rules
/// (a processor broadcast counts m−1 copies, a referee broadcast m, point
/// links 1; garbage frames are recorded but dropped at processor intake),
/// with channel queues replaced by per-processor `VecDeque`s and bid
/// broadcasts additionally logged for the shared collection pass.
///
/// The queues themselves are borrowed from the worker's [`VmScratch`]
/// arena, so a long-lived worker allocates its inboxes once and reuses
/// them for every session it executes; only messages, never containers,
/// are per-session.
struct VmNet<'a> {
    m: usize,
    stats: MessageStats,
    inboxes: &'a mut Vec<VecDeque<Msg>>,
    ref_inbox: &'a mut Vec<(usize, Msg)>,
    /// Processor bid broadcasts in send order; the engine verifies each
    /// once instead of once per receiver (all receivers of an atomic
    /// broadcast see the same envelope, so the per-receiver results are
    /// identical by construction).
    bid_log: &'a mut Vec<(usize, Signed<BidBody>)>,
}

impl<'a> VmNet<'a> {
    /// Binds the arena buffers to one round of an `m`-party session,
    /// clearing whatever the previous session left behind. Buffers only
    /// ever grow to the largest `m` the worker has seen (a few dozen
    /// `VecDeque` headers), so mixed workloads don't thrash the arena.
    fn new(
        m: usize,
        inboxes: &'a mut Vec<VecDeque<Msg>>,
        ref_inbox: &'a mut Vec<(usize, Msg)>,
        bid_log: &'a mut Vec<(usize, Signed<BidBody>)>,
    ) -> Self {
        if inboxes.len() < m {
            inboxes.resize_with(m, VecDeque::new);
        }
        for q in inboxes.iter_mut() {
            q.clear();
        }
        ref_inbox.clear();
        bid_log.clear();
        VmNet {
            m,
            stats: MessageStats::default(),
            inboxes,
            ref_inbox,
            bid_log,
        }
    }

    fn record(&mut self, msg: &Msg, copies: u64) {
        self.stats
            .record(msg.category(), copies, msg.wire_size() as u64);
    }

    /// Atomic broadcast from processor `from` to all other processors.
    fn broadcast(&mut self, from: usize, msg: Msg) {
        let copies = self.m.saturating_sub(1) as u64;
        self.record(&msg, copies);
        match msg {
            // Bids go to the shared collection log (verified once).
            Msg::Bid(signed) => self.bid_log.push((from, signed)),
            // Garbage frames are dropped at processor inbox intake,
            // exactly like `ProcInbox`.
            Msg::Garbage { .. } => {}
            other => {
                for (j, q) in self.inboxes.iter_mut().enumerate().take(self.m) {
                    if j != from {
                        q.push_back(other.clone());
                    }
                }
            }
        }
    }

    /// Referee broadcast to all processors.
    fn broadcast_referee(&mut self, msg: Msg) {
        self.record(&msg, self.m as u64);
        for q in self.inboxes.iter_mut().take(self.m) {
            q.push_back(msg.clone());
        }
    }

    /// Unicast between processors; out-of-range destinations drop.
    fn unicast(&mut self, to: usize, msg: Msg) {
        self.record(&msg, 1);
        if to < self.m {
            if let Some(q) = self.inboxes.get_mut(to) {
                q.push_back(msg);
            }
        }
    }

    /// Processor → referee.
    fn to_referee(&mut self, from: usize, msg: Msg) {
        self.record(&msg, 1);
        self.ref_inbox.push((from, msg));
    }

    /// Drains everything the referee has received since the last drain,
    /// in send order (the engine sends in processor-index order, so this
    /// is deterministic where the threaded channel order was not — every
    /// consumer of this ordering is order-insensitive or sorts). Draining
    /// in place keeps the arena buffer's allocation alive for the next
    /// collection point.
    fn drain_referee(&mut self) -> std::vec::Drain<'_, (usize, Msg)> {
        self.ref_inbox.drain(..)
    }
}

/// Removes and returns the first message `f` maps to `Some`, preserving
/// the order of everything else (the `ProcInbox` hold-back discipline;
/// garbage never reaches these queues).
fn take_first_msg<T>(
    q: &mut VecDeque<Msg>,
    mut f: impl FnMut(&Msg) -> Option<T>,
) -> Option<T> {
    let pos = q.iter().position(|m| f(m).is_some())?;
    q.remove(pos).and_then(|m| f(&m))
}

/// Removes and returns every message `f` maps to `Some`, in order.
fn take_all_msgs<T>(q: &mut VecDeque<Msg>, mut f: impl FnMut(&Msg) -> Option<T>) -> Vec<T> {
    let mut out = Vec::new();
    let mut keep = VecDeque::with_capacity(q.len());
    while let Some(m) = q.pop_front() {
        match f(&m) {
            Some(t) => out.push(t),
            None => keep.push_back(m),
        }
    }
    *q = keep;
    out
}

fn take_verdict(q: &mut VecDeque<Msg>) -> Option<Verdict> {
    take_first_msg(q, |m| match m {
        Msg::Verdict(v) => Some(v.clone()),
        _ => None,
    })
}

// ---------------------------------------------------------------------------
// Liveness bookkeeping (mirror of the threaded RoundWatch, sans barrier)
// ---------------------------------------------------------------------------

/// The referee's liveness ledger for one virtual round. Classification is
/// identical to the threaded `RoundWatch`: a party missing at a barrier
/// deadline is a crash; an alive party absent from a collection point is
/// an omission, or garbage if it delivered a garbage frame.
struct VmWatch {
    alive: Vec<bool>,
    garbage: BTreeSet<usize>,
    faults: Vec<LivenessFault>,
}

impl VmWatch {
    fn new(m: usize) -> Self {
        VmWatch {
            alive: vec![true; m],
            garbage: BTreeSet::new(),
            faults: Vec::new(),
        }
    }

    fn record_crash(&mut self, phase: Phase, id: usize) {
        if let Some(slot) = self.alive.get_mut(id) {
            if *slot {
                *slot = false;
                self.faults.push(LivenessFault {
                    phase,
                    processor: id,
                    kind: FaultKind::Crash,
                });
            }
        }
    }

    fn note_garbage(&mut self, from: usize) {
        if from < self.alive.len() {
            self.garbage.insert(from);
        }
    }

    fn sweep(&mut self, phase: Phase, senders: &BTreeSet<usize>) {
        let missing_ids: Vec<usize> = self
            .alive
            .iter()
            .enumerate()
            .filter(|(id, alive)| **alive && !senders.contains(id))
            .map(|(id, _)| id)
            .collect();
        for id in missing_ids {
            let kind = if self.garbage.contains(&id) {
                FaultKind::Garbage
            } else {
                FaultKind::Omission
            };
            self.faults.push(LivenessFault {
                phase,
                processor: id,
                kind,
            });
        }
    }

    fn defaulted_at(&self, phase: Phase) -> BTreeSet<usize> {
        self.faults
            .iter()
            .filter(|f| f.phase == phase)
            .map(|f| f.processor)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Processor state machine
// ---------------------------------------------------------------------------

/// Where a processor machine stands in the protocol. The active states are
/// keyed by the protocol phases; the terminal states record how the
/// machine stopped participating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcessorState {
    /// Computing/broadcasting its bid (pre-B1) or collecting peers' bids
    /// and reporting (pre-B2).
    Bidding,
    /// Waiting for the referee's bidding verdict (B3).
    AwaitBidVerdict,
    /// Allocation phase: the originator splits and grants, everyone else
    /// awaits a grant (around B4/B5).
    Allocating,
    /// Waiting for the referee's allocation verdict (B6).
    AwaitAllocationVerdict,
    /// Executing its installment; meter emitted (around B7).
    Processing,
    /// Waiting for the referee's meter broadcast (B8).
    AwaitMeters,
    /// Computing and submitting its payment vector (around B9).
    Payments,
    /// Waiting for payment settlement (B10–B12).
    AwaitSettlement,
    /// Terminal: crashed via an injected `CrashAt` fault; the partial
    /// result survives.
    Crashed,
    /// Terminal: removed at a barrier deadline while still live (only
    /// reachable with delays at/beyond the budget); the result defaults.
    Defaulted,
    /// Terminal: stopped by a non-proceed verdict.
    Halted,
    /// Terminal: ran the full protocol.
    Done,
}

/// When the machine arrives at the next barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArrivalPlan {
    OnTime,
    /// An injected `DelayAt` for the entered phase: late by this many
    /// virtual milliseconds at the next barrier only.
    Delayed(u64),
    /// A crashed machine never arrives (it is removed at the deadline).
    Never,
}

/// One processor as an explicit state machine. Stepped by the engine; all
/// message side effects go through [`VmNet`].
struct ProcMachine {
    i: usize,
    cfg: ProcessorConfig,
    key: KeyPair,
    state: ProcessorState,
    /// Removed from the barrier set (crashed or deadline-defaulted).
    removed: bool,
    arrival: ArrivalPlan,
    result: ProcResult,
    /// Length of the block list this machine holds (its own grant).
    my_blocks_len: usize,
}

impl ProcMachine {
    /// Applies the phase-entry fault hook: `true` means the machine
    /// crashed and must stop; a delay schedules a late arrival at the
    /// next barrier instead of sleeping.
    fn phase_entry(&mut self, phase: Phase) -> bool {
        match self.cfg.fault {
            FaultPlan::CrashAt(p) if p == phase => {
                self.state = ProcessorState::Crashed;
                self.arrival = ArrivalPlan::Never;
                true
            }
            FaultPlan::DelayAt(p, ms) if p == phase => {
                self.arrival = ArrivalPlan::Delayed(ms);
                false
            }
            _ => false,
        }
    }

    /// The delay this machine posts at the next barrier; consumed on use.
    fn arrival_delay(&mut self, budget_ms: u64) -> u64 {
        match self.arrival {
            ArrivalPlan::OnTime => 0,
            ArrivalPlan::Delayed(ms) => {
                self.arrival = ArrivalPlan::OnTime;
                ms
            }
            // Never arrives: models as exactly the deadline, which the
            // deadline event outranks, so the machine is always removed.
            ArrivalPlan::Never => budget_ms,
        }
    }
}

/// Where the engine's embedded referee stands; advanced with a checked
/// transition so a sequencing bug surfaces as a typed error instead of a
/// silently wrong verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefereeState {
    /// Collecting bids and bidding reports (B1–B3).
    Bidding,
    /// Collecting allocation reports (B4–B6).
    Allocating,
    /// Collecting meters (B7–B8).
    Processing,
    /// Collecting payment vectors / bid views (B9–B12).
    Payments,
    /// Round finished (verdict issued or aborted).
    Settled,
}

fn advance_referee(
    state: &mut RefereeState,
    from: RefereeState,
    to: RefereeState,
) -> Result<(), RunError> {
    if *state != from {
        return Err(RunError::Protocol(ProtocolViolation::invalid_state(
            format!("referee state machine expected {from:?}, was {state:?}"),
        )));
    }
    *state = to;
    Ok(())
}

// ---------------------------------------------------------------------------
// The event-driven round
// ---------------------------------------------------------------------------

/// Per-worker scratch reused across sessions: the event heap, the barrier
/// arrival list, and the virtual transport's queues all allocate once per
/// worker instead of once per session (or, for arrivals, once per
/// barrier — twelve times a round). A long-lived service worker therefore
/// reaches a steady state where per-session work allocates messages and
/// outcomes but no container churn.
pub struct VmScratch {
    queue: EventQueue,
    /// `(party, delay_ms)` staging for each barrier resolution.
    arrivals: Vec<(usize, u64)>,
    /// Per-processor inboxes lent to [`VmNet`] each round.
    inboxes: Vec<VecDeque<Msg>>,
    /// Referee inbox lent to [`VmNet`] each round.
    ref_inbox: Vec<(usize, Msg)>,
    /// Bid-broadcast log lent to [`VmNet`] each round.
    bid_log: Vec<(usize, Signed<BidBody>)>,
}

impl VmScratch {
    /// Fresh scratch for one worker's event loop.
    pub fn new() -> Self {
        VmScratch {
            queue: EventQueue::new(),
            arrivals: Vec::new(),
            inboxes: Vec::new(),
            ref_inbox: Vec::new(),
            bid_log: Vec::new(),
        }
    }
}

impl Default for VmScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Resolves one phase barrier in virtual time and applies removals:
/// crashed machines keep their partial result (like a threaded crashed
/// thread that already returned), live machines removed at the deadline
/// default (like threaded zombies released with `Defaulted`).
fn vm_barrier(
    phase: Phase,
    budget_ms: u64,
    clock: &mut VirtualClock,
    queue: &mut EventQueue,
    arrivals: &mut Vec<(usize, u64)>,
    machines: &mut [ProcMachine],
    watch: &mut VmWatch,
) {
    arrivals.clear();
    arrivals.extend(
        machines
            .iter_mut()
            .filter(|p| !p.removed)
            .map(|p| (p.i, p.arrival_delay(budget_ms))),
    );
    let out = resolve_barrier(queue, clock.now_ms(), budget_ms, arrivals);
    clock.advance_to(out.completed_at_ms);
    for p in machines.iter_mut() {
        if p.removed || out.removed.binary_search(&p.i).is_err() {
            continue;
        }
        p.removed = true;
        watch.record_crash(phase, p.i);
        if p.state != ProcessorState::Crashed {
            p.state = ProcessorState::Defaulted;
            p.result = ProcResult::default();
        }
    }
}

/// Referee-side report collection from the virtual transport (mirror of
/// the threaded `collect_reports`: reports sorted by sender, garbage
/// senders listed separately).
fn collect_reports_vm(net: &mut VmNet<'_>) -> (Vec<(usize, PhaseReport)>, Vec<usize>) {
    let mut out = Vec::new();
    let mut garbage = Vec::new();
    for (from, msg) in net.drain_referee() {
        match msg {
            Msg::Report { report, .. } => out.push((from, report)),
            Msg::Garbage { .. } => garbage.push(from),
            _ => {}
        }
    }
    out.sort_by_key(|(from, _)| *from);
    (out, garbage)
}

/// Counts the valid user-signed blocks in a verified grant. Blocks that
/// are byte-identical to the data set's original at the same id verified
/// once when the set was prepared, so equality substitutes for the RSA
/// check; anything else (tampered or foreign) falls back to a real
/// verification, preserving the threaded path's per-block results.
fn count_valid_blocks(body: &GrantBody, dataset: &DataSet, registry: &Registry) -> usize {
    let same_block = |a: &SignedBlock, b: &SignedBlock| {
        a.signer() == b.signer()
            && a.signature() == b.signature()
            && a.body_unverified() == b.body_unverified()
    };
    body.blocks
        .iter()
        .filter(|b| {
            let id = b.body_unverified().id as usize;
            match dataset.blocks().get(id) {
                Some(orig) if same_block(orig, b) => true,
                _ => b.verify(registry).is_ok(),
            }
        })
        .count()
}

/// Shared bid collection: verifies each logged broadcast once, in send
/// order, producing the per-sender first-bid slots and the conflict list
/// every honest receiver would derive (a receiver's own view differs only
/// in excluding conflicts it caused itself, which the engine filters per
/// machine).
struct BidCollection {
    slots: Vec<Option<Signed<BidBody>>>,
    conflicts: Vec<(usize, Signed<BidBody>, Signed<BidBody>)>,
}

fn collect_bids(
    net: &VmNet<'_>,
    m: usize,
    registry: &Registry,
    cache: &VerifyCache,
    profile: CryptoProfile,
) -> BidCollection {
    let mut slots: Vec<Option<Signed<BidBody>>> = vec![None; m];
    let mut conflicts = Vec::new();
    for (_, signed) in net.bid_log.iter() {
        let verified = match profile {
            // One cached verification per logged broadcast; later passes
            // over the same envelope (anywhere in the round) are memo hits.
            CryptoProfile::Amortized => signed.verify_cached(registry, cache),
            // Honest per-receiver cost model: each of the m−1 receivers of
            // the atomic broadcast verifies for itself. Verification is
            // deterministic, so the extra modexps burn time, never change
            // the verdict.
            CryptoProfile::PerReceiverNaive => {
                let receivers = m.saturating_sub(1);
                for _ in 1..receivers {
                    let _ = signed.verify_naive(registry);
                }
                signed.verify_naive(registry)
            }
        };
        let Ok(body) = verified else {
            continue; // failed verification: discarded (§4)
        };
        let sender = body.processor;
        if signed.signer() != format!("P{}", sender + 1) {
            continue;
        }
        if !(body.bid.is_finite() && body.bid > 0.0) {
            continue;
        }
        let Some(slot) = slots.get_mut(sender) else {
            continue;
        };
        match slot {
            Some(existing) => {
                if existing.body_unverified() != signed.body_unverified() {
                    conflicts.push((sender, existing.clone(), signed.clone()));
                }
            }
            None => *slot = Some(signed.clone()),
        }
    }
    BidCollection { slots, conflicts }
}

/// One DLS-BL-NCP round on the virtual clock. Same message schedule, same
/// adjudication code, same outputs as the threaded `run_round` — bit for
/// bit — with every barrier resolved by the event queue.
pub(crate) fn run_round_vm(
    cfg: &SessionConfig,
    active: &[usize],
    scratch: &mut VmScratch,
) -> Result<RoundOutput, RunError> {
    let m = active.len();
    if m < 2 {
        return Err(RunError::TooFewParticipants);
    }
    let procs: Vec<ProcessorConfig> = remap_active_configs(cfg, active);

    // --- Setup: cached PKI + cached user-signed data set -------------------
    let mut identities: Vec<String> = (1..=m).map(|i| format!("P{i}")).collect();
    identities.push(USER_IDENTITY.to_string());
    let mut keys = generate_keys_cached(&identities, cfg.key_bits, cfg.seed)?;
    let user = keys
        .pop()
        .ok_or_else(|| RunError::Crypto("key generation returned no user key".into()))?;
    let registry = Registry::from_keypairs(keys.iter().chain(std::iter::once(&user)));
    let dataset = dataset_cached(cfg.seed, cfg.key_bits, cfg.blocks, &user)?;
    let originator = cfg.model.originator(m).ok_or(RunError::UnsupportedModel)?;
    let referee = Referee::new(registry.clone(), cfg.model, cfg.z, m, cfg.fine, cfg.blocks);
    // Per-ROUND cache, like the threaded path: survivor re-runs rebind
    // identities to different keys, so memoized verdicts must not outlive
    // the round.
    let verify_cache = VerifyCache::new();
    let profile = cfg.crypto_profile;

    let model = cfg.model;
    let z = cfg.z;
    let blocks_total = cfg.blocks;
    let budget_ms = cfg.phase_budget_ms;
    let key_bits = cfg.key_bits;
    let seed = cfg.seed;

    // Split the scratch arena so the transport can hold its buffers for
    // the whole round while barriers borrow the event queue independently.
    let VmScratch {
        queue,
        arrivals,
        inboxes,
        ref_inbox,
        bid_log,
    } = scratch;
    let mut net = VmNet::new(m, inboxes, ref_inbox, bid_log);
    let mut clock = VirtualClock::new();
    let mut watch = VmWatch::new(m);
    let mut ref_state = RefereeState::Bidding;
    let mut rr = RefResult {
        aborted: None,
        any_fines: false,
        verdicts: Vec::new(),
        meters: None,
        final_q: None,
        faults: Vec::new(),
        defaulted_pre: Vec::new(),
        delivered_vectors: BTreeSet::new(),
        strategic_abort: false,
    };

    let mut machines: Vec<ProcMachine> = Vec::with_capacity(m);
    for (i, pcfg) in procs.iter().enumerate() {
        let key = keys.get(i).cloned().ok_or_else(|| {
            RunError::Crypto(format!("no key generated for processor {i}"))
        })?;
        machines.push(ProcMachine {
            i,
            cfg: *pcfg,
            key,
            state: ProcessorState::Bidding,
            removed: false,
            arrival: ArrivalPlan::OnTime,
            result: ProcResult::default(),
            my_blocks_len: 0,
        });
    }

    let sign_err = |e: RunError| e;
    let finish = |machines: Vec<ProcMachine>,
                  rr: RefResult,
                  net: VmNet<'_>,
                  procs: Vec<ProcessorConfig>| RoundOutput {
        procs,
        proc_results: machines.into_iter().map(|p| p.result).collect(),
        rr,
        messages: net.stats,
    };

    // ---- Phase 1: Bidding (pre-B1 processor actions) ----------------------
    for p in machines.iter_mut() {
        if p.state != ProcessorState::Bidding || p.phase_entry(Phase::Bidding) {
            continue;
        }
        let my_bid = p.cfg.bid().ok_or_else(|| {
            RunError::Protocol(
                ProtocolViolation::invalid_state(
                    "a non-participant reached the bidding phase",
                )
                .at_phase(Phase::Bidding),
            )
        })?;
        let first = sign_cached(
            &p.key,
            key_bits,
            seed,
            BidBody {
                processor: p.i,
                bid: my_bid,
            },
        )
        .map_err(sign_err)?;
        match faulted_send(&p.cfg.fault, Phase::Bidding, p.i, Msg::Bid(first.clone())) {
            Some(garbage @ Msg::Garbage { .. }) => net.broadcast(p.i, garbage),
            Some(msg) => {
                p.result.bid = Some(my_bid);
                net.broadcast(p.i, msg);
                match p.cfg.behavior {
                    Behavior::EquivocateBids { factor } => {
                        let second = sign_cached(
                            &p.key,
                            key_bits,
                            seed,
                            BidBody {
                                processor: p.i,
                                bid: my_bid * factor,
                            },
                        )?;
                        net.broadcast(p.i, Msg::Bid(second));
                    }
                    Behavior::ForgeExtraBid { impersonate } => {
                        let forged = Signed::forge(
                            BidBody {
                                processor: impersonate,
                                bid: 0.01,
                            },
                            format!("P{}", impersonate + 1),
                            vec![0x5a; 48],
                        );
                        net.broadcast(p.i, Msg::Bid(forged));
                    }
                    _ => {}
                }
            }
            None => {} // mute: the bid is withheld
        }
    }
    vm_barrier(Phase::Bidding, budget_ms, &mut clock, queue, arrivals, &mut machines, &mut watch); // B1

    // Shared bid collection + per-machine reports (pre-B2).
    let collected = collect_bids(&net, m, &registry, &verify_cache, profile);
    for p in machines.iter_mut() {
        if p.state != ProcessorState::Bidding {
            continue;
        }
        let equivocation = collected
            .conflicts
            .iter()
            .filter(|(sender, _, _)| *sender != p.i)
            .next_back();
        let report = match equivocation {
            Some((who, a, b)) => PhaseReport::Accuse {
                accused: *who,
                evidence: Evidence::Equivocation {
                    first: a.clone(),
                    second: b.clone(),
                },
            },
            None => PhaseReport::Ok,
        };
        if let Some(msg) = faulted_send(
            &p.cfg.fault,
            Phase::Bidding,
            p.i,
            Msg::Report { from: p.i, report },
        ) {
            net.to_referee(p.i, msg);
        }
        p.state = ProcessorState::AwaitBidVerdict;
    }
    vm_barrier(Phase::Bidding, budget_ms, &mut clock, queue, arrivals, &mut machines, &mut watch); // B2

    // Referee: bidding adjudication (pre-B3).
    let (reports, garbage) = collect_reports_vm(&mut net);
    for from in garbage {
        watch.note_garbage(from);
    }
    let senders: BTreeSet<usize> = reports.iter().map(|(from, _)| *from).collect();
    watch.sweep(Phase::Bidding, &senders);
    let strategic = referee.adjudicate_bidding(&reports);
    let defaulted = watch.defaulted_at(Phase::Bidding);
    let (verdict, strategic_fines) = merge_defaults(&referee, strategic, &defaulted, true);
    record_verdict(&mut rr, Phase::Bidding, &verdict);
    net.broadcast_referee(Msg::Verdict(verdict.clone()));
    vm_barrier(Phase::Bidding, budget_ms, &mut clock, queue, arrivals, &mut machines, &mut watch); // B3
    if !verdict.proceed {
        advance_referee(&mut ref_state, RefereeState::Bidding, RefereeState::Settled)?;
        rr.aborted = Some(Phase::Bidding);
        rr.strategic_abort = strategic_fines;
        rr.defaulted_pre = defaulted.into_iter().collect();
        rr.faults = watch.faults;
        return Ok(finish(machines, rr, net, procs));
    }
    advance_referee(&mut ref_state, RefereeState::Bidding, RefereeState::Allocating)?;

    // ---- Phase 2: Allocating (post-B3 / pre-B4) ---------------------------
    // The round proceeded, so every slot holds the one agreed bid; the
    // vector every processor assembles is this same object.
    let mut signed_bids: Vec<Signed<BidBody>> = Vec::with_capacity(m);
    for b in collected.slots {
        signed_bids
            .push(b.ok_or_else(|| missing("peer bid after clean bidding phase", Phase::Bidding))?);
    }
    let bids: Vec<f64> = signed_bids
        .iter()
        .map(|s| s.body_unverified().bid)
        .collect();
    let params = BusParams::new(z, bids.clone()).map_err(|_| {
        RunError::Protocol(
            ProtocolViolation::invalid_state("agreed bids do not form valid bus parameters")
                .at_phase(Phase::Allocating),
        )
    })?;
    let alpha = dls_dlt::optimal::fractions(model, &params);
    let counts = integer_allocation(&alpha, blocks_total);

    for p in machines.iter_mut() {
        if p.state != ProcessorState::AwaitBidVerdict {
            continue;
        }
        let verdict = take_verdict(net.inboxes.get_mut(p.i).unwrap_or(&mut VecDeque::new()))
            .ok_or_else(|| missing("bidding verdict", Phase::Bidding))?;
        if !verdict.proceed {
            p.state = ProcessorState::Halted;
            continue;
        }
        p.state = ProcessorState::Allocating;
        if p.phase_entry(Phase::Allocating) {
            continue;
        }
        p.result.alloc_fraction = alpha.get(p.i).copied().unwrap_or(0.0);
        if p.i == originator {
            let grants = dataset.split(&counts);
            for (to, blocks) in grants.into_iter().enumerate() {
                if to == p.i {
                    p.my_blocks_len = blocks.len();
                    continue;
                }
                let mut blocks = blocks;
                match p.cfg.behavior {
                    Behavior::ShortAllocate { victim, shortfall } if victim == to => {
                        let keep = blocks.len().saturating_sub(shortfall);
                        blocks.truncate(keep);
                    }
                    Behavior::OverAllocate { victim, excess } if victim == to => {
                        if let Some(pad) =
                            blocks.first().or_else(|| dataset.blocks().first()).cloned()
                        {
                            for _ in 0..excess {
                                blocks.push(pad.clone());
                            }
                        }
                    }
                    _ => {}
                }
                let grant = sign_cached(&p.key, key_bits, seed, GrantBody { to, blocks })?;
                if let Some(msg) =
                    faulted_send(&p.cfg.fault, Phase::Allocating, p.i, Msg::Grant(grant))
                {
                    net.unicast(to, msg);
                }
            }
            p.result.blocks_granted = p.my_blocks_len;
        }
    }
    vm_barrier(Phase::Allocating, budget_ms, &mut clock, queue, arrivals, &mut machines, &mut watch); // B4

    // Grant verification + allocation reports (pre-B5).
    for p in machines.iter_mut() {
        if p.state != ProcessorState::Allocating {
            continue;
        }
        let mut alloc_report = PhaseReport::Ok;
        if p.i != originator {
            let granted: Option<Signed<GrantBody>> = net
                .inboxes
                .get_mut(p.i)
                .map(|q| {
                    take_all_msgs(q, |m| match m {
                        Msg::Grant(g) => Some(g.clone()),
                        _ => None,
                    })
                })
                .and_then(|mut v| v.pop());
            if let Some(grant) = granted {
                let valid_blocks =
                    match verify_profiled(&grant, &registry, &verify_cache, profile) {
                        Ok(body) => count_valid_blocks(body, &dataset, &registry),
                        Err(_) => 0,
                    };
                p.result.blocks_granted = valid_blocks;
                p.my_blocks_len = grant.body_unverified().blocks.len();
                let expected = counts.get(p.i).copied().unwrap_or(0);
                let mismatch = valid_blocks != expected;
                let false_accusation =
                    p.cfg.behavior == Behavior::FalselyAccuseAllocation && !mismatch;
                if mismatch || false_accusation {
                    alloc_report = PhaseReport::Accuse {
                        accused: originator,
                        evidence: Evidence::WrongAllocation {
                            grant: grant.clone(),
                            bid_view: signed_bids.clone(),
                            expected_blocks: expected,
                        },
                    };
                }
            }
        }
        if let Some(msg) = faulted_send(
            &p.cfg.fault,
            Phase::Allocating,
            p.i,
            Msg::Report {
                from: p.i,
                report: alloc_report,
            },
        ) {
            net.to_referee(p.i, msg);
        }
        p.state = ProcessorState::AwaitAllocationVerdict;
    }
    vm_barrier(Phase::Allocating, budget_ms, &mut clock, queue, arrivals, &mut machines, &mut watch); // B5

    // Referee: allocation adjudication (pre-B6).
    let (reports, garbage) = collect_reports_vm(&mut net);
    for from in garbage {
        watch.note_garbage(from);
    }
    let senders: BTreeSet<usize> = reports.iter().map(|(from, _)| *from).collect();
    watch.sweep(Phase::Allocating, &senders);
    let strategic = referee.adjudicate_allocation(&reports, &dataset);
    let defaulted = watch.defaulted_at(Phase::Allocating);
    let (verdict, strategic_fines) = merge_defaults(&referee, strategic, &defaulted, true);
    record_verdict(&mut rr, Phase::Allocating, &verdict);
    net.broadcast_referee(Msg::Verdict(verdict.clone()));
    vm_barrier(Phase::Allocating, budget_ms, &mut clock, queue, arrivals, &mut machines, &mut watch); // B6
    if !verdict.proceed {
        advance_referee(&mut ref_state, RefereeState::Allocating, RefereeState::Settled)?;
        rr.aborted = Some(Phase::Allocating);
        rr.strategic_abort = strategic_fines;
        rr.defaulted_pre = defaulted.into_iter().collect();
        rr.faults = watch.faults;
        return Ok(finish(machines, rr, net, procs));
    }
    advance_referee(&mut ref_state, RefereeState::Allocating, RefereeState::Processing)?;

    // ---- Phase 3: Processing (pre-B7) -------------------------------------
    for p in machines.iter_mut() {
        if p.state != ProcessorState::AwaitAllocationVerdict {
            continue;
        }
        let verdict = net
            .inboxes
            .get_mut(p.i)
            .and_then(take_verdict)
            .ok_or_else(|| missing("allocation verdict", Phase::Allocating))?;
        if !verdict.proceed {
            p.state = ProcessorState::Halted;
            continue;
        }
        p.state = ProcessorState::Processing;
        if p.phase_entry(Phase::Processing) {
            continue;
        }
        let real_fraction = p.my_blocks_len as f64 / blocks_total as f64;
        let phi = real_fraction * p.cfg.exec_w();
        p.result.meter = phi;
        if let Some(msg) = faulted_send(
            &p.cfg.fault,
            Phase::Processing,
            p.i,
            Msg::Meter { of: p.i, phi },
        ) {
            net.to_referee(p.i, msg);
        }
        p.state = ProcessorState::AwaitMeters;
    }
    vm_barrier(Phase::Processing, budget_ms, &mut clock, queue, arrivals, &mut machines, &mut watch); // B7

    // Referee: meter collection + broadcast (pre-B8).
    let mut meter_slots: Vec<Option<f64>> = vec![None; m];
    for (from, msg) in net.drain_referee() {
        match msg {
            Msg::Meter { of, phi } => {
                if let Some(slot) = meter_slots.get_mut(of) {
                    *slot = Some(phi);
                }
            }
            Msg::Garbage { .. } => watch.note_garbage(from),
            _ => {}
        }
    }
    let senders: BTreeSet<usize> = meter_slots
        .iter()
        .enumerate()
        .filter_map(|(id, s)| s.map(|_| id))
        .collect();
    watch.sweep(Phase::Processing, &senders);
    let meters: Vec<f64> = meter_slots.iter().map(|s| s.unwrap_or(0.0)).collect();
    rr.meters = Some(meters.clone());
    net.broadcast_referee(Msg::Meters(meters.clone()));
    vm_barrier(Phase::Processing, budget_ms, &mut clock, queue, arrivals, &mut machines, &mut watch); // B8
    advance_referee(&mut ref_state, RefereeState::Processing, RefereeState::Payments)?;

    // ---- Phase 4: Payments (pre-B9) ---------------------------------------
    // Every machine received the same meter broadcast and holds the same
    // agreed bids and α, so the honest payment vector is computed once;
    // per-machine tampering applies to a clone.
    let observed: Vec<f64> = meters
        .iter()
        .zip(&alpha)
        .map(|(phi, a)| if *a > 0.0 { phi / a } else { 0.0 })
        .collect();
    let observed: Vec<f64> = observed
        .iter()
        .zip(&bids)
        .map(|(o, b)| if *o > 0.0 { *o } else { *b })
        .collect();
    let base_q: Vec<PaymentEntry> =
        dls_mechanism::compute_payments(model, &params, &alpha, &observed)
            .into_iter()
            .map(|p| PaymentEntry {
                compensation: p.compensation,
                bonus: p.bonus,
            })
            .collect();

    for p in machines.iter_mut() {
        if p.state != ProcessorState::AwaitMeters {
            continue;
        }
        let _meters: Vec<f64> = net
            .inboxes
            .get_mut(p.i)
            .and_then(|q| {
                take_first_msg(q, |m| match m {
                    Msg::Meters(v) => Some(v.clone()),
                    _ => None,
                })
            })
            .ok_or_else(|| missing("meter vector", Phase::Processing))?;
        p.state = ProcessorState::Payments;
        if p.phase_entry(Phase::Payments) {
            continue;
        }
        let mut q = base_q.clone();
        if let Behavior::CorruptPayments { target, factor } = p.cfg.behavior {
            if let Some(entry) = q.get_mut(target) {
                entry.compensation *= factor;
            }
        }
        let pv = sign_cached(
            &p.key,
            key_bits,
            seed,
            PaymentVectorBody { processor: p.i, q },
        )?;
        if let Some(msg) = faulted_send(&p.cfg.fault, Phase::Payments, p.i, Msg::PaymentVector(pv))
        {
            net.to_referee(p.i, msg);
        }
        p.state = ProcessorState::AwaitSettlement;
    }
    vm_barrier(Phase::Payments, budget_ms, &mut clock, queue, arrivals, &mut machines, &mut watch); // B9

    // Referee: payment vector collection (pre-B10).
    let mut vectors = Vec::new();
    for (from, msg) in net.drain_referee() {
        match msg {
            Msg::PaymentVector(v) => vectors.push(v),
            Msg::Garbage { .. } => watch.note_garbage(from),
            _ => {}
        }
    }
    // Phase-level batch sweep (mirror of the threaded referee): settle
    // every envelope's verdict once so the delivered sweep, equality
    // check, and any dispute path hit memoized verdicts.
    if profile == CryptoProfile::Amortized {
        for sv in &vectors {
            let _ = sv.verify_cached(referee_registry(&referee), &verify_cache);
        }
    }
    let mut delivered = BTreeSet::new();
    for sv in &vectors {
        if let Ok(body) = verify_profiled(sv, referee_registry(&referee), &verify_cache, profile) {
            if sv.signer() == format!("P{}", body.processor + 1) && body.processor < m {
                delivered.insert(body.processor);
            }
        }
    }
    watch.sweep(Phase::Payments, &delivered);
    rr.delivered_vectors = delivered;

    let agreed = if vectors_all_equal(&vectors, m, &referee, &verify_cache, profile) {
        vectors.first()
    } else {
        None
    };
    if let Some(first) = agreed {
        let q = first.body_unverified().q.clone();
        rr.final_q = Some(q);
        net.broadcast_referee(Msg::Verdict(Verdict::ok()));
        record_verdict(&mut rr, Phase::Payments, &Verdict::ok());
        vm_barrier(Phase::Payments, budget_ms, &mut clock, queue, arrivals, &mut machines, &mut watch); // B10
        // No machine finds a BidRequest, so none sends a view.
        for p in machines.iter_mut() {
            if p.state != ProcessorState::AwaitSettlement {
                continue;
            }
            if let Some(q) = net.inboxes.get_mut(p.i) {
                let _ = take_all_msgs(q, |m| matches!(m, Msg::BidRequest).then_some(()));
            }
        }
        vm_barrier(Phase::Payments, budget_ms, &mut clock, queue, arrivals, &mut machines, &mut watch); // B11
        net.broadcast_referee(Msg::Verdict(Verdict::ok()));
        vm_barrier(Phase::Payments, budget_ms, &mut clock, queue, arrivals, &mut machines, &mut watch); // B12
        rr.faults = watch.faults;
        for p in machines.iter_mut() {
            if p.state == ProcessorState::AwaitSettlement {
                let _ = net.inboxes.get_mut(p.i).and_then(take_verdict);
                p.state = ProcessorState::Done;
            }
        }
        advance_referee(&mut ref_state, RefereeState::Payments, RefereeState::Settled)?;
        return Ok(finish(machines, rr, net, procs));
    }

    // Vectors disagree (or one is missing): request the bids (§4).
    net.broadcast_referee(Msg::BidRequest);
    vm_barrier(Phase::Payments, budget_ms, &mut clock, queue, arrivals, &mut machines, &mut watch); // B10
    for p in machines.iter_mut() {
        if p.state != ProcessorState::AwaitSettlement {
            continue;
        }
        let bid_request = net
            .inboxes
            .get_mut(p.i)
            .map(|q| !take_all_msgs(q, |m| matches!(m, Msg::BidRequest).then_some(())).is_empty())
            .unwrap_or(false);
        if bid_request {
            if let Some(msg) = faulted_send(
                &p.cfg.fault,
                Phase::Payments,
                p.i,
                Msg::BidView {
                    from: p.i,
                    view: signed_bids.clone(),
                },
            ) {
                net.to_referee(p.i, msg);
            }
        }
    }
    vm_barrier(Phase::Payments, budget_ms, &mut clock, queue, arrivals, &mut machines, &mut watch); // B11

    // Referee: bid views → recomputed payments → final verdict (pre-B12).
    let mut agreed_bids: Option<Vec<f64>> = None;
    for (from, msg) in net.drain_referee() {
        match msg {
            Msg::BidView { view, .. } => {
                if agreed_bids.is_none() {
                    if let Some(b) =
                        verify_bid_view(&view, m, &referee, &verify_cache, profile)
                    {
                        agreed_bids = Some(b);
                    }
                }
            }
            Msg::Garbage { .. } => watch.note_garbage(from),
            _ => {}
        }
    }
    let agreed_bids = agreed_bids.ok_or_else(|| {
        RunError::Protocol(
            ProtocolViolation::invalid_state(
                "no verifiable bid view received for payment adjudication",
            )
            .at_phase(Phase::Payments),
        )
    })?;
    let ref_params = BusParams::new(referee_z(&referee), agreed_bids.clone()).map_err(|_| {
        RunError::Protocol(
            ProtocolViolation::invalid_state("verified bid view has invalid rates")
                .at_phase(Phase::Payments),
        )
    })?;
    let ref_alpha = dls_dlt::optimal::fractions(referee_model(&referee), &ref_params);
    let ref_observed: Vec<f64> = meters
        .iter()
        .zip(ref_alpha.iter())
        .zip(agreed_bids.iter())
        .map(|((phi, a), b)| if *a > 0.0 && *phi > 0.0 { phi / a } else { *b })
        .collect();
    let (verdict, correct) = referee
        .adjudicate_payments(&vectors, &agreed_bids, &ref_observed)
        .map_err(|e| {
            RunError::Protocol(
                ProtocolViolation::invalid_state(e.to_string()).at_phase(Phase::Payments),
            )
        })?;
    rr.final_q = Some(correct);
    record_verdict(&mut rr, Phase::Payments, &verdict);
    net.broadcast_referee(Msg::Verdict(verdict));
    vm_barrier(Phase::Payments, budget_ms, &mut clock, queue, arrivals, &mut machines, &mut watch); // B12
    rr.faults = watch.faults;
    for p in machines.iter_mut() {
        if p.state == ProcessorState::AwaitSettlement {
            let _ = net.inboxes.get_mut(p.i).and_then(take_verdict);
            p.state = ProcessorState::Done;
        }
    }
    advance_referee(&mut ref_state, RefereeState::Payments, RefereeState::Settled)?;
    Ok(finish(machines, rr, net, procs))
}

// ---------------------------------------------------------------------------
// Session-level entry points
// ---------------------------------------------------------------------------

/// The one per-session driver every execution path shares: the static
/// pooled path, the work-stealing service ([`crate::service`]), and the
/// single-session entry point all call this, so placement policies cannot
/// drift from each other — they differ only in *which worker* and *when*
/// `drive_session` runs, never in what it computes.
pub(crate) fn drive_session(
    cfg: &SessionConfig,
    scratch: &mut VmScratch,
) -> Result<SessionOutcome, RunError> {
    run_session_with(cfg, |c, active| run_round_vm(c, active, scratch))
}

/// [`drive_session`] behind a panic barrier: a panic anywhere in the
/// session drivers is contained to `None` so callers that own long-lived
/// threads (the service worker loop, its supervisor) can translate it
/// into a typed, retryable failure instead of unwinding the thread. The
/// scratch arena is rebuilt by the caller after a `None` — a panicked
/// driver may have left it mid-session.
pub(crate) fn drive_session_caught(
    cfg: &SessionConfig,
    scratch: &mut VmScratch,
) -> Option<Result<SessionOutcome, RunError>> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| drive_session(cfg, scratch))).ok()
}

/// Runs one session on the event-driven executor. Same contract and
/// results as [`crate::runtime::run_session`], in microseconds instead of
/// thread time; the session-level loop (degraded re-runs, ledger,
/// timeline) is shared with the threaded path.
pub fn run_session_vm(cfg: &SessionConfig) -> Result<SessionOutcome, RunError> {
    let mut scratch = VmScratch::new();
    drive_session(cfg, &mut scratch)
}

/// Runs a batch of independent sessions across a fixed worker pool:
/// session `s` is executed by worker `s mod workers` on that worker's own
/// event loop — no work stealing, so results and scheduling are
/// deterministic for any worker count. Workers default to the machine's
/// available parallelism.
pub fn run_session_pooled(cfgs: &[SessionConfig]) -> Vec<Result<SessionOutcome, RunError>> {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    run_session_pooled_with(cfgs, workers)
}

/// [`run_session_pooled`] with an explicit worker count (floored at 1 and
/// capped at the batch size).
pub fn run_session_pooled_with(
    cfgs: &[SessionConfig],
    workers: usize,
) -> Vec<Result<SessionOutcome, RunError>> {
    let n = cfgs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        return cfgs.iter().map(run_session_vm).collect();
    }

    let mut slots: Vec<Option<Result<SessionOutcome, RunError>>> = Vec::new();
    slots.resize_with(n, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let mut scratch = VmScratch::new();
                    let mut out: Vec<(usize, Result<SessionOutcome, RunError>)> = Vec::new();
                    for idx in shard(n, workers, w) {
                        if let Some(cfg) = cfgs.get(idx) {
                            out.push((idx, drive_session(cfg, &mut scratch)));
                        }
                    }
                    out
                })
            })
            .collect();
        for (w, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(results) => {
                    for (idx, r) in results {
                        if let Some(slot) = slots.get_mut(idx) {
                            *slot = Some(r);
                        }
                    }
                }
                Err(_) => {
                    // A panicked worker loses its whole shard; report each
                    // of its sessions as a typed failure.
                    for idx in shard(n, workers, w) {
                        if let Some(slot) = slots.get_mut(idx) {
                            *slot = Some(Err(RunError::Protocol(
                                ProtocolViolation::invalid_state("session worker panicked"),
                            )));
                        }
                    }
                }
            }
        }
    });
    slots
        .into_iter()
        .map(|s| {
            s.unwrap_or_else(|| {
                Err(RunError::Protocol(ProtocolViolation::invalid_state(
                    "session result missing from every worker shard",
                )))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::run_session;
    use dls_crypto::rsa::MIN_MODULUS_BITS;
    use dls_dlt::SystemModel;

    fn base_cfg(behaviors: &[Behavior]) -> SessionConfig {
        let ws = [3.0, 2.0, 4.0, 5.0];
        SessionConfig::builder(SystemModel::NcpFe, 1.0)
            .processors(
                ws.iter()
                    .zip(behaviors)
                    .map(|(&w, &b)| ProcessorConfig::new(w, b)),
            )
            .blocks(12)
            .key_bits(MIN_MODULUS_BITS)
            .seed(7)
            .build()
            .expect("valid config")
    }

    fn outcomes_equal(a: &SessionOutcome, b: &SessionOutcome) {
        assert_eq!(a.status, b.status);
        assert_eq!(a.messages, b.messages);
        assert_eq!(a.processors.len(), b.processors.len());
        for (x, y) in a.processors.iter().zip(&b.processors) {
            assert_eq!(x.bid, y.bid);
            assert_eq!(x.alloc_fraction.to_bits(), y.alloc_fraction.to_bits());
            assert_eq!(x.blocks_granted, y.blocks_granted);
            assert_eq!(x.meter.to_bits(), y.meter.to_bits());
            assert_eq!(x.fined.to_bits(), y.fined.to_bits());
            assert_eq!(x.rewarded.to_bits(), y.rewarded.to_bits());
            assert_eq!(x.utility.to_bits(), y.utility.to_bits());
        }
        assert_eq!(a.makespan.map(f64::to_bits), b.makespan.map(f64::to_bits));
        assert_eq!(a.degradation.faults, b.degradation.faults);
    }

    #[test]
    fn truthful_session_matches_threaded_bit_for_bit() {
        let cfg = base_cfg(&[Behavior::Compliant; 4]);
        let threaded = run_session(&cfg).expect("threaded");
        let vm = run_session_vm(&cfg).expect("vm");
        outcomes_equal(&threaded, &vm);
    }

    #[test]
    fn crash_fault_degradation_matches_threaded() {
        let mut cfg = base_cfg(&[Behavior::Compliant; 4]);
        if let Some(p) = cfg.processors.get_mut(2) {
            p.fault = FaultPlan::CrashAt(Phase::Bidding);
        }
        let threaded = run_session(&cfg).expect("threaded");
        let vm = run_session_vm(&cfg).expect("vm");
        outcomes_equal(&threaded, &vm);
        assert!(!vm.degradation.is_clean());
    }

    #[test]
    fn pooled_matches_sequential_vm_with_uneven_shards() {
        let cfgs: Vec<SessionConfig> = (0..5)
            .map(|k| {
                let mut c = base_cfg(&[Behavior::Compliant; 4]);
                c.seed = 100 + k;
                c
            })
            .collect();
        let pooled = run_session_pooled_with(&cfgs, 4);
        assert_eq!(pooled.len(), 5);
        for (cfg, got) in cfgs.iter().zip(&pooled) {
            let want = run_session_vm(cfg).expect("vm");
            let got = got.as_ref().expect("pooled");
            outcomes_equal(&want, got);
        }
    }

    #[test]
    fn per_receiver_profile_is_outcome_neutral() {
        // The crypto profile changes how many modexps verification spends,
        // never a verdict: amortized and per-receiver sessions must be
        // bit-identical, on both executors, across a clean run, an
        // equivocation abort, and a payment dispute (the dispute exercises
        // the profiled bid-view adjudication path).
        let scenarios: [&[Behavior]; 3] = [
            &[Behavior::Compliant; 4],
            &[
                Behavior::EquivocateBids { factor: 1.5 },
                Behavior::Compliant,
                Behavior::Compliant,
                Behavior::Compliant,
            ],
            &[
                Behavior::Compliant,
                Behavior::CorruptPayments {
                    target: 0,
                    factor: 0.25,
                },
                Behavior::Compliant,
                Behavior::Compliant,
            ],
        ];
        for behaviors in scenarios {
            let amortized = base_cfg(behaviors);
            let mut naive = base_cfg(behaviors);
            naive.crypto_profile = CryptoProfile::PerReceiverNaive;
            let a = run_session_vm(&amortized).expect("amortized vm");
            let b = run_session_vm(&naive).expect("per-receiver vm");
            outcomes_equal(&a, &b);
            let threaded = run_session(&naive).expect("per-receiver threaded");
            outcomes_equal(&threaded, &b);
        }
    }

    #[test]
    fn sign_cached_reconstructs_identical_envelopes() {
        let mut keys =
            generate_keys_cached(&["P1".to_string()], MIN_MODULUS_BITS, 99).expect("keys");
        let key = keys.pop().expect("one key");
        let body = BidBody {
            processor: 0,
            bid: 2.5,
        };
        let a = sign_cached(&key, MIN_MODULUS_BITS, 99, body.clone()).expect("first sign");
        let b = sign_cached(&key, MIN_MODULUS_BITS, 99, body).expect("cached sign");
        assert_eq!(a, b);
        let registry = Registry::from_keypairs(std::iter::once(&key));
        assert!(b.verify(&registry).is_ok());
    }

    #[test]
    fn empty_batch_is_empty() {
        assert!(run_session_pooled_with(&[], 4).is_empty());
    }
}
