//! The referee: a minimally-trusted third party that stays passive until a
//! processor signals presumed cheating, then adjudicates from signed
//! evidence, levies fines and distributes the proceeds (§4).
//!
//! Unlike the control processor of DLS-BL, the referee holds **no**
//! processor parameters up front; everything it learns comes from verified
//! signatures presented as evidence (plus the tamper-proof meter readings
//! in the Processing phase).

use crate::blocks::DataSet;
use crate::messages::{
    BidBody, Evidence, PaymentEntry, PaymentVectorBody, PhaseReport, Verdict,
};
use dls_crypto::pki::{is_equivocation, Registry};
use dls_crypto::Signed;
use dls_dlt::{BusParams, SystemModel};
use std::collections::BTreeSet;

/// Protocol phase identifiers (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// All-to-all signed bid broadcast.
    Bidding,
    /// The originator distributes user-signed blocks.
    Allocating,
    /// Processors execute; the tamper-proof meter reports `φ_i`.
    Processing,
    /// Every processor submits its payment vector `Q`.
    Payments,
}

/// Tolerance used when comparing independently computed payment vectors.
/// All honest processors run the identical deterministic computation, so
/// honest disagreement is at most a few ULPs; anything beyond this is a
/// corrupted vector.
///
/// The tolerance is **relative**: a payment difference is accepted when it
/// is within `PAYMENT_TOLERANCE × max(1, |a|, |b|)` (see
/// [`payments_agree`]). An absolute `1e-9` cut-off breaks at large
/// `w`/`z`, where honest payments reach `1e9` and beyond and a few ULPs
/// of float noise already exceed it; scaling by the magnitude keeps the
/// check ULP-tight at every scale while remaining absolute (`1e-9`)
/// around zero.
pub const PAYMENT_TOLERANCE: f64 = 1e-9;

/// `true` when two independently computed payment values agree within the
/// magnitude-scaled [`PAYMENT_TOLERANCE`].
pub fn payments_agree(a: f64, b: f64) -> bool {
    (a - b).abs() <= PAYMENT_TOLERANCE * 1f64.max(a.abs()).max(b.abs())
}

/// Errors the referee can surface instead of panicking mid-adjudication.
///
/// The referee is the one party every processor must be able to rely on;
/// a panic here would deadlock the session, so every failure mode is a
/// typed value the runtime converts into a session error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefereeError {
    /// The bids handed to payment adjudication do not form valid bus
    /// parameters (non-finite or non-positive). The runtime validates
    /// bids at receipt, so reaching this means the caller skipped that
    /// validation.
    InvalidAgreedBids,
}

impl std::fmt::Display for RefereeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RefereeError::InvalidAgreedBids => {
                write!(f, "agreed bids do not form valid bus parameters")
            }
        }
    }
}

impl std::error::Error for RefereeError {}

/// Referee state for one session.
#[derive(Debug, Clone)]
pub struct Referee {
    registry: Registry,
    model: SystemModel,
    z: f64,
    m: usize,
    originator: Option<usize>,
    fine: f64,
    total_blocks: usize,
}

impl Referee {
    /// Sets up the referee with the public session facts (no processor
    /// parameters).
    pub fn new(
        registry: Registry,
        model: SystemModel,
        z: f64,
        m: usize,
        fine: f64,
        total_blocks: usize,
    ) -> Self {
        Referee {
            registry,
            model,
            z,
            m,
            originator: model.originator(m),
            fine,
            total_blocks,
        }
    }

    /// The fine `F`.
    pub fn fine(&self) -> f64 {
        self.fine
    }

    /// The PKI registry the referee verifies evidence against.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The system model.
    pub fn model(&self) -> SystemModel {
        self.model
    }

    /// The bus communication rate.
    pub fn z(&self) -> f64 {
        self.z
    }

    /// Builds the verdict for a set of deviants at a phase boundary:
    /// each deviant pays `F`; the pot `x·F` is split evenly among the
    /// `m − x` non-deviants; the protocol terminates iff `abort`.
    ///
    /// `pub(crate)` so the runtime can apply the same fine schedule to
    /// liveness defaulters (crash/omission faults produce no evidence a
    /// processor could submit, so the runtime reports them directly).
    pub(crate) fn verdict_for(&self, deviants: &BTreeSet<usize>, abort: bool) -> Verdict {
        if deviants.is_empty() {
            return Verdict::ok();
        }
        let x = deviants.len();
        let pot = self.fine * x as f64;
        let survivors: Vec<usize> = (0..self.m).filter(|i| !deviants.contains(i)).collect();
        let share = if survivors.is_empty() {
            0.0
        } else {
            pot / survivors.len() as f64
        };
        Verdict {
            proceed: !abort,
            fined: deviants.iter().map(|&i| (i, self.fine)).collect(),
            rewards: survivors.into_iter().map(|i| (i, share)).collect(),
        }
    }

    /// Adjudicates the Bidding phase: equivocation evidence must show two
    /// valid signatures from the accused over different bids. Unfounded
    /// accusations fine the accuser instead. Any fine aborts the session.
    pub fn adjudicate_bidding(&self, reports: &[(usize, PhaseReport)]) -> Verdict {
        let mut deviants = BTreeSet::new();
        for (reporter, report) in reports {
            let PhaseReport::Accuse { accused, evidence } = report else {
                continue;
            };
            match evidence {
                Evidence::Equivocation { first, second } => {
                    let substantiated = first.signer() == format!("P{}", accused + 1)
                        && is_equivocation(first, second, &self.registry);
                    if substantiated {
                        deviants.insert(*accused);
                    } else {
                        deviants.insert(*reporter);
                    }
                }
                // Wrong evidence type for this phase: unfounded.
                Evidence::WrongAllocation { .. } => {
                    deviants.insert(*reporter);
                }
            }
        }
        self.verdict_for(&deviants, true)
    }

    /// Adjudicates the Allocating phase. For each accusation the referee:
    ///
    /// 1. verifies the reporter's signed bid view (all m signatures; an
    ///    inconsistent or unverifiable vector fines the *reporter*);
    /// 2. recomputes `α(b)` and the integer block allocation;
    /// 3. verifies the grant signature (it must come from the originator)
    ///    and checks every block against the user-signed data set;
    /// 4. fines the originator if the grant truly deviates, otherwise the
    ///    reporter (unsubstantiated claim).
    ///
    /// Any fine aborts the session.
    pub fn adjudicate_allocation(
        &self,
        reports: &[(usize, PhaseReport)],
        dataset: &DataSet,
    ) -> Verdict {
        let mut deviants = BTreeSet::new();
        for (reporter, report) in reports {
            let PhaseReport::Accuse { accused, evidence } = report else {
                continue;
            };
            let Evidence::WrongAllocation {
                grant,
                bid_view,
                expected_blocks: _,
            } = evidence
            else {
                deviants.insert(*reporter);
                continue;
            };
            match self.judge_allocation_claim(*reporter, *accused, grant, bid_view, dataset) {
                ClaimJudgement::OriginatorGuilty => {
                    deviants.insert(*accused);
                }
                ClaimJudgement::Unfounded => {
                    deviants.insert(*reporter);
                }
            }
        }
        self.verdict_for(&deviants, true)
    }

    fn judge_allocation_claim(
        &self,
        reporter: usize,
        accused: usize,
        grant: &Signed<crate::messages::GrantBody>,
        bid_view: &[Signed<BidBody>],
        dataset: &DataSet,
    ) -> ClaimJudgement {
        // The accused must be the originator — only it sends grants.
        if Some(accused) != self.originator {
            return ClaimJudgement::Unfounded;
        }
        // Verify the reporter's bid view: one valid bid per processor.
        let mut bids = vec![f64::NAN; self.m];
        if bid_view.len() != self.m {
            return ClaimJudgement::Unfounded;
        }
        for signed_bid in bid_view {
            let Ok(body) = signed_bid.verify(&self.registry) else {
                return ClaimJudgement::Unfounded;
            };
            if signed_bid.signer() != format!("P{}", body.processor + 1) {
                return ClaimJudgement::Unfounded;
            }
            // Out-of-range processor indices and duplicate bids both make
            // the view inconsistent, which blames the reporter.
            match bids.get_mut(body.processor) {
                Some(slot) if slot.is_nan() => *slot = body.bid,
                _ => return ClaimJudgement::Unfounded,
            }
        }
        // The grant must verify and be addressed to the reporter.
        let Ok(grant_body) = grant.verify(&self.registry) else {
            return ClaimJudgement::Unfounded;
        };
        if grant.signer() != format!("P{}", accused + 1) || grant_body.to != reporter {
            return ClaimJudgement::Unfounded;
        }
        // Recompute the allocation the originator should have sent.
        let Ok(params) = BusParams::new(self.z, bids) else {
            return ClaimJudgement::Unfounded;
        };
        let alpha = dls_dlt::optimal::fractions(self.model, &params);
        let counts = crate::blocks::integer_allocation(&alpha, self.total_blocks);
        let Some(&expected) = counts.get(reporter) else {
            return ClaimJudgement::Unfounded;
        };

        // Count only genuine blocks; duplicates and foreign blocks are not
        // part of a correct grant.
        let mut seen = BTreeSet::new();
        let mut genuine = 0usize;
        let mut bogus = false;
        for b in &grant_body.blocks {
            if dataset.contains(b, &self.registry) {
                if seen.insert(b.body_unverified().id) {
                    genuine += 1;
                } else {
                    bogus = true; // duplicated block
                }
            } else {
                bogus = true; // failed integrity / foreign block
            }
        }
        if bogus || genuine != expected {
            ClaimJudgement::OriginatorGuilty
        } else {
            ClaimJudgement::Unfounded
        }
    }

    /// Adjudicates the Computing Payments phase: verifies every signed
    /// vector, recomputes the correct `Q` from the (already agreed) bids
    /// and meters, fines every processor whose vector deviates, and
    /// returns the correct vector for the payment infrastructure.
    ///
    /// Per §4 the session still completes — work is already done — so the
    /// verdict proceeds even when fines are levied.
    ///
    /// # Errors
    ///
    /// Returns [`RefereeError::InvalidAgreedBids`] when `bids` cannot form
    /// valid bus parameters; the runtime validates bids at receipt, so an
    /// error here indicates a caller bug, not processor misbehavior.
    pub fn adjudicate_payments(
        &self,
        vectors: &[Signed<PaymentVectorBody>],
        bids: &[f64],
        observed: &[f64],
    ) -> Result<(Verdict, Vec<PaymentEntry>), RefereeError> {
        let params = BusParams::new(self.z, bids.to_vec())
            .map_err(|_| RefereeError::InvalidAgreedBids)?;
        let alloc = dls_dlt::optimal::fractions(self.model, &params);
        let correct: Vec<PaymentEntry> =
            dls_mechanism::compute_payments(self.model, &params, &alloc, observed)
                .into_iter()
                .map(|p| PaymentEntry {
                    compensation: p.compensation,
                    bonus: p.bonus,
                })
                .collect();

        let mut deviants = BTreeSet::new();
        let mut seen = vec![false; self.m];
        for sv in vectors {
            let Ok(body) = sv.verify(&self.registry) else {
                continue; // unverifiable vectors are ignored; absence fines below
            };
            if sv.signer() != format!("P{}", body.processor + 1) {
                continue;
            }
            let Some(prev) = seen.get_mut(body.processor) else {
                continue; // out-of-range index: treated like an absent vector
            };
            if *prev {
                // Contradictory duplicates fine the sender (§4).
                deviants.insert(body.processor);
                continue;
            }
            *prev = true;
            let ok = body.q.len() == correct.len()
                && body.q.iter().zip(&correct).all(|(a, b)| {
                    payments_agree(a.compensation, b.compensation)
                        && payments_agree(a.bonus, b.bonus)
                });
            if !ok {
                deviants.insert(body.processor);
            }
        }
        for (i, s) in seen.iter().enumerate() {
            if !s {
                deviants.insert(i); // failed to submit a valid vector
            }
        }
        Ok((self.verdict_for(&deviants, false), correct))
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ClaimJudgement {
    OriginatorGuilty,
    Unfounded,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::{integer_allocation, DataSet, USER_IDENTITY};
    use crate::messages::GrantBody;
    use dls_crypto::pki::KeyPair;
    use dls_crypto::rsa::MIN_MODULUS_BITS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        keys: Vec<KeyPair>,
        referee: Referee,
        dataset: DataSet,
        bids: Vec<f64>,
    }

    const BLOCKS: usize = 30;

    fn fixture(model: SystemModel) -> Fixture {
        let mut rng = StdRng::seed_from_u64(11);
        let keys: Vec<KeyPair> = (0..3)
            .map(|i| KeyPair::generate(format!("P{}", i + 1), MIN_MODULUS_BITS, &mut rng).unwrap())
            .collect();
        let user = KeyPair::generate(USER_IDENTITY, MIN_MODULUS_BITS, &mut rng).unwrap();
        let registry = Registry::from_keypairs(keys.iter().chain(std::iter::once(&user)));
        let referee = Referee::new(registry, model, 0.2, 3, 10.0, BLOCKS);
        let dataset = DataSet::prepare(&user, BLOCKS, 8).unwrap();
        Fixture {
            keys,
            referee,
            dataset,
            bids: vec![1.0, 2.0, 3.0],
        }
    }

    fn signed_bid(f: &Fixture, i: usize, bid: f64) -> Signed<BidBody> {
        f.keys[i].sign(BidBody { processor: i, bid }).unwrap()
    }

    fn bid_view(f: &Fixture) -> Vec<Signed<BidBody>> {
        (0..3).map(|i| signed_bid(f, i, f.bids[i])).collect()
    }

    /// The correct grant for `to` under the fixture bids.
    fn correct_grant(f: &Fixture, model: SystemModel, to: usize) -> Signed<GrantBody> {
        let params = BusParams::new(0.2, f.bids.clone()).unwrap();
        let alpha = dls_dlt::optimal::fractions(model, &params);
        let counts = integer_allocation(&alpha, BLOCKS);
        let grants = f.dataset.split(&counts);
        let orig = model.originator(3).unwrap();
        f.keys[orig]
            .sign(GrantBody {
                to,
                blocks: grants[to].clone(),
            })
            .unwrap()
    }

    // ------------------------- Bidding phase -------------------------

    #[test]
    fn bidding_no_reports_is_clean() {
        let f = fixture(SystemModel::NcpFe);
        let v = f
            .referee
            .adjudicate_bidding(&[(1, PhaseReport::Ok), (2, PhaseReport::Ok)]);
        assert_eq!(v, Verdict::ok());
    }

    #[test]
    fn bidding_equivocation_fines_equivocator() {
        let f = fixture(SystemModel::NcpFe);
        let first = signed_bid(&f, 0, 1.0);
        let second = signed_bid(&f, 0, 2.0);
        let v = f.referee.adjudicate_bidding(&[(
            1,
            PhaseReport::Accuse {
                accused: 0,
                evidence: Evidence::Equivocation { first, second },
            },
        )]);
        assert!(!v.proceed);
        assert_eq!(v.fined, vec![(0, 10.0)]);
        // Pot F split between the two survivors: F/(m-1) = 5 each.
        assert_eq!(v.rewards, vec![(1, 5.0), (2, 5.0)]);
    }

    #[test]
    fn bidding_unfounded_accusation_fines_accuser() {
        let f = fixture(SystemModel::NcpFe);
        // Same bid twice is not equivocation.
        let first = signed_bid(&f, 0, 1.0);
        let second = signed_bid(&f, 0, 1.0);
        let v = f.referee.adjudicate_bidding(&[(
            2,
            PhaseReport::Accuse {
                accused: 0,
                evidence: Evidence::Equivocation { first, second },
            },
        )]);
        assert!(!v.proceed);
        assert_eq!(v.fined, vec![(2, 10.0)]);
    }

    #[test]
    fn bidding_forged_evidence_fines_accuser() {
        let f = fixture(SystemModel::NcpFe);
        let first = signed_bid(&f, 0, 1.0);
        // Accuser forges the "second" bid itself.
        let second = f.keys[2]
            .sign(BidBody {
                processor: 0,
                bid: 9.0,
            })
            .unwrap();
        let second = Signed::forge(
            second.body_unverified().clone(),
            "P1",
            second.signature().0.clone(),
        );
        let v = f.referee.adjudicate_bidding(&[(
            2,
            PhaseReport::Accuse {
                accused: 0,
                evidence: Evidence::Equivocation { first, second },
            },
        )]);
        assert_eq!(v.fined, vec![(2, 10.0)]);
    }

    #[test]
    fn bidding_multiple_reports_single_fine() {
        let f = fixture(SystemModel::NcpFe);
        let mk = |reporter: usize| {
            (
                reporter,
                PhaseReport::Accuse {
                    accused: 0,
                    evidence: Evidence::Equivocation {
                        first: signed_bid(&f, 0, 1.0),
                        second: signed_bid(&f, 0, 4.0),
                    },
                },
            )
        };
        let v = f.referee.adjudicate_bidding(&[mk(1), mk(2)]);
        assert_eq!(v.fined, vec![(0, 10.0)]);
        assert_eq!(v.rewards.len(), 2);
    }

    // ------------------------- Allocating phase -------------------------

    #[test]
    fn allocation_correct_grant_fines_false_accuser() {
        let f = fixture(SystemModel::NcpFe);
        let grant = correct_grant(&f, SystemModel::NcpFe, 1);
        let v = f.referee.adjudicate_allocation(
            &[(
                1,
                PhaseReport::Accuse {
                    accused: 0,
                    evidence: Evidence::WrongAllocation {
                        grant,
                        bid_view: bid_view(&f),
                        expected_blocks: 99,
                    },
                },
            )],
            &f.dataset,
        );
        assert!(!v.proceed);
        assert_eq!(v.fined, vec![(1, 10.0)]);
    }

    #[test]
    fn allocation_short_grant_fines_originator() {
        let f = fixture(SystemModel::NcpFe);
        let full = correct_grant(&f, SystemModel::NcpFe, 1);
        let mut body = full.body_unverified().clone();
        body.blocks.pop(); // withhold one block
        let short = f.keys[0].sign(body).unwrap();
        let v = f.referee.adjudicate_allocation(
            &[(
                1,
                PhaseReport::Accuse {
                    accused: 0,
                    evidence: Evidence::WrongAllocation {
                        grant: short,
                        bid_view: bid_view(&f),
                        expected_blocks: 0,
                    },
                },
            )],
            &f.dataset,
        );
        assert_eq!(v.fined, vec![(0, 10.0)]);
        assert_eq!(v.rewards, vec![(1, 5.0), (2, 5.0)]);
    }

    #[test]
    fn allocation_duplicated_blocks_fine_originator() {
        let f = fixture(SystemModel::NcpFe);
        let full = correct_grant(&f, SystemModel::NcpFe, 1);
        let mut body = full.body_unverified().clone();
        let dup = body.blocks[0].clone();
        body.blocks.pop();
        body.blocks.push(dup); // same count, one block duplicated
        let padded = f.keys[0].sign(body).unwrap();
        let v = f.referee.adjudicate_allocation(
            &[(
                1,
                PhaseReport::Accuse {
                    accused: 0,
                    evidence: Evidence::WrongAllocation {
                        grant: padded,
                        bid_view: bid_view(&f),
                        expected_blocks: 0,
                    },
                },
            )],
            &f.dataset,
        );
        assert_eq!(v.fined, vec![(0, 10.0)]);
    }

    #[test]
    fn allocation_bad_bid_view_fines_reporter() {
        let f = fixture(SystemModel::NcpFe);
        let grant = correct_grant(&f, SystemModel::NcpFe, 1);
        // Reporter alters P3's bid inside its submitted view: signature
        // breaks, so the referee blames the reporter.
        let mut view = bid_view(&f);
        view[2] = view[2].clone().tamper(|mut b| {
            b.bid = 0.5;
            b
        });
        let v = f.referee.adjudicate_allocation(
            &[(
                1,
                PhaseReport::Accuse {
                    accused: 0,
                    evidence: Evidence::WrongAllocation {
                        grant,
                        bid_view: view,
                        expected_blocks: 0,
                    },
                },
            )],
            &f.dataset,
        );
        assert_eq!(v.fined, vec![(1, 10.0)]);
    }

    #[test]
    fn allocation_accusing_non_originator_is_unfounded() {
        let f = fixture(SystemModel::NcpFe);
        let grant = correct_grant(&f, SystemModel::NcpFe, 1);
        let v = f.referee.adjudicate_allocation(
            &[(
                1,
                PhaseReport::Accuse {
                    accused: 2, // P3 never sends grants
                    evidence: Evidence::WrongAllocation {
                        grant,
                        bid_view: bid_view(&f),
                        expected_blocks: 0,
                    },
                },
            )],
            &f.dataset,
        );
        assert_eq!(v.fined, vec![(1, 10.0)]);
    }

    // ------------------------- Payments phase -------------------------

    fn correct_q(f: &Fixture, model: SystemModel, observed: &[f64]) -> Vec<PaymentEntry> {
        let params = BusParams::new(0.2, f.bids.clone()).unwrap();
        let alloc = dls_dlt::optimal::fractions(model, &params);
        dls_mechanism::compute_payments(model, &params, &alloc, observed)
            .into_iter()
            .map(|p| PaymentEntry {
                compensation: p.compensation,
                bonus: p.bonus,
            })
            .collect()
    }

    #[test]
    fn payments_all_correct_proceeds_clean() {
        let f = fixture(SystemModel::NcpFe);
        let observed = f.bids.clone();
        let q = correct_q(&f, SystemModel::NcpFe, &observed);
        let vectors: Vec<_> = (0..3)
            .map(|i| {
                f.keys[i]
                    .sign(PaymentVectorBody {
                        processor: i,
                        q: q.clone(),
                    })
                    .unwrap()
            })
            .collect();
        let (v, correct) = f
            .referee
            .adjudicate_payments(&vectors, &f.bids, &observed)
            .unwrap();
        assert_eq!(v, Verdict::ok());
        assert_eq!(correct.len(), 3);
    }

    #[test]
    fn payments_corrupted_vector_fined_but_session_completes() {
        let f = fixture(SystemModel::NcpFe);
        let observed = f.bids.clone();
        let q = correct_q(&f, SystemModel::NcpFe, &observed);
        let mut bad_q = q.clone();
        bad_q[1].bonus *= 3.0;
        let vectors: Vec<_> = (0..3)
            .map(|i| {
                let body = PaymentVectorBody {
                    processor: i,
                    q: if i == 2 { bad_q.clone() } else { q.clone() },
                };
                f.keys[i].sign(body).unwrap()
            })
            .collect();
        let (v, correct) = f
            .referee
            .adjudicate_payments(&vectors, &f.bids, &observed)
            .unwrap();
        assert!(v.proceed, "payment-phase fines do not abort");
        assert_eq!(v.fined, vec![(2, 10.0)]);
        // x·F/(m−x) = 10/2 = 5 to each correct processor.
        assert_eq!(v.rewards, vec![(0, 5.0), (1, 5.0)]);
        // The forwarded vector is the correct one, not the corrupted one.
        assert!((correct[1].bonus - q[1].bonus).abs() < 1e-12);
    }

    #[test]
    fn payments_missing_vector_fined() {
        let f = fixture(SystemModel::NcpFe);
        let observed = f.bids.clone();
        let q = correct_q(&f, SystemModel::NcpFe, &observed);
        let vectors: Vec<_> = (0..2) // P3 never submits
            .map(|i| {
                f.keys[i]
                    .sign(PaymentVectorBody {
                        processor: i,
                        q: q.clone(),
                    })
                    .unwrap()
            })
            .collect();
        let (v, _) = f
            .referee
            .adjudicate_payments(&vectors, &f.bids, &observed)
            .unwrap();
        assert_eq!(v.fined, vec![(2, 10.0)]);
    }

    #[test]
    fn payments_contradictory_duplicates_fined() {
        let f = fixture(SystemModel::NcpFe);
        let observed = f.bids.clone();
        let q = correct_q(&f, SystemModel::NcpFe, &observed);
        let mut other = q.clone();
        other[0].compensation += 1.0;
        let vectors = vec![
            f.keys[0]
                .sign(PaymentVectorBody {
                    processor: 0,
                    q: q.clone(),
                })
                .unwrap(),
            f.keys[0]
                .sign(PaymentVectorBody {
                    processor: 0,
                    q: other,
                })
                .unwrap(),
            f.keys[1]
                .sign(PaymentVectorBody {
                    processor: 1,
                    q: q.clone(),
                })
                .unwrap(),
            f.keys[2]
                .sign(PaymentVectorBody {
                    processor: 2,
                    q: q.clone(),
                })
                .unwrap(),
        ];
        let (v, _) = f
            .referee
            .adjudicate_payments(&vectors, &f.bids, &observed)
            .unwrap();
        assert_eq!(v.fined, vec![(0, 10.0)]);
    }

    #[test]
    fn verdict_pot_accounting() {
        let f = fixture(SystemModel::NcpFe);
        let deviants: BTreeSet<usize> = [0, 1].into_iter().collect();
        let v = f.referee.verdict_for(&deviants, true);
        let fined: f64 = v.fined.iter().map(|(_, a)| a).sum();
        let rewarded: f64 = v.rewards.iter().map(|(_, a)| a).sum();
        assert_eq!(fined, 20.0);
        assert_eq!(rewarded, 20.0);
        assert_eq!(v.rewards, vec![(2, 20.0)]);
    }

    #[test]
    fn payment_tolerance_scales_with_magnitude() {
        // Unit behaviour of the relative comparison: absolute 1e-9 around
        // zero, relative 1e-9 at scale.
        assert!(payments_agree(0.0, 5e-10));
        assert!(!payments_agree(0.0, 5e-9));
        assert!(payments_agree(1e12, 1e12 + 100.0));
        assert!(!payments_agree(1e12, 1.001e12));

        // Regression at large w/z: honest payments land far above 1e9,
        // where a few ULPs of float noise already exceed an absolute
        // 1e-9 cut-off. The scaled tolerance must accept ULP-level
        // relative noise and still fine a genuine corruption.
        let mut rng = StdRng::seed_from_u64(29);
        let keys: Vec<KeyPair> = (0..3)
            .map(|i| {
                KeyPair::generate(format!("P{}", i + 1), MIN_MODULUS_BITS, &mut rng).unwrap()
            })
            .collect();
        let user = KeyPair::generate(USER_IDENTITY, MIN_MODULUS_BITS, &mut rng).unwrap();
        let registry = Registry::from_keypairs(keys.iter().chain(std::iter::once(&user)));
        let bids = vec![1.0e10, 2.0e10, 3.0e10];
        let z = 2.0e9;
        let referee = Referee::new(registry, SystemModel::NcpFe, z, 3, 1.0e15, BLOCKS);
        let params = BusParams::new(z, bids.clone()).unwrap();
        let alpha = dls_dlt::optimal::fractions(SystemModel::NcpFe, &params);
        let correct: Vec<PaymentEntry> =
            dls_mechanism::compute_payments(SystemModel::NcpFe, &params, &alpha, &bids)
                .into_iter()
                .map(|p| PaymentEntry {
                    compensation: p.compensation,
                    bonus: p.bonus,
                })
                .collect();
        assert!(
            correct.iter().any(|e| e.total().abs() > 1.0e9),
            "fixture must exercise the large-magnitude regime: {correct:?}"
        );
        // Relative noise ~1e-12 (a few ULPs of a long float pipeline) is
        // absolute noise ~1e-3 here — fatal under the old absolute check.
        let noisy: Vec<PaymentEntry> = correct
            .iter()
            .map(|e| PaymentEntry {
                compensation: e.compensation * (1.0 + 1e-12),
                bonus: e.bonus * (1.0 + 1e-12),
            })
            .collect();
        let sign_all = |qs: [&Vec<PaymentEntry>; 3]| -> Vec<Signed<PaymentVectorBody>> {
            qs.iter()
                .enumerate()
                .map(|(i, q)| {
                    keys[i]
                        .sign(PaymentVectorBody {
                            processor: i,
                            q: (*q).clone(),
                        })
                        .unwrap()
                })
                .collect()
        };
        let (verdict, _) = referee
            .adjudicate_payments(&sign_all([&noisy, &noisy, &noisy]), &bids, &bids)
            .unwrap();
        assert!(
            verdict.fined.is_empty(),
            "ULP-level noise at scale must not be fined: {:?}",
            verdict.fined
        );

        // A genuine corruption at the same scale is still caught.
        let mut corrupt = noisy.clone();
        corrupt[0].compensation *= 1.001;
        let (verdict, _) = referee
            .adjudicate_payments(&sign_all([&noisy, &corrupt, &noisy]), &bids, &bids)
            .unwrap();
        assert_eq!(verdict.fined.len(), 1);
        assert_eq!(verdict.fined[0].0, 1);
    }
}
