//! Always-on auction service: streaming session ingestion over a fixed
//! worker pool with work stealing.
//!
//! [`crate::executor::run_session_pooled_with`] answers the batch
//! question — N sessions known up front, statically sharded `s mod
//! workers`. A production deployment does not see batches: sessions
//! arrive continuously, and a static shard rule lets one slow stream of
//! work (large m, fault-heavy, crypto-enabled) pile sessions behind a
//! busy worker while its neighbours idle. This module keeps the workers
//! alive across submissions and fixes the placement problem twice over:
//!
//! * **at submit time** — a ticket is placed on the *shortest* queue
//!   (by current length, ties to the lowest worker index), not on
//!   `ticket mod workers`;
//! * **at run time** — a worker whose own deque is empty **steals the
//!   back half** of the busiest victim's deque, so a backlog behind a
//!   heavy session drains through every idle worker instead of waiting
//!   for its owner.
//!
//! ## Why determinism survives placement
//!
//! Virtual time is *per session*: every session runs through
//! [`crate::executor::run_session_vm`]'s state machines via the shared
//! per-session driver, carrying its own [`crate::sched::VirtualClock`]
//! and event queue in the worker's scratch arena. Which worker runs a
//! session, and when, is a wall-clock concern that never feeds the
//! protocol: outcomes are bit-exact against the static-shard pooled path
//! and the threaded oracle (pinned by `tests/tests/service_differential.rs`).
//! Wall-clock enters exactly once — the enqueue→complete latency stamp in
//! [`latency`] — and that number is reported *beside* the outcome, never
//! used to compute it.
//!
//! ## Queue discipline
//!
//! Owners pop from the **front** of their deque (oldest first); thieves
//! split off the **back** half (newest). FIFO order is therefore
//! preserved for the oldest queued sessions while the youngest migrate
//! to idle workers — the standard deque discipline from work-stealing
//! runtimes, here applied to whole sessions rather than tasks. No two
//! queue locks are ever held at once: a steal drains the victim's tail
//! under the victim's lock, releases it, and only then touches the
//! thief's own queue.

use crate::config::SessionConfig;
use crate::executor::{drive_session, VmScratch};
use crate::runtime::{ProtocolViolation, RunError, SessionOutcome};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Wall-clock latency capture, quarantined: these are the only wall-clock
/// reads on the service path. A stamp is taken at enqueue and read at
/// completion; the resulting nanosecond figure is attached to the
/// [`Completed`] record and never influences a session outcome, which is
/// driven entirely by per-session virtual time.
mod latency {
    use std::time::Instant;

    /// An opaque enqueue timestamp.
    #[derive(Debug, Clone, Copy)]
    pub(super) struct Stamp(Instant);

    impl Stamp {
        /// Reads the wall clock once, at enqueue time.
        pub(super) fn now() -> Self {
            // dls-lint: allow(determinism) -- enqueue→complete latency capture; the reading is reported beside the outcome and never feeds protocol state
            Stamp(Instant::now())
        }

        /// Nanoseconds elapsed since the stamp, saturating at `u64::MAX`.
        pub(super) fn elapsed_ns(&self) -> u64 {
            u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
    }
}

/// How submitted sessions are placed on worker queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Shortest-queue-first at submit, steal-half when idle. The
    /// production policy.
    Stealing,
    /// `ticket mod workers` at submit, no stealing — the service-resident
    /// twin of [`crate::executor::run_session_pooled_with`]'s static
    /// shard, kept as the benchmark baseline so both policies measure
    /// identical submission/retrieval machinery.
    StaticShard,
}

/// Configuration for [`ServiceHandle::start`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads to spawn (floored at 1).
    pub workers: usize,
    /// Queue placement and stealing policy.
    pub placement: Placement,
    /// Reuse each worker's [`VmScratch`] arena across sessions (the
    /// steady-state default). `false` builds a fresh arena per session —
    /// the pre-arena behaviour, kept selectable so the benchmark can
    /// disclose the difference.
    pub reuse_scratch: bool,
}

impl ServiceConfig {
    /// `workers` stealing workers with scratch reuse on.
    pub fn stealing(workers: usize) -> Self {
        ServiceConfig {
            workers,
            placement: Placement::Stealing,
            reuse_scratch: true,
        }
    }

    /// `workers` static-shard workers with scratch reuse on.
    pub fn static_shard(workers: usize) -> Self {
        ServiceConfig {
            workers,
            placement: Placement::StaticShard,
            reuse_scratch: true,
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServiceConfig::stealing(workers)
    }
}

/// A finished session, retrievable by ticket.
#[derive(Debug)]
pub struct Completed {
    /// The ticket [`ServiceHandle::submit`] returned for this session.
    pub ticket: u64,
    /// Index of the worker that executed the session (who ran it — an
    /// artifact of placement, not of the protocol).
    pub worker: usize,
    /// Wall-clock enqueue→complete latency in nanoseconds.
    pub latency_ns: u64,
    /// The session outcome — bit-exact with
    /// [`crate::executor::run_session_vm`] on the same config.
    pub outcome: Result<SessionOutcome, RunError>,
}

/// One queued session.
struct Job {
    ticket: u64,
    cfg: SessionConfig,
    enqueued: latency::Stamp,
}

/// State shared between the handle and the workers.
struct Shared {
    /// Per-worker deques. Owners pop the front; thieves split the back.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Per-queue length mirrors, maintained on push/pop/steal so placement
    /// and victim selection scan atomics instead of taking locks.
    queue_lens: Vec<AtomicUsize>,
    /// Sessions submitted but not yet inserted into `results`.
    in_flight: AtomicUsize,
    /// Parking lot for idle workers; the mutex guards only the wait.
    idle_mx: Mutex<()>,
    idle_cv: Condvar,
    /// Finished sessions keyed by ticket, waited on via `results_cv`.
    results: Mutex<BTreeMap<u64, Completed>>,
    results_cv: Condvar,
    next_ticket: AtomicU64,
    shutdown: AtomicBool,
    placement: Placement,
    reuse_scratch: bool,
}

impl Shared {
    fn queued_total(&self) -> usize {
        self.queue_lens
            .iter()
            .map(|l| l.load(Ordering::Acquire))
            .sum()
    }

    /// Pops the oldest job from worker `w`'s own deque.
    fn pop_local(&self, w: usize) -> Option<Job> {
        if self
            .queue_lens
            .get(w)
            .is_none_or(|l| l.load(Ordering::Acquire) == 0)
        {
            return None;
        }
        let job = self.queues.get(w)?.lock().pop_front();
        if job.is_some() {
            if let Some(len) = self.queue_lens.get(w) {
                len.fetch_sub(1, Ordering::AcqRel);
            }
        }
        job
    }

    /// Steals the back half of the busiest other queue into worker `w`'s
    /// deque and returns the first stolen job. The victim's lock is
    /// released before the thief's own queue is touched, so no two queue
    /// locks are ever held together.
    fn steal_into(&self, w: usize) -> Option<Job> {
        let victim = self
            .queue_lens
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != w)
            .map(|(i, l)| (l.load(Ordering::Acquire), i))
            .filter(|&(len, _)| len > 0)
            .max_by_key(|&(len, i)| (len, std::cmp::Reverse(i)))
            .map(|(_, i)| i)?;

        let mut stolen: VecDeque<Job> = {
            let mut q = self.queues.get(victim)?.lock();
            let n = q.len();
            if n == 0 {
                return None;
            }
            // Take ceil(n/2) newest jobs; the victim keeps its oldest.
            let keep = n / 2;
            let tail = q.split_off(keep);
            if let Some(len) = self.queue_lens.get(victim) {
                len.fetch_sub(tail.len(), Ordering::AcqRel);
            }
            tail
        };

        let first = stolen.pop_front();
        if !stolen.is_empty() {
            let rest = stolen.len();
            if let Some(q) = self.queues.get(w) {
                q.lock().append(&mut stolen);
            }
            if let Some(len) = self.queue_lens.get(w) {
                len.fetch_add(rest, Ordering::AcqRel);
            }
            // The thief's queue just became non-empty; other idle workers
            // may steal from it in turn.
            self.idle_cv.notify_all();
        }
        first
    }

    /// Runs one job to completion and publishes the result. A panic while
    /// driving the session is contained to a typed error, mirroring the
    /// pooled path's panicked-worker policy.
    fn run_job(&self, w: usize, job: Job, scratch: &mut VmScratch) {
        let Job {
            ticket,
            cfg,
            enqueued,
        } = job;
        let outcome = if self.reuse_scratch {
            catch_unwind(AssertUnwindSafe(|| drive_session(&cfg, scratch)))
        } else {
            catch_unwind(AssertUnwindSafe(|| {
                drive_session(&cfg, &mut VmScratch::new())
            }))
        }
        .unwrap_or_else(|_| {
            Err(RunError::Protocol(ProtocolViolation::invalid_state(
                "service worker panicked while driving a session",
            )))
        });
        let done = Completed {
            ticket,
            worker: w,
            latency_ns: enqueued.elapsed_ns(),
            outcome,
        };
        let mut results = self.results.lock();
        results.insert(ticket, done);
        drop(results);
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        self.results_cv.notify_all();
    }

    /// Worker `w`'s main loop: drain own queue, steal when empty, park
    /// when the whole service is idle. Exits once shutdown is flagged and
    /// every queue has drained.
    fn worker_loop(&self, w: usize) {
        let mut scratch = VmScratch::new();
        loop {
            let job = match self.placement {
                Placement::Stealing => self.pop_local(w).or_else(|| self.steal_into(w)),
                Placement::StaticShard => self.pop_local(w),
            };
            if let Some(job) = job {
                self.run_job(w, job, &mut scratch);
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) && self.queued_total() == 0 {
                return;
            }
            let mut guard = self.idle_mx.lock();
            // Re-check under the lock: a submit may have landed between
            // the empty scan above and taking the lock. The bounded wait
            // is a backstop against the remaining notify race; it costs
            // at most one timeout of idle latency, never a hang.
            if self.queued_total() == 0 && !self.shutdown.load(Ordering::Acquire) {
                self.idle_cv
                    .wait_for(&mut guard, Duration::from_millis(10));
            }
        }
    }
}

/// A running session service: a fixed pool of long-lived workers
/// consuming a continuous stream of submissions.
///
/// ```no_run
/// use dls_protocol::config::{Behavior, ProcessorConfig, SessionConfig};
/// use dls_protocol::service::{ServiceConfig, ServiceHandle};
/// use dls_dlt::SystemModel;
///
/// let svc = ServiceHandle::start(ServiceConfig::stealing(4));
/// let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.2)
///     .processor(ProcessorConfig::new(1.0, Behavior::Compliant))
///     .processor(ProcessorConfig::new(2.0, Behavior::Compliant))
///     .build()
///     .unwrap();
/// let ticket = svc.submit(cfg);
/// let done = svc.wait(ticket).unwrap();
/// println!("latency: {} ns", done.latency_ns);
/// svc.shutdown();
/// ```
pub struct ServiceHandle {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServiceHandle {
    /// Spawns the worker pool and returns the submission handle.
    pub fn start(cfg: ServiceConfig) -> ServiceHandle {
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            queue_lens: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
            in_flight: AtomicUsize::new(0),
            idle_mx: Mutex::new(()),
            idle_cv: Condvar::new(),
            results: Mutex::new(BTreeMap::new()),
            results_cv: Condvar::new(),
            next_ticket: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            placement: cfg.placement,
            reuse_scratch: cfg.reuse_scratch,
        });
        let threads = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dls-service-{w}"))
                    .spawn(move || shared.worker_loop(w))
            })
            .filter_map(|h| h.ok())
            .collect();
        ServiceHandle { shared, threads }
    }

    /// Number of workers actually running.
    pub fn workers(&self) -> usize {
        self.threads.len().max(1)
    }

    /// Submits a session and returns its ticket. Tickets increase
    /// monotonically from zero in submission order.
    pub fn submit(&self, cfg: SessionConfig) -> u64 {
        let ticket = self.shared.next_ticket.fetch_add(1, Ordering::AcqRel);
        let workers = self.shared.queues.len().max(1);
        let target = match self.shared.placement {
            Placement::StaticShard => (ticket % workers as u64) as usize,
            Placement::Stealing => self
                .shared
                .queue_lens
                .iter()
                .enumerate()
                .map(|(i, l)| (l.load(Ordering::Acquire), i))
                .min()
                .map(|(_, i)| i)
                .unwrap_or(0),
        };
        let job = Job {
            ticket,
            cfg,
            enqueued: latency::Stamp::now(),
        };
        self.shared.in_flight.fetch_add(1, Ordering::AcqRel);
        if let Some(q) = self.shared.queues.get(target) {
            q.lock().push_back(job);
        }
        if let Some(len) = self.shared.queue_lens.get(target) {
            len.fetch_add(1, Ordering::AcqRel);
        }
        self.shared.idle_cv.notify_all();
        ticket
    }

    /// Sessions submitted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Takes a finished session without blocking. `None` if the ticket is
    /// unknown or still running.
    pub fn try_take(&self, ticket: u64) -> Option<Completed> {
        self.shared.results.lock().remove(&ticket)
    }

    /// Blocks until `ticket` completes and takes its result. Returns
    /// `None` (rather than hanging) for a ticket that was never issued,
    /// or whose result was already taken.
    pub fn wait(&self, ticket: u64) -> Option<Completed> {
        if ticket >= self.shared.next_ticket.load(Ordering::Acquire) {
            return None;
        }
        let mut results = self.shared.results.lock();
        loop {
            if let Some(done) = results.remove(&ticket) {
                return Some(done);
            }
            // The completion may have been taken by an earlier wait/try_take
            // on the same ticket; don't spin forever on a consumed slot.
            if self.shared.in_flight.load(Ordering::Acquire) == 0 {
                return results.remove(&ticket);
            }
            self.shared
                .results_cv
                .wait_for(&mut results, Duration::from_millis(10));
        }
    }

    /// Flags shutdown, lets the workers drain every queued session, and
    /// joins them. Pending results stay retrievable via the shared map
    /// until the handle is dropped.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.idle_cv.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Wake any waiter stuck on a ticket that will never complete.
        self.shared.results_cv.notify_all();
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Behavior, ProcessorConfig};
    use dls_dlt::SystemModel;

    fn cfg(seed: u64) -> SessionConfig {
        SessionConfig::builder(SystemModel::NcpFe, 0.25)
            .processor(ProcessorConfig::new(1.0, Behavior::Compliant))
            .processor(ProcessorConfig::new(2.0, Behavior::Compliant))
            .processor(ProcessorConfig::new(3.0, Behavior::Compliant))
            .seed(seed)
            .build()
            .expect("valid session config")
    }

    #[test]
    fn tickets_are_monotonic_and_results_keyed_by_ticket() {
        let svc = ServiceHandle::start(ServiceConfig::stealing(2));
        let t0 = svc.submit(cfg(1));
        let t1 = svc.submit(cfg(2));
        let t2 = svc.submit(cfg(3));
        assert_eq!((t0, t1, t2), (0, 1, 2));
        // Retrieve out of submission order.
        let d2 = svc.wait(t2).expect("t2 completes");
        let d0 = svc.wait(t0).expect("t0 completes");
        let d1 = svc.wait(t1).expect("t1 completes");
        assert_eq!((d0.ticket, d1.ticket, d2.ticket), (t0, t1, t2));
        for d in [&d0, &d1, &d2] {
            assert!(d.outcome.is_ok(), "compliant session failed: {:?}", d.outcome);
        }
        svc.shutdown();
    }

    #[test]
    fn wait_on_unissued_ticket_returns_none() {
        let svc = ServiceHandle::start(ServiceConfig::stealing(1));
        assert!(svc.wait(99).is_none());
        assert!(svc.try_take(0).is_none());
        svc.shutdown();
    }

    #[test]
    fn wait_on_consumed_ticket_returns_none_after_drain() {
        let svc = ServiceHandle::start(ServiceConfig::stealing(1));
        let t = svc.submit(cfg(7));
        assert!(svc.wait(t).is_some());
        assert!(svc.wait(t).is_none(), "consumed ticket must not hang");
        svc.shutdown();
    }

    #[test]
    fn static_shard_matches_stealing_outcomes() {
        let steal = ServiceHandle::start(ServiceConfig::stealing(3));
        let shard = ServiceHandle::start(ServiceConfig::static_shard(3));
        for seed in 10..14 {
            let ts = steal.submit(cfg(seed));
            let th = shard.submit(cfg(seed));
            let a = steal.wait(ts).expect("stealing completes");
            let b = shard.wait(th).expect("static completes");
            let a = a.outcome.expect("stealing outcome");
            let b = b.outcome.expect("static outcome");
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        steal.shutdown();
        shard.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_sessions() {
        let svc = ServiceHandle::start(ServiceConfig::stealing(2));
        let tickets: Vec<u64> = (0..6).map(|s| svc.submit(cfg(20 + s))).collect();
        let shared = Arc::clone(&svc.shared);
        svc.shutdown();
        let results = shared.results.lock();
        for t in tickets {
            assert!(results.contains_key(&t), "ticket {t} not drained");
        }
    }

    #[test]
    fn fresh_scratch_matches_reused_scratch() {
        let reused = ServiceHandle::start(ServiceConfig::stealing(2));
        let fresh = ServiceHandle::start(ServiceConfig {
            workers: 2,
            placement: Placement::Stealing,
            reuse_scratch: false,
        });
        let tr = reused.submit(cfg(31));
        let tf = fresh.submit(cfg(31));
        let a = reused.wait(tr).expect("reused").outcome.expect("ok");
        let b = fresh.wait(tf).expect("fresh").outcome.expect("ok");
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        reused.shutdown();
        fresh.shutdown();
    }
}
