//! Always-on auction service: streaming session ingestion over a
//! supervised, overload-safe fixed worker pool with work stealing.
//!
//! [`crate::executor::run_session_pooled_with`] answers the batch
//! question — N sessions known up front, statically sharded `s mod
//! workers`. A production deployment does not see batches: sessions
//! arrive continuously, and a static shard rule lets one slow stream of
//! work (large m, fault-heavy, crypto-enabled) pile sessions behind a
//! busy worker while its neighbours idle. This module keeps the workers
//! alive across submissions and fixes the placement problem twice over:
//!
//! * **at submit time** — a ticket is placed on the *shortest* queue
//!   (by current length, ties to the lowest worker index), not on
//!   `ticket mod workers`;
//! * **at run time** — a worker whose own deque is empty **steals the
//!   back half** of the busiest victim's deque, so a backlog behind a
//!   heavy session drains through every idle worker instead of waiting
//!   for its owner.
//!
//! ## The service fault model
//!
//! The paper removes the trusted control processor, so in a deployment
//! this service *is* the substrate the mechanism runs on — it has to
//! survive overload and worker failure the way PR 4 made sessions
//! survive processor faults. Three layers (DESIGN.md §16):
//!
//! * **Admission** — [`ServiceConfig::queue_capacity`] bounds queued
//!   work; [`AdmissionPolicy`] picks what happens at the bound: typed
//!   rejection, bounded blocking, or shed-oldest with the shed ticket
//!   surfaced as a typed [`Completed`] outcome — never silently.
//!   [`ServiceConfig::results_capacity`] bounds the results map the same
//!   way, with evictions disclosed via [`ServiceStats`] and
//!   [`ServiceHandle::recent_evictions`].
//! * **Supervision** — a supervisor thread ([`crate::supervisor`])
//!   respawns workers whose threads die, requeues their orphaned
//!   in-progress jobs, and (optionally) confiscates work from stalled
//!   workers. Spawn failure at [`ServiceHandle::start`] is a typed
//!   error or a shrunk pool — never a stranded queue.
//! * **Retry & quarantine** — a job whose session driver panics is
//!   retried once on a *different* worker (sound because replay is
//!   deterministic: same [`SessionConfig`] → bit-exact outcome); a
//!   second panic quarantines it as a typed poison outcome instead of
//!   crash-looping.
//!
//! The invariant all three defend: **no accepted ticket is ever lost** —
//! every ticket from a successful [`ServiceHandle::submit`] resolves to
//! an outcome, a shed notice, or a quarantine notice. The chaos suite
//! (`tests/tests/service_chaos.rs`) drives kill/stall/panic churn
//! through [`ServiceFaultPlan`] and asserts exactly that.
//!
//! ## Why determinism survives placement, faults included
//!
//! Virtual time is *per session*: every session runs through
//! [`crate::executor::run_session_vm`]'s state machines via the shared
//! per-session driver, carrying its own [`crate::sched::VirtualClock`]
//! and event queue in the worker's scratch arena. Which worker runs a
//! session, when, and on which attempt is a wall-clock concern that
//! never feeds the protocol: outcomes are bit-exact against the
//! static-shard pooled path and the threaded oracle even when the
//! session's first worker was killed mid-job (pinned by
//! `tests/tests/{service_differential,service_chaos}.rs`). Wall-clock
//! enters exactly once — the [`latency`] module — and those readings are
//! reported *beside* outcomes, never used to compute them.
//!
//! ## Queue discipline
//!
//! Owners pop from the **front** of their deque (oldest first); thieves
//! split off the **back** half (newest). FIFO order is therefore
//! preserved for the oldest queued sessions while the youngest migrate
//! to idle workers. No two queue locks are ever held at once: a steal
//! drains the victim's tail under the victim's lock, releases it, and
//! only then touches the thief's own queue. Recovery requeues follow the
//! same rule and override placement: an orphaned or retried job goes to
//! the shortest *alive* queue other than the failed worker's, even under
//! [`Placement::StaticShard`].

use crate::config::SessionConfig;
use crate::executor::{drive_session, drive_session_caught, VmScratch};
use crate::runtime::{ProtocolViolation, RunError, SessionOutcome};
use crate::supervisor::{CompiledPlan, Counters, DeathWatch, ServiceFaultPlan, ServiceStats, Slot};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How many evicted tickets [`ServiceHandle::recent_evictions`] retains.
const EVICTION_RING: usize = 64;

/// Wall-clock latency capture, quarantined: these are the only wall-clock
/// reads on the service path. A stamp is taken at enqueue and read at
/// completion; the resulting nanosecond figure is attached to the
/// [`Completed`] record and never influences a session outcome, which is
/// driven entirely by per-session virtual time. The supervisor reuses the
/// same stamp type to report worker-recovery latency — again a reading
/// beside the data path, never an input to it.
pub(crate) mod latency {
    use std::time::Instant;

    /// An opaque wall-clock timestamp.
    #[derive(Debug, Clone, Copy)]
    pub(crate) struct Stamp(Instant);

    impl Stamp {
        /// Reads the wall clock once.
        pub(crate) fn now() -> Self {
            // dls-lint: allow(determinism) -- enqueue→complete latency capture; the reading is reported beside the outcome and never feeds protocol state
            Stamp(Instant::now())
        }

        /// Nanoseconds elapsed since the stamp, saturating at `u64::MAX`.
        pub(crate) fn elapsed_ns(&self) -> u64 {
            u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }
    }
}

/// How submitted sessions are placed on worker queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Shortest-queue-first at submit, steal-half when idle. The
    /// production policy.
    Stealing,
    /// `ticket mod workers` at submit, no stealing — the service-resident
    /// twin of [`crate::executor::run_session_pooled_with`]'s static
    /// shard, kept as the benchmark baseline so both policies measure
    /// identical submission/retrieval machinery. Dead worker slots are
    /// probed past so a shrunk pool still drains every shard.
    StaticShard,
}

/// What [`ServiceHandle::submit`] does when the queued-session count has
/// reached [`ServiceConfig::queue_capacity`].
///
/// Capacity is enforced against concurrent submitters optimistically:
/// several submitters that pass the admission check together can
/// transiently overshoot the bound by at most the number of in-flight
/// `submit` calls. The bound is on *queued* sessions; running sessions
/// are not counted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Fail fast with [`SubmitError::Overloaded`].
    Reject,
    /// Backpressure: block the submitter until space frees or `timeout`
    /// elapses, then fail with [`SubmitError::AdmissionTimeout`]. The
    /// timeout is accounted in bounded slices so a burst of wakeups can
    /// only lengthen, never shorten, the total wait.
    Block {
        /// Longest a submitter may be held at the admission gate.
        timeout: Duration,
    },
    /// Admit the new session by evicting the oldest *queued* session,
    /// which resolves to a typed [`ServiceError::Shed`] outcome on its
    /// ticket — shed work is disclosed, never dropped silently.
    ShedOldest,
}

/// Typed refusal from [`ServiceHandle::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// [`AdmissionPolicy::Reject`] and the queue is full.
    Overloaded {
        /// Sessions queued when the submit was refused.
        queued: usize,
        /// The configured [`ServiceConfig::queue_capacity`].
        capacity: usize,
    },
    /// [`AdmissionPolicy::Block`] and no space freed within the timeout.
    AdmissionTimeout {
        /// Sessions queued when the timeout fired.
        queued: usize,
        /// The configured [`ServiceConfig::queue_capacity`].
        capacity: usize,
    },
    /// The service is shutting down; no new work is accepted.
    ShutDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded { queued, capacity } => {
                write!(f, "service overloaded: {queued} queued >= capacity {capacity}")
            }
            SubmitError::AdmissionTimeout { queued, capacity } => write!(
                f,
                "admission timed out: {queued} queued >= capacity {capacity} for the whole timeout"
            ),
            SubmitError::ShutDown => write!(f, "service is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Typed failure from [`ServiceHandle::start`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartError {
    /// Every worker spawn failed; a service with zero workers would
    /// strand each accepted ticket, so none is returned instead.
    NoWorkers {
        /// Spawns attempted (the configured worker count).
        attempted: usize,
    },
}

impl std::fmt::Display for StartError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StartError::NoWorkers { attempted } => {
                write!(f, "no service workers could be spawned ({attempted} attempted)")
            }
        }
    }
}

impl std::error::Error for StartError {}

/// Why a ticket resolved without a session outcome.
#[derive(Debug)]
pub enum ServiceError {
    /// The session ran and failed with a protocol-level error — the same
    /// error [`crate::executor::run_session_vm`] returns for this config.
    Session(RunError),
    /// The session's driver panicked on two different attempts; the job
    /// is quarantined as poison instead of crash-looping the pool. This
    /// mirrors PR 4's degradation policy one layer up: the *service*
    /// stays live and discloses the failure instead of dying with it.
    Quarantined {
        /// The typed error the final panic was contained to.
        error: RunError,
        /// Driver attempts consumed (always ≥ 2 when quarantined).
        attempts: u32,
    },
    /// The session was evicted unstarted by [`AdmissionPolicy::ShedOldest`]
    /// to admit newer work.
    Shed {
        /// Sessions queued at the moment of shedding.
        queued: usize,
        /// The configured [`ServiceConfig::queue_capacity`].
        capacity: usize,
    },
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Session(e) => write!(f, "session failed: {e}"),
            ServiceError::Quarantined { error, attempts } => {
                write!(f, "quarantined as poison after {attempts} attempts: {error}")
            }
            ServiceError::Shed { queued, capacity } => {
                write!(f, "shed unstarted at {queued} queued (capacity {capacity})")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Configuration for [`ServiceHandle::start`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads to spawn (floored at 1).
    pub workers: usize,
    /// Queue placement and stealing policy.
    pub placement: Placement,
    /// Reuse each worker's [`VmScratch`] arena across sessions (the
    /// steady-state default). `false` builds a fresh arena per session —
    /// the pre-arena behaviour, kept selectable so the benchmark can
    /// disclose the difference.
    pub reuse_scratch: bool,
    /// Upper bound on *queued* (not yet running) sessions. `None` — the
    /// default — admits everything, the pre-hardening behaviour.
    pub queue_capacity: Option<usize>,
    /// What `submit` does at the `queue_capacity` bound. Ignored while
    /// `queue_capacity` is `None`.
    pub admission: AdmissionPolicy,
    /// Upper bound on retained completed-but-untaken results. At the
    /// bound, publishing a new result evicts the oldest ticket; evictions
    /// are counted in [`ServiceStats`] and the most recent are listed by
    /// [`ServiceHandle::recent_evictions`]. `None` retains forever.
    pub results_capacity: Option<usize>,
    /// Run the supervisor thread: respawn dead workers, requeue their
    /// orphaned jobs, confiscate from stalled workers. On by default;
    /// turning it off reverts to the unsupervised PR 9 pool (useful in
    /// tests that want a failure to stay unhealed).
    pub supervise: bool,
    /// Supervisor sweep period.
    pub tick: Duration,
    /// Consecutive ticks a busy worker's heartbeat may sit unchanged
    /// before the supervisor declares it stalled and confiscates its
    /// work. `0` — the default — disables stall detection entirely: a
    /// legitimately long session (heavy m, crypto) beats only between
    /// jobs, so any finite threshold trades false positives for
    /// detection latency, and that trade belongs to the operator.
    pub stall_ticks: u32,
    /// Deterministic fault injection for the chaos suite and the faulted
    /// benchmark cells. Empty (no faults) by default.
    pub fault_plan: ServiceFaultPlan,
}

impl ServiceConfig {
    /// `workers` stealing workers with scratch reuse on and no bounds.
    pub fn stealing(workers: usize) -> Self {
        ServiceConfig {
            workers,
            placement: Placement::Stealing,
            reuse_scratch: true,
            queue_capacity: None,
            admission: AdmissionPolicy::Reject,
            results_capacity: None,
            supervise: true,
            tick: Duration::from_millis(5),
            stall_ticks: 0,
            fault_plan: ServiceFaultPlan::default(),
        }
    }

    /// `workers` static-shard workers with scratch reuse on and no bounds.
    pub fn static_shard(workers: usize) -> Self {
        ServiceConfig {
            placement: Placement::StaticShard,
            ..ServiceConfig::stealing(workers)
        }
    }
}

impl Default for ServiceConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ServiceConfig::stealing(workers)
    }
}

/// A finished session, retrievable by ticket.
#[derive(Debug)]
pub struct Completed {
    /// The ticket [`ServiceHandle::submit`] returned for this session.
    pub ticket: u64,
    /// Index of the worker that resolved the session (who ran it — an
    /// artifact of placement, not of the protocol). For a shed ticket,
    /// the queue it was shed from; for an inline shutdown drain,
    /// `usize::MAX`.
    pub worker: usize,
    /// Wall-clock enqueue→resolve latency in nanoseconds.
    pub latency_ns: u64,
    /// Driver attempts consumed (1 for the common case; 2 after a
    /// panic-retry; 0 for a shed ticket that never started).
    pub attempts: u32,
    /// The session outcome — bit-exact with
    /// [`crate::executor::run_session_vm`] on the same config — or the
    /// typed reason the service resolved the ticket without one.
    pub outcome: Result<SessionOutcome, ServiceError>,
}

/// One queued session. Shared (`Arc`) between the owning queue and the
/// in-progress registry so recovery can requeue a job without cloning
/// its config; the publish path dedups duplicate runs by ticket.
pub(crate) struct Job {
    pub(crate) ticket: u64,
    pub(crate) cfg: SessionConfig,
    pub(crate) enqueued: latency::Stamp,
    /// Driver attempts started so far; also drives `PanicOnTicket`
    /// injection (panic while `attempts < times`), making the
    /// retry-then-quarantine path deterministic.
    pub(crate) attempts: AtomicU32,
}

/// A job some worker has popped but not yet published: the supervisor's
/// recovery unit. Keyed by ticket in `Shared::running`.
pub(crate) struct Running {
    pub(crate) job: Arc<Job>,
    pub(crate) worker: usize,
}

/// Completed-result storage plus the ticket-lifecycle ledger. `pending`
/// holds every accepted-but-unresolved ticket, so `wait` can distinguish
/// "still coming" (block) from "already consumed/evicted/never issued"
/// (return `None` promptly) without polling `in_flight`.
pub(crate) struct Table {
    pub(crate) done: BTreeMap<u64, Completed>,
    pub(crate) pending: BTreeSet<u64>,
    /// Most recently evicted tickets, newest last (bounded disclosure
    /// ring backing [`ServiceHandle::recent_evictions`]).
    pub(crate) evicted: VecDeque<u64>,
}

/// State shared between the handle, the workers, and the supervisor.
pub(crate) struct Shared {
    /// Per-worker deques. Owners pop the front; thieves split the back.
    pub(crate) queues: Vec<Mutex<VecDeque<Arc<Job>>>>,
    /// Per-queue length mirrors, maintained on push/pop/steal so placement
    /// and victim selection scan atomics instead of taking locks.
    pub(crate) queue_lens: Vec<AtomicUsize>,
    /// Per-worker liveness and heartbeat, maintained by [`DeathWatch`]
    /// and read by placement and the supervisor.
    pub(crate) slots: Vec<Slot>,
    /// Accepted tickets not yet resolved (mirrors `Table::pending`).
    pub(crate) in_flight: AtomicUsize,
    /// Parking lot for idle workers; the mutex guards only the wait.
    pub(crate) idle_mx: Mutex<()>,
    pub(crate) idle_cv: Condvar,
    /// Parking lot for submitters blocked at the admission gate.
    pub(crate) admit_mx: Mutex<()>,
    pub(crate) admit_cv: Condvar,
    /// Parking lot for stall-injected workers (fault injection only).
    pub(crate) stall_mx: Mutex<()>,
    pub(crate) stall_cv: Condvar,
    /// Parking lot for the supervisor between sweeps.
    pub(crate) sup_mx: Mutex<()>,
    pub(crate) sup_cv: Condvar,
    /// Results, pending set, and eviction ring; waited on via `results_cv`.
    pub(crate) table: Mutex<Table>,
    pub(crate) results_cv: Condvar,
    /// In-progress registry: popped-but-unpublished jobs, by ticket.
    pub(crate) running: Mutex<BTreeMap<u64, Running>>,
    /// Live thread handles; the supervisor pushes respawns here so
    /// shutdown can join workers it never saw spawn.
    pub(crate) handles: Mutex<Vec<JoinHandle<()>>>,
    pub(crate) next_ticket: AtomicU64,
    /// Global job-start counter: increments once per pop→run attempt
    /// (retries and requeues included). `KillWorkerAtJob`/`StallWorker`
    /// faults key off this index.
    pub(crate) jobs_started: AtomicU64,
    /// Global spawn-attempt counter (initial spawns and respawns);
    /// `SpawnFailAt` faults key off this index.
    pub(crate) spawn_attempts: AtomicU64,
    pub(crate) shutdown: AtomicBool,
    /// Service birth stamp; slot death/recovery times are nanoseconds
    /// relative to this.
    pub(crate) epoch: latency::Stamp,
    pub(crate) placement: Placement,
    pub(crate) reuse_scratch: bool,
    pub(crate) queue_capacity: Option<usize>,
    pub(crate) admission: AdmissionPolicy,
    pub(crate) results_capacity: Option<usize>,
    pub(crate) supervise: bool,
    pub(crate) tick: Duration,
    pub(crate) stall_ticks: u32,
    pub(crate) plan: CompiledPlan,
    pub(crate) stats: Counters,
}

impl Shared {
    pub(crate) fn queued_total(&self) -> usize {
        self.queue_lens
            .iter()
            .map(|l| l.load(Ordering::Acquire))
            .sum()
    }

    /// `true` while worker slot `w` has a live (spawned, not dead) thread.
    pub(crate) fn slot_alive(&self, w: usize) -> bool {
        self.slots
            .get(w)
            .is_some_and(|s| s.alive.load(Ordering::Acquire))
    }

    /// Advances worker `w`'s heartbeat (read by stall detection).
    fn beat(&self, w: usize) {
        if let Some(s) = self.slots.get(w) {
            s.beat.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Picks the queue a fresh ticket lands on, skipping dead slots.
    fn place(&self, ticket: u64) -> usize {
        let n = self.queues.len().max(1);
        match self.placement {
            Placement::StaticShard => {
                let start = (ticket % n as u64) as usize;
                // Probe forward from the home shard to the first alive
                // slot so a shrunk pool still drains every shard.
                (0..n)
                    .map(|off| (start + off) % n)
                    .find(|&w| self.slot_alive(w))
                    .unwrap_or(start)
            }
            Placement::Stealing => self
                .queue_lens
                .iter()
                .enumerate()
                .filter(|&(i, _)| self.slot_alive(i))
                .map(|(i, l)| (l.load(Ordering::Acquire), i))
                .min()
                .map(|(_, i)| i)
                .unwrap_or(0),
        }
    }

    /// Pushes a job onto worker `target`'s deque and wakes the pool.
    pub(crate) fn enqueue(&self, target: usize, job: Arc<Job>) {
        debug_assert!(
            target < self.queues.len(),
            "enqueue target {target} out of range ({} queues): the job would be silently dropped",
            self.queues.len()
        );
        if let Some(q) = self.queues.get(target) {
            q.lock().push_back(job);
        }
        if let Some(len) = self.queue_lens.get(target) {
            let depth = len.fetch_add(1, Ordering::AcqRel).saturating_add(1);
            self.stats
                .queue_depth_hwm
                .fetch_max(depth as u64, Ordering::AcqRel);
        }
        self.idle_cv.notify_all();
    }

    /// Requeues a job away from worker `from`: shortest alive queue other
    /// than `from`, falling back to any alive queue, then to `from`
    /// itself (a dead slot's queue is still drained at shutdown).
    /// Recovery placement deliberately overrides `StaticShard`.
    pub(crate) fn requeue_away(&self, job: Arc<Job>, from: usize) {
        let target = self
            .queue_lens
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != from && self.slot_alive(i))
            .map(|(i, l)| (l.load(Ordering::Acquire), i))
            .min()
            .map(|(_, i)| i)
            .or_else(|| (0..self.queues.len()).find(|&i| self.slot_alive(i)))
            .unwrap_or(from);
        self.enqueue(target, job);
    }

    /// Pops the oldest job from worker `w`'s own deque.
    pub(crate) fn pop_local(&self, w: usize) -> Option<Arc<Job>> {
        if self
            .queue_lens
            .get(w)
            .is_none_or(|l| l.load(Ordering::Acquire) == 0)
        {
            return None;
        }
        let job = self.queues.get(w)?.lock().pop_front();
        if job.is_some() {
            if let Some(len) = self.queue_lens.get(w) {
                len.fetch_sub(1, Ordering::AcqRel);
            }
            self.notify_admission();
        }
        job
    }

    /// Wakes submitters blocked at the admission gate (space may have
    /// freed). Cheap no-op when no capacity is configured.
    fn notify_admission(&self) {
        if self.queue_capacity.is_some() {
            self.admit_cv.notify_all();
        }
    }

    /// Steals the back half of the busiest other queue into worker `w`'s
    /// deque and returns the first stolen job. The victim's lock is
    /// released before the thief's own queue is touched, so no two queue
    /// locks are ever held together.
    fn steal_into(&self, w: usize) -> Option<Arc<Job>> {
        let victim = self
            .queue_lens
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != w)
            .map(|(i, l)| (l.load(Ordering::Acquire), i))
            .filter(|&(len, _)| len > 0)
            .max_by_key(|&(len, i)| (len, std::cmp::Reverse(i)))
            .map(|(_, i)| i)?;

        let mut stolen: VecDeque<Arc<Job>> = {
            let mut q = self.queues.get(victim)?.lock();
            let n = q.len();
            if n == 0 {
                return None;
            }
            // Take ceil(n/2) newest jobs; the victim keeps its oldest.
            let keep = n / 2;
            let tail = q.split_off(keep);
            if let Some(len) = self.queue_lens.get(victim) {
                len.fetch_sub(tail.len(), Ordering::AcqRel);
            }
            tail
        };

        let first = stolen.pop_front();
        if first.is_some() {
            self.stats.steals.fetch_add(1, Ordering::Relaxed);
            self.notify_admission();
        }
        if !stolen.is_empty() {
            let rest = stolen.len();
            if let Some(q) = self.queues.get(w) {
                q.lock().append(&mut stolen);
            }
            if let Some(len) = self.queue_lens.get(w) {
                len.fetch_add(rest, Ordering::AcqRel);
            }
            // The thief's queue just became non-empty; other idle workers
            // may steal from it in turn.
            self.idle_cv.notify_all();
        }
        first
    }

    /// Marks a freshly issued ticket pending (accepted, unresolved).
    fn mark_pending(&self, ticket: u64) {
        {
            let mut table = self.table.lock();
            table.pending.insert(ticket);
        }
        self.in_flight.fetch_add(1, Ordering::AcqRel);
    }

    /// Removes a still-queued job by ticket from queue `target` (the
    /// submit/shutdown race repair). `true` if the job was found.
    fn cancel_queued(&self, target: usize, ticket: u64) -> bool {
        let removed = match self.queues.get(target) {
            Some(q) => {
                let mut q = q.lock();
                let before = q.len();
                q.retain(|j| j.ticket != ticket);
                before != q.len()
            }
            None => false,
        };
        if removed {
            if let Some(len) = self.queue_lens.get(target) {
                len.fetch_sub(1, Ordering::AcqRel);
            }
        }
        removed
    }

    /// Un-accepts a cancelled ticket (pairs with `mark_pending`).
    fn unmark_pending(&self, ticket: u64) {
        {
            let mut table = self.table.lock();
            table.pending.remove(&ticket);
        }
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }

    /// Registers a popped job in the in-progress registry so the
    /// supervisor can recover it if this worker dies mid-run.
    fn note_running(&self, job: &Arc<Job>, w: usize) {
        let mut running = self.running.lock();
        running.insert(
            job.ticket,
            Running {
                job: Arc::clone(job),
                worker: w,
            },
        );
    }

    /// Drops a ticket's in-progress registration, if any.
    fn forget_running(&self, ticket: u64) {
        let mut running = self.running.lock();
        running.remove(&ticket);
    }

    /// `true` when no popped job is awaiting publication.
    pub(crate) fn running_empty(&self) -> bool {
        self.running.lock().is_empty()
    }

    /// Publishes a resolution for `ticket`, exactly once: the `pending`
    /// removal is the linearization point, so a duplicate run of the same
    /// job (stall-confiscation races, zombie resumes) publishes first-
    /// wins and the loser is discarded. Deterministic replay makes either
    /// winner bit-exact, so first-wins loses nothing. Evicts the oldest
    /// retained result past `results_capacity`, into the disclosure ring.
    fn publish(&self, done: Completed) {
        let ticket = done.ticket;
        let fresh = {
            let mut table = self.table.lock();
            if table.pending.remove(&ticket) {
                if let Some(cap) = self.results_capacity {
                    while table.done.len() >= cap.max(1) {
                        if let Some((old, _)) = table.done.pop_first() {
                            table.evicted.push_back(old);
                            if table.evicted.len() > EVICTION_RING {
                                table.evicted.pop_front();
                            }
                            self.stats.results_evicted.fetch_add(1, Ordering::Relaxed);
                        } else {
                            break;
                        }
                    }
                }
                table.done.insert(ticket, done);
                self.stats
                    .results_depth_hwm
                    .fetch_max(table.done.len() as u64, Ordering::AcqRel);
                true
            } else {
                false
            }
        };
        self.forget_running(ticket);
        if !fresh {
            return;
        }
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
        self.stats.completed.fetch_add(1, Ordering::Relaxed);
        self.results_cv.notify_all();
    }

    /// Sheds the oldest queued job (smallest front ticket across queues)
    /// and resolves its ticket as [`ServiceError::Shed`]. Best-effort
    /// under races: if every queue drained meanwhile, sheds nothing.
    fn shed_oldest(&self, capacity: usize) {
        let victim = {
            let mut best: Option<(u64, usize)> = None;
            for (i, q) in self.queues.iter().enumerate() {
                let front = q.lock().front().map(|j| j.ticket);
                if let Some(t) = front {
                    if best.is_none_or(|(bt, _)| t < bt) {
                        best = Some((t, i));
                    }
                }
            }
            best
        };
        let Some((_, qi)) = victim else { return };
        let Some(job) = self.pop_local(qi) else { return };
        self.stats.sheds.fetch_add(1, Ordering::Relaxed);
        self.publish(Completed {
            ticket: job.ticket,
            worker: qi,
            latency_ns: job.enqueued.elapsed_ns(),
            attempts: 0,
            outcome: Err(ServiceError::Shed {
                queued: self.queued_total(),
                capacity,
            }),
        });
    }

    /// Holds a blocked submitter at the admission gate until space frees,
    /// shutdown begins, or the policy timeout elapses. The timeout is
    /// decremented only by slices the wait actually timed out on, so
    /// spurious or early wakeups can only lengthen the total wait.
    fn admit_block(&self, capacity: usize, timeout: Duration) -> Result<(), SubmitError> {
        let mut remaining = timeout;
        let mut guard = self.admit_mx.lock();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return Err(SubmitError::ShutDown);
            }
            let queued = self.queued_total();
            if queued < capacity {
                return Ok(());
            }
            if remaining.is_zero() {
                self.stats.timed_out.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::AdmissionTimeout { queued, capacity });
            }
            let slice = remaining.min(Duration::from_millis(10));
            let res = self.admit_cv.wait_for(&mut guard, slice);
            if res.timed_out() {
                remaining = remaining.saturating_sub(slice);
            }
        }
    }

    /// Parks a stall-injected worker until shutdown (fault injection
    /// only). The zombie resumes at shutdown and re-runs its job; the
    /// publish path discards the duplicate if the supervisor already
    /// confiscated and re-ran it elsewhere.
    fn stall_park(&self) {
        let mut guard = self.stall_mx.lock();
        while !self.shutdown.load(Ordering::SeqCst) {
            self.stall_cv
                .wait_for(&mut guard, Duration::from_millis(10));
        }
    }

    /// Runs one popped job to resolution: publish, retry elsewhere after
    /// a first driver panic, quarantine after a second.
    pub(crate) fn run_job(&self, w: usize, job: Arc<Job>, scratch: &mut VmScratch) {
        let attempt = job.attempts.fetch_add(1, Ordering::SeqCst).saturating_add(1);
        let injected_panic = self
            .plan
            .panics
            .get(&job.ticket)
            .is_some_and(|&times| attempt <= times);
        let result = if injected_panic {
            None
        } else if self.reuse_scratch {
            drive_session_caught(&job.cfg, scratch)
        } else {
            drive_session_caught(&job.cfg, &mut VmScratch::new())
        };
        match result {
            Some(outcome) => self.publish(Completed {
                ticket: job.ticket,
                worker: w,
                latency_ns: job.enqueued.elapsed_ns(),
                attempts: attempt,
                outcome: outcome.map_err(ServiceError::Session),
            }),
            None => {
                if !injected_panic {
                    // A real panic may have torn the arena mid-session.
                    *scratch = VmScratch::new();
                }
                if attempt >= 2 {
                    self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                    self.publish(Completed {
                        ticket: job.ticket,
                        worker: w,
                        latency_ns: job.enqueued.elapsed_ns(),
                        attempts: attempt,
                        outcome: Err(ServiceError::Quarantined {
                            error: RunError::Protocol(ProtocolViolation::invalid_state(
                                "service worker panicked twice while driving a session; \
                                 job quarantined as poison",
                            )),
                            attempts: attempt,
                        }),
                    });
                } else {
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    self.requeue_away(job, w);
                }
            }
        }
    }

    /// Worker `w`'s main loop: drain own queue, steal when empty, park
    /// when the whole service is idle. Exits once shutdown is flagged and
    /// no work is queued or in progress anywhere. Thread death (fault-
    /// injected or real) is observed by the armed [`DeathWatch`].
    pub(crate) fn worker_loop(&self, w: usize, gen: u64) {
        let mut scratch = VmScratch::new();
        let mut watch = DeathWatch::arm(self, w, gen);
        loop {
            self.beat(w);
            let job = match self.placement {
                Placement::Stealing => self.pop_local(w).or_else(|| self.steal_into(w)),
                Placement::StaticShard => self.pop_local(w),
            };
            if let Some(job) = job {
                let n = self.jobs_started.fetch_add(1, Ordering::SeqCst);
                self.note_running(&job, w);
                if self.plan.kills.contains(&n) {
                    self.stats.killed.fetch_add(1, Ordering::Relaxed);
                    // Abrupt death: the DeathWatch drop records it and the
                    // supervisor recovers the registered job.
                    return;
                }
                if self.plan.stalls.contains(&n) {
                    self.stats.stalled.fetch_add(1, Ordering::Relaxed);
                    self.stall_park();
                }
                self.run_job(w, job, &mut scratch);
                continue;
            }
            if self.shutdown.load(Ordering::SeqCst)
                && self.queued_total() == 0
                && self.no_live_running()
            {
                watch.disarm();
                return;
            }
            let mut guard = self.idle_mx.lock();
            // Re-check under the lock: a submit may have landed between
            // the empty scan above and taking the lock. The bounded wait
            // is a backstop against the remaining notify race; it costs
            // at most one timeout of idle latency, never a hang.
            if self.queued_total() == 0 && !self.shutdown.load(Ordering::SeqCst) {
                self.idle_cv
                    .wait_for(&mut guard, Duration::from_millis(10));
            }
        }
    }

    /// Drains thread handles accumulated so far (initial spawns plus any
    /// supervisor respawns).
    fn take_handles(&self) -> Vec<JoinHandle<()>> {
        let mut handles = self.handles.lock();
        handles.split_off(0)
    }

    /// Pops one queued job from any queue (shutdown inline drain).
    fn pop_any(&self) -> Option<Arc<Job>> {
        (0..self.queues.len()).find_map(|i| self.pop_local(i))
    }

    /// Confiscates every in-progress registration (shutdown inline drain;
    /// the per-worker variant lives in the supervisor).
    fn confiscate_all_running(&self) -> Vec<Arc<Job>> {
        let mut running = self.running.lock();
        let drained = std::mem::take(&mut *running);
        drained.into_values().map(|r| r.job).collect()
    }

    /// Runs one job in the calling thread and publishes its resolution
    /// (shutdown inline drain).
    fn resolve_inline(&self, job: Arc<Job>, scratch: &mut VmScratch) {
        let outcome = drive_session(&job.cfg, scratch);
        let attempts = job.attempts.fetch_add(1, Ordering::SeqCst).saturating_add(1);
        self.publish(Completed {
            ticket: job.ticket,
            worker: usize::MAX,
            latency_ns: job.enqueued.elapsed_ns(),
            attempts,
            outcome: outcome.map_err(ServiceError::Session),
        });
    }

    /// Shutdown's last-resort drain: resolves, in the calling thread,
    /// every job still registered in-progress or still queued. Runs after
    /// the worker joins, when every slot may be dead — confiscated jobs
    /// are therefore run directly rather than requeued (`requeue_away`
    /// with zero live slots has no valid target and would drop the job,
    /// stranding its ticket in `pending` forever).
    pub(crate) fn drain_inline(&self) {
        let mut scratch = VmScratch::new();
        for job in self.confiscate_all_running() {
            self.resolve_inline(job, &mut scratch);
        }
        while let Some(job) = self.pop_any() {
            self.resolve_inline(job, &mut scratch);
        }
    }

    /// Wakes every parked thread class (shutdown broadcast).
    fn wake_all(&self) {
        self.idle_cv.notify_all();
        self.admit_cv.notify_all();
        self.stall_cv.notify_all();
        self.sup_cv.notify_all();
        self.results_cv.notify_all();
    }
}

/// A running session service: a supervised fixed pool of long-lived
/// workers consuming a continuous stream of submissions.
///
/// ```no_run
/// use dls_protocol::config::{Behavior, ProcessorConfig, SessionConfig};
/// use dls_protocol::service::{ServiceConfig, ServiceHandle};
/// use dls_dlt::SystemModel;
///
/// let svc = ServiceHandle::start(ServiceConfig::stealing(4)).expect("workers spawned");
/// let cfg = SessionConfig::builder(SystemModel::NcpFe, 0.2)
///     .processor(ProcessorConfig::new(1.0, Behavior::Compliant))
///     .processor(ProcessorConfig::new(2.0, Behavior::Compliant))
///     .build()
///     .unwrap();
/// let ticket = svc.submit(cfg).expect("admitted");
/// let done = svc.wait(ticket).unwrap();
/// println!("latency: {} ns", done.latency_ns);
/// svc.shutdown();
/// ```
pub struct ServiceHandle {
    shared: Arc<Shared>,
}

impl ServiceHandle {
    /// Spawns the worker pool (and, unless disabled, the supervisor) and
    /// returns the submission handle. A slot whose spawn fails starts
    /// dead — the pool shrinks, placement skips it, and the supervisor
    /// heals it later; if *every* spawn fails the service refuses to
    /// start rather than strand accepted tickets.
    pub fn start(cfg: ServiceConfig) -> Result<ServiceHandle, StartError> {
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            queue_lens: (0..workers).map(|_| AtomicUsize::new(0)).collect(),
            slots: (0..workers).map(|_| Slot::new()).collect(),
            in_flight: AtomicUsize::new(0),
            idle_mx: Mutex::new(()),
            idle_cv: Condvar::new(),
            admit_mx: Mutex::new(()),
            admit_cv: Condvar::new(),
            stall_mx: Mutex::new(()),
            stall_cv: Condvar::new(),
            sup_mx: Mutex::new(()),
            sup_cv: Condvar::new(),
            table: Mutex::new(Table {
                done: BTreeMap::new(),
                pending: BTreeSet::new(),
                evicted: VecDeque::new(),
            }),
            results_cv: Condvar::new(),
            running: Mutex::new(BTreeMap::new()),
            handles: Mutex::new(Vec::new()),
            next_ticket: AtomicU64::new(0),
            jobs_started: AtomicU64::new(0),
            spawn_attempts: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            epoch: latency::Stamp::now(),
            placement: cfg.placement,
            reuse_scratch: cfg.reuse_scratch,
            queue_capacity: cfg.queue_capacity,
            admission: cfg.admission,
            results_capacity: cfg.results_capacity,
            supervise: cfg.supervise,
            tick: cfg.tick,
            stall_ticks: cfg.stall_ticks,
            plan: CompiledPlan::compile(&cfg.fault_plan),
            stats: Counters::default(),
        });
        let mut spawned = 0usize;
        for w in 0..workers {
            if shared.spawn_worker(w).is_ok() {
                spawned += 1;
            }
        }
        if spawned == 0 {
            return Err(StartError::NoWorkers { attempted: workers });
        }
        if shared.supervise {
            shared.spawn_supervisor();
        }
        Ok(ServiceHandle { shared })
    }

    /// Number of workers currently alive. Dips while a dead worker awaits
    /// respawn; `0` is possible mid-recovery (accepted tickets still
    /// resolve — the supervisor respawns, and shutdown drains inline as
    /// a last resort).
    pub fn workers(&self) -> usize {
        (0..self.shared.slots.len())
            .filter(|&w| self.shared.slot_alive(w))
            .count()
    }

    /// Submits a session and returns its ticket, or a typed refusal.
    /// Tickets increase monotonically from zero in submission order.
    /// Once `submit` returns `Ok`, the ticket is *accepted*: it will
    /// resolve to an outcome, a shed notice, or a quarantine notice —
    /// never vanish — even across worker deaths and shutdown races.
    pub fn submit(&self, cfg: SessionConfig) -> Result<u64, SubmitError> {
        let shared = &self.shared;
        if shared.shutdown.load(Ordering::SeqCst) {
            return Err(SubmitError::ShutDown);
        }
        if let Some(capacity) = shared.queue_capacity {
            let capacity = capacity.max(1);
            match shared.admission {
                AdmissionPolicy::Reject => {
                    let queued = shared.queued_total();
                    if queued >= capacity {
                        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                        return Err(SubmitError::Overloaded { queued, capacity });
                    }
                }
                AdmissionPolicy::Block { timeout } => {
                    shared.admit_block(capacity, timeout)?;
                }
                AdmissionPolicy::ShedOldest => {
                    if shared.queued_total() >= capacity {
                        shared.shed_oldest(capacity);
                    }
                }
            }
        }
        let ticket = shared.next_ticket.fetch_add(1, Ordering::AcqRel);
        shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
        shared.mark_pending(ticket);
        let job = Arc::new(Job {
            ticket,
            cfg,
            enqueued: latency::Stamp::now(),
            attempts: AtomicU32::new(0),
        });
        let target = shared.place(ticket);
        shared.enqueue(target, job);
        // Shutdown race repair: if the stop sequence began after the
        // check above, its drain may already have passed this queue. Pull
        // the job back out; if a worker (or the drain) already popped it,
        // the ticket is being resolved normally and stays accepted.
        if shared.shutdown.load(Ordering::SeqCst) && shared.cancel_queued(target, ticket) {
            shared.unmark_pending(ticket);
            return Err(SubmitError::ShutDown);
        }
        Ok(ticket)
    }

    /// Sessions accepted but not yet resolved.
    pub fn in_flight(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// A snapshot of the service's health and lifetime counters.
    pub fn stats(&self) -> ServiceStats {
        self.shared.stats.snapshot()
    }

    /// Tickets most recently evicted from the results map (oldest first,
    /// bounded ring) — the disclosure trail for
    /// [`ServiceConfig::results_capacity`].
    pub fn recent_evictions(&self) -> Vec<u64> {
        let table = self.shared.table.lock();
        table.evicted.iter().copied().collect()
    }

    /// Takes a finished session without blocking. `None` if the ticket is
    /// unknown, still pending, already taken, or evicted.
    pub fn try_take(&self, ticket: u64) -> Option<Completed> {
        let mut table = self.shared.table.lock();
        table.done.remove(&ticket)
    }

    /// Blocks until `ticket` resolves and takes its result. Returns
    /// `None` promptly — even while other sessions are still running —
    /// for a ticket that was never issued, was already taken, or was
    /// evicted from the results map.
    pub fn wait(&self, ticket: u64) -> Option<Completed> {
        if ticket >= self.shared.next_ticket.load(Ordering::Acquire) {
            return None;
        }
        let mut table = self.shared.table.lock();
        loop {
            if let Some(done) = table.done.remove(&ticket) {
                return Some(done);
            }
            if !table.pending.contains(&ticket) {
                // Consumed, evicted, or cancelled — it is not coming back.
                return None;
            }
            self.shared
                .results_cv
                .wait_for(&mut table, Duration::from_millis(10));
        }
    }

    /// Flags shutdown, lets the pool drain every accepted session, and
    /// joins workers and supervisor. Idempotent. Anything still queued
    /// after the joins (submit races, unsupervised dead workers) is
    /// drained inline so no accepted ticket is lost. Pending results stay
    /// retrievable until the handle is dropped.
    pub fn shutdown(&self) {
        self.stop();
    }

    fn stop(&self) {
        let shared = &self.shared;
        shared.shutdown.store(true, Ordering::SeqCst);
        if !shared.supervise {
            // No supervisor to recover dead workers' registered jobs:
            // requeue them here so live workers (or the inline drain
            // below) can resolve their tickets.
            shared.recover_all_dead();
        }
        loop {
            shared.wake_all();
            let handles = shared.take_handles();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        // Inline last-resort drain: anything still queued or registered
        // (all-workers-dead faults, late submit races) resolves here, in
        // the caller's thread, so acceptance always means resolution.
        shared.drain_inline();
        // Wake any waiter stuck on a ticket that will never complete.
        shared.results_cv.notify_all();
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Behavior, ProcessorConfig};
    use crate::supervisor::ServiceFault;
    use dls_dlt::SystemModel;

    fn cfg(seed: u64) -> SessionConfig {
        SessionConfig::builder(SystemModel::NcpFe, 0.25)
            .processor(ProcessorConfig::new(1.0, Behavior::Compliant))
            .processor(ProcessorConfig::new(2.0, Behavior::Compliant))
            .processor(ProcessorConfig::new(3.0, Behavior::Compliant))
            .seed(seed)
            .build()
            .expect("valid session config")
    }

    fn start(cfg: ServiceConfig) -> ServiceHandle {
        ServiceHandle::start(cfg).expect("service starts")
    }

    #[test]
    fn tickets_are_monotonic_and_results_keyed_by_ticket() {
        let svc = start(ServiceConfig::stealing(2));
        let t0 = svc.submit(cfg(1)).expect("admitted");
        let t1 = svc.submit(cfg(2)).expect("admitted");
        let t2 = svc.submit(cfg(3)).expect("admitted");
        assert_eq!((t0, t1, t2), (0, 1, 2));
        // Retrieve out of submission order.
        let d2 = svc.wait(t2).expect("t2 completes");
        let d0 = svc.wait(t0).expect("t0 completes");
        let d1 = svc.wait(t1).expect("t1 completes");
        assert_eq!((d0.ticket, d1.ticket, d2.ticket), (t0, t1, t2));
        for d in [&d0, &d1, &d2] {
            assert!(d.outcome.is_ok(), "compliant session failed: {:?}", d.outcome);
            assert_eq!(d.attempts, 1);
        }
        svc.shutdown();
    }

    #[test]
    fn wait_on_unissued_ticket_returns_none() {
        let svc = start(ServiceConfig::stealing(1));
        assert!(svc.wait(99).is_none());
        assert!(svc.try_take(0).is_none());
        svc.shutdown();
    }

    #[test]
    fn wait_on_consumed_ticket_returns_none_after_drain() {
        let svc = start(ServiceConfig::stealing(1));
        let t = svc.submit(cfg(7)).expect("admitted");
        assert!(svc.wait(t).is_some());
        assert!(svc.wait(t).is_none(), "consumed ticket must not hang");
        svc.shutdown();
    }

    #[test]
    fn static_shard_matches_stealing_outcomes() {
        let steal = start(ServiceConfig::stealing(3));
        let shard = start(ServiceConfig::static_shard(3));
        for seed in 10..14 {
            let ts = steal.submit(cfg(seed)).expect("admitted");
            let th = shard.submit(cfg(seed)).expect("admitted");
            let a = steal.wait(ts).expect("stealing completes");
            let b = shard.wait(th).expect("static completes");
            let a = a.outcome.expect("stealing outcome");
            let b = b.outcome.expect("static outcome");
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        steal.shutdown();
        shard.shutdown();
    }

    #[test]
    fn shutdown_drains_queued_sessions() {
        let svc = start(ServiceConfig::stealing(2));
        let tickets: Vec<u64> = (0..6)
            .map(|s| svc.submit(cfg(20 + s)).expect("admitted"))
            .collect();
        svc.shutdown();
        let table = svc.shared.table.lock();
        for t in tickets {
            assert!(table.done.contains_key(&t), "ticket {t} not drained");
        }
        assert!(table.pending.is_empty(), "pending set not drained");
    }

    #[test]
    fn fresh_scratch_matches_reused_scratch() {
        let reused = start(ServiceConfig::stealing(2));
        let fresh = start(ServiceConfig {
            reuse_scratch: false,
            ..ServiceConfig::stealing(2)
        });
        let tr = reused.submit(cfg(31)).expect("admitted");
        let tf = fresh.submit(cfg(31)).expect("admitted");
        let a = reused.wait(tr).expect("reused").outcome.expect("ok");
        let b = fresh.wait(tf).expect("fresh").outcome.expect("ok");
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        reused.shutdown();
        fresh.shutdown();
    }

    #[test]
    fn workers_reports_alive_slots_not_max_one() {
        let svc = start(ServiceConfig::stealing(3));
        assert_eq!(svc.workers(), 3);
        svc.shutdown();
        // After shutdown every worker exited cleanly and disarmed; slots
        // stay marked alive only while their thread runs.
        assert_eq!(svc.workers(), 0, "no threads -> zero workers, not 1");
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let svc = start(ServiceConfig::stealing(1));
        svc.shutdown();
        assert_eq!(svc.submit(cfg(1)), Err(SubmitError::ShutDown));
    }

    #[test]
    fn shutdown_is_idempotent() {
        let svc = start(ServiceConfig::stealing(2));
        let t = svc.submit(cfg(40)).expect("admitted");
        svc.shutdown();
        svc.shutdown();
        assert!(svc.wait(t).is_some());
    }

    #[test]
    fn requeue_away_prefers_a_different_alive_worker() {
        let svc = start(ServiceConfig {
            // Large tick so the supervisor never steals this test's jobs.
            tick: Duration::from_secs(60),
            ..ServiceConfig::stealing(3)
        });
        // Quiesce, then requeue a probe job "away from" worker 0 and
        // check it landed on worker 1 or 2.
        while svc.in_flight() > 0 {
            std::thread::yield_now();
        }
        let job = Arc::new(Job {
            ticket: u64::MAX,
            cfg: cfg(50),
            enqueued: latency::Stamp::now(),
            attempts: AtomicU32::new(0),
        });
        svc.shared.requeue_away(job, 0);
        let lens: Vec<usize> = svc
            .shared
            .queue_lens
            .iter()
            .map(|l| l.load(Ordering::Acquire))
            .collect();
        assert_eq!(
            lens.first().copied(),
            Some(0),
            "retry must not return to the failed worker"
        );
        // Drain the probe (its ticket was never accepted, so the publish
        // is discarded; just make shutdown's drain path run it).
        svc.shutdown();
    }

    #[test]
    fn results_capacity_evicts_oldest_with_disclosure() {
        let svc = start(ServiceConfig {
            results_capacity: Some(2),
            ..ServiceConfig::stealing(2)
        });
        let tickets: Vec<u64> = (0..5)
            .map(|s| svc.submit(cfg(60 + s)).expect("admitted"))
            .collect();
        svc.shutdown();
        let stats = svc.stats();
        assert_eq!(stats.results_evicted, 3, "5 results into capacity 2");
        assert_eq!(svc.recent_evictions().len(), 3);
        let retained: Vec<&u64> = tickets
            .iter()
            .filter(|t| !svc.recent_evictions().contains(t))
            .collect();
        assert_eq!(retained.len(), 2);
        for t in svc.recent_evictions() {
            assert!(svc.wait(t).is_none(), "evicted ticket {t} must resolve to None");
        }
        for t in retained {
            assert!(svc.wait(*t).is_some(), "retained ticket {t} must be takeable");
        }
    }

    #[test]
    fn inline_drain_resolves_running_jobs_with_every_slot_dead() {
        // A kill fault leaves its job registered in-progress on a dead
        // worker. With supervision off and the pool's only worker dead,
        // that registration can still be present at stop()'s post-join
        // drain (a death landing after recover_all_dead's sweep); drive
        // that drain directly and require the ticket to resolve instead
        // of stranding in `pending` forever.
        let plan = ServiceFaultPlan::default().with(ServiceFault::KillWorkerAtJob { nth_job: 0 });
        let svc = start(ServiceConfig {
            supervise: false,
            fault_plan: plan,
            ..ServiceConfig::stealing(1)
        });
        let t = svc.submit(cfg(70)).expect("admitted");
        while svc.workers() != 0 {
            std::thread::yield_now();
        }
        assert!(
            !svc.shared.running_empty(),
            "killed worker's job must stay registered"
        );
        svc.shared.shutdown.store(true, Ordering::SeqCst);
        svc.shared.drain_inline();
        let done = svc.wait(t).expect("confiscated job must resolve, not strand");
        assert!(done.outcome.is_ok(), "drained session failed: {:?}", done.outcome);
        assert_eq!(done.worker, usize::MAX, "resolved by the inline drain");
    }

    #[test]
    fn stale_death_watch_cannot_hide_a_newer_occupant() {
        let svc = start(ServiceConfig::stealing(1));
        // Worker 0 runs at generation 1. Forge a watch from a previous
        // occupant (generation 0) and drop it armed, as a stall-
        // confiscated zombie's late exit would: the current occupant
        // must stay visible to placement and keep a clean death stamp.
        drop(DeathWatch::arm(&svc.shared, 0, 0));
        assert!(svc.shared.slot_alive(0), "stale watch must not clear liveness");
        assert_eq!(
            svc.shared.slots[0].died_ns.load(Ordering::Acquire),
            u64::MAX,
            "stale watch must not stamp a death"
        );
        svc.shutdown();
    }

    #[test]
    fn spawn_fail_on_every_slot_is_a_typed_start_error() {
        let plan = ServiceFaultPlan::default()
            .with(ServiceFault::SpawnFailAt { attempt: 0 })
            .with(ServiceFault::SpawnFailAt { attempt: 1 });
        let err = ServiceHandle::start(ServiceConfig {
            supervise: false,
            fault_plan: plan,
            ..ServiceConfig::stealing(2)
        });
        match err {
            Err(StartError::NoWorkers { attempted }) => assert_eq!(attempted, 2),
            other => panic!("expected NoWorkers, got {:?}", other.map(|_| "handle")),
        }
    }
}
