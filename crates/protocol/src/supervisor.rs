//! Worker supervision and deterministic service-fault injection for
//! [`crate::service`].
//!
//! The service's worker pool is the deployment substrate the paper's
//! mechanism runs on once the control processor is gone, so a worker
//! thread dying must not strand accepted work. This module adds the
//! recovery layer (DESIGN.md §16):
//!
//! * every worker runs under an armed [`DeathWatch`] — an RAII guard
//!   whose drop-on-unwind/early-return records the death in the
//!   worker's [`Slot`] and wakes the supervisor;
//! * the supervisor thread sweeps the slots every
//!   [`crate::service::ServiceConfig::tick`]: a dead slot has its
//!   in-progress jobs confiscated from the registry, requeued on a
//!   *different* worker, and its thread respawned (recovery latency is
//!   measured death→respawn and reported in [`ServiceStats`]);
//! * optionally (`stall_ticks > 0`) a worker whose heartbeat stops
//!   while it holds work is declared stalled and treated as dead —
//!   confiscate, requeue, respawn a replacement into the slot.
//!
//! Faults are injected deterministically through [`ServiceFaultPlan`]:
//! kill/stall faults key off the global job-start index, spawn failures
//! off the global spawn-attempt index, and poison off the ticket. The
//! injection points are compiled into ordered sets at `start` and cost
//! one `BTreeSet` probe per job when empty. This plan is orthogonal to
//! the protocol-level [`crate::fault::FaultPlan`]: that one breaks
//! *processors inside a session*, this one breaks *the service running
//! the sessions*.
//!
//! Duplicate runs are benign by construction: recovery may requeue a job
//! whose original worker was merely slow (stall false positive), but the
//! publish path in `service.rs` resolves each ticket exactly once
//! (first-wins), and deterministic replay guarantees both runs would
//! have produced bit-exact outcomes anyway.

use crate::service::Shared;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One deterministic service-level fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceFault {
    /// The worker that starts the `nth_job`-th job (global job-start
    /// index, retries and requeues included) dies abruptly with the job
    /// registered in-progress.
    KillWorkerAtJob {
        /// Global job-start index at which the worker dies.
        nth_job: u64,
    },
    /// The `attempt`-th worker-thread spawn (global spawn-attempt index:
    /// initial spawns first, then respawns) fails.
    SpawnFailAt {
        /// Global spawn-attempt index that fails.
        attempt: u64,
    },
    /// The session driver "panics" on this ticket's first `times`
    /// attempts (simulated at the panic-containment seam, so the retry
    /// and quarantine paths are exercised without unwinding).
    PanicOnTicket {
        /// Ticket whose runs are poisoned.
        ticket: u64,
        /// Attempts that panic before the job runs clean (`1` exercises
        /// retry-then-success, `2` retry-then-quarantine).
        times: u32,
    },
    /// The worker that starts the `nth_job`-th job stops making progress
    /// (parks holding the job) until shutdown. With stall detection on,
    /// the supervisor confiscates and re-runs the job elsewhere.
    StallWorker {
        /// Global job-start index at which the worker stalls.
        nth_job: u64,
    },
}

/// A deterministic set of service faults, injected via test-only hooks
/// compiled in at [`crate::service::ServiceHandle::start`]. Empty by
/// default (no faults).
#[derive(Debug, Clone, Default)]
pub struct ServiceFaultPlan {
    /// The faults to inject.
    pub faults: Vec<ServiceFault>,
}

impl ServiceFaultPlan {
    /// Adds one fault (builder style).
    pub fn with(mut self, fault: ServiceFault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Kill-churn convenience for the benchmark: kill the active worker
    /// at every `period`-th job start, for job indices in `(0, upto)`.
    pub fn kill_every(period: u64, upto: u64) -> Self {
        let mut plan = ServiceFaultPlan::default();
        if period == 0 {
            return plan;
        }
        let mut n = period;
        while n < upto {
            plan = plan.with(ServiceFault::KillWorkerAtJob { nth_job: n });
            n = n.saturating_add(period);
        }
        plan
    }
}

/// [`ServiceFaultPlan`] compiled to ordered probe sets.
#[derive(Debug, Default)]
pub(crate) struct CompiledPlan {
    pub(crate) kills: BTreeSet<u64>,
    pub(crate) stalls: BTreeSet<u64>,
    pub(crate) panics: BTreeMap<u64, u32>,
    pub(crate) spawn_fails: BTreeSet<u64>,
}

impl CompiledPlan {
    pub(crate) fn compile(plan: &ServiceFaultPlan) -> Self {
        let mut c = CompiledPlan::default();
        for f in &plan.faults {
            match *f {
                ServiceFault::KillWorkerAtJob { nth_job } => {
                    c.kills.insert(nth_job);
                }
                ServiceFault::StallWorker { nth_job } => {
                    c.stalls.insert(nth_job);
                }
                ServiceFault::PanicOnTicket { ticket, times } => {
                    c.panics.insert(ticket, times);
                }
                ServiceFault::SpawnFailAt { attempt } => {
                    c.spawn_fails.insert(attempt);
                }
            }
        }
        c
    }
}

/// Per-worker liveness record. `died_ns` is nanoseconds since the
/// service epoch at the (first unrecovered) death, `u64::MAX` while the
/// slot is healthy or cleanly exited — the supervisor recovers exactly
/// the slots with a recorded death, so clean shutdown exits are never
/// "healed" into respawn churn.
pub(crate) struct Slot {
    pub(crate) alive: AtomicBool,
    /// Heartbeat: bumped by the worker once per loop iteration (i.e.
    /// between jobs). Read by stall detection.
    pub(crate) beat: AtomicU64,
    pub(crate) died_ns: AtomicU64,
    /// Occupancy generation, bumped on every spawn into the slot. A
    /// [`DeathWatch`] captures it at arm time and refuses to touch the
    /// slot once it has moved on, so a stall-confiscated zombie that
    /// exits (or dies) later cannot clear the liveness of the worker
    /// respawned into its slot.
    pub(crate) generation: AtomicU64,
}

impl Slot {
    pub(crate) fn new() -> Self {
        Slot {
            alive: AtomicBool::new(false),
            beat: AtomicU64::new(0),
            died_ns: AtomicU64::new(u64::MAX),
            generation: AtomicU64::new(0),
        }
    }
}

/// RAII death watch armed at the top of every worker loop. A clean exit
/// disarms it; any other way out of the thread — the kill fault's abrupt
/// return, or a real panic escaping the containment seam — drops it
/// armed, which records the death and wakes the supervisor.
///
/// The watch carries the slot generation it was armed under and only
/// updates the slot while that generation is current: after a stall
/// confiscation respawns a replacement into the slot (bumping the
/// generation), the stalled zombie's eventual disarm or death is stale
/// bookkeeping and must not hide the healthy occupant.
pub(crate) struct DeathWatch<'a> {
    shared: &'a Shared,
    w: usize,
    gen: u64,
    armed: bool,
}

impl<'a> DeathWatch<'a> {
    pub(crate) fn arm(shared: &'a Shared, w: usize, gen: u64) -> Self {
        DeathWatch {
            shared,
            w,
            gen,
            armed: true,
        }
    }

    /// The watched slot, while this watch's generation is still current.
    fn current_slot(&self) -> Option<&Slot> {
        self.shared
            .slots
            .get(self.w)
            .filter(|s| s.generation.load(Ordering::Acquire) == self.gen)
    }

    /// Clean exit: the slot goes not-alive with no death recorded.
    pub(crate) fn disarm(&mut self) {
        self.armed = false;
        if let Some(s) = self.current_slot() {
            s.alive.store(false, Ordering::Release);
        }
    }
}

impl Drop for DeathWatch<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        if let Some(s) = self.current_slot() {
            s.alive.store(false, Ordering::Release);
            s.died_ns
                .store(self.shared.epoch.elapsed_ns(), Ordering::Release);
        }
        self.shared.sup_cv.notify_all();
        self.shared.idle_cv.notify_all();
    }
}

/// Lifetime counters for one service, snapshot via
/// [`crate::service::ServiceHandle::stats`]. All counts are cumulative
/// since `start`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Tickets accepted by `submit`.
    pub submitted: u64,
    /// Tickets resolved (outcome, shed, or quarantine).
    pub completed: u64,
    /// Submits refused by [`crate::service::AdmissionPolicy::Reject`].
    pub rejected: u64,
    /// Submits timed out at the [`crate::service::AdmissionPolicy::Block`] gate.
    pub timed_out: u64,
    /// Queued sessions shed by [`crate::service::AdmissionPolicy::ShedOldest`].
    pub sheds: u64,
    /// Jobs requeued after a first driver panic.
    pub retries: u64,
    /// Jobs quarantined as poison after a second driver panic.
    pub quarantined: u64,
    /// Fault-injected worker kills taken.
    pub killed: u64,
    /// Fault-injected worker stalls taken.
    pub stalled: u64,
    /// Stall declarations by the supervisor (worker treated as dead).
    pub confiscated: u64,
    /// In-progress jobs recovered from dead/stalled workers and requeued.
    pub orphans_requeued: u64,
    /// Worker threads respawned into previously dead slots.
    pub respawns: u64,
    /// Worker-thread spawn attempts that failed (injected or real).
    pub spawn_failures: u64,
    /// Successful steal events (batches, not jobs).
    pub steals: u64,
    /// Results evicted past `results_capacity` (disclosed via the ring).
    pub results_evicted: u64,
    /// Deepest any single worker queue has been.
    pub queue_depth_hwm: u64,
    /// Most completed-but-untaken results retained at once.
    pub results_depth_hwm: u64,
    /// Total worker death→respawn wall-clock nanoseconds.
    pub recovery_ns_total: u64,
    /// Worst single worker death→respawn wall-clock nanoseconds.
    pub recovery_ns_max: u64,
}

/// Atomic backing for [`ServiceStats`].
#[derive(Default)]
pub(crate) struct Counters {
    pub(crate) submitted: AtomicU64,
    pub(crate) completed: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) timed_out: AtomicU64,
    pub(crate) sheds: AtomicU64,
    pub(crate) retries: AtomicU64,
    pub(crate) quarantined: AtomicU64,
    pub(crate) killed: AtomicU64,
    pub(crate) stalled: AtomicU64,
    pub(crate) confiscated: AtomicU64,
    pub(crate) orphans_requeued: AtomicU64,
    pub(crate) respawns: AtomicU64,
    pub(crate) spawn_failures: AtomicU64,
    pub(crate) steals: AtomicU64,
    pub(crate) results_evicted: AtomicU64,
    pub(crate) queue_depth_hwm: AtomicU64,
    pub(crate) results_depth_hwm: AtomicU64,
    pub(crate) recovery_ns_total: AtomicU64,
    pub(crate) recovery_ns_max: AtomicU64,
}

impl Counters {
    pub(crate) fn snapshot(&self) -> ServiceStats {
        let get = |c: &AtomicU64| c.load(Ordering::Acquire);
        ServiceStats {
            submitted: get(&self.submitted),
            completed: get(&self.completed),
            rejected: get(&self.rejected),
            timed_out: get(&self.timed_out),
            sheds: get(&self.sheds),
            retries: get(&self.retries),
            quarantined: get(&self.quarantined),
            killed: get(&self.killed),
            stalled: get(&self.stalled),
            confiscated: get(&self.confiscated),
            orphans_requeued: get(&self.orphans_requeued),
            respawns: get(&self.respawns),
            spawn_failures: get(&self.spawn_failures),
            steals: get(&self.steals),
            results_evicted: get(&self.results_evicted),
            queue_depth_hwm: get(&self.queue_depth_hwm),
            results_depth_hwm: get(&self.results_depth_hwm),
            recovery_ns_total: get(&self.recovery_ns_total),
            recovery_ns_max: get(&self.recovery_ns_max),
        }
    }
}

impl Shared {
    fn slot_died_ns(&self, w: usize) -> u64 {
        self.slots
            .get(w)
            .map(|s| s.died_ns.load(Ordering::Acquire))
            .unwrap_or(u64::MAX)
    }

    /// Records a failed spawn into slot `w`, preserving the original
    /// death stamp (recovery latency measures first-death→heal).
    fn mark_spawn_failure(&self, w: usize) {
        self.stats.spawn_failures.fetch_add(1, Ordering::Relaxed);
        if let Some(s) = self.slots.get(w) {
            s.alive.store(false, Ordering::Release);
            let _ = s.died_ns.compare_exchange(
                u64::MAX,
                self.epoch.elapsed_ns(),
                Ordering::AcqRel,
                Ordering::Acquire,
            );
        }
    }

    fn add_handle(&self, h: JoinHandle<()>) {
        let mut handles = self.handles.lock();
        handles.push(h);
    }

    /// Spawns (or respawns) the worker thread for slot `w`, consuming one
    /// global spawn attempt. A failure — injected via
    /// [`ServiceFault::SpawnFailAt`] or real — marks the slot dead-and-
    /// unrecovered so a supervising service retries on a later sweep.
    pub(crate) fn spawn_worker(self: &Arc<Self>, w: usize) -> Result<(), ()> {
        let attempt = self.spawn_attempts.fetch_add(1, Ordering::SeqCst);
        if self.plan.spawn_fails.contains(&attempt) {
            self.mark_spawn_failure(w);
            return Err(());
        }
        let Some(slot) = self.slots.get(w) else {
            return Err(());
        };
        // Claim the slot before the thread exists: consume the death
        // stamp, advance the generation (staling any DeathWatch a
        // previous occupant still holds), and mark the slot alive. This
        // must happen pre-spawn — the new thread may pop a job and die
        // before `spawn` even returns here, and post-spawn bookkeeping
        // would then erase that fresh death stamp, wedging the slot
        // "alive" with no thread and no recorded death to sweep.
        let died = slot.died_ns.swap(u64::MAX, Ordering::AcqRel);
        let gen = slot.generation.fetch_add(1, Ordering::AcqRel) + 1;
        slot.alive.store(true, Ordering::Release);
        let shared = Arc::clone(self);
        match std::thread::Builder::new()
            .name(format!("dls-service-{w}"))
            .spawn(move || shared.worker_loop(w, gen))
        {
            Ok(h) => {
                if died != u64::MAX {
                    let delta = self.epoch.elapsed_ns().saturating_sub(died);
                    self.stats.respawns.fetch_add(1, Ordering::Relaxed);
                    self.stats
                        .recovery_ns_total
                        .fetch_add(delta, Ordering::Relaxed);
                    self.stats
                        .recovery_ns_max
                        .fetch_max(delta, Ordering::AcqRel);
                }
                self.add_handle(h);
                Ok(())
            }
            Err(_) => {
                // Undo the claim: the slot is still dead, and the
                // original death stamp (if any) is restored so recovery
                // latency keeps measuring first-death→heal across
                // retried sweeps.
                self.stats.spawn_failures.fetch_add(1, Ordering::Relaxed);
                slot.alive.store(false, Ordering::Release);
                let stamp = if died != u64::MAX {
                    died
                } else {
                    self.epoch.elapsed_ns()
                };
                slot.died_ns.store(stamp, Ordering::Release);
                Err(())
            }
        }
    }

    /// Spawns the supervisor thread. A (real) spawn failure degrades to
    /// the unsupervised pool and is disclosed in `spawn_failures`.
    pub(crate) fn spawn_supervisor(self: &Arc<Self>) {
        let shared = Arc::clone(self);
        match std::thread::Builder::new()
            .name("dls-service-supervisor".to_string())
            .spawn(move || shared.supervisor_loop())
        {
            Ok(h) => self.add_handle(h),
            Err(_) => {
                self.stats.spawn_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Removes and returns every in-progress job registered to worker
    /// `w` (the worker is dead or declared stalled; its registrations
    /// are orphans).
    fn confiscate(&self, w: usize) -> Vec<Arc<crate::service::Job>> {
        let mut running = self.running.lock();
        let tickets: Vec<u64> = running
            .iter()
            .filter(|(_, r)| r.worker == w)
            .map(|(t, _)| *t)
            .collect();
        tickets
            .iter()
            .filter_map(|t| running.remove(t))
            .map(|r| r.job)
            .collect()
    }

    /// `true` while worker `w` holds queued or in-progress work.
    fn worker_busy(&self, w: usize) -> bool {
        if self
            .queue_lens
            .get(w)
            .is_some_and(|l| l.load(Ordering::Acquire) > 0)
        {
            return true;
        }
        let running = self.running.lock();
        running.values().any(|r| r.worker == w)
    }

    /// `true` when no in-progress job belongs to a live worker — the
    /// worker-side shutdown drain condition. Jobs registered to *dead*
    /// workers don't block worker exit; they are recovered by the
    /// supervisor or by shutdown's inline drain.
    pub(crate) fn no_live_running(&self) -> bool {
        let running = self.running.lock();
        running.values().all(|r| !self.slot_alive(r.worker))
    }

    /// Moves every job queued on `w` to living workers (used when slot
    /// `w` cannot be respawned right now). No-op without a live target.
    fn drain_queue_away(&self, w: usize) {
        let has_target = (0..self.queues.len()).any(|i| i != w && self.slot_alive(i));
        if !has_target {
            return;
        }
        while let Some(job) = self.pop_local(w) {
            self.requeue_away(job, w);
        }
    }

    /// One supervisor sweep over dead slots: confiscate orphans, requeue
    /// them on living workers, respawn the thread. When the respawn
    /// fails, the slot's queue is redistributed and the slot is retried
    /// on the next sweep.
    fn sweep_dead(self: &Arc<Self>) {
        for w in 0..self.slots.len() {
            if self.slot_died_ns(w) == u64::MAX {
                continue;
            }
            let orphans = self.confiscate(w);
            for job in orphans {
                self.stats.orphans_requeued.fetch_add(1, Ordering::Relaxed);
                self.requeue_away(job, w);
            }
            if self.spawn_worker(w).is_err() {
                self.drain_queue_away(w);
            }
        }
    }

    /// One stall-detection sweep (only when `stall_ticks > 0`): a live
    /// worker whose heartbeat has not moved for `stall_ticks` consecutive
    /// sweeps while it holds work is declared stalled and marked dead, so
    /// the next `sweep_dead` confiscates its work and replaces it. A
    /// false positive (legitimately long session) is safe — the publish
    /// path resolves the ticket first-wins and replay is bit-exact — but
    /// wasteful, which is why the threshold is operator-chosen and
    /// defaults to off.
    fn sweep_stalls(&self, seen: &mut [(u64, u32)]) {
        for (w, slot) in self.slots.iter().enumerate() {
            let Some(entry) = seen.get_mut(w) else {
                continue;
            };
            if !slot.alive.load(Ordering::Acquire) {
                *entry = (0, 0);
                continue;
            }
            let beat = slot.beat.load(Ordering::Relaxed);
            if beat != entry.0 || !self.worker_busy(w) {
                *entry = (beat, 0);
                continue;
            }
            entry.1 = entry.1.saturating_add(1);
            if entry.1 >= self.stall_ticks {
                *entry = (beat, 0);
                self.stats.confiscated.fetch_add(1, Ordering::Relaxed);
                slot.alive.store(false, Ordering::Release);
                slot.died_ns
                    .store(self.epoch.elapsed_ns(), Ordering::Release);
            }
        }
    }

    /// Shutdown-path recovery for the unsupervised pool: requeue every
    /// dead worker's in-progress jobs so live workers (or the inline
    /// drain) resolve their tickets.
    pub(crate) fn recover_all_dead(&self) {
        for w in 0..self.slots.len() {
            if self.slot_alive(w) {
                continue;
            }
            for job in self.confiscate(w) {
                self.stats.orphans_requeued.fetch_add(1, Ordering::Relaxed);
                self.requeue_away(job, w);
            }
        }
    }

    /// The supervisor thread: sweep for dead and stalled workers every
    /// tick (or immediately when a [`DeathWatch`] fires), exit once
    /// shutdown is flagged and nothing is queued or in progress.
    pub(crate) fn supervisor_loop(self: &Arc<Self>) {
        let mut seen: Vec<(u64, u32)> = vec![(0, 0); self.slots.len()];
        loop {
            self.sweep_dead();
            if self.stall_ticks > 0 {
                self.sweep_stalls(&mut seen);
            }
            if self.shutdown.load(Ordering::SeqCst)
                && self.queued_total() == 0
                && self.running_empty()
            {
                return;
            }
            let mut guard = self.sup_mx.lock();
            self.sup_cv.wait_for(&mut guard, self.tick);
        }
    }
}
