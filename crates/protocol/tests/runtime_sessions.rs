//! End-to-end DLS-BL-NCP sessions: one test per behaviour in the deviance
//! catalogue, plus accounting and communication-complexity checks.

use dls_dlt::SystemModel;
use dls_protocol::config::{Behavior, ProcessorConfig, SessionConfig};
use dls_protocol::referee::Phase;
use dls_protocol::runtime::{run_session, RunError, SessionStatus};

const Z: f64 = 0.2;

fn session(model: SystemModel, behaviors: &[(f64, Behavior)]) -> SessionConfig {
    SessionConfig::builder(model, Z)
        .processors(
            behaviors
                .iter()
                .map(|&(w, b)| ProcessorConfig::new(w, b)),
        )
        .seed(7)
        .build()
        .unwrap()
}

fn compliant3(model: SystemModel) -> SessionConfig {
    session(
        model,
        &[
            (1.0, Behavior::Compliant),
            (2.0, Behavior::Compliant),
            (3.0, Behavior::Compliant),
        ],
    )
}

#[test]
fn cp_model_rejected() {
    let cfg = compliant3(SystemModel::Cp);
    assert!(matches!(run_session(&cfg), Err(RunError::UnsupportedModel)));
}

#[test]
fn compliant_session_completes_cleanly() {
    for model in [SystemModel::NcpFe, SystemModel::NcpNfe] {
        let out = run_session(&compliant3(model)).unwrap();
        assert_eq!(out.status, SessionStatus::Completed, "{model}");
        assert!(out.fined_processors().is_empty());
        assert!(out.ledger.conservation_error().abs() < 1e-9);
        let tl = out.timeline.as_ref().expect("processing ran");
        assert!(tl.bus_is_one_port());
        // The realized makespan matches the DLT optimum up to block
        // granularity.
        let params = dls_dlt::BusParams::new(Z, vec![1.0, 2.0, 3.0]).unwrap();
        let opt = dls_dlt::optimal::optimal_makespan(model, &params);
        let mk = out.makespan.unwrap();
        assert!((mk - opt).abs() / opt < 0.1, "{model}: {mk} vs {opt}");
        // Workers have non-negative utility (voluntary participation).
        let orig = model.originator(3).unwrap();
        for (i, p) in out.processors.iter().enumerate() {
            assert!(p.participated);
            assert!(p.payment.is_some());
            if i != orig {
                assert!(p.utility >= -1e-9, "{model} P{}: {}", i + 1, p.utility);
            }
        }
        // The user paid the whole bill.
        let bill: f64 = out
            .processors
            .iter()
            .map(|p| p.payment.unwrap().total())
            .sum();
        assert!(
            (out.ledger.balance(&dls_protocol::ledger::Account::User) + bill).abs() < 1e-9
        );
    }
}

#[test]
fn misreporting_is_legal_but_unprofitable() {
    let honest = run_session(&compliant3(SystemModel::NcpFe)).unwrap();
    let lying = run_session(&session(
        SystemModel::NcpFe,
        &[
            (1.0, Behavior::Compliant),
            (2.0, Behavior::Misreport { factor: 1.6 }),
            (3.0, Behavior::Compliant),
        ],
    ))
    .unwrap();
    // No fines — misreporting is not a protocol offence…
    assert_eq!(lying.status, SessionStatus::Completed);
    assert!(lying.fined_processors().is_empty());
    // …but the mechanism makes it unprofitable (strategyproofness).
    assert!(
        lying.utility(1) <= honest.utility(1) + 1e-9,
        "misreporting paid off: {} vs {}",
        lying.utility(1),
        honest.utility(1)
    );
}

#[test]
fn slacking_is_legal_but_unprofitable() {
    let honest = run_session(&compliant3(SystemModel::NcpFe)).unwrap();
    let slack = run_session(&session(
        SystemModel::NcpFe,
        &[
            (1.0, Behavior::Compliant),
            (2.0, Behavior::Slack { factor: 2.0 }),
            (3.0, Behavior::Compliant),
        ],
    ))
    .unwrap();
    assert_eq!(slack.status, SessionStatus::Completed);
    assert!(slack.utility(1) < honest.utility(1));
    // The slow execution shows up in the realized makespan.
    assert!(slack.makespan.unwrap() > honest.makespan.unwrap());
}

#[test]
fn equivocation_detected_fined_and_aborted() {
    let out = run_session(&session(
        SystemModel::NcpFe,
        &[
            (1.0, Behavior::Compliant),
            (2.0, Behavior::EquivocateBids { factor: 2.0 }),
            (3.0, Behavior::Compliant),
        ],
    ))
    .unwrap();
    assert_eq!(
        out.status,
        SessionStatus::Aborted {
            phase: Phase::Bidding
        }
    );
    assert_eq!(out.fined_processors(), vec![1]);
    let f = out.fine;
    assert!((out.processors[1].utility + f).abs() < 1e-9, "deviant pays F");
    // Informers split the pot: F/(m−1) each.
    for i in [0, 2] {
        assert!((out.processors[i].utility - f / 2.0).abs() < 1e-9);
    }
    assert!(out.ledger.conservation_error().abs() < 1e-9);
    assert!(out.timeline.is_none(), "no processing after a bidding abort");
}

#[test]
fn short_allocation_fines_originator() {
    // NCP-FE: P1 is the originator and withholds blocks from P3.
    let out = run_session(&session(
        SystemModel::NcpFe,
        &[
            (
                1.0,
                Behavior::ShortAllocate {
                    victim: 2,
                    shortfall: 2,
                },
            ),
            (2.0, Behavior::Compliant),
            (3.0, Behavior::Compliant),
        ],
    ))
    .unwrap();
    assert_eq!(
        out.status,
        SessionStatus::Aborted {
            phase: Phase::Allocating
        }
    );
    assert_eq!(out.fined_processors(), vec![0]);
}

#[test]
fn over_allocation_fines_originator() {
    let out = run_session(&session(
        SystemModel::NcpFe,
        &[
            (
                1.0,
                Behavior::OverAllocate {
                    victim: 1,
                    excess: 3,
                },
            ),
            (2.0, Behavior::Compliant),
            (3.0, Behavior::Compliant),
        ],
    ))
    .unwrap();
    assert_eq!(
        out.status,
        SessionStatus::Aborted {
            phase: Phase::Allocating
        }
    );
    assert_eq!(out.fined_processors(), vec![0]);
}

#[test]
fn nfe_originator_deviation_detected_too() {
    // NCP-NFE: the originator is the LAST processor.
    let out = run_session(&session(
        SystemModel::NcpNfe,
        &[
            (1.0, Behavior::Compliant),
            (2.0, Behavior::Compliant),
            (
                3.0,
                Behavior::ShortAllocate {
                    victim: 0,
                    shortfall: 1,
                },
            ),
        ],
    ))
    .unwrap();
    assert_eq!(
        out.status,
        SessionStatus::Aborted {
            phase: Phase::Allocating
        }
    );
    assert_eq!(out.fined_processors(), vec![2]);
}

#[test]
fn corrupt_payment_vector_fined_session_completes() {
    let out = run_session(&session(
        SystemModel::NcpFe,
        &[
            (1.0, Behavior::Compliant),
            (2.0, Behavior::Compliant),
            (
                3.0,
                Behavior::CorruptPayments {
                    target: 2,
                    factor: 2.5,
                },
            ),
        ],
    ))
    .unwrap();
    assert_eq!(out.status, SessionStatus::CompletedWithFines);
    assert_eq!(out.fined_processors(), vec![2]);
    // Work completed: payments flowed from the correct vector.
    assert!(out.processors[0].payment.is_some());
    // The corrupter's inflated entry was NOT used: its own payment is the
    // correct one minus the fine plus nothing.
    let honest = run_session(&compliant3(SystemModel::NcpFe)).unwrap();
    let correct_q2 = honest.processors[2].payment.unwrap().total();
    let paid_q2 = out.processors[2].payment.unwrap().total();
    assert!(
        (paid_q2 - correct_q2).abs() < 0.05 * correct_q2.abs().max(1.0),
        "{paid_q2} vs {correct_q2}"
    );
    // Deviant strictly worse off than compliant play (Lemma 5.1).
    assert!(out.utility(2) < honest.utility(2));
    assert!(out.ledger.conservation_error().abs() < 1e-9);
}

#[test]
fn false_accusation_fines_the_accuser() {
    let out = run_session(&session(
        SystemModel::NcpFe,
        &[
            (1.0, Behavior::Compliant),
            (2.0, Behavior::FalselyAccuseAllocation),
            (3.0, Behavior::Compliant),
        ],
    ))
    .unwrap();
    assert_eq!(
        out.status,
        SessionStatus::Aborted {
            phase: Phase::Allocating
        }
    );
    assert_eq!(out.fined_processors(), vec![1]);
}

#[test]
fn non_participant_excluded_with_zero_utility() {
    let out = run_session(&session(
        SystemModel::NcpFe,
        &[
            (1.0, Behavior::Compliant),
            (2.0, Behavior::NonParticipant),
            (3.0, Behavior::Compliant),
        ],
    ))
    .unwrap();
    assert_eq!(out.status, SessionStatus::Completed);
    assert!(!out.processors[1].participated);
    assert_eq!(out.utility(1), 0.0);
    assert!(out.processors[0].payment.is_some());
    assert!(out.processors[2].payment.is_some());
}

#[test]
fn too_few_participants_rejected() {
    let cfg = session(
        SystemModel::NcpFe,
        &[
            (1.0, Behavior::Compliant),
            (2.0, Behavior::NonParticipant),
            (3.0, Behavior::NonParticipant),
        ],
    );
    assert!(matches!(run_session(&cfg), Err(RunError::TooFewParticipants)));
}

#[test]
fn every_deviant_loses_relative_to_compliance() {
    // Lemma 5.1 / Theorem 5.1 measured end-to-end: for each finable
    // behaviour, the deviant's utility is strictly below what the same
    // processor earns in the all-compliant session.
    let honest = run_session(&compliant3(SystemModel::NcpFe)).unwrap();
    let deviant_behaviors: Vec<(usize, Behavior)> = vec![
        (1, Behavior::EquivocateBids { factor: 2.0 }),
        (
            0,
            Behavior::ShortAllocate {
                victim: 2,
                shortfall: 1,
            },
        ),
        (
            0,
            Behavior::OverAllocate {
                victim: 1,
                excess: 2,
            },
        ),
        (
            2,
            Behavior::CorruptPayments {
                target: 2,
                factor: 3.0,
            },
        ),
        (1, Behavior::FalselyAccuseAllocation),
    ];
    for (who, behavior) in deviant_behaviors {
        let mut ws = [
            (1.0, Behavior::Compliant),
            (2.0, Behavior::Compliant),
            (3.0, Behavior::Compliant),
        ];
        ws[who].1 = behavior;
        let out = run_session(&session(SystemModel::NcpFe, &ws)).unwrap();
        assert!(
            out.utility(who) < honest.utility(who),
            "{behavior}: deviant got {} vs compliant {}",
            out.utility(who),
            honest.utility(who)
        );
    }
}

#[test]
fn bid_deliveries_scale_quadratically() {
    // Theorem 5.4 measured: bid deliveries are exactly m(m−1) and the
    // payment-vector bytes grow ~m².
    let mut last_bytes_per_m = 0.0;
    for m in [3usize, 6, 12] {
        let behaviors: Vec<(f64, Behavior)> = (0..m)
            .map(|i| (1.0 + i as f64 * 0.5, Behavior::Compliant))
            .collect();
        let out = run_session(&session(SystemModel::NcpFe, &behaviors)).unwrap();
        let (bid_count, _) = out.messages.category("bid");
        assert_eq!(bid_count as usize, m * (m - 1), "m={m}");
        let (pv_count, pv_bytes) = out.messages.category("payment-vector");
        assert_eq!(pv_count as usize, m, "m={m}");
        // Bytes per message grow linearly in m ⇒ total is Θ(m²).
        let bytes_per_m = pv_bytes as f64 / m as f64;
        assert!(bytes_per_m > last_bytes_per_m, "m={m}");
        last_bytes_per_m = bytes_per_m;
    }
}

#[test]
fn deterministic_given_seed() {
    let a = run_session(&compliant3(SystemModel::NcpFe)).unwrap();
    let b = run_session(&compliant3(SystemModel::NcpFe)).unwrap();
    assert_eq!(a.status, b.status);
    for (x, y) in a.processors.iter().zip(&b.processors) {
        assert_eq!(x.utility, y.utility);
        assert_eq!(x.blocks_granted, y.blocks_granted);
    }
    assert_eq!(a.messages, b.messages);
}

#[test]
fn non_participant_originator_role_migrates() {
    // NCP-FE: P1 declines, so P2 becomes the active originator; the
    // session must still complete with the remaining pair.
    let out = run_session(&session(
        SystemModel::NcpFe,
        &[
            (1.0, Behavior::NonParticipant),
            (2.0, Behavior::Compliant),
            (3.0, Behavior::Compliant),
        ],
    ))
    .unwrap();
    assert_eq!(out.status, SessionStatus::Completed);
    assert!(!out.processors[0].participated);
    assert_eq!(out.utility(0), 0.0);
    // The active pair split the whole load.
    let total: usize = out.processors.iter().map(|p| p.blocks_granted).sum();
    assert_eq!(total, 60);
    assert!(out.processors[1].payment.is_some());
    assert!(out.processors[2].payment.is_some());
}

#[test]
fn two_equivocators_both_fined() {
    let out = run_session(&session(
        SystemModel::NcpFe,
        &[
            (1.0, Behavior::Compliant),
            (2.0, Behavior::EquivocateBids { factor: 2.0 }),
            (3.0, Behavior::EquivocateBids { factor: 0.5 }),
            (4.0, Behavior::Compliant),
        ],
    ))
    .unwrap();
    assert_eq!(
        out.status,
        SessionStatus::Aborted {
            phase: Phase::Bidding
        }
    );
    assert_eq!(out.fined_processors(), vec![1, 2]);
    // Pot 2F split between the two survivors: each receives F.
    let f = out.fine;
    assert!((out.processors[0].utility - f).abs() < 1e-9);
    assert!((out.processors[3].utility - f).abs() < 1e-9);
    assert!(out.ledger.conservation_error().abs() < 1e-9);
}

#[test]
fn originator_offence_by_non_originator_degrades_to_compliance() {
    // P2 configured to short-allocate, but only the originator sends
    // grants — the behaviour has no effect and the session completes.
    let out = run_session(&session(
        SystemModel::NcpFe,
        &[
            (1.0, Behavior::Compliant),
            (
                2.0,
                Behavior::ShortAllocate {
                    victim: 2,
                    shortfall: 1,
                },
            ),
            (3.0, Behavior::Compliant),
        ],
    ))
    .unwrap();
    assert_eq!(out.status, SessionStatus::Completed);
    assert!(out.fined_processors().is_empty());
}

#[test]
fn victim_deviant_combo_each_handled() {
    // The originator cheats P3 AND P2 corrupts payments. The allocation
    // abort pre-empts the payment phase, so only the originator is fined.
    let out = run_session(&session(
        SystemModel::NcpFe,
        &[
            (
                1.0,
                Behavior::ShortAllocate {
                    victim: 2,
                    shortfall: 1,
                },
            ),
            (
                2.0,
                Behavior::CorruptPayments {
                    target: 0,
                    factor: 3.0,
                },
            ),
            (3.0, Behavior::Compliant),
        ],
    ))
    .unwrap();
    assert_eq!(
        out.status,
        SessionStatus::Aborted {
            phase: Phase::Allocating
        }
    );
    assert_eq!(out.fined_processors(), vec![0]);
}

#[test]
fn fine_exactly_at_bound_still_deters() {
    // The paper requires F >= sum(alpha_j w_j); verify the boundary value
    // still makes equivocation unprofitable.
    let probe = session(
        SystemModel::NcpFe,
        &[
            (1.0, Behavior::Compliant),
            (2.0, Behavior::Compliant),
            (3.0, Behavior::Compliant),
        ],
    );
    let bound = probe.fine_bound();
    let honest = run_session(&probe).unwrap();
    let cfg = dls_protocol::config::SessionConfig::builder(SystemModel::NcpFe, Z)
        .processors([
            dls_protocol::config::ProcessorConfig::new(1.0, Behavior::Compliant),
            dls_protocol::config::ProcessorConfig::new(
                2.0,
                Behavior::EquivocateBids { factor: 2.0 },
            ),
            dls_protocol::config::ProcessorConfig::new(3.0, Behavior::Compliant),
        ])
        .fine(bound)
        .seed(7)
        .build()
        .unwrap();
    let out = run_session(&cfg).unwrap();
    assert!(out.utility(1) < honest.utility(1));
}

#[test]
fn forged_bids_are_discarded_without_framing_anyone() {
    // P2 forges a bid under P3's name. Signature verification fails, so
    // every receiver discards it (§4); the session completes and NOBODY is
    // fined — in particular not the impersonated P3 (Lemma 5.2).
    let out = run_session(&session(
        SystemModel::NcpFe,
        &[
            (1.0, Behavior::Compliant),
            (2.0, Behavior::ForgeExtraBid { impersonate: 2 }),
            (3.0, Behavior::Compliant),
        ],
    ))
    .unwrap();
    assert_eq!(out.status, SessionStatus::Completed);
    assert!(out.fined_processors().is_empty());
    // The forged low-ball bid (0.01) must not have influenced allocation:
    // P3's fraction corresponds to its genuine bid of 3.0.
    let honest = run_session(&compliant3(SystemModel::NcpFe)).unwrap();
    assert!((out.processors[2].alloc_fraction - honest.processors[2].alloc_fraction).abs() < 1e-12);
}
