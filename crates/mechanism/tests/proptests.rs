//! Property tests for DLS-BL: Theorems 3.1 (strategyproofness) and 3.2
//! (voluntary participation) on random markets in the DLT regime.
//!
//! **Fidelity note:** in this offline workspace these properties run
//! against the vendored proptest stand-in (`vendor/proptest`): a
//! deterministic per-test seed, a fixed case count, no shrinking, and no
//! run-to-run variation. A green run is a frozen regression sweep (256
//! cases by default), not real fuzzing — re-run the suite against
//! upstream proptest whenever registry access is available (see
//! `vendor/README.md`).

use dls_mechanism::validate::{
    participation_holds, sweep_strategyproof,
};
use dls_mechanism::{AgentSpec, Market};
use dls_dlt::{SystemModel, ALL_MODELS};
use proptest::prelude::*;

/// Markets in the classical DLT regime (`z < min w`), 2–8 agents.
fn arb_market_params() -> impl Strategy<Value = (f64, Vec<f64>)> {
    (
        0.0f64..0.9,
        prop::collection::vec(1.0f64..8.0, 2..8),
    )
        .prop_map(|(zfrac, w)| {
            let min_w = w.iter().cloned().fold(f64::INFINITY, f64::min);
            (zfrac * min_w, w)
        })
}

fn arb_model() -> impl Strategy<Value = SystemModel> {
    prop::sample::select(ALL_MODELS.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 3.1: no unilateral deviation (bid × execution) on the probe
    /// grid beats truthful play, for a random agent on a random market.
    #[test]
    fn strategyproofness((z, w) in arb_market_params(), model in arb_model(),
                         idx in any::<prop::sample::Index>(),
                         bf in 0.2f64..5.0, ef in 1.0f64..4.0) {
        let agent = idx.index(w.len());
        let report = sweep_strategyproof(model, z, &w, agent, &[bf], &[ef]).unwrap();
        prop_assert!(report.holds(1e-9),
            "agent {} gains {} with bid×{} exec×{}",
            agent, report.max_gain(), bf, ef);
    }

    /// Theorem 3.2: truthful workers never lose on random markets.
    #[test]
    fn voluntary_participation((z, w) in arb_market_params(), model in arb_model()) {
        prop_assert!(participation_holds(model, z, &w, 1e-9).unwrap());
    }

    /// U_i = B_i identically: the compensation exactly cancels the cost.
    #[test]
    fn utility_is_bonus((z, w) in arb_market_params(), model in arb_model(),
                        idx in any::<prop::sample::Index>(),
                        bf in 0.2f64..5.0, ef in 1.0f64..4.0) {
        let i = idx.index(w.len());
        let agents: Vec<AgentSpec> = w.iter().enumerate().map(|(j, &wj)| {
            if j == i {
                AgentSpec { true_w: wj, bid: wj * bf, exec_w: wj * ef }
            } else {
                AgentSpec::truthful(wj)
            }
        }).collect();
        let out = Market::new(model, z, agents).unwrap().run();
        prop_assert!((out.utility(i) - out.payments[i].bonus).abs() < 1e-9);
    }

    /// The realized makespan under all-truthful play equals the DLT optimum
    /// — the mechanism implements the efficient outcome.
    #[test]
    fn truthful_play_is_efficient((z, w) in arb_market_params(), model in arb_model()) {
        let agents = w.iter().map(|&x| AgentSpec::truthful(x)).collect();
        let out = Market::new(model, z, agents).unwrap().run();
        let params = dls_dlt::BusParams::new(z, w.clone()).unwrap();
        let opt = dls_dlt::optimal::optimal_makespan(model, &params);
        prop_assert!((out.social_cost() - opt).abs() < 1e-9 * (1.0 + opt));
    }

    /// Slacking by any factor > 1 strictly hurts (the verification part of
    /// "mechanism with verification").
    #[test]
    fn slacking_strictly_hurts((z, w) in arb_market_params(), model in arb_model(),
                               idx in any::<prop::sample::Index>(),
                               ef in 1.05f64..5.0) {
        let i = idx.index(w.len());
        let honest: Vec<AgentSpec> = w.iter().map(|&x| AgentSpec::truthful(x)).collect();
        let mut slack = honest.clone();
        slack[i] = AgentSpec::slacking(w[i], ef);
        let u_honest = Market::new(model, z, honest).unwrap().run().utility(i);
        let u_slack = Market::new(model, z, slack).unwrap().run().utility(i);
        prop_assert!(u_slack < u_honest, "{} !< {}", u_slack, u_honest);
    }

    /// The user's bill is finite and at least the total compensation (the
    /// bonus of a truthful market is non-negative for workers).
    #[test]
    fn bill_covers_compensation((z, w) in arb_market_params(), model in arb_model()) {
        let agents: Vec<AgentSpec> = w.iter().map(|&x| AgentSpec::truthful(x)).collect();
        let out = Market::new(model, z, agents).unwrap().run();
        let comp_total: f64 = out.payments.iter().map(|p| p.compensation).sum();
        prop_assert!(out.user_bill().is_finite());
        // Workers' bonuses are ≥ 0; only the NCP originator can drag the
        // bill below total compensation, and only slightly.
        if model.originator(w.len()).is_none() {
            prop_assert!(out.user_bill() >= comp_total - 1e-9);
        }
    }
}
