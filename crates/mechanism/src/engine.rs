//! Incremental auction engine: one market, cached chain state, typed
//! errors, zero steady-state allocations.
//!
//! [`Market`](crate::Market) is a one-shot value type: every `run()`
//! rebuilds the chain products and allocates fresh vectors. An auctioneer
//! re-quoting a market after each arriving bid does strictly less work than
//! that — between consecutive bids only one rate changes. [`AuctionEngine`]
//! keeps a [`ChainState`] (the cached link factors, unnormalized fractions
//! and prefix/suffix sums) plus scratch arenas for the allocation, finish
//! times and payments alive across solves:
//!
//! * [`AuctionEngine::submit_bid`] — O(m − i) incremental splice of the
//!   cached products (two divisions), the hot path;
//! * [`AuctionEngine::submit_bid_rebuild`] — same observable behaviour via a
//!   full from-scratch rebuild; the reference path the incremental one is
//!   differential-tested and benchmarked against;
//! * [`AuctionEngine::evaluate`] / [`AuctionEngine::payments`] — read the
//!   current quote (fractions, makespan, per-agent payments) out of the
//!   retained buffers, allocation-free after warm-up.
//!
//! Incremental and rebuild paths agree **bit-exactly** (IEEE-754
//! determinism; see `dls_dlt::chain`), so callers may mix them freely.
//!
//! This module is covered by the workspace no-panic lint gate: every public
//! entry point validates its inputs and reports [`EngineError`] instead of
//! panicking.

use crate::market::{compute_payments_into, Payment, PaymentScratch};
use dls_dlt::{finish_times_into, BusParams, ChainState, ParamError, SystemModel};
use std::fmt;

/// Rejected [`AuctionEngine`] input.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The initial bid vector was not a valid market.
    Params(ParamError),
    /// A processor index outside `0..m`.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of processors in the market.
        m: usize,
    },
    /// A bid that is not finite and positive.
    InvalidBid {
        /// Offending processor (0-based).
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// An observed execution rate that is not finite and positive.
    InvalidObserved {
        /// Offending processor (0-based).
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// A vector whose length disagrees with the market size.
    LengthMismatch {
        /// Expected length (`m`).
        expected: usize,
        /// Provided length.
        got: usize,
    },
    /// A batch worker terminated without filling its result slots — an
    /// internal invariant breach surfaced as an error instead of a panic.
    BatchIncomplete,
    /// A batch worker panicked mid-chunk. The panic is caught at the chunk
    /// boundary; only the markets the worker had not yet completed are
    /// poisoned, and they report this error instead of unwinding the
    /// caller.
    WorkerPanicked,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Params(e) => write!(f, "{e}"),
            EngineError::IndexOutOfRange { index, m } => {
                write!(f, "processor index {index} out of range for m = {m}")
            }
            EngineError::InvalidBid { index, value } => {
                write!(f, "bid b[{index}] = {value} must be finite and > 0")
            }
            EngineError::InvalidObserved { index, value } => {
                write!(f, "observed rate w̃[{index}] = {value} must be finite and > 0")
            }
            EngineError::LengthMismatch { expected, got } => {
                write!(f, "expected a vector of length {expected}, got {got}")
            }
            EngineError::BatchIncomplete => {
                write!(f, "batch worker exited without completing its markets")
            }
            EngineError::WorkerPanicked => {
                write!(f, "batch worker panicked; its unfinished markets are poisoned")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParamError> for EngineError {
    fn from(e: ParamError) -> Self {
        EngineError::Params(e)
    }
}

/// The engine's current quote: optimal makespan and load fractions under
/// the present bid vector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation<'a> {
    /// Optimal total execution time `T(α(b), b)`.
    pub makespan: f64,
    /// Optimal load fractions `α(b)` (borrowed from the engine's arena).
    pub fractions: &'a [f64],
}

/// A persistent, incrementally updatable solver for one market.
///
/// See the [module docs](self) for the re-solve strategy. Results are
/// bit-identical to the one-shot [`Market`](crate::Market) /
/// [`compute_payments`](crate::compute_payments) pipeline on the same bids.
#[derive(Debug, Clone)]
pub struct AuctionEngine {
    chain: ChainState,
    /// Cached `α(b)`; valid iff `!alloc_dirty`.
    alloc: Vec<f64>,
    alloc_dirty: bool,
    scratch: PaymentScratch,
    payments: Vec<Payment>,
    finish: Vec<f64>,
}

impl AuctionEngine {
    /// Builds an engine over an initial bid vector (O(m), the only
    /// unavoidable allocations).
    pub fn new(model: SystemModel, z: f64, bids: Vec<f64>) -> Result<Self, EngineError> {
        let params = BusParams::new(z, bids)?;
        let m = params.m();
        Ok(AuctionEngine {
            chain: ChainState::new(model, &params),
            alloc: Vec::with_capacity(m),
            alloc_dirty: true,
            scratch: PaymentScratch::default(),
            payments: Vec::with_capacity(m),
            finish: Vec::with_capacity(m),
        })
    }

    /// The system model.
    pub fn model(&self) -> SystemModel {
        self.chain.model()
    }

    /// Number of processors `m`.
    pub fn m(&self) -> usize {
        self.chain.m()
    }

    /// Bus communication rate.
    pub fn z(&self) -> f64 {
        self.chain.params().z()
    }

    /// The current bid vector.
    pub fn bids(&self) -> &[f64] {
        self.chain.params().w()
    }

    fn check_bid(&self, index: usize, value: f64) -> Result<(), EngineError> {
        let m = self.m();
        if index >= m {
            return Err(EngineError::IndexOutOfRange { index, m });
        }
        if !value.is_finite() || value <= 0.0 {
            return Err(EngineError::InvalidBid { index, value });
        }
        Ok(())
    }

    /// Replaces bid `i` via the incremental chain splice — O(m − i) with
    /// two divisions. The hot path.
    pub fn submit_bid(&mut self, i: usize, bid: f64) -> Result<(), EngineError> {
        self.check_bid(i, bid)?;
        self.chain.update_bid(i, bid);
        self.alloc_dirty = true;
        Ok(())
    }

    /// Replaces bid `i` via a full from-scratch rebuild of the cached chain
    /// (O(m), m divisions). Same observable behaviour as
    /// [`AuctionEngine::submit_bid`], bit-for-bit; kept as the reference /
    /// fallback path and as the benchmark baseline.
    pub fn submit_bid_rebuild(&mut self, i: usize, bid: f64) -> Result<(), EngineError> {
        self.check_bid(i, bid)?;
        self.chain.update_bid_rebuild(i, bid);
        self.alloc_dirty = true;
        Ok(())
    }

    /// Replaces the entire bid vector (full rebuild into the retained
    /// buffers) — the batch layer's market-reload path.
    pub fn load_bids(&mut self, bids: &[f64]) -> Result<(), EngineError> {
        let m = self.m();
        if bids.len() != m {
            return Err(EngineError::LengthMismatch {
                expected: m,
                got: bids.len(),
            });
        }
        for (index, &value) in bids.iter().enumerate() {
            if !value.is_finite() || value <= 0.0 {
                return Err(EngineError::InvalidBid { index, value });
            }
        }
        self.chain.reload(bids);
        self.alloc_dirty = true;
        Ok(())
    }

    /// Optimal makespan under the current bids — O(1) from the cached
    /// prefix sums.
    pub fn optimal_makespan(&self) -> f64 {
        self.chain.optimal_makespan()
    }

    /// Optimal fractions under the current bids, materialized lazily into
    /// the engine's arena (O(m) after a bid change, O(1) when cached).
    pub fn fractions(&mut self) -> &[f64] {
        if self.alloc_dirty {
            self.chain.fractions_into(&mut self.alloc);
            self.alloc_dirty = false;
        }
        &self.alloc
    }

    /// The full quote: makespan plus fractions.
    pub fn evaluate(&mut self) -> Evaluation<'_> {
        let makespan = self.optimal_makespan();
        Evaluation {
            makespan,
            fractions: self.fractions(),
        }
    }

    /// Realized finish times of the current allocation when each processor
    /// executes at `observed` rather than its bid rate.
    pub fn finish_times(&mut self, observed: &[f64]) -> Result<&[f64], EngineError> {
        self.check_observed(observed)?;
        let exec = BusParams::new(self.z(), observed.to_vec())?;
        if self.alloc_dirty {
            self.chain.fractions_into(&mut self.alloc);
            self.alloc_dirty = false;
        }
        finish_times_into(self.model(), &exec, &self.alloc, &mut self.finish);
        Ok(&self.finish)
    }

    fn check_observed(&self, observed: &[f64]) -> Result<(), EngineError> {
        let m = self.m();
        if observed.len() != m {
            return Err(EngineError::LengthMismatch {
                expected: m,
                got: observed.len(),
            });
        }
        for (index, &value) in observed.iter().enumerate() {
            if !value.is_finite() || value <= 0.0 {
                return Err(EngineError::InvalidObserved { index, value });
            }
        }
        Ok(())
    }

    /// DLS-BL payments (Eq. 12) for the current bids and the given observed
    /// execution rates, written into the engine's arenas — bit-identical to
    /// [`compute_payments`](crate::compute_payments) on the same inputs.
    pub fn payments(&mut self, observed: &[f64]) -> Result<&[Payment], EngineError> {
        self.check_observed(observed)?;
        if self.alloc_dirty {
            self.chain.fractions_into(&mut self.alloc);
            self.alloc_dirty = false;
        }
        compute_payments_into(
            &mut self.chain,
            &self.alloc,
            observed,
            &mut self.scratch,
            &mut self.payments,
        );
        Ok(&self.payments)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::market::compute_payments;
    use dls_dlt::{optimal, ALL_MODELS};

    #[test]
    fn fresh_engine_matches_one_shot_solvers() {
        let bids = vec![1.0, 2.5, 0.8, 3.2];
        for model in ALL_MODELS {
            let mut eng = AuctionEngine::new(model, 0.3, bids.clone()).unwrap();
            let params = BusParams::new(0.3, bids.clone()).unwrap();
            let expect = optimal::fractions(model, &params);
            let eval = eng.evaluate();
            assert_eq!(eval.fractions, expect.as_slice(), "{model}");
        }
    }

    #[test]
    fn incremental_and_rebuild_paths_agree_bitwise() {
        for model in ALL_MODELS {
            let bids = vec![1.0, 2.0, 3.0, 4.0, 5.0];
            let mut inc = AuctionEngine::new(model, 0.25, bids.clone()).unwrap();
            let mut full = AuctionEngine::new(model, 0.25, bids).unwrap();
            let updates = [(3usize, 0.9), (0, 2.2), (4, 1.1), (2, 6.5)];
            for &(i, b) in &updates {
                inc.submit_bid(i, b).unwrap();
                full.submit_bid_rebuild(i, b).unwrap();
                assert_eq!(
                    inc.optimal_makespan().to_bits(),
                    full.optimal_makespan().to_bits(),
                    "{model} update {i}"
                );
                let a: Vec<u64> = inc.fractions().iter().map(|x| x.to_bits()).collect();
                let b: Vec<u64> = full.fractions().iter().map(|x| x.to_bits()).collect();
                assert_eq!(a, b, "{model} update {i}");
            }
        }
    }

    #[test]
    fn payments_match_compute_payments() {
        for model in ALL_MODELS {
            let bids = vec![1.5, 2.0, 1.0];
            let observed = vec![1.5, 2.6, 1.0];
            let mut eng = AuctionEngine::new(model, 0.2, bids.clone()).unwrap();
            let params = BusParams::new(0.2, bids).unwrap();
            let alloc = optimal::fractions(model, &params);
            let expect = compute_payments(model, &params, &alloc, &observed);
            let got = eng.payments(&observed).unwrap();
            assert_eq!(got, expect.as_slice(), "{model}");
        }
    }

    #[test]
    fn typed_errors_cover_bad_inputs() {
        let mut eng = AuctionEngine::new(SystemModel::Cp, 0.2, vec![1.0, 2.0]).unwrap();
        assert!(matches!(
            eng.submit_bid(5, 1.0),
            Err(EngineError::IndexOutOfRange { index: 5, m: 2 })
        ));
        assert!(matches!(
            eng.submit_bid(0, -1.0),
            Err(EngineError::InvalidBid { index: 0, .. })
        ));
        assert!(matches!(
            eng.load_bids(&[1.0]),
            Err(EngineError::LengthMismatch { expected: 2, got: 1 })
        ));
        assert!(matches!(
            eng.payments(&[1.0, f64::NAN]),
            Err(EngineError::InvalidObserved { index: 1, .. })
        ));
        assert!(matches!(
            AuctionEngine::new(SystemModel::Cp, -1.0, vec![1.0]),
            Err(EngineError::Params(_))
        ));
        // A failed submission leaves the engine usable.
        assert!(eng.submit_bid(1, 3.0).is_ok());
        assert_eq!(eng.bids(), &[1.0, 3.0]);
    }

    #[test]
    fn load_bids_matches_fresh_engine() {
        for model in ALL_MODELS {
            let mut eng = AuctionEngine::new(model, 0.2, vec![1.0, 2.0, 3.0]).unwrap();
            eng.submit_bid(1, 9.0).unwrap(); // dirty the cache first
            eng.load_bids(&[2.0, 1.0, 4.0]).unwrap();
            let mut fresh = AuctionEngine::new(model, 0.2, vec![2.0, 1.0, 4.0]).unwrap();
            assert_eq!(
                eng.optimal_makespan().to_bits(),
                fresh.optimal_makespan().to_bits(),
                "{model}"
            );
            assert_eq!(eng.fractions(), fresh.fractions(), "{model}");
        }
    }
}
